//! # primecache
//!
//! A full-system Rust reproduction of *"Using Prime Numbers for Cache
//! Indexing to Eliminate Conflict Misses"* (Kharbutli, Irwin, Solihin,
//! Lee — HPCA 2004).
//!
//! This umbrella crate re-exports every subsystem of the reproduction:
//!
//! * [`primes`] — number-theory substrate (primality, prime search,
//!   fragmentation analysis of Table 1),
//! * [`core`] — the paper's contribution: the [`core::index::SetIndexer`]
//!   trait with traditional, XOR, prime-modulo and prime-displacement
//!   indexers, the fast hardware-implementation models of §3.1, and the
//!   balance/concentration metrics of §2,
//! * [`cache`] — set-associative, skewed-associative and fully-associative
//!   cache simulators with the replacement policies of §5.3,
//! * [`mem`] — the DRAM/bus timing back-end of Table 3,
//! * [`cpu`] — the trace-driven superscalar timing model,
//! * [`trace`] — trace event types and the synthetic strided generator of
//!   Figures 5/6,
//! * [`heap`] — allocator models (bump / buddy / size-class) reproducing
//!   the address layouts behind the paper's padded-struct pathologies,
//! * [`workloads`] — synthetic models of the paper's 23 applications,
//!   plus the multi-tenant trace interleaver ([`workloads::TenantMix`]),
//! * [`ingest`] — external trace ingestion: the line-oriented text
//!   importer and `PCTE` frame reader behind `pcache import`
//!   (`TRACE_FORMAT.md` is the normative wire spec),
//! * [`sim`] — the experiment framework that regenerates every table and
//!   figure,
//! * [`analyze`] — the static conflict-miss analyzer: symbolic
//!   GF(2)/residue models of every index function, per-indexer
//!   certificates, and the config lint pass,
//! * [`attack`] — the adversarial counterpart: black-box recovery of
//!   index functions from conflict probes, the recovered-vs-static
//!   differential oracle, and eviction-set construction cost,
//! * [`obs`] — the observability layer: typed metrics, event tracing,
//!   and the self-describing [`obs::RunReport`] artifact (see
//!   `OBSERVABILITY.md`).
//!
//! # Quickstart
//!
//! ```
//! use primecache::cache::{Cache, CacheConfig, CacheSim, ReplacementKind};
//! use primecache::core::index::HashKind;
//!
//! // The paper's L2: 512 KB, 4-way, 64-B lines, prime-modulo indexed.
//! let config = CacheConfig::new(512 * 1024, 4, 64)
//!     .with_hash(HashKind::PrimeModulo)
//!     .with_replacement(ReplacementKind::Lru);
//! let mut l2 = Cache::new(config);
//!
//! // Strided accesses that would all conflict under traditional indexing.
//! for i in 0..10_000u64 {
//!     l2.access(i * 128 * 1024, /*write=*/ false);
//! }
//! assert!(l2.stats().misses > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use primecache_analyze as analyze;
pub use primecache_attack as attack;
pub use primecache_cache as cache;
pub use primecache_core as core;
pub use primecache_cpu as cpu;
pub use primecache_heap as heap;
pub use primecache_ingest as ingest;
pub use primecache_mem as mem;
pub use primecache_obs as obs;
pub use primecache_primes as primes;
pub use primecache_sim as sim;
pub use primecache_trace as trace;
pub use primecache_workloads as workloads;
