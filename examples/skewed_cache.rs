//! Skewed-associative caches (§5.3): more miss elimination on conflict
//! heavy workloads, at the cost of pathological behaviour on workloads
//! with LRU-friendly reuse.
//!
//! Run with: `cargo run --release --example skewed_cache`

use primecache::cache::{Cache, CacheConfig, CacheSim, SkewHashKind, SkewedCache, SkewedConfig};
use primecache::sim::{run_workload, Scheme};
use primecache::workloads::by_name;

/// A conflict-heavy pattern: 24 blocks in one traditional set, re-walked.
fn conflict_pattern() -> Vec<u64> {
    (0..24u64).map(|i| i * 128 * 1024).collect()
}

fn run(label: &str, cache: &mut dyn CacheSim, pattern: &[u64], rounds: usize) {
    for _ in 0..rounds {
        for &a in pattern {
            cache.access(a, false);
        }
    }
    let s = cache.stats();
    println!(
        "  {label:<22} miss rate {:>6.2}%  ({} misses)",
        s.miss_rate() * 100.0,
        s.misses
    );
}

fn main() {
    println!("conflict-heavy pattern (24-way pileup under traditional indexing):");
    let mut base = Cache::new(CacheConfig::new(512 * 1024, 4, 64));
    run("Base 4-way LRU", &mut base, &conflict_pattern(), 50);
    let mut skw = SkewedCache::new(SkewedConfig::new(512 * 1024, 4, 64, SkewHashKind::Xor));
    run("SKW (XOR, ENRU)", &mut skw, &conflict_pattern(), 50);
    let mut skwd = SkewedCache::new(SkewedConfig::new(
        512 * 1024,
        4,
        64,
        SkewHashKind::PrimeDisplacement,
    ));
    run("skw+pDisp (ENRU)", &mut skwd, &conflict_pattern(), 50);
    println!();
    println!("Skewing absorbs pileups that defeat any 4-way placement — 24 aliasing");
    println!("blocks spread across four differently-indexed banks.\n");

    // The flip side (Fig. 10): a workload whose reuse true LRU handles
    // perfectly. bzip2's block-sort buffer cycles just inside the L2 with
    // data-dependent revisits; the skewed caches' pseudo-LRU (ENRU) cannot
    // rank the lines and leaks misses.
    println!("the price — bzip2 end-to-end (500k refs), normalized to Base:");
    let bzip2 = by_name("bzip2").expect("registry has bzip2");
    let refs = 500_000;
    let base_run = run_workload(bzip2, Scheme::Base, refs);
    for scheme in [
        Scheme::PrimeModulo,
        Scheme::Skewed,
        Scheme::SkewedPrimeDisplacement,
    ] {
        let r = run_workload(bzip2, scheme, refs);
        println!(
            "  {:<12} time x{:.3}, L2 misses x{:.3}",
            scheme.label(),
            r.breakdown.total() as f64 / base_run.breakdown.total() as f64,
            r.l2.misses as f64 / base_run.l2.misses.max(1) as f64,
        );
    }
    println!();
    println!("pMod stays safe (its LRU is intact; only the placement changed), while");
    println!("the skewed caches trade bzip2's time for their gains elsewhere — the");
    println!("paper's Fig. 10 pathology.");
}
