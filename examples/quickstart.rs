//! Quickstart: see a conflict-miss pathology appear under traditional
//! indexing and disappear under prime-modulo indexing.
//!
//! Run with: `cargo run --release --example quickstart`

use primecache::cache::{Cache, CacheConfig, CacheSim};
use primecache::core::index::HashKind;

fn main() {
    // The paper's L2: 512 KB, 4-way, 64-byte lines => 2048 physical sets.
    // 16 blocks spaced 128 KB apart all collide in one traditional set
    // (only 4 ways!), but spread across 16 different sets modulo 2039.
    let blocks: Vec<u64> = (0..16u64).map(|i| i * 128 * 1024).collect();

    println!("16 blocks at 128 KB stride, re-walked 100 times:\n");
    for hash in [
        HashKind::Traditional,
        HashKind::PrimeModulo,
        HashKind::PrimeDisplacement,
    ] {
        let mut l2 = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(hash));
        for _ in 0..100 {
            for &addr in &blocks {
                l2.access(addr, false);
            }
        }
        let s = l2.stats();
        println!(
            "  {:<12} {} sets used, miss rate {:>5.1}%  ({} misses / {} accesses)",
            format!("{hash}:"),
            s.set_accesses.iter().filter(|&&c| c > 0).count(),
            s.miss_rate() * 100.0,
            s.misses,
            s.accesses,
        );
    }
    println!("\nTraditional indexing thrashes one set forever; the prime-based");
    println!("functions give every block its own set and hit after the first pass.");
}
