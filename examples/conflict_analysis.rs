//! Analyze hash functions the way the paper's §2 does: balance (Eq. 1),
//! concentration (Eq. 2) and sequence invariance over strided access
//! patterns, plus the fast-hardware story of §3.1.
//!
//! Run with: `cargo run --release --example conflict_analysis`

use primecache::core::hw::{theorem1_iterations, IterativeLinear, Polynomial, Wired2039};
use primecache::core::index::{Geometry, HashKind};
use primecache::core::metrics::{balance, concentration, strided_addresses, violation_fraction};

fn main() {
    let geom = Geometry::new(2048);

    println!("Balance / concentration / invariance for selected strides");
    println!("(ideal: balance 1.0, concentration 0, violations 0)\n");
    println!(
        "{:<8}{:>12}{:>14}{:>14}{:>12}",
        "hash", "stride", "balance", "concentration", "violations"
    );
    for kind in HashKind::ALL {
        let idx = kind.build(geom);
        for stride in [1u64, 2, 16, 2039, 2047] {
            let addrs = strided_addresses(stride, 8192);
            println!(
                "{:<8}{:>12}{:>14.3}{:>14.1}{:>12.4}",
                kind.label(),
                stride,
                balance(&idx, addrs.iter().copied()).min(99.0),
                concentration(&idx, addrs.iter().copied()),
                violation_fraction(&idx, &addrs),
            );
        }
        println!();
    }

    println!("Fast prime-modulo hardware (§3.1): all units agree with a % 2039\n");
    let poly = Polynomial::new(geom);
    let iter_unit = IterativeLinear::new(geom, 0);
    let a = 0x03AB_CDEFu64; // a 26-bit block address (32-bit machine)
    let (p_idx, p_cost) = poly.reduce_with_cost(a);
    let (i_idx, i_cost) = iter_unit.reduce_with_cost(a);
    let (w_idx, w_cost) = Wired2039::index_with_cost(a);
    println!("  block address      : {a:#x}");
    println!("  reference (a % p)  : {}", a % 2039);
    println!(
        "  polynomial         : {p_idx} ({} adds, {} pass(es), {}-input selector)",
        p_cost.adds,
        p_cost.iterations.max(1),
        p_cost.selector_inputs
    );
    println!(
        "  iterative linear   : {i_idx} ({} adds, {} iterations)",
        i_cost.adds, i_cost.iterations
    );
    println!(
        "  wired 2039 unit    : {w_idx} ({} narrow adds, {}-input selector)",
        w_cost.adds, w_cost.selector_inputs
    );
    println!(
        "\n  Theorem 1: 64-bit machine needs {} iterations (3-input selector), {} (258-input)",
        theorem1_iterations(64, 64, 2048, 0),
        theorem1_iterations(64, 64, 2048, 8),
    );
}
