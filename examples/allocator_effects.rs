//! The heap-layout origin of cache-set non-uniformity: build the *same*
//! tree workload on three different allocators and watch the L2 set
//! histogram and miss rate change — then watch prime indexing erase the
//! difference.
//!
//! This is the mechanism behind the paper's `tree` benchmark (Fig. 13):
//! the treecode's nodes land on power-of-two allocator slots.
//!
//! Run with: `cargo run --release --example allocator_effects`

use primecache::cache::{Cache, CacheConfig, CacheSim};
use primecache::core::index::HashKind;
use primecache::heap::{Allocator, BuddyAllocator, BumpAllocator, SizeClassAllocator};

/// Builds a 4000-node tree with the given allocator and walks it the way
/// the treecode does: every body revisits the upper levels.
fn run_tree(alloc: &mut dyn Allocator, hash: HashKind) -> (f64, f64) {
    const NODE_BYTES: u64 = 260; // a Barnes-Hut cell: pos, mass, 8 children
    let nodes: Vec<u64> = (0..4000)
        .map(|_| alloc.alloc(NODE_BYTES).expect("arena"))
        .collect();

    let mut l2 = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(hash));
    // Deterministic pseudo-random walk biased to low (upper-level) nodes.
    let mut state = 0x1234_5678u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _body in 0..20_000 {
        for level in 0..8 {
            let idx = if level < 3 {
                (rng() % (1 << (3 * level))) as usize
            } else {
                let f = (rng() % 1000) as f64 / 1000.0;
                ((f * f) * nodes.len() as f64) as usize
            };
            l2.access(nodes[idx.min(nodes.len() - 1)], false);
        }
    }
    let sets_touched = l2.stats().set_accesses.iter().filter(|&&c| c > 0).count() as f64;
    (sets_touched, l2.stats().miss_rate() * 100.0)
}

/// A named factory for a fresh allocator instance per run.
type AllocatorCase = (&'static str, Box<dyn Fn() -> Box<dyn Allocator>>);

fn main() {
    println!("The same tree traversal under three heap layouts:\n");
    println!(
        "{:<26}{:>14}{:>12}{:>16}{:>12}",
        "allocator", "sets (Base)", "miss% Base", "sets (pMod)", "miss% pMod"
    );
    let cases: Vec<AllocatorCase> = vec![
        (
            "bump (packed)",
            Box::new(|| Box::new(BumpAllocator::new(0x8000_0000, 8))),
        ),
        (
            "buddy (pow2 slots)",
            Box::new(|| Box::new(BuddyAllocator::new(0x8000_0000, 1 << 24))),
        ),
        (
            "size-class 512B",
            Box::new(|| Box::new(SizeClassAllocator::new(0x8000_0000, &[512]))),
        ),
        (
            "size-class 288B (odd)",
            Box::new(|| Box::new(SizeClassAllocator::new(0x8000_0000, &[288]))),
        ),
    ];
    for (name, make) in cases {
        let (sets_base, miss_base) = run_tree(make().as_mut(), HashKind::Traditional);
        let (sets_pmod, miss_pmod) = run_tree(make().as_mut(), HashKind::PrimeModulo);
        println!(
            "{name:<26}{sets_base:>14.0}{miss_base:>11.1}%{sets_pmod:>16.0}{miss_pmod:>11.1}%"
        );
    }
    println!();
    println!("Packed layouts spread the nodes over most sets and stay conflict-free;");
    println!("power-of-two slot layouts (buddy, 512-B classes) squeeze all traffic into");
    println!("an eighth of the sets and thrash under traditional indexing — and prime");
    println!("modulo makes the allocator choice irrelevant: the paper's robustness");
    println!("argument in allocator form.");
}
