//! A step-by-step walkthrough of the §3.1 hardware derivation: from a raw
//! block address to the prime-modulo index using only narrow adds —
//! executed with the repository's actual gate-level building blocks.
//!
//! Run with: `cargo run --release --example hardware_walkthrough`

use primecache::core::hw::{
    index_latency, kogge_stone_add, sum_many, IterativeLinear, Polynomial, SubtractSelect,
    Wired2039, STAGES_PER_CYCLE,
};
use primecache::core::index::{Geometry, HashKind};

fn main() {
    // The paper's worked example: 32-bit machine, 64-B lines, 2048
    // physical sets, 2039 = 2^11 - 9 logical sets, Δ = 9.
    let a: u64 = 0x2F3_1ABC; // a 26-bit block address
    println!("block address a = {a:#09x} = {a}");
    println!("target: a mod 2039 = {}\n", a % 2039);

    // ---- Step 1: bit-field split (Fig. 1) -------------------------------
    let x = a & 0x7FF;
    let t1 = (a >> 11) & 0x7FF;
    let t2 = (a >> 22) & 0xF;
    println!("split:  x = {x} (11 bits), t1 = {t1} (11 bits), t2 = {t2} (4 bits)");

    // ---- Step 2: the polynomial identity (Eq. 4) ------------------------
    // 2^11 ≡ 9 and 2^22 ≡ 81 (mod 2039), so a ≡ x + 9·t1 + 81·t2.
    let a_star = x + 9 * t1 + 81 * t2;
    println!("Eq. 4:  a* = x + 9*t1 + 81*t2 = {a_star}");
    assert_eq!(a_star % 2039, a % 2039);

    // ---- Step 3: the five narrow addends (Fig. 3b) ----------------------
    // 9·t1 = t1 + 8·t1; the carry-out bits of 8·t1 fold by 2^11 ≡ 9.
    let addends = [x, t1, (t1 << 3) & 0x7FF, 9 * (t1 >> 8), 81 * t2];
    println!("Fig 3b addends: {addends:?}");

    // ---- Step 4: sum them with real gates (CSA tree + prefix adder) -----
    let (sum, csa_levels) = sum_many(&addends);
    println!("CSA tree: sum = {sum} in {csa_levels} carry-save levels + one prefix add");
    assert_eq!(sum % 2039, a % 2039);

    // ---- Step 5: fold any residual carry and subtract&select (Fig. 2) ---
    let mut folded = sum;
    while folded >= 2048 {
        folded = kogge_stone_add(9 * (folded >> 11), folded & 0x7FF);
    }
    let selector = SubtractSelect::new(2039, 2);
    let index = selector.reduce(folded);
    println!("fold + 2-input subtract&select: index = {index}");
    assert_eq!(index, a % 2039);

    // ---- Cross-checks against the packaged units ------------------------
    let geom = Geometry::new(2048);
    assert_eq!(Wired2039::index(a), index);
    assert_eq!(Polynomial::new(geom).reduce(a), index);
    assert_eq!(IterativeLinear::new(geom, 0).reduce(a), index);
    println!("\nwired unit, polynomial unit and iterative unit all agree.");

    // ---- Latency story (§3.1.1) -----------------------------------------
    let lat = index_latency(HashKind::PrimeModulo, geom);
    println!(
        "estimated depth: {} gate stages (~{:.1} cycles at {} stages/cycle)",
        lat.total_stages,
        f64::from(lat.total_stages) / f64::from(STAGES_PER_CYCLE),
        STAGES_PER_CYCLE
    );
    println!("the 3-cycle L1 access hides it entirely — the Fig. 4 overlap.");
}
