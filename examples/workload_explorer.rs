//! Run any of the 23 application models through every cache scheme and
//! print its personal version of the paper's figures.
//!
//! Run with: `cargo run --release --example workload_explorer -- tree [refs]`

use primecache::core::metrics::uniformity_ratio;
use primecache::sim::{run_workload, Scheme};
use primecache::workloads::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("tree");
    let refs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200_000);

    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}'. available:");
        for w in all() {
            eprintln!(
                "  {:<8} ({}, {})",
                w.name,
                w.suite,
                if w.expected_non_uniform {
                    "non-uniform"
                } else {
                    "uniform"
                }
            );
        }
        std::process::exit(1);
    };

    println!(
        "workload {name} ({}), {refs} memory references\n",
        workload.suite
    );
    let base = run_workload(workload, Scheme::Base, refs);
    let cv = uniformity_ratio(&base.l2.set_accesses);
    println!(
        "uniformity stdev/mean = {cv:.3} => {} (paper threshold 0.5)\n",
        if cv > 0.5 { "NON-UNIFORM" } else { "uniform" }
    );
    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>12}{:>14}",
        "scheme", "L2 misses", "norm misses", "exec cycles", "norm time", "mem stall %"
    );
    for scheme in Scheme::ALL {
        let r = if scheme == Scheme::Base {
            base.clone()
        } else {
            run_workload(workload, scheme, refs)
        };
        println!(
            "{:<12}{:>10}{:>12.3}{:>12}{:>12.3}{:>13.1}%",
            scheme.label(),
            r.l2.misses,
            r.l2.misses as f64 / base.l2.misses.max(1) as f64,
            r.breakdown.total(),
            r.breakdown.total() as f64 / base.breakdown.total() as f64,
            r.breakdown.mem_fraction() * 100.0,
        );
    }
}
