//! Format sniffing, validation, and conversion to [`EncodedTrace`],
//! plus the provenance stats `pcache import` prints.

use std::io::{BufRead, Read};
use std::path::Path;

use primecache_trace::{
    read_trace, EncodedTrace, Event, FrameError, ReplayCursor, TraceCodecError, TraceEncoder,
    FRAME_MAGIC,
};
use primecache_workloads::STREAM_CHUNK;

use crate::text::{TextError, TextEvents};

/// Magic prefix of the legacy flat dump format (`pcache trace`'s
/// original output).
const FLAT_MAGIC: &[u8; 4] = b"PCT1";

/// Which on-disk shape an import consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// Line-oriented text (TRACE_FORMAT.md §text grammar).
    Text,
    /// A `PCTE` v1 frame (TRACE_FORMAT.md §wire format).
    Pcte,
    /// The legacy flat `PCT1` dump, re-encoded on import.
    Pct1,
}

impl std::fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SourceFormat::Text => "text",
            SourceFormat::Pcte => "pcte",
            SourceFormat::Pct1 => "pct1",
        })
    }
}

/// Why an import failed. Each variant keeps the precise location its
/// source format can offer: text errors carry line numbers, frame
/// errors carry byte offsets.
#[derive(Debug)]
pub enum ImportError {
    /// The text grammar was violated.
    Text(TextError),
    /// A `PCTE` frame failed validation.
    Frame(FrameError),
    /// A legacy `PCT1` dump failed to decode.
    Flat(TraceCodecError),
    /// The source could not be read at all.
    Io(std::io::Error),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Text(e) => write!(f, "text trace: {e}"),
            ImportError::Frame(e) => write!(f, "PCTE frame: {e}"),
            ImportError::Flat(e) => write!(f, "PCT1 trace: {e}"),
            ImportError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Text(e) => Some(e),
            ImportError::Frame(e) => Some(e),
            ImportError::Flat(e) => Some(e),
            ImportError::Io(e) => Some(e),
        }
    }
}

/// Provenance of one import: what was read and what it contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportStats {
    /// The source shape that was sniffed.
    pub format: SourceFormat,
    /// Text only: total lines consumed (0 for binary sources).
    pub lines: u64,
    /// Text only: blank/comment lines among them.
    pub silent_lines: u64,
    /// Events imported.
    pub events: u64,
    /// Loads imported.
    pub loads: u64,
    /// Stores imported.
    pub stores: u64,
    /// Branches imported.
    pub branches: u64,
    /// Instructions across all events ([`Event::instructions`]).
    pub instructions: u64,
    /// Smallest and largest memory address touched, when any memory
    /// event exists.
    pub addr_range: Option<(u64, u64)>,
}

impl ImportStats {
    fn new(format: SourceFormat) -> Self {
        Self {
            format,
            lines: 0,
            silent_lines: 0,
            events: 0,
            loads: 0,
            stores: 0,
            branches: 0,
            instructions: 0,
            addr_range: None,
        }
    }

    /// Memory references (loads + stores).
    #[must_use]
    pub fn refs(&self) -> u64 {
        self.loads + self.stores
    }

    fn count(&mut self, ev: Event) {
        self.events += 1;
        self.instructions += ev.instructions();
        match ev {
            Event::Load { .. } => self.loads += 1,
            Event::Store { .. } => self.stores += 1,
            Event::Branch { .. } => self.branches += 1,
            Event::Work(_) | Event::FpWork(_) => {}
        }
        if let Some(addr) = ev.addr() {
            self.addr_range = Some(match self.addr_range {
                None => (addr, addr),
                Some((lo, hi)) => (lo.min(addr), hi.max(addr)),
            });
        }
    }
}

/// A fully validated import: the converted trace plus its provenance.
///
/// The trace is in the same [`EncodedTrace`] form a recorded workload
/// produces — same chunk cadence, same framing — so everything
/// downstream (replay drivers, sweeps, tenant mixes, `to_bytes`
/// export) treats imported and generated traces identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Imported {
    /// The validated, converted trace.
    pub trace: EncodedTrace,
    /// What the source contained.
    pub stats: ImportStats,
}

impl Imported {
    /// An `EventChunks` cursor over the imported trace, ready for the
    /// unchanged batched drivers (`run_replay` / `run_chunks`).
    /// Validation already happened at import, so replay cannot fail.
    #[must_use]
    pub fn chunks(&self) -> ReplayCursor<'_> {
        self.trace.replay()
    }
}

/// Imports a text trace from a buffered reader, streaming: lines are
/// parsed and delta/varint-encoded as they arrive; only the compact
/// encoding accumulates.
///
/// # Errors
///
/// The first [`TextError`] (with its line number), or the reader's I/O
/// failure.
fn import_text<R: BufRead>(reader: R) -> Result<Imported, ImportError> {
    let mut src = TextEvents::new(reader);
    let mut enc = TraceEncoder::new(STREAM_CHUNK);
    let mut stats = ImportStats::new(SourceFormat::Text);
    for ev in &mut src {
        let ev = ev.map_err(ImportError::Text)?;
        stats.count(ev);
        enc.push(ev);
    }
    stats.lines = src.lines();
    stats.silent_lines = src.silent_lines();
    Ok(Imported {
        trace: enc.finish(),
        stats,
    })
}

/// Provenance stats of an already-validated binary trace.
fn binary_stats(trace: &EncodedTrace, format: SourceFormat) -> ImportStats {
    let mut stats = ImportStats::new(format);
    for ev in trace.replay() {
        stats.count(ev);
    }
    stats
}

/// Imports a trace from bytes, sniffing the format by magic: `PCTE`
/// frames and legacy `PCT1` dumps by their 4-byte prefix, anything else
/// parsed as text.
///
/// # Errors
///
/// [`ImportError`] with the source format's most precise location: byte
/// offsets for `PCTE`, line numbers for text.
pub fn import_bytes(data: &[u8]) -> Result<Imported, ImportError> {
    if data.starts_with(FRAME_MAGIC) {
        let trace = EncodedTrace::from_bytes_diagnose(data).map_err(ImportError::Frame)?;
        let stats = binary_stats(&trace, SourceFormat::Pcte);
        Ok(Imported { trace, stats })
    } else if data.starts_with(FLAT_MAGIC) {
        let events = read_trace(data).map_err(ImportError::Flat)?;
        let trace = EncodedTrace::encode(&events, STREAM_CHUNK);
        let stats = binary_stats(&trace, SourceFormat::Pct1);
        Ok(Imported { trace, stats })
    } else {
        import_text(data)
    }
}

/// Imports a trace file ([`import_bytes`] semantics). Binary formats
/// are read whole (they are decoded in place); text streams through a
/// buffered reader without ever materializing the decoded events.
///
/// # Errors
///
/// [`ImportError::Io`] when the file cannot be opened or read, else as
/// [`import_bytes`].
pub fn import_path<P: AsRef<Path>>(path: P) -> Result<Imported, ImportError> {
    let file = std::fs::File::open(path).map_err(ImportError::Io)?;
    let mut reader = std::io::BufReader::new(file);
    let head = reader.fill_buf().map_err(ImportError::Io)?;
    if head.starts_with(FRAME_MAGIC) || head.starts_with(FLAT_MAGIC) {
        let mut data = Vec::new();
        reader.read_to_end(&mut data).map_err(ImportError::Io)?;
        import_bytes(&data)
    } else {
        import_text(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_trace::write_trace;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::load(0x1a40),
            Event::Work(3),
            Event::chase(0x2000),
            Event::FpWork(2),
            Event::Branch { mispredict: true },
            Event::Store { addr: 0x1a80 },
        ]
    }

    #[test]
    fn text_import_counts_provenance() {
        let mut buf = Vec::new();
        crate::text::write_text(sample_events(), &mut buf).unwrap();
        let imported = import_bytes(&buf).unwrap();
        assert_eq!(imported.stats.format, SourceFormat::Text);
        assert_eq!(imported.stats.events, 6);
        assert_eq!(imported.stats.loads, 2);
        assert_eq!(imported.stats.stores, 1);
        assert_eq!(imported.stats.branches, 1);
        assert_eq!(imported.stats.refs(), 3);
        assert_eq!(imported.stats.instructions, 3 + 2 + 1 + 3);
        assert_eq!(imported.stats.addr_range, Some((0x1a40, 0x2000)));
        assert_eq!(imported.stats.lines, 7); // header comment + 6 events
        assert_eq!(imported.stats.silent_lines, 1);
        assert_eq!(imported.trace.decode_all().unwrap(), sample_events());
    }

    #[test]
    fn pcte_import_round_trips_bit_exactly() {
        let trace = EncodedTrace::encode(&sample_events(), STREAM_CHUNK);
        let imported = import_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(imported.stats.format, SourceFormat::Pcte);
        assert_eq!(imported.trace, trace);
        assert_eq!(imported.trace.fingerprint(), trace.fingerprint());
        assert_eq!(imported.stats.events, 6);
        assert_eq!(imported.stats.lines, 0);
    }

    #[test]
    fn text_reencode_matches_the_recorded_frame() {
        // Export → import must reproduce the original encoding exactly,
        // chunk cadence included — the fingerprint is the witness.
        let trace = EncodedTrace::encode(&sample_events(), STREAM_CHUNK);
        let mut text = Vec::new();
        crate::text::write_text(trace.replay(), &mut text).unwrap();
        let imported = import_bytes(&text).unwrap();
        assert_eq!(imported.trace, trace);
        assert_eq!(imported.trace.fingerprint(), trace.fingerprint());
        assert_eq!(imported.trace.to_bytes(), trace.to_bytes());
    }

    #[test]
    fn legacy_flat_dump_accepted() {
        let bytes = write_trace(&sample_events());
        let imported = import_bytes(&bytes).unwrap();
        assert_eq!(imported.stats.format, SourceFormat::Pct1);
        assert_eq!(imported.trace.decode_all().unwrap(), sample_events());
    }

    #[test]
    fn corrupt_pcte_reports_byte_offset() {
        let trace = EncodedTrace::encode(&sample_events(), 4);
        let mut bytes = trace.to_bytes();
        bytes[48] = 0x07; // first event tag → invalid kind
        let err = import_bytes(&bytes).unwrap_err();
        let ImportError::Frame(frame) = err else {
            panic!("expected a frame error");
        };
        assert_eq!(frame.offset, 48);
    }

    #[test]
    fn malformed_text_reports_line() {
        let err = import_bytes(b"L 40\nQ 80\n").unwrap_err();
        let ImportError::Text(text) = err else {
            panic!("expected a text error");
        };
        assert_eq!(text.line, 2);
        assert!(import_bytes(b"L 40\nQ 80\n")
            .unwrap_err()
            .to_string()
            .contains("line 2"));
    }

    #[test]
    fn import_path_streams_text_and_loads_binary() {
        let dir = std::env::temp_dir().join(format!("primecache-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.trace");
        let mut text = Vec::new();
        crate::text::write_text(sample_events(), &mut text).unwrap();
        std::fs::write(&text_path, &text).unwrap();
        let via_file = import_path(&text_path).unwrap();
        assert_eq!(via_file, import_bytes(&text).unwrap());

        let pcte_path = dir.join("t.pcte");
        std::fs::write(&pcte_path, via_file.trace.to_bytes()).unwrap();
        let reloaded = import_path(&pcte_path).unwrap();
        assert_eq!(reloaded.trace, via_file.trace);

        assert!(matches!(
            import_path(dir.join("missing.trace")).unwrap_err(),
            ImportError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_input_is_an_empty_text_trace() {
        let imported = import_bytes(b"").unwrap();
        assert_eq!(imported.stats.format, SourceFormat::Text);
        assert_eq!(imported.trace.events(), 0);
    }
}
