//! External trace ingestion: parse foreign trace files into the
//! workspace's recorded-trace format.
//!
//! Two input shapes, one output (`TRACE_FORMAT.md` is the normative
//! spec for both):
//!
//! * **Line-oriented text** — a cachegrind/ChampSim-style subset
//!   (`I addr`, `L addr`, `S addr`, `W n`, plus `F n` and `B` so the
//!   format is lossless for this simulator's own events), parsed
//!   streaming with line-precise errors ([`text`]).
//! * **`PCTE` binary frames** — the recorded-trace wire format of
//!   [`primecache_trace::EncodedTrace::to_bytes`], loaded with
//!   byte-offset-precise errors
//!   ([`primecache_trace::EncodedTrace::from_bytes_diagnose`]). The
//!   legacy flat `PCT1` dump format is accepted too and re-encoded.
//!
//! Ingestion follows the validate-then-replay idiom of the trace codec:
//! an [`Imported`] trace only exists fully validated, and
//! [`Imported::chunks`] then hands the unchanged simulation drivers a
//! panic-free [`primecache_trace::ReplayCursor`] (an `EventChunks`
//! implementation). Text parsing itself is streaming — O(1) memory in
//! decoded events; only the compact delta/varint encoding (≲5 bytes per
//! event) accumulates. Re-encoding cuts chunks at the recording cadence
//! ([`primecache_workloads::STREAM_CHUNK`]), so importing a text export
//! of a recorded trace reproduces the recorded frame **byte-for-byte**
//! (same fingerprint) — pinned by `tests/ingest_equivalence.rs` and
//! `ci/ingest_smoke.sh`.
//!
//! # Examples
//!
//! ```
//! use primecache_ingest::{import_bytes, SourceFormat};
//!
//! let imported = import_bytes(b"# two loads and a store\nL 0x1a40\nW 3\nS 1a80,8\n").unwrap();
//! assert_eq!(imported.stats.format, SourceFormat::Text);
//! assert_eq!(imported.trace.refs(), 2);
//! assert_eq!(imported.trace.events(), 3);
//! ```

mod import;
pub mod text;

pub use import::{import_bytes, import_path, ImportError, ImportStats, Imported, SourceFormat};
pub use text::{TextError, TextErrorKind, TextEvents, MAX_LINE_BYTES};
