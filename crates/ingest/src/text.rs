//! The line-oriented text trace grammar: parser, formatter, and
//! streaming reader.
//!
//! One record per line (full grammar, error classes, and examples in
//! `TRACE_FORMAT.md`):
//!
//! | line | event |
//! |---|---|
//! | `I addr` | instruction fetch → `Work(1)` (no I-cache is modelled; the address is validated, then dropped) |
//! | `L addr` / `L addr d` | `Load { dep: false / true }` |
//! | `S addr` | `Store` |
//! | `W n` / `F n` | `Work(n)` / `FpWork(n)` |
//! | `B` / `B m` | `Branch { mispredict: false / true }` |
//!
//! Addresses are hexadecimal (optional `0x` prefix, optional
//! cachegrind-style `,size` suffix — parsed, then ignored); counts are
//! decimal. `#` starts a comment; blank lines are skipped. Every error
//! carries the 1-based line number it occurred on.

use primecache_trace::Event;

/// Longest accepted line, in bytes (excluding the newline). Lines past
/// this are rejected as [`TextErrorKind::LineTooLong`] without being
/// buffered, so a malformed gigabyte-long "line" cannot balloon memory.
pub const MAX_LINE_BYTES: usize = 4096;

/// What went wrong on a line. The variants are the normative error
/// classes of `TRACE_FORMAT.md` §text-grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextErrorKind {
    /// The line exceeds [`MAX_LINE_BYTES`] (payload: bytes seen before
    /// giving up).
    LineTooLong(usize),
    /// The line is not valid UTF-8.
    NotUtf8,
    /// The first field is not one of `I L S W F B`.
    UnknownTag(String),
    /// A required field is absent (payload: what was expected).
    MissingField(&'static str),
    /// An address field did not parse as hexadecimal (with optional
    /// `0x` prefix and `,size` suffix).
    BadAddress(String),
    /// A count field did not parse as a decimal `u32`.
    BadCount(String),
    /// The optional marker field was not `d` (dependent load) or `m`
    /// (mispredicted branch).
    BadMarker(String),
    /// Extra field after a complete record.
    TrailingField(String),
    /// The underlying reader failed (payload: the I/O error text).
    Io(String),
}

impl std::fmt::Display for TextErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextErrorKind::LineTooLong(n) => {
                write!(f, "line exceeds {MAX_LINE_BYTES} bytes ({n}+ read)")
            }
            TextErrorKind::NotUtf8 => write!(f, "line is not valid UTF-8"),
            TextErrorKind::UnknownTag(t) => {
                write!(f, "unknown record tag `{t}` (expected I, L, S, W, F, or B)")
            }
            TextErrorKind::MissingField(what) => write!(f, "missing {what} field"),
            TextErrorKind::BadAddress(t) => write!(f, "bad hexadecimal address `{t}`"),
            TextErrorKind::BadCount(t) => write!(f, "bad decimal count `{t}`"),
            TextErrorKind::BadMarker(t) => {
                write!(f, "bad marker `{t}` (expected `d` on L or `m` on B)")
            }
            TextErrorKind::TrailingField(t) => write!(f, "trailing field `{t}`"),
            TextErrorKind::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

/// A text-import failure located at a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line the error occurred on.
    pub line: u64,
    /// The error class.
    pub kind: TextErrorKind,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for TextError {}

/// Parses an address token: hex digits with optional `0x`/`0X` prefix
/// and optional `,size` decimal suffix (accepted for cachegrind
/// compatibility, then discarded — the simulator derives line-sized
/// blocks from the address alone).
fn parse_addr(token: &str) -> Result<u64, TextErrorKind> {
    let bad = || TextErrorKind::BadAddress(token.to_string());
    let (addr, size) = match token.split_once(',') {
        Some((a, s)) => (a, Some(s)),
        None => (token, None),
    };
    if let Some(size) = size {
        if size.is_empty() || !size.bytes().all(|b| b.is_ascii_digit()) {
            return Err(bad());
        }
    }
    let digits = addr
        .strip_prefix("0x")
        .or_else(|| addr.strip_prefix("0X"))
        .unwrap_or(addr);
    if digits.is_empty() {
        return Err(bad());
    }
    u64::from_str_radix(digits, 16).map_err(|_| bad())
}

/// Parses a decimal `u32` count token.
fn parse_count(token: &str) -> Result<u32, TextErrorKind> {
    token
        .parse::<u32>()
        .map_err(|_| TextErrorKind::BadCount(token.to_string()))
}

/// Parses one line. `Ok(None)` means the line carries no event (blank,
/// or comment-only). The `#` comment strip happens here, so trailing
/// comments after a record are legal.
pub fn parse_line(line: &str) -> Result<Option<Event>, TextErrorKind> {
    let line = line.split_once('#').map_or(line, |(pre, _)| pre);
    let mut fields = line.split_ascii_whitespace();
    let Some(tag) = fields.next() else {
        return Ok(None);
    };
    let addr_field =
        |fields: &mut std::str::SplitAsciiWhitespace<'_>| -> Result<u64, TextErrorKind> {
            parse_addr(
                fields
                    .next()
                    .ok_or(TextErrorKind::MissingField("address"))?,
            )
        };
    let event = match tag {
        // Instruction fetch: one instruction of pipeline work. The
        // machine models no instruction cache (see TRACE_FORMAT.md),
        // so the address is validated and then dropped.
        "I" => {
            let _ = addr_field(&mut fields)?;
            Event::Work(1)
        }
        "L" => {
            let addr = addr_field(&mut fields)?;
            let dep = match fields.next() {
                None => false,
                Some("d") => true,
                Some(other) => return Err(TextErrorKind::BadMarker(other.to_string())),
            };
            Event::Load { addr, dep }
        }
        "S" => Event::Store {
            addr: addr_field(&mut fields)?,
        },
        "W" => Event::Work(parse_count(
            fields.next().ok_or(TextErrorKind::MissingField("count"))?,
        )?),
        "F" => Event::FpWork(parse_count(
            fields.next().ok_or(TextErrorKind::MissingField("count"))?,
        )?),
        "B" => Event::Branch {
            mispredict: match fields.next() {
                None => false,
                Some("m") => true,
                Some(other) => return Err(TextErrorKind::BadMarker(other.to_string())),
            },
        },
        other => return Err(TextErrorKind::UnknownTag(other.to_string())),
    };
    if let Some(extra) = fields.next() {
        return Err(TextErrorKind::TrailingField(extra.to_string()));
    }
    Ok(Some(event))
}

/// Formats one event as its canonical text line (no trailing newline).
/// Total inverse of [`parse_line`]: `parse_line(&format_event(ev)) ==
/// Ok(Some(ev))` for every event — the `ingest/text-roundtrip`
/// differential unit in `primecache-check` proves it on adversarial
/// streams.
#[must_use]
pub fn format_event(ev: Event) -> String {
    match ev {
        Event::Work(n) => format!("W {n}"),
        Event::FpWork(n) => format!("F {n}"),
        Event::Branch { mispredict: false } => "B".to_string(),
        Event::Branch { mispredict: true } => "B m".to_string(),
        Event::Load { addr, dep: false } => format!("L {addr:#x}"),
        Event::Load { addr, dep: true } => format!("L {addr:#x} d"),
        Event::Store { addr } => format!("S {addr:#x}"),
    }
}

/// Writes `events` as a text trace (one canonical line per event,
/// preceded by a comment header). The output re-imports losslessly.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_text<W: std::io::Write, I: IntoIterator<Item = Event>>(
    events: I,
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "# primecache text trace (see TRACE_FORMAT.md)")?;
    for ev in events {
        writeln!(w, "{}", format_event(ev))?;
    }
    Ok(())
}

/// Streaming line-by-line event reader: an iterator of
/// `Result<Event, TextError>` over any `BufRead` source. Stops at the
/// first error (the error is yielded once, then the iterator ends).
#[derive(Debug)]
pub struct TextEvents<R> {
    reader: R,
    buf: Vec<u8>,
    line: u64,
    event_lines: u64,
    done: bool,
}

impl<R: std::io::BufRead> TextEvents<R> {
    /// Wraps a buffered reader positioned at the start of a text trace.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: Vec::with_capacity(128),
            line: 0,
            event_lines: 0,
            done: false,
        }
    }

    /// Lines consumed so far (including blank and comment lines).
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.line
    }

    /// Lines that carried no event (blank or comment-only).
    #[must_use]
    pub fn silent_lines(&self) -> u64 {
        self.line - self.event_lines
    }

    /// Reads the next line into `self.buf`, enforcing the length cap.
    /// Returns `Ok(false)` at EOF.
    fn fill_line(&mut self) -> Result<bool, TextErrorKind> {
        use std::io::{BufRead as _, Read as _};
        self.buf.clear();
        // Cap + 2 budget: a line of exactly MAX_LINE_BYTES plus its
        // newline still fits; anything longer trips the check below
        // without buffering the rest of the oversized line.
        let budget = (MAX_LINE_BYTES + 2) as u64;
        let n = self
            .reader
            .by_ref()
            .take(budget)
            .read_until(b'\n', &mut self.buf)
            .map_err(|e| TextErrorKind::Io(e.to_string()))?;
        if n == 0 {
            return Ok(false);
        }
        if self.buf.last() == Some(&b'\n') {
            self.buf.pop();
            if self.buf.last() == Some(&b'\r') {
                self.buf.pop();
            }
        }
        if self.buf.len() > MAX_LINE_BYTES {
            return Err(TextErrorKind::LineTooLong(self.buf.len()));
        }
        Ok(true)
    }
}

impl<R: std::io::BufRead> Iterator for TextEvents<R> {
    type Item = Result<Event, TextError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.line += 1;
            let fail = |line: u64, kind| Some(Err(TextError { line, kind }));
            match self.fill_line() {
                Err(kind) => {
                    self.done = true;
                    return fail(self.line, kind);
                }
                Ok(false) => {
                    self.line -= 1; // nothing was read
                    self.done = true;
                    return None;
                }
                Ok(true) => {}
            }
            let Ok(text) = std::str::from_utf8(&self.buf) else {
                self.done = true;
                return fail(self.line, TextErrorKind::NotUtf8);
            };
            match parse_line(text) {
                Ok(None) => {}
                Ok(Some(ev)) => {
                    self.event_lines += 1;
                    return Some(Ok(ev));
                }
                Err(kind) => {
                    self.done = true;
                    return fail(self.line, kind);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_accepts_the_documented_forms() {
        for (line, want) in [
            ("I 0x4006f0", Event::Work(1)),
            ("L 1a40", Event::load(0x1a40)),
            ("L 0x1a40,8", Event::load(0x1a40)),
            ("L 1a40 d", Event::chase(0x1a40)),
            ("S 0X2000", Event::Store { addr: 0x2000 }),
            ("W 12", Event::Work(12)),
            ("W 0", Event::Work(0)),
            ("F 4", Event::FpWork(4)),
            ("B", Event::Branch { mispredict: false }),
            ("B m", Event::Branch { mispredict: true }),
            ("  L 40  # trailing comment", Event::load(0x40)),
        ] {
            assert_eq!(parse_line(line), Ok(Some(want)), "{line:?}");
        }
        for silent in ["", "   ", "# whole-line comment", "\t"] {
            assert_eq!(parse_line(silent), Ok(None), "{silent:?}");
        }
    }

    #[test]
    fn grammar_rejects_each_error_class() {
        use TextErrorKind as K;
        for (line, want) in [
            ("X 123", K::UnknownTag("X".into())),
            ("L", K::MissingField("address")),
            ("W", K::MissingField("count")),
            ("L zz", K::BadAddress("zz".into())),
            ("L 0x", K::BadAddress("0x".into())),
            ("L 40,xy", K::BadAddress("40,xy".into())),
            (
                "L 10000000000000000",
                K::BadAddress("10000000000000000".into()),
            ),
            ("W 1f", K::BadCount("1f".into())),
            ("W 4294967296", K::BadCount("4294967296".into())),
            ("W -3", K::BadCount("-3".into())),
            ("L 40 x", K::BadMarker("x".into())),
            ("B d", K::BadMarker("d".into())),
            ("S 40 d", K::TrailingField("d".into())),
            ("L 40 d d", K::TrailingField("d".into())),
            ("B m 7", K::TrailingField("7".into())),
        ] {
            assert_eq!(parse_line(line), Err(want), "{line:?}");
        }
    }

    #[test]
    fn format_parse_round_trip() {
        for ev in [
            Event::Work(0),
            Event::Work(1),
            Event::Work(u32::MAX),
            Event::FpWork(7),
            Event::Branch { mispredict: false },
            Event::Branch { mispredict: true },
            Event::load(0),
            Event::chase(u64::MAX),
            Event::Store { addr: 0xDEAD_BEEF },
        ] {
            assert_eq!(parse_line(&format_event(ev)), Ok(Some(ev)), "{ev:?}");
        }
    }

    #[test]
    fn reader_streams_events_with_line_numbers() {
        let src = "# header\nL 40\n\nS 80\nW 3\n";
        let events: Vec<_> = TextEvents::new(src.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(
            events,
            vec![
                Event::load(0x40),
                Event::Store { addr: 0x80 },
                Event::Work(3)
            ]
        );
        let mut reader = TextEvents::new(src.as_bytes());
        assert_eq!(reader.by_ref().count(), 3);
        assert_eq!(reader.lines(), 5);
        assert_eq!(reader.silent_lines(), 2);
    }

    #[test]
    fn reader_reports_the_failing_line_and_stops() {
        let src = "L 40\nL 80\nbogus line\nL c0\n";
        let mut reader = TextEvents::new(src.as_bytes());
        assert_eq!(reader.next(), Some(Ok(Event::load(0x40))));
        assert_eq!(reader.next(), Some(Ok(Event::load(0x80))));
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.kind, TextErrorKind::UnknownTag("bogus".into()));
        assert!(err.to_string().starts_with("line 3:"));
        assert_eq!(reader.next(), None, "errors end the stream");
    }

    #[test]
    fn overlong_line_rejected_without_buffering_it() {
        let mut src = b"L 40\n".to_vec();
        src.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 100));
        let mut reader = TextEvents::new(&src[..]);
        assert_eq!(reader.next(), Some(Ok(Event::load(0x40))));
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, TextErrorKind::LineTooLong(_)));
        // The cap bounds what was read: budget, not the whole line.
        if let TextErrorKind::LineTooLong(n) = err.kind {
            assert!(n <= MAX_LINE_BYTES + 2, "buffered {n} bytes");
        }
    }

    #[test]
    fn max_length_line_is_accepted() {
        // "W 7" padded with trailing spaces to exactly MAX_LINE_BYTES.
        let mut line = "W 7".to_string();
        line.push_str(&" ".repeat(MAX_LINE_BYTES - line.len()));
        let src = format!("{line}\nL 40\n");
        let events: Vec<_> = TextEvents::new(src.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(events, vec![Event::Work(7), Event::load(0x40)]);
    }

    #[test]
    fn non_utf8_line_rejected() {
        let src = b"L 40\n\xFF\xFE bogus\n";
        let mut reader = TextEvents::new(&src[..]);
        assert_eq!(reader.next(), Some(Ok(Event::load(0x40))));
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.kind, TextErrorKind::NotUtf8);
    }

    #[test]
    fn missing_final_newline_still_parses() {
        let events: Vec<_> = TextEvents::new(&b"L 40\nS 80"[..])
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(events, vec![Event::load(0x40), Event::Store { addr: 0x80 }]);
    }
}
