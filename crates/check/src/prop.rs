//! A small, dependency-free property-testing harness.
//!
//! The registry mirror is unreachable from some build environments, so the
//! workspace cannot depend on `proptest`. This module supplies the subset
//! the test suites need: a deterministic generator RNG, `forall`-style
//! drivers, and greedy shrinking of failing inputs.
//!
//! Properties *panic* to signal failure (plain `assert!`/`assert_eq!`), and
//! the driver catches the unwind, shrinks the input while the panic
//! persists, and re-raises with the minimal counterexample attached.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// SplitMix64: tiny, fast, and statistically solid for test generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test generation (span << 2^64).
        lo + (((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A `Vec` of `len in [min_len, max_len)` elements drawn from `gen`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(min_len, max_len);
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Types that can propose strictly "smaller" variants of themselves.
///
/// Shrinking is greedy: the driver re-runs the property on each candidate
/// and recurses on the first one that still fails.
pub trait Shrink: Sized {
    /// Candidate smaller values, most aggressive first.
    fn shrink(&self) -> Vec<Self>;
}

impl Shrink for u64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self > 0 {
            out.push(0);
            out.push(self / 2);
            out.push(self - 1);
        }
        out.dedup();
        out
    }
}

impl Shrink for u32 {
    fn shrink(&self) -> Vec<Self> {
        u64::from(*self)
            .shrink()
            .into_iter()
            .map(|v| v as u32)
            .collect()
    }
}

impl Shrink for usize {
    fn shrink(&self) -> Vec<Self> {
        (*self as u64)
            .shrink()
            .into_iter()
            .map(|v| v as usize)
            .collect()
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        if *self != 0.0 {
            vec![0.0, self / 2.0]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Drop halves, then drop single elements, then shrink elements.
        out.push(self[..n / 2].to_vec());
        out.push(self[n / 2..].to_vec());
        if n <= 16 {
            for i in 0..n {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
            for (i, item) in self.iter().enumerate() {
                for smaller in item.shrink() {
                    let mut v = self.clone();
                    v[i] = smaller;
                    out.push(v);
                }
            }
        } else {
            let mut v = self.clone();
            v.pop();
            out.push(v);
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone(), self.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink()
                .into_iter()
                .map(|b| (self.0.clone(), b, self.2.clone())),
        );
        out.extend(
            self.2
                .shrink()
                .into_iter()
                .map(|c| (self.0.clone(), self.1.clone(), c)),
        );
        out
    }
}

/// Outcome of a [`forall`] run: the number of cases that passed, or the
/// shrunk counterexample plus the panic message it produces.
#[derive(Debug)]
pub struct Failure<T> {
    /// The (shrunk) failing input.
    pub input: T,
    /// The panic payload the input produces, as text.
    pub message: String,
    /// How many shrink steps were applied to reach `input`.
    pub shrink_steps: usize,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

thread_local! {
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent while the
/// current thread is probing a property. Tests run concurrently, so the
/// hook must never be swapped per-call.
fn install_quiet_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

fn run_quiet<T, P: Fn(&T)>(prop: &P, input: &T) -> Result<(), String> {
    // Suppress the default panic report while probing: shrinking
    // intentionally triggers the panic many times.
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| prop(input)));
    QUIET.with(|q| q.set(false));
    result.map_err(|e| panic_message(&*e))
}

/// Runs `prop` on `cases` inputs drawn from `gen`, shrinking any failure.
///
/// Returns `Ok(cases)` if every case passes, otherwise `Err` with the
/// minimal failing input found. Deterministic for a given `seed`.
pub fn forall_result<T, G, P>(
    seed: u64,
    cases: usize,
    mut gen: G,
    prop: P,
) -> Result<usize, Failure<T>>
where
    T: Shrink + Clone + std::fmt::Debug,
    G: FnMut(&mut Rng) -> T,
    P: Fn(&T),
{
    let mut rng = Rng::new(seed);
    for _ in 0..cases {
        let input = gen(&mut rng);
        if let Err(first_msg) = run_quiet(&prop, &input) {
            // Greedy shrink: walk to a locally minimal failing input.
            let mut best = input;
            let mut message = first_msg;
            let mut steps = 0usize;
            'outer: while steps < 1000 {
                for cand in best.shrink() {
                    if let Err(msg) = run_quiet(&prop, &cand) {
                        best = cand;
                        message = msg;
                        steps += 1;
                        continue 'outer;
                    }
                }
                break;
            }
            return Err(Failure {
                input: best,
                message,
                shrink_steps: steps,
            });
        }
    }
    Ok(cases)
}

/// Test-friendly wrapper around [`forall_result`]: panics with the shrunk
/// counterexample on failure.
pub fn forall<T, G, P>(name: &str, cases: usize, gen: G, prop: P)
where
    T: Shrink + Clone + std::fmt::Debug,
    G: FnMut(&mut Rng) -> T,
    P: Fn(&T),
{
    // Seed from the property name so distinct properties explore distinct
    // streams but each run is reproducible.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    if let Err(f) = forall_result(seed, cases, gen, prop) {
        panic!(
            "property '{name}' failed after {} shrink step(s)\n  input: {:?}\n  cause: {}",
            f.shrink_steps, f.input, f.message
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn passing_property_reports_case_count() {
        let n = forall_result(0, 50, |r| r.next_u64(), |_| {}).unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // "fails for any v >= 100" must shrink to exactly 100.
        let f = forall_result(
            0,
            1000,
            |r| r.range_u64(0, 10_000),
            |&v| assert!(v < 100, "too big: {v}"),
        )
        .unwrap_err();
        assert_eq!(f.input, 100);
        assert!(f.message.contains("too big"));
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        // Fails whenever the vec contains an odd number: minimal failing
        // input is a single odd element.
        let f = forall_result(
            3,
            200,
            |r| r.vec(0, 40, |r| r.range_u64(0, 100)),
            |v: &Vec<u64>| assert!(v.iter().all(|x| x % 2 == 0)),
        )
        .unwrap_err();
        assert_eq!(f.input.len(), 1);
        assert_eq!(f.input[0] % 2, 1);
    }
}
