//! Deliberately naive reference implementations ("oracles").
//!
//! Every function and model here recomputes a result the slow, obvious
//! way — plain `/` and `%` arithmetic, `u128` widening instead of wrapping
//! tricks, `Vec` scans instead of packed arrays — so that a bug in a fast
//! path (bit-field extraction, shift-add networks, slot arithmetic) cannot
//! hide in a matching bug here. The [battery](crate::battery) drives the
//! production implementations and these oracles over the same inputs and
//! asserts bit-exact agreement.

use std::collections::HashMap;

use primecache_mem::{Completion, DramMapping, MemConfig};

// ---------------------------------------------------------------------------
// Index-function oracles (crates/core/src/index).
//
// The production indexers carve bit fields with shifts and masks; the
// oracles below derive the same fields with division and remainder, which
// is correct for any power-of-two set count without sharing a single
// operator with the fast path.
// ---------------------------------------------------------------------------

/// Traditional indexing: the low index bits, i.e. `block mod n_set_phys`.
#[must_use]
pub fn ref_traditional(block: u64, n_set_phys: u64) -> u64 {
    block % n_set_phys
}

/// XOR indexing: `x ^ t1` with both fields derived by division.
#[must_use]
pub fn ref_xor(block: u64, n_set_phys: u64) -> u64 {
    let x = block % n_set_phys;
    let t1 = (block / n_set_phys) % n_set_phys;
    x ^ t1
}

/// Fully-folded XOR: fold every base-`n_set_phys` digit of the address.
#[must_use]
pub fn ref_xor_folded(block: u64, n_set_phys: u64) -> u64 {
    let mut h = 0u64;
    let mut v = block;
    while v != 0 {
        h ^= v % n_set_phys;
        v /= n_set_phys;
    }
    h
}

/// Prime modulo: `block mod prime` (the paper's headline function).
#[must_use]
pub fn ref_prime_modulo(block: u64, prime: u64) -> u64 {
    block % prime
}

/// Prime displacement (Eq. 6): `(p·T + x) mod n_set_phys`, computed in
/// `u128` so no wrapping behaviour of the fast path is replicated.
#[must_use]
pub fn ref_prime_displacement(block: u64, n_set_phys: u64, factor: u64) -> u64 {
    let t = u128::from(block / n_set_phys);
    let x = u128::from(block % n_set_phys);
    ((u128::from(factor) * t + x) % u128::from(n_set_phys)) as u64
}

/// Seznec skewing: `rotate(t1, bank) ^ x`, with the circular rotation done
/// arithmetically — rotating an `index_bits`-wide value left by one is
/// `(2v) mod n + (2v) div n` (the top bit wraps to the bottom).
#[must_use]
pub fn ref_skew_xor(block: u64, n_set_phys: u64, bank: u32) -> u64 {
    let x = block % n_set_phys;
    let mut t1 = (block / n_set_phys) % n_set_phys;
    let bits = n_set_phys.trailing_zeros();
    for _ in 0..(bank % bits) {
        let doubled = t1 * 2;
        t1 = doubled % n_set_phys + doubled / n_set_phys;
    }
    t1 ^ x
}

/// Mersenne fold: `a mod (2^k − 1)`, by a plain remainder.
#[must_use]
pub fn ref_mersenne(a: u64, k: u32) -> u64 {
    a % ((1u64 << k) - 1)
}

/// TLB-assisted indexing: the block address modulo the prime, from the
/// byte address.
#[must_use]
pub fn ref_tlb_index(byte_addr: u64, line_size: u64, prime: u64) -> u64 {
    (byte_addr / line_size) % prime
}

/// Subtract&select: `x mod n_set` when `x` is within the selector's reach
/// (`x div n_set < inputs`), `None` otherwise.
#[must_use]
pub fn ref_subtract_select(x: u64, n_set: u64, inputs: u32) -> Option<u64> {
    if x / n_set >= u64::from(inputs) {
        None
    } else {
        Some(x % n_set)
    }
}

// ---------------------------------------------------------------------------
// Set-associative cache oracle.
// ---------------------------------------------------------------------------

/// Replacement disciplines the textbook cache model understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OraclePolicy {
    /// Least-recently-used: evict the line touched longest ago.
    Lru,
    /// First-in first-out: evict the line filled longest ago.
    Fifo,
}

/// What one oracle access observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleAccess {
    /// Whether the block was resident.
    pub hit: bool,
    /// Block address of a dirty line evicted by this access, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct OracleLine {
    block: u64,
    dirty: bool,
}

/// A textbook set-associative cache: one `Vec` per set, ordered oldest →
/// newest, scanned linearly. Under LRU a hit moves the line to the back;
/// under FIFO the order is pure insertion order.
pub struct OracleCache {
    sets: Vec<Vec<OracleLine>>,
    assoc: usize,
    policy: OraclePolicy,
    index: Box<dyn Fn(u64) -> u64>,
}

impl OracleCache {
    /// Creates the model with `n_set` sets of `assoc` ways, using `index`
    /// to place blocks.
    #[must_use]
    pub fn new(
        n_set: usize,
        assoc: usize,
        policy: OraclePolicy,
        index: impl Fn(u64) -> u64 + 'static,
    ) -> Self {
        assert!(n_set > 0 && assoc > 0);
        Self {
            sets: vec![Vec::new(); n_set],
            assoc,
            policy,
            index: Box::new(index),
        }
    }

    /// Simulates one access to a block address.
    pub fn access_block(&mut self, block: u64, write: bool) -> OracleAccess {
        let set = &mut self.sets[(self.index)(block) as usize];
        if let Some(pos) = set.iter().position(|l| l.block == block) {
            let mut line = set.remove(pos);
            line.dirty |= write;
            match self.policy {
                // LRU: a hit makes the line the newest.
                OraclePolicy::Lru => set.push(line),
                // FIFO: a hit leaves the insertion order untouched.
                OraclePolicy::Fifo => set.insert(pos, line),
            }
            return OracleAccess {
                hit: true,
                writeback: None,
            };
        }
        let mut writeback = None;
        if set.len() == self.assoc {
            let evicted = set.remove(0);
            if evicted.dirty {
                writeback = Some(evicted.block);
            }
        }
        set.push(OracleLine {
            block,
            dirty: write,
        });
        OracleAccess {
            hit: false,
            writeback,
        }
    }

    /// Number of lines currently resident in set `set`.
    #[must_use]
    pub fn occupancy(&self, set: usize) -> usize {
        self.sets[set].len()
    }
}

// ---------------------------------------------------------------------------
// Skewed-associative cache oracle.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SkewLine {
    block: u64,
    dirty: bool,
    r: bool,
    w: bool,
}

/// A plain-structured skewed-associative cache: banks are separate
/// two-dimensional grids of `Option<line>` rather than one flat slab, and
/// the inter-bank ENRU/NRUNRW policy is restated from its §5.3 description
/// (invalid first, then the least-privileged usage class, round-robin
/// among ties, with aging once every candidate is referenced).
pub struct OracleSkewed {
    /// `banks[b][set][way]`.
    banks: Vec<Vec<Vec<Option<SkewLine>>>>,
    index_fns: Vec<Box<dyn Fn(u64) -> u64>>,
    /// `true` = NRUNRW (r and w bits), `false` = ENRU (r bit only).
    write_aware: bool,
    rr: u32,
}

impl OracleSkewed {
    /// Creates the model: one index function per bank, each bank holding
    /// `sets_per_bank × ways` lines.
    #[must_use]
    pub fn new(
        sets_per_bank: usize,
        ways: usize,
        write_aware: bool,
        index_fns: Vec<Box<dyn Fn(u64) -> u64>>,
    ) -> Self {
        assert!(!index_fns.is_empty() && sets_per_bank > 0 && ways > 0);
        Self {
            banks: vec![vec![vec![None; ways]; sets_per_bank]; index_fns.len()],
            index_fns,
            write_aware,
            rr: 0,
        }
    }

    fn class(&self, line: &SkewLine) -> u32 {
        if self.write_aware {
            (u32::from(line.r) << 1) | u32::from(line.w)
        } else {
            u32::from(line.r)
        }
    }

    /// The candidate (bank, set, way) coordinates of a block, in the same
    /// bank-major order the production cache scans.
    fn candidates(&self, block: u64) -> Vec<(usize, usize, usize)> {
        let ways = self.banks[0][0].len();
        let mut out = Vec::new();
        for (b, index) in self.index_fns.iter().enumerate() {
            let set = index(block) as usize;
            for way in 0..ways {
                out.push((b, set, way));
            }
        }
        out
    }

    fn line(&self, c: (usize, usize, usize)) -> &Option<SkewLine> {
        &self.banks[c.0][c.1][c.2]
    }

    /// Clears usage bits of every candidate except `keep` once all valid
    /// candidates are referenced (Seznec's aging).
    fn age(&mut self, cands: &[(usize, usize, usize)], keep: usize) {
        let saturated = cands.iter().all(|&c| self.line(c).is_none_or(|l| l.r));
        if saturated {
            for (i, &(b, s, w)) in cands.iter().enumerate() {
                if i != keep {
                    if let Some(l) = &mut self.banks[b][s][w] {
                        l.r = false;
                        l.w = false;
                    }
                }
            }
        }
    }

    /// Simulates one access to a block address.
    pub fn access_block(&mut self, block: u64, write: bool) -> OracleAccess {
        let cands = self.candidates(block);
        for (i, &(b, s, w)) in cands.iter().enumerate() {
            if let Some(l) = &mut self.banks[b][s][w] {
                if l.block == block {
                    l.r = true;
                    l.w |= write;
                    self.age(&cands, i);
                    return OracleAccess {
                        hit: true,
                        writeback: None,
                    };
                }
            }
        }
        // Miss: invalid slot first, else round-robin over the best class.
        let victim_i = match (0..cands.len()).find(|&i| self.line(cands[i]).is_none()) {
            Some(i) => i,
            None => {
                let best = cands
                    .iter()
                    .map(|&c| self.class(&self.line(c).expect("all valid")))
                    .min()
                    .expect("non-empty candidates");
                self.rr = self.rr.wrapping_add(1);
                let n = cands.len();
                let start = self.rr as usize % n;
                (0..n)
                    .map(|off| (start + off) % n)
                    .find(|&i| self.class(&self.line(cands[i]).expect("all valid")) == best)
                    .expect("best class present")
            }
        };
        let (b, s, w) = cands[victim_i];
        let writeback = self.banks[b][s][w].filter(|l| l.dirty).map(|l| l.block);
        self.banks[b][s][w] = Some(SkewLine {
            block,
            dirty: write,
            r: true,
            w: write,
        });
        self.age(&cands, victim_i);
        OracleAccess {
            hit: false,
            writeback,
        }
    }
}

// ---------------------------------------------------------------------------
// Victim-cache oracle.
// ---------------------------------------------------------------------------

/// What one victim-cache oracle access observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimAccess {
    /// Whether the access hit (main cache or victim buffer).
    pub hit: bool,
    /// Whether the hit was served by the victim buffer.
    pub from_buffer: bool,
    /// Dirty blocks pushed out of the buffer to memory by this access.
    pub writebacks: Vec<u64>,
}

/// A textbook victim cache: an [`OracleCache`] main array plus an ordered
/// buffer (front = oldest). Matching the production model, only dirty
/// evictions are parked, and a buffer hit removes the entry without
/// re-inserting the displaced main-cache line.
pub struct OracleVictim {
    main: OracleCache,
    buffer: Vec<(u64, bool)>,
    capacity: usize,
}

impl OracleVictim {
    /// Creates the model with `entries` buffer slots over a main cache.
    #[must_use]
    pub fn new(main: OracleCache, entries: usize) -> Self {
        assert!(entries > 0);
        Self {
            main,
            buffer: Vec::new(),
            capacity: entries,
        }
    }

    fn park(&mut self, block: u64, dirty: bool, spilled: &mut Vec<u64>) {
        if self.buffer.len() == self.capacity {
            let (old, was_dirty) = self.buffer.remove(0);
            if was_dirty {
                spilled.push(old);
            }
        }
        self.buffer.push((block, dirty));
    }

    /// Simulates one access to a block address.
    pub fn access_block(&mut self, block: u64, write: bool) -> VictimAccess {
        let mut writebacks = Vec::new();
        let main = self.main.access_block(block, write);
        if let Some(victim) = main.writeback {
            self.park(victim, true, &mut writebacks);
        }
        if main.hit {
            return VictimAccess {
                hit: true,
                from_buffer: false,
                writebacks,
            };
        }
        if let Some(pos) = self.buffer.iter().position(|&(b, _)| b == block) {
            self.buffer.remove(pos);
            return VictimAccess {
                hit: true,
                from_buffer: true,
                writebacks,
            };
        }
        VictimAccess {
            hit: false,
            from_buffer: false,
            writebacks,
        }
    }
}

// ---------------------------------------------------------------------------
// DRAM oracle.
// ---------------------------------------------------------------------------

/// A straight-line re-derivation of the event-driven DRAM model: the
/// address decomposition is restated digit-by-digit, and per-bank state
/// lives in `HashMap`s keyed by the decomposed coordinates instead of flat
/// pre-sized vectors.
pub struct OracleDram {
    cfg: MemConfig,
    /// Open row per (channel, bank-in-channel).
    open_rows: HashMap<(u64, u64), u64>,
    /// Cycle each (channel, bank-in-channel) becomes free.
    bank_free: HashMap<(u64, u64), u64>,
    /// Cycle each channel's bus becomes free.
    bus_free: HashMap<u64, u64>,
}

impl OracleDram {
    /// Creates the model for a memory configuration.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        Self {
            cfg,
            open_rows: HashMap::new(),
            bank_free: HashMap::new(),
            bus_free: HashMap::new(),
        }
    }

    /// Naive address decomposition into (channel, bank-in-channel, row):
    /// lines interleave across channels, rows across banks, with the
    /// optional permutation XOR restated from its description.
    fn map(&self, addr: u64) -> (u64, u64, u64) {
        let line = addr / self.cfg.line_bytes;
        let channel = line % u64::from(self.cfg.channels);
        let line_in_channel = line / u64::from(self.cfg.channels);
        let lines_per_row = self.cfg.row_bytes / self.cfg.line_bytes;
        let row_linear = line_in_channel / lines_per_row;
        let banks = u64::from(self.cfg.banks_per_channel);
        let mut bank = row_linear % banks;
        let row = row_linear / banks;
        if self.cfg.mapping == DramMapping::PermutationBased {
            bank ^= row % banks;
        }
        (channel, bank, row)
    }

    /// Simulates one request; returns what the production model's
    /// [`Completion`] must equal.
    pub fn request(&mut self, addr: u64, now: u64, _write: bool) -> Completion {
        let (channel, bank, row) = self.map(addr);
        let key = (channel, bank);
        let row_hit = self.open_rows.get(&key) == Some(&row);
        self.open_rows.insert(key, row);

        let service = if row_hit {
            self.cfg.row_hit_cycles
        } else {
            self.cfg.row_miss_cycles
        };
        let bank_busy = if row_hit {
            self.cfg.bank_busy_row_hit
        } else {
            self.cfg.bank_busy_row_miss
        };
        let bus_occ = self.cfg.bus_occupancy_cycles();
        let start = now.max(*self.bank_free.get(&key).unwrap_or(&0));
        let tentative = start + service;
        let data_start = tentative
            .saturating_sub(bus_occ)
            .max(*self.bus_free.get(&channel).unwrap_or(&0));
        let complete = data_start + bus_occ;
        self.bank_free.insert(key, start + bank_busy);
        self.bus_free.insert(channel, complete);
        Completion {
            complete,
            latency: complete - now,
            row_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_xor_matches_hand_example() {
        // 16 sets, stride 15 from 0: sets 0, 15, 15, 15 (paper §3.3).
        let sets: Vec<u64> = (0..4).map(|i| ref_xor(i * 15, 16)).collect();
        assert_eq!(sets, [0, 15, 15, 15]);
    }

    #[test]
    fn ref_skew_rotation_wraps_top_bit() {
        // 16 sets => 4 index bits. t1 = 0b1000 rotated left by 1 = 0b0001.
        // block = t1 << 4 (x = 0).
        assert_eq!(ref_skew_xor(0b1000 << 4, 16, 1), 0b0001);
        // bank 0 leaves t1 unrotated.
        assert_eq!(ref_skew_xor(0b1000 << 4, 16, 0), 0b1000);
    }

    #[test]
    fn ref_subtract_select_bounds() {
        assert_eq!(ref_subtract_select(2040, 2039, 2), Some(1));
        assert_eq!(ref_subtract_select(2 * 2039, 2039, 2), None);
    }

    #[test]
    fn oracle_cache_lru_evicts_least_recent() {
        let mut c = OracleCache::new(1, 2, OraclePolicy::Lru, |_| 0);
        assert!(!c.access_block(1, false).hit);
        assert!(!c.access_block(2, false).hit);
        assert!(c.access_block(1, false).hit); // 2 is now LRU
        let miss = c.access_block(3, false);
        assert!(!miss.hit);
        assert!(c.access_block(1, false).hit, "1 must survive");
        assert!(!c.access_block(2, false).hit, "2 must have been evicted");
    }

    #[test]
    fn oracle_cache_fifo_ignores_hits() {
        let mut c = OracleCache::new(1, 2, OraclePolicy::Fifo, |_| 0);
        c.access_block(1, false);
        c.access_block(2, false);
        assert!(c.access_block(1, false).hit);
        c.access_block(3, false); // evicts 1 (oldest insert) despite the hit
        assert!(!c.access_block(1, false).hit);
    }

    #[test]
    fn oracle_cache_reports_dirty_writebacks() {
        let mut c = OracleCache::new(1, 1, OraclePolicy::Lru, |_| 0);
        c.access_block(7, true);
        let out = c.access_block(8, false);
        assert_eq!(out.writeback, Some(7));
        let out = c.access_block(9, false);
        assert_eq!(out.writeback, None, "clean eviction is silent");
    }

    #[test]
    fn oracle_victim_parks_and_rescues() {
        let main = OracleCache::new(1, 1, OraclePolicy::Lru, |_| 0);
        let mut v = OracleVictim::new(main, 2);
        v.access_block(1, true);
        v.access_block(2, false); // evicts dirty 1 into the buffer
        let back = v.access_block(1, false);
        assert!(back.hit && back.from_buffer);
    }

    #[test]
    fn oracle_dram_first_touch_is_row_miss() {
        let mut d = OracleDram::new(MemConfig::paper_default());
        let c = d.request(0, 0, false);
        assert!(!c.row_hit);
        assert_eq!(c.latency, 243);
    }
}
