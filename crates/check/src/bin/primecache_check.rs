//! `primecache-check`: runs the full differential-oracle battery and
//! prints a pass/fail report.
//!
//! Every set-index function, hardware modulo unit, cache organization,
//! and the DRAM timing model is checked against a deliberately naive
//! reference implementation over randomized and adversarial strided
//! address streams. Any disagreement is shrunk to a minimal
//! counterexample and reported; the process exits nonzero.
//!
//! Usage: `primecache-check [--cases N] [--seed S]`
//! (default: 1,000,000 addresses/accesses per unit, seed 0).

use primecache_check::{run_battery, BatteryConfig};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1).and_then(|v| v.parse().ok()) {
        Some(v) => Some(v),
        None => {
            eprintln!("usage: primecache-check [--cases N] [--seed S]");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = BatteryConfig::default();
    if let Some(cases) = parse_flag::<usize>(&args, "--cases") {
        cfg.addrs_per_unit = cases;
    }
    if let Some(seed) = parse_flag::<u64>(&args, "--seed") {
        cfg.seed = seed;
    }

    println!(
        "primecache-check: differential-oracle battery \
         ({} cases/unit, seed {})\n",
        cfg.addrs_per_unit, cfg.seed
    );

    let start = std::time::Instant::now();
    let reports = run_battery(&cfg);
    let elapsed = start.elapsed();

    let width = reports.iter().map(|r| r.unit.len()).max().unwrap_or(0);
    let mut total_cases = 0usize;
    let mut failures = 0usize;
    for r in &reports {
        total_cases += r.cases;
        if r.passed {
            println!("  {:<width$}  ok    {:>9} cases", r.unit, r.cases);
        } else {
            failures += 1;
            println!(
                "  {:<width$}  FAIL  (shrunk {} steps)",
                r.unit, r.shrink_steps
            );
            if let Some(ce) = &r.counterexample {
                for line in ce.lines() {
                    println!("        {line}");
                }
            }
        }
    }

    println!(
        "\n{} units, {} cases, {} failure(s) in {:.1}s",
        reports.len(),
        total_cases,
        failures,
        elapsed.as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
