//! Differential-oracle and invariant-checking subsystem.
//!
//! The fast paths in this workspace — hardware modulo units, prime
//! index functions, skewed/victim caches — are exactly the kind of code
//! where a subtle modeling bug silently produces confidently wrong
//! figures. This crate pits every fast path against a deliberately naive
//! reference implementation over randomized and adversarial address
//! streams, and asserts bit-exact agreement.
//!
//! - [`prop`]: dependency-free property-testing harness with shrinking.
//! - [`oracle`]: naive reference implementations (plain `%` indexing,
//!   textbook LRU set-associative lookup, straight-line DRAM latency).
//! - [`battery`]: the differential battery run by the `primecache-check`
//!   binary and the crate tests.

pub mod battery;
pub mod oracle;
pub mod prop;

pub use battery::{run_battery, BatteryConfig, UnitReport};
