//! The differential-oracle battery.
//!
//! Each *unit* pits one fast path — an index function, a §3.1 hardware
//! modulo unit, or a cache organization — against its naive
//! [oracle](crate::oracle) over a mixed stream of randomized and
//! adversarial strided addresses, asserting bit-exact agreement. A
//! disagreement is shrunk to a minimal counterexample by the
//! [prop](crate::prop) harness before being reported.
//!
//! Run the full battery with the `primecache-check` binary, or call
//! [`run_battery`] directly (the crate's tests do, with a smaller budget).

use crate::oracle::{
    ref_mersenne, ref_prime_displacement, ref_prime_modulo, ref_skew_xor, ref_subtract_select,
    ref_tlb_index, ref_traditional, ref_xor, ref_xor_folded, OracleCache, OracleDram, OraclePolicy,
    OracleSkewed, OracleVictim,
};
use crate::prop::{forall_result, Rng, Shrink};

use primecache_cache::{
    Cache, CacheConfig, CacheSim, FullyAssociative, ReplacementKind, SkewHashKind, SkewReplacement,
    SkewedCache, SkewedConfig, VictimCache,
};
use primecache_core::hw::{
    mersenne_fold, IterativeLinear, Polynomial, SubtractSelect, TlbAssist, Wired2039,
};
use primecache_core::index::{
    FastMod, Geometry, HashKind, PrimeDisplacement, PrimeModulo, SetIndexer, SkewDispBank,
    SkewXorBank, XorFolded, SKEW_DISP_FACTORS,
};
use primecache_mem::{Dram, MemConfig};

/// Accesses per cache/DRAM stream case (the shrinkable unit of replay).
const STREAM_LEN: usize = 256;

/// Battery configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatteryConfig {
    /// Addresses (or cache accesses) checked per unit.
    pub addrs_per_unit: usize,
    /// Base seed mixed into every unit's generator stream.
    pub seed: u64,
}

impl Default for BatteryConfig {
    fn default() -> Self {
        Self {
            addrs_per_unit: 1_000_000,
            seed: 0,
        }
    }
}

/// Outcome of one differential unit.
#[derive(Debug, Clone)]
pub struct UnitReport {
    /// Unit name, e.g. `index/pMod` or `cache/skewed/SKW`.
    pub unit: String,
    /// Addresses or accesses checked (0 when the unit failed).
    pub cases: usize,
    /// Whether every case agreed with the oracle.
    pub passed: bool,
    /// Shrunk counterexample (input and panic message) on failure.
    pub counterexample: Option<String>,
    /// Shrink steps applied to reach the counterexample.
    pub shrink_steps: usize,
}

/// Derives a per-unit seed: deterministic per name, varied by the
/// configured base seed.
fn unit_seed(cfg: &BatteryConfig, name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    }) ^ cfg.seed
}

/// Runs one unit: `cases` inputs from `gen`, `prop` panicking on any
/// fast/oracle disagreement. `case_weight` scales the reported case count
/// (a stream case replays [`STREAM_LEN`] accesses).
fn run_unit<T, G, P>(
    cfg: &BatteryConfig,
    name: &str,
    cases: usize,
    case_weight: usize,
    gen: G,
    prop: P,
) -> UnitReport
where
    T: Shrink + Clone + std::fmt::Debug,
    G: FnMut(&mut Rng) -> T,
    P: Fn(&T),
{
    match forall_result(unit_seed(cfg, name), cases, gen, prop) {
        Ok(n) => UnitReport {
            unit: name.to_owned(),
            cases: n * case_weight,
            passed: true,
            counterexample: None,
            shrink_steps: 0,
        },
        Err(f) => UnitReport {
            unit: name.to_owned(),
            cases: 0,
            passed: false,
            counterexample: Some(format!("input {:?}: {}", f.input, f.message)),
            shrink_steps: f.shrink_steps,
        },
    }
}

/// Conflict-prone strides for a structure with `n_set` sets: the paper's
/// pathological cases (`n_set ± 1` for XOR, multiples of `n_set` for
/// traditional indexing) plus power-of-two strides.
fn adversarial_strides(n_set: u64) -> Vec<u64> {
    vec![
        1,
        2,
        3,
        n_set.saturating_sub(1).max(1),
        n_set,
        n_set + 1,
        2 * n_set,
        4 * n_set,
        1 << 12,
        1 << 16,
        1 << 20,
        7919, // a large odd prime, co-prime to every power-of-two geometry
    ]
}

/// One address: half the stream is uniform over `mask`, half walks an
/// adversarial stride from a random base.
fn gen_addr(rng: &mut Rng, mask: u64, strides: &[u64]) -> u64 {
    if rng.bool() {
        rng.next_u64() & mask
    } else {
        let stride = strides[rng.range_usize(0, strides.len())];
        let base = rng.next_u64() & mask;
        let i = rng.range_u64(0, 4096);
        base.wrapping_add(i.wrapping_mul(stride)) & mask
    }
}

// ---------------------------------------------------------------------------
// Scalar units: index functions and hardware modulo units.
// ---------------------------------------------------------------------------

fn scalar_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    let mut out = Vec::new();
    let n = cfg.addrs_per_unit;
    let geom = Geometry::new(2048);
    let full = u64::MAX;

    // The four single-function schemes, via the same construction path the
    // caches use (HashKind::build).
    for kind in HashKind::ALL {
        let idx = kind.build(geom);
        let strides = adversarial_strides(idx.n_set());
        let reference = move |a: u64| match kind {
            HashKind::Traditional => ref_traditional(a, 2048),
            HashKind::Xor => ref_xor(a, 2048),
            HashKind::PrimeModulo => ref_prime_modulo(a, 2039),
            HashKind::PrimeDisplacement => ref_prime_displacement(a, 2048, 9),
            // `HashKind::ALL` lists only the built-in kinds; DSL schemes
            // are covered by `expr_units`.
            HashKind::Expr(_) => unreachable!("ALL contains no Expr kind"),
        };
        out.push(run_unit(
            cfg,
            &format!("index/{}", kind.label()),
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| {
                assert_eq!(
                    idx.index(a),
                    reference(a),
                    "{} disagrees with its oracle at block {a:#x}",
                    kind.label()
                );
            },
        ));
    }

    // The folded-XOR extension.
    {
        let xf = XorFolded::new(geom);
        let strides = adversarial_strides(2048);
        out.push(run_unit(
            cfg,
            "index/XOR-fold",
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| assert_eq!(xf.index(a), ref_xor_folded(a, 2048), "block {a:#x}"),
        ));
    }

    // A non-default displacement factor.
    {
        let pd = PrimeDisplacement::new(geom, 37);
        let strides = adversarial_strides(2048);
        out.push(run_unit(
            cfg,
            "index/pDisp-37",
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| {
                assert_eq!(
                    pd.index(a),
                    ref_prime_displacement(a, 2048, 37),
                    "block {a:#x}"
                );
            },
        ));
    }

    // The per-bank skewing functions over one bank-sized geometry.
    let bank_geom = Geometry::new(512);
    for bank in 0..4u32 {
        let skw = SkewXorBank::new(bank_geom, bank);
        let strides = adversarial_strides(512);
        out.push(run_unit(
            cfg,
            &format!("index/SKW-bank{bank}"),
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| {
                assert_eq!(skw.index(a), ref_skew_xor(a, 512, bank), "block {a:#x}");
            },
        ));
    }
    for factor in SKEW_DISP_FACTORS {
        let sd = SkewDispBank::new(bank_geom, factor);
        let strides = adversarial_strides(512);
        out.push(run_unit(
            cfg,
            &format!("index/skw+pDisp-{factor}"),
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| {
                assert_eq!(
                    sd.index(a),
                    ref_prime_displacement(a, 512, factor),
                    "block {a:#x}"
                );
            },
        ));
    }

    // Subtract&select: agreement inside the selector's reach, refusal
    // beyond it (the paper's 258-input configuration).
    {
        let ss = SubtractSelect::new(2039, 258);
        let span = 2 * ss.capacity();
        out.push(run_unit(
            cfg,
            "hw/subtract_select",
            n,
            1,
            move |rng| rng.range_u64(0, span),
            move |&x| {
                assert_eq!(
                    ss.try_reduce(x),
                    ref_subtract_select(x, 2039, 258),
                    "x = {x}"
                );
            },
        ));
    }

    // Iterative linear, narrow and wide selectors, full 64-bit addresses.
    for t in [0u32, 8] {
        let unit = IterativeLinear::new(geom, t);
        let strides = adversarial_strides(2039);
        out.push(run_unit(
            cfg,
            &format!("hw/iterative_linear-t{t}"),
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| assert_eq!(unit.reduce(a), ref_prime_modulo(a, 2039), "block {a:#x}"),
        ));
    }

    // Polynomial method, full 64-bit addresses.
    {
        let unit = Polynomial::new(geom);
        let strides = adversarial_strides(2039);
        out.push(run_unit(
            cfg,
            "hw/polynomial",
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| assert_eq!(unit.reduce(a), ref_prime_modulo(a, 2039), "block {a:#x}"),
        ));
    }

    // Mersenne folding for the 8191-set (k=13) and 127-set (k=7) primes.
    for k in [13u32, 7] {
        let strides = adversarial_strides((1 << k) - 1);
        out.push(run_unit(
            cfg,
            &format!("hw/mersenne_fold-k{k}"),
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| assert_eq!(mersenne_fold(a, k), ref_mersenne(a, k), "a = {a:#x}"),
        ));
    }

    // The wired five-addend unit (26-bit block addresses by construction).
    {
        let mask = (1u64 << 26) - 1;
        let strides = adversarial_strides(2039);
        out.push(run_unit(
            cfg,
            "hw/wired2039",
            n,
            1,
            move |rng| gen_addr(rng, mask, &strides),
            move |&a| {
                assert_eq!(
                    Wired2039::index(a),
                    ref_prime_modulo(a, 2039),
                    "block {a:#x}"
                )
            },
        ));
    }

    // TLB assist: 4 KB pages (paper example) and 2 MB huge pages (wider
    // selector), over full 64-bit byte addresses.
    for (label, page) in [("4k", 4096u64), ("2m", 2 * 1024 * 1024)] {
        let tlb = TlbAssist::new(2048, page, 64);
        let strides = adversarial_strides(2039 * 64);
        out.push(run_unit(
            cfg,
            &format!("hw/tlb_assist-{label}"),
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| {
                assert_eq!(tlb.index_addr(a), ref_tlb_index(a, 64, 2039), "addr {a:#x}");
            },
        ));
    }

    out
}

// ---------------------------------------------------------------------------
// Expression-DSL units: the dual-compilation differential oracle.
// ---------------------------------------------------------------------------

/// Pits both compilations of the expression DSL against each other and
/// against the hand-written indexers:
///
/// 1. **Closure vs hard path** — every built-in scheme re-expressed in
///    the DSL must agree with its hand-written indexer block-for-block.
/// 2. **Closure vs abstract model** — the fast compiled closure and the
///    statically lowered [`primecache_analyze::IndexModel`] must agree
///    over the model's input window, including the sampled Opaque
///    fallback.
fn expr_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    use primecache_analyze::lower_expr;
    use primecache_core::expr::{builtins, register_anonymous};

    let mut out = Vec::new();
    let n = cfg.addrs_per_unit;
    let geom = Geometry::new(2048);
    let bank_geom = Geometry::new(512);
    let full = u64::MAX;

    // Closure vs hand-written indexer, full 64-bit addresses.
    type RefFn = Box<dyn Fn(u64) -> u64 + Send + Sync>;
    let vs_hard: Vec<(String, String, RefFn)> = vec![
        (
            "expr/Base".to_owned(),
            builtins::traditional_src(geom),
            Box::new(|a| ref_traditional(a, 2048)),
        ),
        (
            "expr/XOR".to_owned(),
            builtins::xor_src(geom),
            Box::new(|a| ref_xor(a, 2048)),
        ),
        (
            "expr/XOR-fold".to_owned(),
            builtins::xor_folded_src(geom),
            Box::new(|a| ref_xor_folded(a, 2048)),
        ),
        (
            "expr/pMod".to_owned(),
            builtins::pmod_src(geom),
            Box::new(|a| ref_prime_modulo(a, 2039)),
        ),
        (
            "expr/pDisp".to_owned(),
            builtins::pdisp_src(geom, 9),
            Box::new(|a| ref_prime_displacement(a, 2048, 9)),
        ),
        (
            "expr/SKW-bank1".to_owned(),
            builtins::skew_xor_bank_src(bank_geom, 1),
            Box::new(|a| ref_skew_xor(a, 512, 1)),
        ),
        (
            "expr/skw+pDisp-9".to_owned(),
            builtins::skew_disp_bank_src(bank_geom, 9),
            Box::new(|a| ref_prime_displacement(a, 512, 9)),
        ),
    ];
    for (name, src, reference) in vs_hard {
        let id = register_anonymous(&src).expect("builtin source compiles");
        let idx = id.indexer();
        let strides = adversarial_strides(idx.n_set());
        out.push(run_unit(
            cfg,
            &name,
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| {
                assert_eq!(
                    idx.index(a),
                    reference(a),
                    "DSL closure `{}` disagrees with the hand-written \
                     indexer at block {a:#x}",
                    id.source()
                );
            },
        ));
    }

    // Closure vs statically lowered abstract model over the model's
    // 26-bit input window: one representative per model family.
    for (name, src) in [
        ("expr/model-linear", builtins::xor_src(geom)),
        ("expr/model-residue", builtins::pmod_src(geom)),
        ("expr/model-affine", builtins::pdisp_src(geom, 9)),
        (
            "expr/model-opaque",
            "((a % 2039) ^ (a >> 13)) & 2047".to_owned(),
        ),
    ] {
        let id = register_anonymous(&src).expect("source compiles");
        let model = lower_expr(id.folded(), 26);
        let idx = id.indexer();
        let mask = (1u64 << 26) - 1;
        let strides = adversarial_strides(idx.n_set());
        out.push(run_unit(
            cfg,
            name,
            n,
            1,
            move |rng| gen_addr(rng, mask, &strides),
            move |&a| {
                assert_eq!(
                    idx.index(a),
                    model.eval(a),
                    "dual compilations of `{}` diverge at block {a:#x}",
                    id.source()
                );
            },
        ));
    }

    out
}

// ---------------------------------------------------------------------------
// Strength-reduced modulo units (the FastMod reciprocal on the hot path).
// ---------------------------------------------------------------------------

/// Every supported L2 geometry (256 to 16 K sets) and the Table-1 prime
/// the pMod indexer picks for it.
const PMOD_GEOMETRIES: [(u64, u64); 7] = [
    (256, 251),
    (512, 509),
    (1024, 1021),
    (2048, 2039),
    (4096, 4093),
    (8192, 8191),
    (16384, 16381),
];

fn fastmod_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    let mut out = Vec::new();
    let n = cfg.addrs_per_unit;
    let full = u64::MAX;

    // The strength-reduced pMod index (reciprocal multiply, no division)
    // against the literal `block % p`, for every supported prime.
    for (phys, prime) in PMOD_GEOMETRIES {
        let pmod = PrimeModulo::new(Geometry::new(phys));
        assert_eq!(pmod.n_set(), prime, "prime table drifted for {phys} sets");
        let strides = adversarial_strides(prime);
        out.push(run_unit(
            cfg,
            &format!("index/pMod-fastmod-{prime}"),
            n,
            1,
            move |rng| gen_addr(rng, full, &strides),
            move |&a| {
                assert_eq!(
                    pmod.index(a),
                    a % prime,
                    "strength-reduced pMod diverges from % {prime} at block {a:#x}"
                );
            },
        ));
    }

    // FastMod itself over arbitrary divisors, not just the cache primes:
    // the reciprocal construction must be exact for every (x, d) pair.
    out.push(run_unit(
        cfg,
        "hw/fastmod-fuzz",
        n,
        1,
        move |rng| (rng.next_u64(), rng.next_u64().max(1)),
        move |&(x, d)| {
            let d = d.max(1);
            assert_eq!(
                FastMod::new(d).reduce(x),
                x % d,
                "FastMod({d}).reduce({x:#x}) diverges from native %"
            );
        },
    ));

    out
}

// ---------------------------------------------------------------------------
// Cache stream units.
// ---------------------------------------------------------------------------

/// A stream of `(block, is_write)` accesses: random over a small working
/// set, a strided walk, or a single-congruence-class hammer — the three
/// shapes that exercise fills, LRU rotation, and conflict eviction.
fn gen_stream(rng: &mut Rng, domain: u64, n_set: u64) -> Vec<(u64, bool)> {
    let pattern = rng.range_u32(0, 3);
    match pattern {
        0 => (0..STREAM_LEN)
            .map(|_| (rng.range_u64(0, domain), rng.bool()))
            .collect(),
        1 => {
            let strides = adversarial_strides(n_set);
            let stride = strides[rng.range_usize(0, strides.len())];
            let base = rng.range_u64(0, domain);
            (0..STREAM_LEN as u64)
                .map(|i| ((base + i * stride) % domain, rng.bool()))
                .collect()
        }
        _ => {
            // Hammer one congruence class so a handful of sets thrash.
            let class = rng.range_u64(0, n_set);
            (0..STREAM_LEN)
                .map(|_| (class + rng.range_u64(0, 32) * n_set, rng.bool()))
                .collect()
        }
    }
}

fn stream_cases(cfg: &BatteryConfig) -> usize {
    cfg.addrs_per_unit.div_ceil(STREAM_LEN)
}

fn set_assoc_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    let mut out = Vec::new();
    // 8 KB, 4-way, 64-B lines: 32 physical sets — small enough that a
    // 256-access stream wraps the capacity several times.
    let cc = CacheConfig::new(8 * 1024, 4, 64);
    for kind in HashKind::ALL {
        let cc = cc.with_hash(kind);
        let n_set = match kind {
            HashKind::PrimeModulo => 31,
            _ => 32,
        };
        let reference = move |block: u64| match kind {
            HashKind::Traditional => ref_traditional(block, 32),
            HashKind::Xor => ref_xor(block, 32),
            HashKind::PrimeModulo => ref_prime_modulo(block, 31),
            HashKind::PrimeDisplacement => ref_prime_displacement(block, 32, 9),
            HashKind::Expr(_) => unreachable!("ALL contains no Expr kind"),
        };
        out.push(run_unit(
            cfg,
            &format!("cache/set_assoc/{}", kind.label()),
            stream_cases(cfg),
            STREAM_LEN,
            move |rng| gen_stream(rng, 1024, 32),
            move |stream: &Vec<(u64, bool)>| {
                let mut fast = Cache::new(cc);
                let mut oracle = OracleCache::new(n_set, 4, OraclePolicy::Lru, reference);
                replay_set_assoc(&mut fast, &mut oracle, stream);
            },
        ));
    }
    // FIFO replacement against the insertion-order oracle.
    {
        let cc = cc.with_replacement(ReplacementKind::Fifo);
        out.push(run_unit(
            cfg,
            "cache/set_assoc/Base-fifo",
            stream_cases(cfg),
            STREAM_LEN,
            move |rng| gen_stream(rng, 1024, 32),
            move |stream: &Vec<(u64, bool)>| {
                let mut fast = Cache::new(cc);
                let mut oracle =
                    OracleCache::new(32, 4, OraclePolicy::Fifo, |b| ref_traditional(b, 32));
                replay_set_assoc(&mut fast, &mut oracle, stream);
            },
        ));
    }
    out
}

fn replay_set_assoc(fast: &mut Cache, oracle: &mut OracleCache, stream: &[(u64, bool)]) {
    for (i, &(block, write)) in stream.iter().enumerate() {
        let fast_hit = fast.access_block(block, write);
        let want = oracle.access_block(block, write);
        assert_eq!(
            fast_hit, want.hit,
            "access {i} (block {block:#x}, write {write}): hit/miss mismatch"
        );
        let fast_wb = fast.take_writebacks();
        let want_wb: Vec<u64> = want.writeback.into_iter().collect();
        assert_eq!(
            fast_wb, want_wb,
            "access {i} (block {block:#x}): writeback mismatch"
        );
    }
    let s = fast.stats();
    assert_eq!(s.hits + s.misses, s.accesses, "stat integrity after replay");
}

fn skewed_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    // (name, config): the paper's 4 direct-mapped banks with both hash
    // families, plus Seznec's original 2-bank × 2-way shape under NRUNRW.
    let shapes = [
        (
            "cache/skewed/SKW",
            SkewedConfig::new(4 * 64 * 64, 4, 64, SkewHashKind::Xor),
        ),
        (
            "cache/skewed/skw+pDisp",
            SkewedConfig::new(4 * 64 * 64, 4, 64, SkewHashKind::PrimeDisplacement),
        ),
        (
            "cache/skewed/2x2-nrunrw",
            SkewedConfig::new(2 * 2 * 32 * 64, 2, 64, SkewHashKind::PrimeDisplacement)
                .with_ways_per_bank(2)
                .with_replacement(SkewReplacement::Nrunrw),
        ),
    ];
    shapes
        .into_iter()
        .map(|(name, scfg)| {
            let sets = scfg.sets_per_bank();
            let ways = scfg.ways_per_bank() as usize;
            let banks = scfg.banks();
            let hash = scfg.hash();
            let write_aware = scfg.replacement() == SkewReplacement::Nrunrw;
            let capacity_blocks = sets * u64::from(banks) * ways as u64;
            run_unit(
                cfg,
                name,
                stream_cases(cfg),
                STREAM_LEN,
                move |rng| gen_stream(rng, 16 * capacity_blocks, sets),
                move |stream: &Vec<(u64, bool)>| {
                    let mut fast = SkewedCache::new(scfg);
                    let index_fns: Vec<Box<dyn Fn(u64) -> u64>> = (0..banks)
                        .map(|b| match hash {
                            SkewHashKind::Xor => {
                                Box::new(move |blk: u64| ref_skew_xor(blk, sets, b))
                                    as Box<dyn Fn(u64) -> u64>
                            }
                            SkewHashKind::PrimeDisplacement => {
                                let factor = SKEW_DISP_FACTORS
                                    [b as usize % SKEW_DISP_FACTORS.len()]
                                    + 2 * (u64::from(b) / SKEW_DISP_FACTORS.len() as u64) * 41;
                                Box::new(move |blk: u64| ref_prime_displacement(blk, sets, factor))
                            }
                        })
                        .collect();
                    let mut oracle = OracleSkewed::new(sets as usize, ways, write_aware, index_fns);
                    for (i, &(block, write)) in stream.iter().enumerate() {
                        let fast_hit = fast.access_block(block, write);
                        let want = oracle.access_block(block, write);
                        assert_eq!(
                            fast_hit, want.hit,
                            "access {i} (block {block:#x}): hit/miss mismatch"
                        );
                        let fast_wb = fast.take_writebacks();
                        let want_wb: Vec<u64> = want.writeback.into_iter().collect();
                        assert_eq!(
                            fast_wb, want_wb,
                            "access {i} (block {block:#x}): writeback mismatch"
                        );
                    }
                },
            )
        })
        .collect()
}

fn fully_assoc_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    // The fully-associative cache tracks recency with packed age stamps
    // in a min-heap (not an ordered map); pit it against the single-set
    // LRU oracle at two capacities — tiny (constant thrash, every miss
    // evicts) and moderate (hit/miss mix, heap several levels deep).
    [
        ("cache/fully_assoc/16-line", 16u64),
        ("cache/fully_assoc/96-line", 96u64),
    ]
    .into_iter()
    .map(|(name, lines)| {
        run_unit(
            cfg,
            name,
            stream_cases(cfg),
            STREAM_LEN,
            // Domain ~8x capacity so the LRU order, not just presence,
            // decides most outcomes; `lines` as the stride base keeps
            // the adversarial classes folding onto themselves.
            move |rng| gen_stream(rng, 8 * lines, lines),
            move |stream: &Vec<(u64, bool)>| {
                let mut fast = FullyAssociative::new(lines * 64, 64);
                let mut oracle = OracleCache::new(1, lines as usize, OraclePolicy::Lru, |_| 0);
                for (i, &(block, write)) in stream.iter().enumerate() {
                    let fast_hit = fast.access_block(block, write);
                    let want = oracle.access_block(block, write);
                    assert_eq!(
                        fast_hit, want.hit,
                        "access {i} (block {block:#x}, write {write}): hit/miss mismatch"
                    );
                    let fast_wb = fast.take_writebacks();
                    let want_wb: Vec<u64> = want.writeback.into_iter().collect();
                    assert_eq!(
                        fast_wb, want_wb,
                        "access {i} (block {block:#x}): writeback mismatch"
                    );
                }
                let s = fast.stats();
                assert_eq!(s.hits + s.misses, s.accesses, "stat integrity after replay");
            },
        )
    })
    .collect()
}

fn victim_unit(cfg: &BatteryConfig) -> UnitReport {
    // 4 KB 2-way main cache (32 sets) with a 4-entry victim buffer.
    let cc = CacheConfig::new(4 * 1024, 2, 64);
    run_unit(
        cfg,
        "cache/victim",
        stream_cases(cfg),
        STREAM_LEN,
        move |rng| gen_stream(rng, 512, 32),
        move |stream: &Vec<(u64, bool)>| {
            let mut fast = VictimCache::new(cc, 4);
            let main = OracleCache::new(32, 2, OraclePolicy::Lru, |b| ref_traditional(b, 32));
            let mut oracle = OracleVictim::new(main, 4);
            let mut want_victim_hits = 0u64;
            let mut want_writebacks = 0u64;
            for (i, &(block, write)) in stream.iter().enumerate() {
                let fast_hit = fast.access(block * 64, write);
                let want = oracle.access_block(block, write);
                assert_eq!(
                    fast_hit, want.hit,
                    "access {i} (block {block:#x}): hit/miss mismatch"
                );
                want_victim_hits += u64::from(want.from_buffer);
                want_writebacks += want.writebacks.len() as u64;
            }
            assert_eq!(fast.victim_hits(), want_victim_hits, "buffer-hit count");
            assert_eq!(
                fast.stats().writebacks,
                want_writebacks,
                "buffer-spill writeback count"
            );
        },
    )
}

// ---------------------------------------------------------------------------
// Trace codec units: the compact encoded-trace wire format.
// ---------------------------------------------------------------------------

/// Maps a shrinkable `(kind, payload, flag)` tuple to a trace event.
/// `kind % 5` selects the variant, so shrinking a kind toward zero walks
/// the case toward plain `Work` events; payloads keep their full 64-bit
/// range for `Load`/`Store` (the delta encoder must survive arbitrary
/// jumps, including to/from `u64::MAX`).
fn tuple_event(&(kind, payload, flag): &(u64, u64, bool)) -> primecache_trace::Event {
    use primecache_trace::Event;
    match kind % 5 {
        0 => Event::Work(payload as u32),
        1 => Event::FpWork(payload as u32),
        2 => Event::Branch { mispredict: flag },
        3 => Event::Load {
            addr: payload,
            dep: flag,
        },
        _ => Event::Store { addr: payload },
    }
}

/// An adversarial codec payload: uniform 64-bit values mixed with the
/// delta encoder's worst cases — tiny values, values at the top of the
/// range (so consecutive addresses produce maximum-magnitude wrapping
/// deltas), and near-power-of-two boundaries where varint group counts
/// change.
fn gen_codec_payload(rng: &mut Rng) -> u64 {
    match rng.range_u64(0, 6) {
        0 => rng.next_u64(),
        1 => rng.range_u64(0, 16),
        2 => u64::MAX - rng.range_u64(0, 16),
        3 => (1u64 << rng.range_u64(1, 64)).wrapping_sub(rng.range_u64(0, 2)),
        4 => rng.next_u64() & 0xFFFF,
        _ => rng.next_u64() | (1 << 63),
    }
}

fn codec_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    use primecache_trace::encode::{read_varint, unzigzag, write_varint, zigzag};
    use primecache_trace::EncodedTrace;
    let n = cfg.addrs_per_unit;
    let mut out = Vec::new();

    // LEB128 varint: every u64 round-trips, the encoding is the minimal
    // 7-bit-group length, and decoding consumes exactly what encoding
    // produced even with trailing bytes present.
    out.push(run_unit(
        cfg,
        "codec/varint",
        n,
        1,
        gen_codec_payload,
        |&v| {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let groups = (64 - v.leading_zeros() as usize).div_ceil(7).max(1);
            assert_eq!(buf.len(), groups, "non-minimal varint for {v:#x}");
            buf.push(0xAB); // trailing noise must not be consumed
            let mut pos = 0usize;
            let back = read_varint(&buf, &mut pos).expect("round trip decodes");
            assert_eq!(back, v, "varint round trip");
            assert_eq!(pos, groups, "decode consumed the wrong length");
        },
    ));

    // Zigzag: every delta (as the wrapping difference of two payloads)
    // round-trips, and sign-magnitude ordering holds — small magnitudes
    // of either sign get small codes.
    out.push(run_unit(
        cfg,
        "codec/zigzag",
        n,
        1,
        |rng| (gen_codec_payload(rng), gen_codec_payload(rng)),
        |&(a, b)| {
            let delta = b.wrapping_sub(a) as i64;
            assert_eq!(unzigzag(zigzag(delta)), delta, "zigzag round trip");
            assert_eq!(
                a.wrapping_add(unzigzag(zigzag(delta)) as u64),
                b,
                "wrapping delta reconstruction"
            );
            if (-64..64).contains(&delta) {
                assert!(zigzag(delta) < 128, "small delta {delta} got a large code");
            }
        },
    ));

    // Whole-trace round trip over adversarial event sequences: encode →
    // decode_all, encode → replay, and encode → to_bytes → from_bytes →
    // decode must all reproduce the exact input sequence, for chunk
    // sizes that leave partial final chunks.
    let stream = stream_cases(cfg);
    out.push(run_unit(
        cfg,
        "codec/event-roundtrip",
        stream,
        STREAM_LEN,
        |rng| {
            rng.vec(STREAM_LEN, STREAM_LEN + 1, |r| {
                (r.range_u64(0, 5), gen_codec_payload(r), r.bool())
            })
        },
        |tuples: &Vec<(u64, u64, bool)>| {
            let events: Vec<primecache_trace::Event> = tuples.iter().map(tuple_event).collect();
            for chunk_events in [1usize, 7, 64, STREAM_LEN + 3] {
                let trace = EncodedTrace::encode(&events, chunk_events);
                assert_eq!(
                    trace.decode_all().expect("decode"),
                    events,
                    "decode_all ({chunk_events}-event chunks)"
                );
                let replayed: Vec<primecache_trace::Event> = trace.replay().collect();
                assert_eq!(replayed, events, "replay ({chunk_events}-event chunks)");
                let framed = EncodedTrace::from_bytes(&trace.to_bytes()).expect("reframe");
                assert_eq!(
                    framed.decode_all().expect("decode reframed"),
                    events,
                    "frame round trip ({chunk_events}-event chunks)"
                );
            }
        },
    ));
    out
}

// ---------------------------------------------------------------------------
// Ingest units: the text trace grammar against the event codec.
// ---------------------------------------------------------------------------

fn ingest_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    use primecache_ingest::text::{format_event, parse_line, write_text};
    use primecache_ingest::{import_bytes, SourceFormat};
    use primecache_workloads::STREAM_CHUNK;

    let mut out = Vec::new();

    // Per-event round trip: the canonical text form of every event
    // parses back to the identical event (the grammar is lossless for
    // the simulator's own vocabulary, TRACE_FORMAT.md §text).
    out.push(run_unit(
        cfg,
        "ingest/text-roundtrip",
        cfg.addrs_per_unit,
        1,
        |rng| (rng.range_u64(0, 5), gen_codec_payload(rng), rng.bool()),
        |tuple| {
            let ev = tuple_event(tuple);
            let line = format_event(ev);
            let back = parse_line(&line)
                .unwrap_or_else(|e| panic!("canonical line '{line}' rejected: {e}"))
                .unwrap_or_else(|| panic!("canonical line '{line}' parsed as silent"));
            assert_eq!(back, ev, "text round trip via '{line}'");
        },
    ));

    // Whole-stream equivalence: text-export → import must reproduce the
    // recorded frame byte-for-byte for adversarial event sequences —
    // the same invariant `pcache import` and ci/ingest_smoke.sh rely on.
    let stream = stream_cases(cfg);
    out.push(run_unit(
        cfg,
        "ingest/frame-reencode",
        stream,
        STREAM_LEN,
        |rng| {
            rng.vec(STREAM_LEN, STREAM_LEN + 1, |r| {
                (r.range_u64(0, 5), gen_codec_payload(r), r.bool())
            })
        },
        |tuples: &Vec<(u64, u64, bool)>| {
            let events: Vec<primecache_trace::Event> = tuples.iter().map(tuple_event).collect();
            let recorded = primecache_trace::EncodedTrace::encode(&events, STREAM_CHUNK);
            let mut text = Vec::new();
            write_text(events.iter().copied(), &mut text).expect("Vec<u8> write");
            let imported = import_bytes(&text).expect("canonical text imports");
            assert_eq!(imported.stats.format, SourceFormat::Text);
            assert_eq!(
                imported.trace.to_bytes(),
                recorded.to_bytes(),
                "frame bytes"
            );
            assert_eq!(
                imported.trace.fingerprint(),
                recorded.fingerprint(),
                "fingerprint"
            );
        },
    ));
    out
}

// ---------------------------------------------------------------------------
// DRAM stream unit.
// ---------------------------------------------------------------------------

fn dram_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    [
        ("mem/dram", MemConfig::paper_default()),
        (
            "mem/dram-permuted",
            MemConfig::paper_default().with_permutation_mapping(),
        ),
    ]
    .into_iter()
    .map(|(name, mc)| {
        run_unit(
            cfg,
            name,
            stream_cases(cfg),
            STREAM_LEN,
            // (address, issue gap, is_write): addresses span a few rows
            // and banks; gaps interleave in-flight requests.
            move |rng| {
                rng.vec(STREAM_LEN, STREAM_LEN + 1, |r| {
                    (r.range_u64(0, 1 << 24), r.range_u64(0, 400), r.bool())
                })
            },
            move |stream: &Vec<(u64, u64, bool)>| {
                let mut fast = Dram::new(mc);
                let mut oracle = OracleDram::new(mc);
                let mut now = 0u64;
                for (i, &(addr, gap, write)) in stream.iter().enumerate() {
                    now += gap;
                    let got = fast.request(addr, now, write);
                    let want = oracle.request(addr, now, write);
                    assert_eq!(
                        got, want,
                        "request {i} (addr {addr:#x}, cycle {now}): completion mismatch"
                    );
                }
            },
        )
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Attack units: black-box recovery vs known ground-truth models.
// ---------------------------------------------------------------------------

/// Derives a random GF(2) ground-truth matrix from a case seed: 2–6 rows
/// over a 12-bit window (possibly dependent — the canonical form is the
/// row space, so redundancy must not matter).
fn case_matrix(seed: u64, in_bits: u32) -> primecache_analyze::Gf2Matrix {
    let mut rng = Rng::new(seed ^ 0x6F2A);
    let mask = (1u64 << in_bits) - 1;
    let n_rows = rng.range_usize(2, 7);
    let rows: Vec<u64> = (0..n_rows).map(|_| rng.next_u64() & mask).collect();
    primecache_analyze::Gf2Matrix::new(rows, in_bits)
}

/// The three recovery units are seed-driven: each case derives a random
/// ground-truth model, wraps it in a [`ModelOracle`], runs the black-box
/// recovery, and asserts canonical-form agreement — the same differential
/// oracle `pcache attack` applies to the real schemes, here under fuzzed
/// geometries with shrinkable case seeds.
fn attack_units(cfg: &BatteryConfig) -> Vec<UnitReport> {
    use primecache_analyze::{canonicalize, models_equivalent, IndexModel};
    use primecache_attack::{recover, RecoveryConfig, Verdict};
    use primecache_core::probe::ModelOracle;

    const IN_BITS: u32 = 12;
    // One recovery campaign probes a few hundred times; weight cases
    // accordingly so the battery budget buys a comparable effort.
    const CASE_WEIGHT: usize = 256;
    let cases = cfg.addrs_per_unit.div_ceil(CASE_WEIGHT);
    let mut out = Vec::new();

    out.push(run_unit(
        cfg,
        "attack/gf2-recover",
        cases,
        CASE_WEIGHT,
        |rng| rng.next_u64(),
        |&seed: &u64| {
            let matrix = case_matrix(seed, IN_BITS);
            let truth = IndexModel::Linear(matrix);
            let n_phys = truth.n_set().next_power_of_two();
            let eval = |a: u64| truth.eval(a);
            let mut oracle = ModelOracle::new(eval, n_phys, 1, IN_BITS);
            let rec = recover(&mut oracle, &RecoveryConfig::default());
            let Verdict::Model(got) = &rec.verdict else {
                panic!("linear ground truth declared {:?}", rec.verdict);
            };
            assert!(
                models_equivalent(got, &truth),
                "recovered {} != ground truth {}",
                canonicalize(got),
                canonicalize(&truth)
            );
        },
    ));

    out.push(run_unit(
        cfg,
        "attack/residue-recover",
        cases,
        CASE_WEIGHT,
        |rng| rng.next_u64(),
        |&seed: &u64| {
            let mut rng = Rng::new(seed ^ 0x4E51);
            let modulus = rng.range_u64(2, 258);
            let truth = IndexModel::Residue {
                modulus,
                in_bits: IN_BITS + 2,
            };
            let n_phys = modulus.next_power_of_two();
            let eval = |a: u64| truth.eval(a);
            let mut oracle = ModelOracle::new(eval, n_phys, 1, IN_BITS + 2);
            let rec = recover(&mut oracle, &RecoveryConfig::default());
            let Verdict::Model(got) = &rec.verdict else {
                panic!(
                    "residue ground truth (mod {modulus}) declared {:?}",
                    rec.verdict
                );
            };
            assert!(
                models_equivalent(got, &truth),
                "recovered {} != ground truth {}",
                canonicalize(got),
                canonicalize(&truth)
            );
        },
    ));

    out.push(run_unit(
        cfg,
        "attack/canonical-eq",
        cases,
        CASE_WEIGHT,
        |rng| rng.next_u64(),
        |&seed: &u64| {
            let mut rng = Rng::new(seed ^ 0xCA01);
            let matrix = case_matrix(seed, IN_BITS);
            // Invertible row scramble: swaps and row-additions preserve
            // the row space, so canonical equality must survive them.
            let mut rows: Vec<u64> = (0..matrix.out_bits()).map(|i| matrix.row(i)).collect();
            for _ in 0..16 {
                let i = rng.range_usize(0, rows.len());
                let j = rng.range_usize(0, rows.len());
                if i == j {
                    let last = rows.len() - 1;
                    rows.swap(0, last);
                } else {
                    rows[i] ^= rows[j];
                }
            }
            let scrambled =
                IndexModel::Linear(primecache_analyze::Gf2Matrix::new(rows.clone(), IN_BITS));
            let truth = IndexModel::Linear(matrix);
            assert!(
                models_equivalent(&truth, &scrambled),
                "row scramble changed the canonical form: {} vs {}",
                canonicalize(&truth),
                canonicalize(&scrambled)
            );
            // Dropping rank must change it.
            if canonicalize(&truth)
                != canonicalize(&IndexModel::Linear(primecache_analyze::Gf2Matrix::new(
                    Vec::new(),
                    IN_BITS,
                )))
            {
                let empty =
                    IndexModel::Linear(primecache_analyze::Gf2Matrix::new(Vec::new(), IN_BITS));
                assert!(
                    !models_equivalent(&truth, &empty),
                    "nonzero row space compared equal to the empty one"
                );
            }
        },
    ));

    out
}

/// Runs every differential unit and returns one report per unit.
#[must_use]
pub fn run_battery(cfg: &BatteryConfig) -> Vec<UnitReport> {
    let mut out = scalar_units(cfg);
    out.extend(expr_units(cfg));
    out.extend(fastmod_units(cfg));
    out.extend(set_assoc_units(cfg));
    out.extend(skewed_units(cfg));
    out.extend(fully_assoc_units(cfg));
    out.push(victim_unit(cfg));
    out.extend(codec_units(cfg));
    out.extend(ingest_units(cfg));
    out.extend(dram_units(cfg));
    out.extend(attack_units(cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BatteryConfig {
        BatteryConfig {
            addrs_per_unit: 5_000,
            seed: 0,
        }
    }

    #[test]
    fn battery_passes_on_the_shipped_implementations() {
        let reports = run_battery(&small());
        assert!(
            reports.len() >= 20,
            "expected a broad battery, got {}",
            reports.len()
        );
        for r in &reports {
            assert!(
                r.passed,
                "unit {} failed: {}",
                r.unit,
                r.counterexample.as_deref().unwrap_or("<none>")
            );
            assert!(
                r.cases >= 5_000,
                "unit {} checked only {} cases",
                r.unit,
                r.cases
            );
        }
    }

    #[test]
    fn battery_covers_every_fast_path_family() {
        let names: Vec<String> = run_battery(&BatteryConfig {
            addrs_per_unit: 64,
            seed: 1,
        })
        .into_iter()
        .map(|r| r.unit)
        .collect();
        for prefix in [
            "index/Base",
            "index/XOR",
            "index/pMod",
            "index/pDisp",
            "index/XOR-fold",
            "index/SKW-bank0",
            "index/skw+pDisp-9",
            "expr/Base",
            "expr/XOR",
            "expr/XOR-fold",
            "expr/pMod",
            "expr/pDisp",
            "expr/SKW-bank1",
            "expr/skw+pDisp-9",
            "expr/model-linear",
            "expr/model-residue",
            "expr/model-affine",
            "expr/model-opaque",
            "index/pMod-fastmod-251",
            "index/pMod-fastmod-2039",
            "index/pMod-fastmod-16381",
            "hw/fastmod-fuzz",
            "hw/subtract_select",
            "hw/iterative_linear-t0",
            "hw/polynomial",
            "hw/mersenne_fold-k13",
            "hw/wired2039",
            "hw/tlb_assist-4k",
            "cache/set_assoc/Base",
            "cache/set_assoc/pMod",
            "cache/skewed/SKW",
            "cache/skewed/skw+pDisp",
            "cache/fully_assoc/16-line",
            "cache/fully_assoc/96-line",
            "cache/victim",
            "codec/varint",
            "codec/zigzag",
            "codec/event-roundtrip",
            "mem/dram",
        ] {
            assert!(
                names.iter().any(|n| n == prefix),
                "battery lost coverage of {prefix}; units: {names:?}"
            );
        }
    }

    #[test]
    fn battery_catches_a_seeded_indexer_bug() {
        // A deliberately wrong "fast path" (off-by-one modulus) must be
        // caught and shrunk to the smallest disagreeing address.
        let cfg = small();
        let report = run_unit(
            &cfg,
            "seeded/broken-pmod",
            cfg.addrs_per_unit,
            1,
            |rng| rng.range_u64(0, 1 << 20),
            |&a| assert_eq!(a % 2039, ref_prime_modulo(a, 2038), "a = {a}"),
        );
        assert!(!report.passed);
        assert!(report.shrink_steps > 0, "shrinking should make progress");
        // The moduli agree below 2038, so any shrunk counterexample has
        // been driven down to a small disagreeing address.
        let ce = report.counterexample.expect("counterexample recorded");
        let input: u64 = ce
            .strip_prefix("input ")
            .and_then(|s| s.split(':').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable counterexample: {ce}"));
        assert!(
            (2038..10_000).contains(&input),
            "expected a near-minimal counterexample, got {input}"
        );
    }

    #[test]
    fn battery_catches_a_seeded_replacement_bug() {
        // An "MRU-evicting" cache must disagree with the LRU oracle on
        // some stream.
        let cfg = BatteryConfig {
            addrs_per_unit: 20_000,
            seed: 0,
        };
        let report = run_unit(
            &cfg,
            "seeded/broken-lru",
            stream_cases(&cfg),
            STREAM_LEN,
            |rng| gen_stream(rng, 64, 4),
            |stream: &Vec<(u64, bool)>| {
                // Broken model: 4 sets × 2 ways, evicts the *newest* line.
                let mut sets: Vec<Vec<u64>> = vec![Vec::new(); 4];
                let mut oracle = OracleCache::new(4, 2, OraclePolicy::Lru, |b| b % 4);
                for &(block, write) in stream {
                    let set = &mut sets[(block % 4) as usize];
                    let broken_hit = if let Some(pos) = set.iter().position(|&b| b == block) {
                        let b = set.remove(pos);
                        set.push(b);
                        true
                    } else {
                        if set.len() == 2 {
                            set.pop(); // wrong: evicts the most recent
                        }
                        set.push(block);
                        false
                    };
                    let want = oracle.access_block(block, write);
                    assert_eq!(broken_hit, want.hit, "hit mismatch at block {block}");
                }
            },
        );
        assert!(!report.passed, "the seeded MRU bug must be detected");
    }
}
