//! Typed metric registry: named counters, gauges, and histograms.
//!
//! Metric names are dotted paths (`cache.l2.demand_misses`), each with a
//! unit and one-line help string so a report artifact explains itself.
//! The registry is *not* on the simulation hot path: inner loops bump
//! plain fields on [`crate::HotCounters`] and the recorder converts them
//! into named metrics once, at end of run. `OBSERVABILITY.md` documents
//! every name this workspace emits.

use std::collections::BTreeMap;

use crate::json::Json;

/// A fixed-bucket histogram over `u64` samples.
///
/// `bounds` are inclusive upper bucket edges; one overflow bucket counts
/// samples above the last edge. Sum/min/max are tracked exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given inclusive upper edges
    /// (must be strictly increasing).
    #[must_use]
    pub fn new(bounds: Vec<u64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// `(inclusive upper edge, count)` pairs; the final pair has edge
    /// `None` (overflow bucket).
    pub fn buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bounds.get(i).copied(), c))
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("min", self.min().map_or(Json::Null, Json::U64)),
            ("max", self.max().map_or(Json::Null, Json::U64)),
            (
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| Json::U64(b)).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::U64(c)).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Histogram, String> {
        let u64s = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("histogram: missing array {key:?}"))?
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| format!("histogram: bad {key:?}")))
                .collect()
        };
        let bounds = u64s("bounds")?;
        let counts = u64s("counts")?;
        if counts.len() != bounds.len() + 1 {
            return Err("histogram: counts/bounds length mismatch".into());
        }
        let count = field_u64(v, "count")?;
        Ok(Histogram {
            bounds,
            counts,
            count,
            sum: field_u64(v, "sum")?,
            min: v.get("min").and_then(Json::as_u64).unwrap_or(u64::MAX),
            max: v.get("max").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

/// The value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count of discrete occurrences.
    Counter(u64),
    /// Point-in-time measurement (rates, fractions, seconds).
    Gauge(f64),
    /// Distribution of `u64` samples.
    Histogram(Histogram),
}

/// A named metric: value plus self-describing unit and help text.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// The observed value.
    pub value: MetricValue,
    /// Unit string (`"refs"`, `"cycles"`, `"fraction"`, ...).
    pub unit: String,
    /// One-line human description.
    pub help: String,
}

/// An ordered registry of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: BTreeMap<String, Metric>,
}

impl Metrics {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Sets (or overwrites) a counter.
    pub fn set_counter(&mut self, name: &str, unit: &str, help: &str, v: u64) {
        self.insert(name, unit, help, MetricValue::Counter(v));
    }

    /// Sets (or overwrites) a gauge.
    pub fn set_gauge(&mut self, name: &str, unit: &str, help: &str, v: f64) {
        self.insert(name, unit, help, MetricValue::Gauge(v));
    }

    /// Sets (or overwrites) a histogram.
    pub fn set_histogram(&mut self, name: &str, unit: &str, help: &str, h: Histogram) {
        self.insert(name, unit, help, MetricValue::Histogram(h));
    }

    fn insert(&mut self, name: &str, unit: &str, help: &str, value: MetricValue) {
        self.entries.insert(
            name.to_owned(),
            Metric {
                value,
                unit: unit.to_owned(),
                help: help.to_owned(),
            },
        );
    }

    /// Counter value by name, if present and a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge value by name, if present and a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram by name, if present and a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match &self.entries.get(name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(name, metric)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the registry as a JSON object keyed by metric name.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(name, m)| {
                    let (kind, value) = match &m.value {
                        MetricValue::Counter(v) => ("counter", Json::U64(*v)),
                        MetricValue::Gauge(v) => ("gauge", Json::F64(*v)),
                        MetricValue::Histogram(h) => ("histogram", h.to_json()),
                    };
                    (
                        name.clone(),
                        Json::obj(vec![
                            ("type", Json::Str(kind.to_owned())),
                            ("unit", Json::Str(m.unit.clone())),
                            ("help", Json::Str(m.help.clone())),
                            ("value", value),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Reconstructs a registry from the [`Metrics::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn from_json(v: &Json) -> Result<Metrics, String> {
        let members = v.as_obj().ok_or("metrics: expected an object")?;
        let mut out = Metrics::new();
        for (name, m) in members {
            let kind = m
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric {name:?}: missing type"))?;
            let unit = m.get("unit").and_then(Json::as_str).unwrap_or("");
            let help = m.get("help").and_then(Json::as_str).unwrap_or("");
            let value = m
                .get("value")
                .ok_or_else(|| format!("metric {name:?}: missing value"))?;
            let value = match kind {
                "counter" => MetricValue::Counter(
                    value
                        .as_u64()
                        .ok_or_else(|| format!("metric {name:?}: bad counter"))?,
                ),
                "gauge" => MetricValue::Gauge(
                    value
                        .as_f64()
                        .ok_or_else(|| format!("metric {name:?}: bad gauge"))?,
                ),
                "histogram" => MetricValue::Histogram(Histogram::from_json(value)?),
                other => return Err(format!("metric {name:?}: unknown type {other:?}")),
            };
            out.insert(name, unit, help, value);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(vec![1, 4, 16]);
        for v in [0, 1, 2, 5, 100] {
            h.observe(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![(Some(1), 2), (Some(4), 1), (Some(16), 1), (None, 1)]
        );
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 108);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn registry_round_trips_through_json() {
        let mut m = Metrics::new();
        m.set_counter("cache.l1.misses", "refs", "L1 demand misses", 12345);
        m.set_gauge(
            "dram.row_hit_rate",
            "fraction",
            "row-buffer hit rate",
            0.625,
        );
        let mut h = Histogram::new(vec![2, 8]);
        h.observe(1);
        h.observe(9);
        m.set_histogram("cache.l2.evictions_per_set", "evictions", "per-set", h);
        let parsed = Metrics::from_json(&Json::parse(&m.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn typed_lookups_reject_wrong_kind() {
        let mut m = Metrics::new();
        m.set_counter("a", "x", "", 1);
        assert_eq!(m.counter("a"), Some(1));
        assert_eq!(m.gauge("a"), None);
        assert!(m.histogram("a").is_none());
    }

    #[test]
    fn empty_histogram_serializes_null_extrema() {
        let h = Histogram::new(vec![1]);
        let j = h.to_json();
        assert_eq!(j.get("min"), Some(&Json::Null));
        assert_eq!(Histogram::from_json(&j).unwrap(), h);
    }
}
