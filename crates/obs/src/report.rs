//! The self-describing run-report artifact.
//!
//! Every figure and table the simulator regenerates should carry enough
//! provenance to reproduce it: which workload and scheme ran, under
//! which machine configuration (as a fingerprint), from which source
//! revision, for how long in both wall-clock and simulated time. A
//! [`RunReport`] bundles that provenance with the end-of-run aggregates
//! (execution-time breakdown, per-level cache totals, DRAM totals — the
//! Fig. 8 / Table 5 inputs) and the full [`Metrics`] dump, versioned
//! under [`RUN_REPORT_SCHEMA`] so future readers can detect format
//! drift. Reports serialize to JSON and parse back losslessly.

use std::path::Path;

use crate::json::Json;
use crate::metrics::Metrics;

/// Schema identifier embedded in every report.
pub const RUN_REPORT_SCHEMA: &str = "primecache.run-report";

/// Current schema version; bump on any incompatible field change.
pub const RUN_REPORT_VERSION: u64 = 1;

/// Where a report came from: everything needed to re-run it.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Workload name (one of the 23 generator models).
    pub workload: String,
    /// Scheme label (`Base`, `pMod`, `SKW+pDisp`, ...).
    pub scheme: String,
    /// Memory references requested.
    pub refs: u64,
    /// Trace-generator seed. The bundled generators are deterministic
    /// functions of the workload name, so this is 0 for them; external
    /// trace sources can carry a real seed.
    pub seed: u64,
    /// FNV-1a fingerprint (hex) of the canonical machine-config string.
    pub config_hash: String,
    /// Git commit the binary was built from, or `"unknown"` outside a
    /// checkout.
    pub git_rev: String,
    /// Wall-clock milliseconds the run took.
    pub wall_ms: f64,
    /// Simulated CPU cycles the run covered.
    pub sim_cycles: u64,
}

/// Aggregate totals for one cache level (mirrors `CacheStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Store accesses.
    pub writes: u64,
    /// Dirty evictions written to the next level.
    pub writebacks: u64,
}

/// Aggregate DRAM totals (mirrors `DramStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramSummary {
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that missed the open row.
    pub row_misses: u64,
    /// Total cycles requests spent queued.
    pub queue_cycles: u64,
}

/// Execution-time split (the Fig. 8 stack: Busy / Other / Memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakdownSummary {
    /// Cycles doing useful work.
    pub busy: u64,
    /// Non-memory stall cycles.
    pub other_stall: u64,
    /// Memory stall cycles.
    pub mem_stall: u64,
}

/// A versioned, self-describing record of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Always [`RUN_REPORT_SCHEMA`].
    pub schema: String,
    /// Always [`RUN_REPORT_VERSION`] for reports this build writes.
    pub version: u64,
    /// Reproduction provenance.
    pub provenance: Provenance,
    /// Execution-time breakdown.
    pub breakdown: BreakdownSummary,
    /// L1 totals.
    pub l1: CacheSummary,
    /// L2 demand totals (the level the paper's schemes index).
    pub l2: CacheSummary,
    /// DRAM totals.
    pub dram: DramSummary,
    /// Full named-metric dump (empty when the `obs` feature is off).
    pub metrics: Metrics,
    /// Trace events recorded during the run (0 without tracing).
    pub events_recorded: u64,
    /// Trace events lost to ring overflow.
    pub events_dropped: u64,
}

impl RunReport {
    /// Serializes to the JSON document form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let p = &self.provenance;
        Json::obj(vec![
            ("schema", Json::Str(self.schema.clone())),
            ("version", Json::U64(self.version)),
            (
                "provenance",
                Json::obj(vec![
                    ("workload", Json::Str(p.workload.clone())),
                    ("scheme", Json::Str(p.scheme.clone())),
                    ("refs", Json::U64(p.refs)),
                    ("seed", Json::U64(p.seed)),
                    ("config_hash", Json::Str(p.config_hash.clone())),
                    ("git_rev", Json::Str(p.git_rev.clone())),
                    ("wall_ms", Json::F64(p.wall_ms)),
                    ("sim_cycles", Json::U64(p.sim_cycles)),
                ]),
            ),
            (
                "breakdown",
                Json::obj(vec![
                    ("busy", Json::U64(self.breakdown.busy)),
                    ("other_stall", Json::U64(self.breakdown.other_stall)),
                    ("mem_stall", Json::U64(self.breakdown.mem_stall)),
                ]),
            ),
            ("l1", cache_to_json(&self.l1)),
            ("l2", cache_to_json(&self.l2)),
            (
                "dram",
                Json::obj(vec![
                    ("reads", Json::U64(self.dram.reads)),
                    ("writes", Json::U64(self.dram.writes)),
                    ("row_hits", Json::U64(self.dram.row_hits)),
                    ("row_misses", Json::U64(self.dram.row_misses)),
                    ("queue_cycles", Json::U64(self.dram.queue_cycles)),
                ]),
            ),
            ("metrics", self.metrics.to_json()),
            ("events_recorded", Json::U64(self.events_recorded)),
            ("events_dropped", Json::U64(self.events_dropped)),
        ])
    }

    /// Parses a report back from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a schema mismatch, or a
    /// version newer than this build understands.
    pub fn from_json_str(text: &str) -> Result<RunReport, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("report: missing schema")?;
        if schema != RUN_REPORT_SCHEMA {
            return Err(format!("report: unknown schema {schema:?}"));
        }
        let version = req_u64(&v, "version")?;
        if version > RUN_REPORT_VERSION {
            return Err(format!(
                "report: version {version} is newer than supported {RUN_REPORT_VERSION}"
            ));
        }
        let p = v.get("provenance").ok_or("report: missing provenance")?;
        let b = v.get("breakdown").ok_or("report: missing breakdown")?;
        let d = v.get("dram").ok_or("report: missing dram")?;
        Ok(RunReport {
            schema: schema.to_owned(),
            version,
            provenance: Provenance {
                workload: req_str(p, "workload")?,
                scheme: req_str(p, "scheme")?,
                refs: req_u64(p, "refs")?,
                seed: req_u64(p, "seed")?,
                config_hash: req_str(p, "config_hash")?,
                git_rev: req_str(p, "git_rev")?,
                wall_ms: p
                    .get("wall_ms")
                    .and_then(Json::as_f64)
                    .ok_or("report: missing wall_ms")?,
                sim_cycles: req_u64(p, "sim_cycles")?,
            },
            breakdown: BreakdownSummary {
                busy: req_u64(b, "busy")?,
                other_stall: req_u64(b, "other_stall")?,
                mem_stall: req_u64(b, "mem_stall")?,
            },
            l1: cache_from_json(v.get("l1").ok_or("report: missing l1")?)?,
            l2: cache_from_json(v.get("l2").ok_or("report: missing l2")?)?,
            dram: DramSummary {
                reads: req_u64(d, "reads")?,
                writes: req_u64(d, "writes")?,
                row_hits: req_u64(d, "row_hits")?,
                row_misses: req_u64(d, "row_misses")?,
                queue_cycles: req_u64(d, "queue_cycles")?,
            },
            metrics: Metrics::from_json(v.get("metrics").ok_or("report: missing metrics")?)?,
            events_recorded: req_u64(&v, "events_recorded")?,
            events_dropped: req_u64(&v, "events_dropped")?,
        })
    }
}

fn cache_to_json(c: &CacheSummary) -> Json {
    Json::obj(vec![
        ("accesses", Json::U64(c.accesses)),
        ("hits", Json::U64(c.hits)),
        ("misses", Json::U64(c.misses)),
        ("writes", Json::U64(c.writes)),
        ("writebacks", Json::U64(c.writebacks)),
    ])
}

fn cache_from_json(v: &Json) -> Result<CacheSummary, String> {
    Ok(CacheSummary {
        accesses: req_u64(v, "accesses")?,
        hits: req_u64(v, "hits")?,
        misses: req_u64(v, "misses")?,
        writes: req_u64(v, "writes")?,
        writebacks: req_u64(v, "writebacks")?,
    })
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("report: missing integer field {key:?}"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("report: missing string field {key:?}"))
}

/// 64-bit FNV-1a over `bytes` — the fingerprint used for
/// [`Provenance::config_hash`]. Not cryptographic; it only needs to
/// make "same config?" a one-token comparison.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes
        .iter()
        .fold(OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
}

/// Resolves the current git commit by walking up from `start` to the
/// first directory containing `.git`, then reading `HEAD` (following
/// one level of `ref:` indirection, with `packed-refs` fallback). No
/// subprocess — works in sandboxes without a `git` binary.
#[must_use]
pub fn git_revision(start: &Path) -> Option<String> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        dir = d.parent();
    }
    None
}

fn read_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return Some(hash.trim().to_owned());
        }
        // Unborn or packed ref: scan packed-refs.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some((hash, name)) = line.split_once(' ') {
                if name.trim() == refname {
                    return Some(hash.trim().to_owned());
                }
            }
        }
        None
    } else {
        (!head.is_empty()).then(|| head.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut metrics = Metrics::new();
        metrics.set_counter("cache.l2.demand_misses", "refs", "L2 demand misses", 777);
        metrics.set_gauge("dram.row_hit_rate", "fraction", "row hits / requests", 0.5);
        RunReport {
            schema: RUN_REPORT_SCHEMA.to_owned(),
            version: RUN_REPORT_VERSION,
            provenance: Provenance {
                workload: "mcf".into(),
                scheme: "pMod".into(),
                refs: 100_000,
                seed: 0,
                config_hash: "deadbeefdeadbeef".into(),
                git_rev: "unknown".into(),
                wall_ms: 12.5,
                sim_cycles: 987_654,
            },
            breakdown: BreakdownSummary {
                busy: 1,
                other_stall: 2,
                mem_stall: 3,
            },
            l1: CacheSummary {
                accesses: 10,
                hits: 9,
                misses: 1,
                writes: 4,
                writebacks: 2,
            },
            l2: CacheSummary {
                accesses: 1,
                hits: 0,
                misses: 1,
                writes: 0,
                writebacks: 0,
            },
            dram: DramSummary {
                reads: 1,
                writes: 0,
                row_hits: 0,
                row_misses: 1,
                queue_cycles: 5,
            },
            metrics,
            events_recorded: 42,
            events_dropped: 0,
        }
    }

    #[test]
    fn report_round_trips_compact_and_pretty() {
        let r = sample();
        let compact = r.to_json().render();
        let pretty = r.to_json().render_pretty();
        assert_eq!(RunReport::from_json_str(&compact).unwrap(), r);
        assert_eq!(RunReport::from_json_str(&pretty).unwrap(), r);
    }

    #[test]
    fn schema_and_version_are_enforced() {
        let mut r = sample();
        r.schema = "other.schema".into();
        let text = r.to_json().render();
        assert!(RunReport::from_json_str(&text).is_err());
        let mut r = sample();
        r.version = RUN_REPORT_VERSION + 1;
        let text = r.to_json().render();
        assert!(RunReport::from_json_str(&text)
            .unwrap_err()
            .contains("newer"));
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_64(b"pMod"), fnv1a_64(b"pDisp"));
        assert_eq!(fnv1a_64(b"pMod"), fnv1a_64(b"pMod"));
    }

    #[test]
    fn git_revision_resolves_this_checkout_if_any() {
        // In a git checkout this returns a 40-hex commit; elsewhere None.
        if let Some(rev) = git_revision(Path::new(".")) {
            assert!(rev.len() >= 7, "{rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev}");
        }
    }
}
