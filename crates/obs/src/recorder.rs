//! The per-run recorder the instrumented simulators share.
//!
//! One [`Recorder`] lives for the duration of one `run_trace` call. The
//! cache hierarchy, DRAM model, and CPU each hold a clone of the same
//! [`ObsHandle`] (`Rc<RefCell<Recorder>>` — a run is single-threaded;
//! `run_sweep` builds one recorder per worker-local run) and call the
//! `#[inline]` hook methods from their hot paths. Counter hooks are
//! unconditional plain-field increments so the observed counts match the
//! simulator's own `stats.rs` aggregates bit-exactly; event tracing is
//! gated by [`ObsConfig::trace_events`] and thinned by
//! [`ObsConfig::sample_every`].

use std::cell::RefCell;
use std::rc::Rc;

use crate::events::{EventKind, EventSink, Level, ObsEvent, RingBuffer};
use crate::metrics::{Histogram, Metrics};

/// Shared handle to a run's [`Recorder`].
///
/// Cheap to clone; instrumented structures store `Option<ObsHandle>` so
/// the un-attached cost is a single branch per access.
pub type ObsHandle = Rc<RefCell<Recorder>>;

/// Runtime observability knobs (the cargo `obs` feature decides whether
/// the hooks exist at all; this decides what an attached recorder does).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Record every Nth cache-access event (1 = all). Evictions and DRAM
    /// events are rarer and always recorded. Counters ignore sampling —
    /// they are exact regardless.
    pub sample_every: u64,
    /// Ring-buffer capacity in events; the oldest are dropped (and
    /// counted) beyond this.
    pub ring_capacity: usize,
    /// Master switch for event tracing. Off: only counters accumulate.
    pub trace_events: bool,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            sample_every: 1,
            ring_capacity: 65_536,
            trace_events: false,
        }
    }
}

/// Exact counters bumped from simulation inner loops.
///
/// Plain public fields, no name lookup: the named-metric translation
/// happens once, in [`Recorder::metrics`]. Miss counts are tracked
/// directly (not derived) so equality with `CacheStats` is structural.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCounters {
    /// L1 demand accesses.
    pub l1_accesses: u64,
    /// L1 demand hits.
    pub l1_hits: u64,
    /// L1 demand misses.
    pub l1_misses: u64,
    /// L1 store accesses.
    pub l1_writes: u64,
    /// Valid blocks evicted from L1.
    pub l1_evictions: u64,
    /// Dirty blocks evicted from L1 (writebacks to L2).
    pub l1_dirty_evictions: u64,
    /// L2 demand accesses (L1 misses; excludes L1 writebacks).
    pub l2_accesses: u64,
    /// L2 demand hits.
    pub l2_hits: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// L2 demand store accesses.
    pub l2_writes: u64,
    /// Valid blocks evicted from L2.
    pub l2_evictions: u64,
    /// Dirty blocks evicted from L2 (writebacks to memory).
    pub l2_dirty_evictions: u64,
    /// DRAM read requests.
    pub dram_reads: u64,
    /// DRAM write requests.
    pub dram_writes: u64,
    /// DRAM requests that hit the open row.
    pub dram_row_hits: u64,
    /// Total cycles DRAM requests spent queued on busy banks/buses.
    pub dram_queue_cycles: u64,
}

/// Accumulates one run's observability state.
#[derive(Debug)]
pub struct Recorder {
    cfg: ObsConfig,
    now: u64,
    tick: u64,
    /// The exact hot counters (public: the integration tests compare
    /// them field-by-field with `stats.rs` aggregates).
    pub hot: HotCounters,
    l2_set_evictions: Vec<u64>,
    ring: RingBuffer,
}

impl Recorder {
    /// Creates a recorder with the given runtime config.
    #[must_use]
    pub fn new(cfg: ObsConfig) -> Recorder {
        let ring = RingBuffer::new(cfg.ring_capacity);
        Recorder {
            cfg,
            now: 0,
            tick: 0,
            hot: HotCounters::default(),
            l2_set_evictions: Vec::new(),
            ring,
        }
    }

    /// Creates a shareable handle (the form instrumented structures
    /// attach).
    #[must_use]
    pub fn handle(cfg: ObsConfig) -> ObsHandle {
        Rc::new(RefCell::new(Recorder::new(cfg)))
    }

    /// Updates the sim-time clock stamped onto subsequent events. The
    /// CPU model calls this as it retires trace events.
    #[inline]
    pub fn set_now(&mut self, t: u64) {
        self.now = t;
    }

    /// Current sim-time clock.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The runtime config this recorder was built with.
    #[must_use]
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Hook: a demand access probed `level`. Counters always; an
    /// `access` event every [`ObsConfig::sample_every`]th call when
    /// tracing is on.
    #[inline]
    pub fn cache_access(&mut self, level: Level, set: u32, hit: bool, write: bool) {
        match level {
            Level::L1 => {
                self.hot.l1_accesses += 1;
                self.hot.l1_hits += u64::from(hit);
                self.hot.l1_misses += u64::from(!hit);
                self.hot.l1_writes += u64::from(write);
            }
            Level::L2 => {
                self.hot.l2_accesses += 1;
                self.hot.l2_hits += u64::from(hit);
                self.hot.l2_misses += u64::from(!hit);
                self.hot.l2_writes += u64::from(write);
            }
        }
        if self.cfg.trace_events {
            self.tick += 1;
            if self.tick.is_multiple_of(self.cfg.sample_every.max(1)) {
                self.ring.push(ObsEvent {
                    t: self.now,
                    kind: EventKind::Access {
                        level,
                        set,
                        hit,
                        write,
                    },
                });
            }
        }
    }

    /// Hook: a valid block was evicted from `level`. Always counted;
    /// traced un-sampled when tracing is on (evictions are the signal
    /// per-set conflict analysis needs complete).
    #[inline]
    pub fn eviction(&mut self, level: Level, set: u32, dirty: bool) {
        match level {
            Level::L1 => {
                self.hot.l1_evictions += 1;
                self.hot.l1_dirty_evictions += u64::from(dirty);
            }
            Level::L2 => {
                self.hot.l2_evictions += 1;
                self.hot.l2_dirty_evictions += u64::from(dirty);
                let idx = set as usize;
                if idx >= self.l2_set_evictions.len() {
                    self.l2_set_evictions.resize(idx + 1, 0);
                }
                self.l2_set_evictions[idx] += 1;
            }
        }
        if self.cfg.trace_events {
            self.ring.push(ObsEvent {
                t: self.now,
                kind: EventKind::Eviction { level, set, dirty },
            });
        }
    }

    /// Hook: DRAM serviced a request; `queue` is the cycles it waited on
    /// busy bank/bus resources before service began.
    #[inline]
    pub fn dram_request(
        &mut self,
        channel: u32,
        bank: u32,
        row_hit: bool,
        write: bool,
        queue: u64,
    ) {
        self.hot.dram_reads += u64::from(!write);
        self.hot.dram_writes += u64::from(write);
        self.hot.dram_row_hits += u64::from(row_hit);
        self.hot.dram_queue_cycles += queue;
        if self.cfg.trace_events {
            self.ring.push(ObsEvent {
                t: self.now,
                kind: EventKind::Dram {
                    channel,
                    bank,
                    row_hit,
                    write,
                    queue,
                },
            });
        }
    }

    /// Records an arbitrary event (used for sweep-task scheduling, which
    /// bypasses counters and sampling).
    pub fn record(&mut self, ev: ObsEvent) {
        self.ring.push(ev);
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.ring.iter()
    }

    /// Total events recorded (including any later dropped by the ring).
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.ring.recorded()
    }

    /// Events lost to ring overflow.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Drains buffered events into `sink` (oldest first).
    pub fn drain_events(&mut self, sink: &mut dyn EventSink) {
        self.ring.drain_to(sink);
    }

    /// Per-set L2 eviction counts (index = statistics set).
    #[must_use]
    pub fn l2_set_evictions(&self) -> &[u64] {
        &self.l2_set_evictions
    }

    /// Converts the hot counters into the named-metric dump embedded in
    /// run reports. Names/units are documented in OBSERVABILITY.md.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        let h = &self.hot;
        let c = |m: &mut Metrics, name: &str, help: &str, v: u64| {
            m.set_counter(name, "refs", help, v);
        };
        c(
            &mut m,
            "cache.l1.accesses",
            "L1 demand accesses",
            h.l1_accesses,
        );
        c(&mut m, "cache.l1.hits", "L1 demand hits", h.l1_hits);
        c(&mut m, "cache.l1.misses", "L1 demand misses", h.l1_misses);
        c(&mut m, "cache.l1.writes", "L1 store accesses", h.l1_writes);
        m.set_counter(
            "cache.l1.evictions",
            "blocks",
            "valid blocks evicted from L1",
            h.l1_evictions,
        );
        m.set_counter(
            "cache.l1.dirty_evictions",
            "blocks",
            "dirty L1 victims written back to L2",
            h.l1_dirty_evictions,
        );
        c(
            &mut m,
            "cache.l2.demand_accesses",
            "L2 demand accesses (L1 misses)",
            h.l2_accesses,
        );
        c(&mut m, "cache.l2.demand_hits", "L2 demand hits", h.l2_hits);
        c(
            &mut m,
            "cache.l2.demand_misses",
            "L2 demand misses",
            h.l2_misses,
        );
        c(
            &mut m,
            "cache.l2.demand_writes",
            "L2 demand stores",
            h.l2_writes,
        );
        m.set_counter(
            "cache.l2.evictions",
            "blocks",
            "valid blocks evicted from L2",
            h.l2_evictions,
        );
        m.set_counter(
            "cache.l2.dirty_evictions",
            "blocks",
            "dirty L2 victims written back to memory",
            h.l2_dirty_evictions,
        );
        m.set_counter("dram.reads", "requests", "DRAM read requests", h.dram_reads);
        m.set_counter(
            "dram.writes",
            "requests",
            "DRAM write requests",
            h.dram_writes,
        );
        m.set_counter(
            "dram.row_hits",
            "requests",
            "DRAM requests hitting the open row",
            h.dram_row_hits,
        );
        m.set_counter(
            "dram.row_misses",
            "requests",
            "DRAM requests missing the open row",
            (h.dram_reads + h.dram_writes).saturating_sub(h.dram_row_hits),
        );
        m.set_counter(
            "dram.queue_cycles",
            "cycles",
            "total cycles DRAM requests queued on busy banks/buses",
            h.dram_queue_cycles,
        );
        let total_dram = h.dram_reads + h.dram_writes;
        if total_dram > 0 {
            #[allow(clippy::cast_precision_loss)]
            m.set_gauge(
                "dram.row_hit_rate",
                "fraction",
                "row-buffer hit rate",
                h.dram_row_hits as f64 / total_dram as f64,
            );
        }
        if !self.l2_set_evictions.is_empty() {
            let mut hist = Histogram::new(vec![0, 1, 4, 16, 64, 256, 1024, 4096]);
            for &n in &self.l2_set_evictions {
                hist.observe(n);
            }
            m.set_histogram(
                "cache.l2.evictions_per_set",
                "evictions",
                "distribution of eviction counts across L2 sets",
                hist,
            );
        }
        m.set_counter(
            "trace.events_recorded",
            "events",
            "events recorded into the ring buffer",
            self.events_recorded(),
        );
        m.set_counter(
            "trace.events_dropped",
            "events",
            "events dropped by ring overflow",
            self.events_dropped(),
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MemorySink;

    #[test]
    fn counters_are_exact_regardless_of_sampling() {
        let mut r = Recorder::new(ObsConfig {
            sample_every: 10,
            trace_events: true,
            ..ObsConfig::default()
        });
        for i in 0..100u32 {
            r.cache_access(Level::L2, i % 8, i % 3 == 0, false);
        }
        assert_eq!(r.hot.l2_accesses, 100);
        assert_eq!(r.hot.l2_hits, 34);
        assert_eq!(r.hot.l2_misses, 66);
        // Sampling thinned events 10:1.
        assert_eq!(r.events_recorded(), 10);
    }

    #[test]
    fn evictions_feed_the_per_set_histogram() {
        let mut r = Recorder::new(ObsConfig::default());
        r.eviction(Level::L2, 3, true);
        r.eviction(Level::L2, 3, false);
        r.eviction(Level::L1, 1, true);
        assert_eq!(r.hot.l2_evictions, 2);
        assert_eq!(r.hot.l2_dirty_evictions, 1);
        assert_eq!(r.hot.l1_dirty_evictions, 1);
        assert_eq!(r.l2_set_evictions(), &[0, 0, 0, 2]);
        let m = r.metrics();
        let h = m.histogram("cache.l2.evictions_per_set").unwrap();
        assert_eq!(h.count(), 4); // sets 0..=3
        assert_eq!(h.sum(), 2);
    }

    #[test]
    fn events_carry_the_sim_clock() {
        let mut r = Recorder::new(ObsConfig {
            trace_events: true,
            ..ObsConfig::default()
        });
        r.set_now(41);
        r.dram_request(0, 5, true, false, 7);
        let mut sink = MemorySink::default();
        r.drain_events(&mut sink);
        assert_eq!(sink.events[0].t, 41);
        assert_eq!(r.hot.dram_reads, 1);
        assert_eq!(r.hot.dram_queue_cycles, 7);
    }

    #[test]
    fn tracing_off_records_no_events_but_counts() {
        let mut r = Recorder::new(ObsConfig::default());
        r.cache_access(Level::L1, 0, true, true);
        assert_eq!(r.events_recorded(), 0);
        assert_eq!(r.hot.l1_writes, 1);
        let m = r.metrics();
        assert_eq!(m.counter("cache.l1.accesses"), Some(1));
        assert_eq!(m.counter("trace.events_dropped"), Some(0));
    }
}
