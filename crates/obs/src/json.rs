//! Minimal JSON document model: a writer and a strict parser.
//!
//! The workspace `serde` is a no-op shim (see the root `Cargo.toml`), so
//! every artifact in this repository is serialized by hand. Earlier
//! crates each grew a bespoke one-way writer (`ThroughputReport::to_json`,
//! the analyzer report); this module centralizes the idiom and adds the
//! inverse direction — a parser — so report artifacts can be loaded back,
//! diffed, and round-trip-tested.
//!
//! Integers are kept exact: `U64`/`I64` variants survive a
//! render → parse round trip bit-for-bit, which the run-report equality
//! test relies on. Floats render through Rust's shortest-round-trip
//! `{:?}` formatting, so finite `f64` values round-trip exactly too.

use std::fmt::Write as _;

/// A JSON value. Object members keep insertion order so rendered
/// artifacts are stable and diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    U64(u64),
    /// A negative integer, kept exact.
    I64(i64),
    /// A floating-point number (anything with a `.`, `e`, or `E`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the input plus a static message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl Json {
    /// Convenience constructor for an object from ordered members.
    #[must_use]
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64` if numeric (integers widen losslessly up to
    /// 2^53, which covers every counter this workspace emits).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as ordered object members.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders compact JSON (no insignificant whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders indented JSON (two spaces per level), trailing newline.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float repr and
                    // always includes a '.' or exponent — valid JSON.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf.
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first
    /// violation.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.i,
            msg,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null", "expected null").map(|()| Json::Null),
            Some(b't') => self.eat("true", "expected true").map(|()| Json::Bool(true)),
            Some(b'f') => self
                .eat("false", "expected false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.i += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.i += 1;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            let rest = &self.s[self.i..];
            let Some(&c) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not needed for our
                            // ASCII artifact vocabulary; reject them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let tail = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = tail.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.s[start..self.i]).map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("invalid float literal"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        let v = Json::Arr(vec![
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::U64(0),
            Json::F64(0.125),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn object_order_and_lookup() {
        let v = Json::obj(vec![("b", Json::U64(1)), ("a", Json::Bool(true))]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":true}");
        assert_eq!(v.get("a"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\" tab\t back\\ unicode μ";
        let v = Json::Str(s.to_owned());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, -2, 3.5, {"b": null}], "c": "x"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }
}
