//! Sim-time-stamped trace events, the bounded ring they buffer in, and
//! pluggable sinks.
//!
//! Event tracing answers the questions aggregate counters cannot: *which
//! sets* thrash under a given index function (the per-set eviction
//! streams used by the randomized-cache literature to explain index
//! behaviour), *when* DRAM banks conflict, and *how* the sweep scheduler
//! packed its tasks. Events are recorded into a fixed-capacity
//! [`RingBuffer`] — a full ring drops the oldest events and counts the
//! drops, so tracing never reallocates on the hot path — then drained to
//! an [`EventSink`]: [`JsonlSink`] for files, [`MemorySink`] for tests.

use std::collections::VecDeque;
use std::io::Write;

use crate::json::Json;

/// Which cache level an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// First-level (16 KB 2-way in the paper's Table 3 machine).
    L1,
    /// Second-level (512 KB, the level whose indexing the paper studies).
    L2,
}

impl Level {
    /// Stable lowercase name used in serialized events and metric names.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::L1 => "l1",
            Level::L2 => "l2",
        }
    }
}

/// One trace event: sim-time timestamp plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Simulation time in CPU cycles (0 for events outside a run, e.g.
    /// sweep-task scheduling).
    pub t: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// Payload of one trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A demand access probed a cache level.
    Access {
        /// Level probed.
        level: Level,
        /// Set index the address mapped to (statistics set for skewed).
        set: u32,
        /// Whether the probe hit.
        hit: bool,
        /// Whether the access was a store.
        write: bool,
    },
    /// A valid block was evicted to make room.
    Eviction {
        /// Level the victim left.
        level: Level,
        /// Set index the victim occupied.
        set: u32,
        /// Whether the victim was dirty (becomes a writeback).
        dirty: bool,
    },
    /// DRAM serviced a request.
    Dram {
        /// Channel the address mapped to.
        channel: u32,
        /// Bank within the channel.
        bank: u32,
        /// Whether the open row matched (row-buffer hit).
        row_hit: bool,
        /// Whether the request was a write.
        write: bool,
        /// Cycles the request waited on busy bank/bus resources.
        queue: u64,
    },
    /// The sweep scheduler ran one (workload, scheme) task.
    Task {
        /// Workload name.
        workload: String,
        /// Scheme label.
        scheme: String,
        /// LPT cost estimate the scheduler sorted by.
        cost: u64,
        /// Worker thread index that executed the task.
        worker: u32,
        /// Wall-clock microseconds from sweep start when the task began.
        start_us: u64,
        /// Wall-clock microseconds from sweep start when it finished.
        end_us: u64,
    },
}

impl ObsEvent {
    /// Serializes the event as one JSON object (`"ev"` is the
    /// discriminator; see OBSERVABILITY.md for the schema).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![("t", Json::U64(self.t))];
        match &self.kind {
            EventKind::Access {
                level,
                set,
                hit,
                write,
            } => {
                members.push(("ev", Json::Str("access".to_owned())));
                members.push(("level", Json::Str(level.as_str().to_owned())));
                members.push(("set", Json::U64(u64::from(*set))));
                members.push(("hit", Json::Bool(*hit)));
                members.push(("write", Json::Bool(*write)));
            }
            EventKind::Eviction { level, set, dirty } => {
                members.push(("ev", Json::Str("eviction".to_owned())));
                members.push(("level", Json::Str(level.as_str().to_owned())));
                members.push(("set", Json::U64(u64::from(*set))));
                members.push(("dirty", Json::Bool(*dirty)));
            }
            EventKind::Dram {
                channel,
                bank,
                row_hit,
                write,
                queue,
            } => {
                members.push(("ev", Json::Str("dram".to_owned())));
                members.push(("channel", Json::U64(u64::from(*channel))));
                members.push(("bank", Json::U64(u64::from(*bank))));
                members.push(("row_hit", Json::Bool(*row_hit)));
                members.push(("write", Json::Bool(*write)));
                members.push(("queue", Json::U64(*queue)));
            }
            EventKind::Task {
                workload,
                scheme,
                cost,
                worker,
                start_us,
                end_us,
            } => {
                members.push(("ev", Json::Str("task".to_owned())));
                members.push(("workload", Json::Str(workload.clone())));
                members.push(("scheme", Json::Str(scheme.clone())));
                members.push(("cost", Json::U64(*cost)));
                members.push(("worker", Json::U64(u64::from(*worker))));
                members.push(("start_us", Json::U64(*start_us)));
                members.push(("end_us", Json::U64(*end_us)));
            }
        }
        Json::obj(members)
    }
}

/// Anything that can receive drained trace events.
pub trait EventSink {
    /// Receives one event. Order of delivery is recording order.
    fn emit(&mut self, ev: &ObsEvent);
}

/// Collects events in memory — the sink tests use.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Events received, in order.
    pub events: Vec<ObsEvent>,
}

impl EventSink for MemorySink {
    fn emit(&mut self, ev: &ObsEvent) {
        self.events.push(ev.clone());
    }
}

/// Writes one compact JSON object per line (JSONL) to any writer.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `w`; every event becomes one line.
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink { w, lines: 0 }
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, ev: &ObsEvent) {
        // I/O errors here must not abort a simulation; the line count
        // lets callers detect truncation.
        if writeln!(self.w, "{}", ev.to_json().render()).is_ok() {
            self.lines += 1;
        }
    }
}

/// Fixed-capacity event buffer: overwrites oldest on overflow and counts
/// the drops.
#[derive(Debug)]
pub struct RingBuffer {
    buf: VecDeque<ObsEvent>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingBuffer {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: ObsEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
        self.recorded += 1;
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (including later-dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates buffered events oldest-first without draining.
    pub fn iter(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }

    /// Sends every buffered event to `sink` (oldest first) and empties
    /// the ring. Drop/recorded totals are kept.
    pub fn drain_to(&mut self, sink: &mut dyn EventSink) {
        for ev in self.buf.drain(..) {
            sink.emit(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(t: u64, set: u32) -> ObsEvent {
        ObsEvent {
            t,
            kind: EventKind::Access {
                level: Level::L2,
                set,
                hit: false,
                write: false,
            },
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = RingBuffer::new(2);
        for i in 0..5 {
            ring.push(access(i, 0));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 3);
        let ts: Vec<u64> = ring.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![3, 4]);
    }

    #[test]
    fn drain_preserves_order_into_memory_sink() {
        let mut ring = RingBuffer::new(8);
        ring.push(access(1, 7));
        ring.push(ObsEvent {
            t: 2,
            kind: EventKind::Dram {
                channel: 1,
                bank: 3,
                row_hit: true,
                write: false,
                queue: 12,
            },
        });
        let mut sink = MemorySink::default();
        ring.drain_to(&mut sink);
        assert!(ring.is_empty());
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].t, 1);
    }

    #[test]
    fn jsonl_sink_writes_one_parsable_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&access(9, 4));
        sink.emit(&ObsEvent {
            t: 0,
            kind: EventKind::Task {
                workload: "mcf".into(),
                scheme: "pMod".into(),
                cost: 10,
                worker: 1,
                start_us: 5,
                end_us: 25,
            },
        });
        assert_eq!(sink.lines(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).unwrap();
            assert!(v.get("ev").is_some(), "{line}");
        }
    }
}
