//! Observability layer: typed metrics, event tracing, and self-describing
//! run-report artifacts.
//!
//! The paper's whole argument is *attribution* — splitting misses into
//! conflict vs. capacity/compulsory (§4, Figs. 5–7) and execution time
//! into Busy / Other Stalls / Memory Stall (Fig. 8). This crate is how
//! the simulator exposes those attributions as first-class, machine-
//! readable signals instead of end-of-run prints:
//!
//! * [`Metrics`] — a registry of typed counters / gauges / histograms
//!   with names, units, and help text (per-level miss counts, per-set
//!   eviction histograms, DRAM row-hit and bank-wait totals, ROB-stall
//!   attribution, streaming back-pressure),
//! * [`Recorder`] + [`ObsHandle`] — the hot-path hook the cache
//!   hierarchy, DRAM model, and CPU share during one run; counters are
//!   plain field increments, and event tracing goes through a bounded
//!   [`RingBuffer`] with a runtime sampling knob ([`ObsConfig`]),
//! * [`ObsEvent`] / [`EventSink`] — sim-time-stamped trace events
//!   (cache accesses, evictions, DRAM bank activity, sweep-task
//!   scheduling) with pluggable sinks: [`JsonlSink`] for files,
//!   [`MemorySink`] for tests,
//! * [`RunReport`] — a versioned JSON artifact carrying provenance
//!   (config hash, workload, git revision, wall/sim time) plus the full
//!   metric dump, so every regenerated figure is reproducible from the
//!   artifact alone,
//! * [`Json`] — the hand-rolled JSON model (writer *and* parser) all of
//!   the above serialize through; the workspace `serde` is a no-op shim.
//!
//! Simulator crates depend on this one only under their `obs` cargo
//! feature, and every instrumented structure holds an
//! `Option<ObsHandle>`: with the feature off the code does not exist,
//! and with the feature on but nothing attached the cost is one branch
//! per access. See `OBSERVABILITY.md` at the repo root for the metric
//! and event reference.

pub mod events;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;

pub use events::{EventKind, EventSink, JsonlSink, Level, MemorySink, ObsEvent, RingBuffer};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, Metric, MetricValue, Metrics};
pub use recorder::{HotCounters, ObsConfig, ObsHandle, Recorder};
pub use report::{
    fnv1a_64, git_revision, BreakdownSummary, CacheSummary, DramSummary, Provenance, RunReport,
    RUN_REPORT_SCHEMA, RUN_REPORT_VERSION,
};
