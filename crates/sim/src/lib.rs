//! Experiment framework: machine configuration, cache-hashing schemes, run
//! drivers, and the per-table/per-figure experiments of the paper's §5.
//!
//! The public surface mirrors the paper's evaluation:
//!
//! * [`Scheme`] — the eight cache configurations compared (Base, 8-way,
//!   XOR, pMod, pDisp, SKW, skw+pDisp, FA),
//! * [`run_workload`] — one (workload, scheme) simulation returning the
//!   execution breakdown and cache statistics,
//! * [`suite`] — the full 23-application sweep with parallel fan-out and
//!   the Table-4 summary,
//! * [`experiments`] — data producers for every figure (5 through 13) and
//!   table, each returning plain data structures the bench binaries print,
//! * [`report`] — text-table rendering.
//!
//! # Examples
//!
//! ```
//! use primecache_sim::{run_workload, Scheme};
//! use primecache_workloads::by_name;
//!
//! let tree = by_name("tree").unwrap();
//! let base = run_workload(tree, Scheme::Base, 50_000);
//! let pmod = run_workload(tree, Scheme::PrimeModulo, 50_000);
//! assert!(pmod.l2.misses < base.l2.misses);
//! ```

pub mod artifact;
mod config;
pub mod experiments;
pub mod export;
#[cfg(feature = "obs")]
pub mod observe;
pub mod oracle;
pub mod report;
mod run;
pub mod suite;
pub mod tenants;
pub mod throughput;

pub use artifact::{build_report, report_for_run};
pub use config::{MachineConfig, Scheme};
pub use oracle::{static_model, SimOracle, PROBE_BITS};
pub use run::{
    run_chunks, run_recorded, run_replay, run_trace, run_trace_reference, run_workload,
    run_workload_recorded, run_workload_reference, run_workload_warm, RunResult,
};
pub use tenants::{run_tenant_mix, tenant_solo_baseline, TenantLane, TenantRun};
