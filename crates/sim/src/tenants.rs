//! Multi-tenant interleaved runs: N recorded traces time-sliced through
//! one shared hierarchy, with per-tenant cache attribution.
//!
//! The driver is two-pass so the shared run stays bit-exact with the
//! ordinary single-stream path:
//!
//! 1. **Aggregate pass** — the interleaved stream (a
//!    [`MixCursor`]) drives the unchanged chunk-batched engine via
//!    [`crate::run_chunks`]. Timing, DRAM behaviour, and the execution
//!    breakdown come from this one continuous simulation; a
//!    single-tenant mix is therefore bit-identical to [`crate::run_replay`]
//!    on the plain trace (the namespace tag is the identity for tenant
//!    0), which `tests/ingest_equivalence.rs` pins.
//! 2. **Attribution pass** — a second, cache-only walk over the *same*
//!    deterministic interleaving replays every memory reference through
//!    a fresh [`Hierarchy`] and snapshots [`CacheStats`] at each quantum
//!    boundary. Cache contents depend only on the access sequence (the
//!    clock feeds timing, not placement), so the per-tenant deltas sum
//!    to the aggregate statistics **exactly** — asserted in debug/check
//!    builds.
//!
//! The interesting output is interference: comparing a tenant's shared
//! miss count against [`tenant_solo_baseline`] (same tagged address
//! stream, no co-tenants) isolates the misses manufactured purely by
//! contention, per scheme — the multi-programmed cousin of the paper's
//! conflict-miss question.

use primecache_cache::{CacheStats, Hierarchy, NO_HINT};
use primecache_trace::Event;
use primecache_workloads::{MixCursor, MixStats, TenantMix};

use crate::run::run_chunks;
use crate::{MachineConfig, RunResult, Scheme};

/// One tenant's share of an interleaved run.
#[derive(Debug, Clone)]
pub struct TenantLane {
    /// Tenant name (the recorded trace it replays).
    pub name: String,
    /// Events this tenant issued into the mix.
    pub events: u64,
    /// Memory references (loads + stores) this tenant issued.
    pub refs: u64,
    /// Scheduling quanta this tenant received.
    pub quanta: u64,
    /// L1 statistics attributed to this tenant's quanta.
    pub l1: CacheStats,
    /// L2 demand statistics attributed to this tenant's quanta.
    pub l2: CacheStats,
}

/// Everything a multi-tenant simulation produces.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// The shared run: one continuous simulation of the interleaved
    /// stream, identical in kind to any single-stream [`RunResult`].
    pub aggregate: RunResult,
    /// Per-tenant attribution; lane `i` is tenant `i` of the mix. The
    /// lanes' cache statistics sum to `aggregate`'s field-for-field.
    pub lanes: Vec<TenantLane>,
    /// Scheduling statistics of the interleaving itself.
    pub mix: MixStats,
}

/// Runs an interleaved tenant mix under `scheme`: one shared hierarchy,
/// deterministic quantum scheduling, per-tenant attribution.
#[must_use]
pub fn run_tenant_mix(mix: &TenantMix, scheme: Scheme, machine: &MachineConfig) -> TenantRun {
    let aggregate = run_chunks(mix.cursor(), scheme, machine);
    let (stats, mix_stats) = attribute(mix.cursor(), mix.n_tenants(), scheme, machine);

    #[cfg(any(debug_assertions, feature = "check"))]
    {
        let sum = |f: fn(&LaneCache) -> &CacheStats| {
            let mut acc = f(&stats[0]).clone();
            for lane in &stats[1..] {
                add_into(&mut acc, f(lane));
            }
            acc
        };
        assert_eq!(
            sum(|l| &l.l1),
            aggregate.l1,
            "tenant L1 attribution must sum to the aggregate run"
        );
        assert_eq!(
            sum(|l| &l.l2),
            aggregate.l2,
            "tenant L2 attribution must sum to the aggregate run"
        );
    }

    let lanes = stats
        .into_iter()
        .enumerate()
        .map(|(i, lane)| TenantLane {
            name: mix.names()[i].to_owned(),
            events: mix_stats.events[i],
            refs: mix_stats.refs[i],
            quanta: lane.quanta,
            l1: lane.l1,
            l2: lane.l2,
        })
        .collect();

    TenantRun {
        aggregate,
        lanes,
        mix: mix_stats,
    }
}

/// The no-contention baseline for tenant `idx`: its tagged address
/// stream replayed *alone* through a fresh hierarchy under the same
/// scheme. Returns `(l1, l2)` statistics; the miss delta against the
/// shared lane in [`run_tenant_mix`] is pure inter-tenant interference
/// (same addresses, same scheme — only the co-tenants differ).
#[must_use]
pub fn tenant_solo_baseline(
    mix: &TenantMix,
    idx: usize,
    scheme: Scheme,
    machine: &MachineConfig,
) -> (CacheStats, CacheStats) {
    let (mut stats, _) = attribute(mix.solo_cursor(idx), 1, scheme, machine);
    let lane = stats.pop().expect("solo attribution has exactly one lane");
    (lane.l1, lane.l2)
}

/// Per-lane accumulator of the attribution pass.
struct LaneCache {
    l1: CacheStats,
    l2: CacheStats,
    quanta: u64,
}

/// The cache-only attribution pass: replays the interleaving through a
/// fresh hierarchy quantum by quantum, crediting each quantum's
/// statistics delta to the tenant that ran it. Mirrors the CPU model's
/// memory path exactly — one [`Hierarchy::access_hinted`] per load or
/// store, writebacks drained — so the hierarchy sees the identical
/// access sequence the aggregate run did.
fn attribute(
    mut cursor: MixCursor<'_>,
    n_tenants: usize,
    scheme: Scheme,
    machine: &MachineConfig,
) -> (Vec<LaneCache>, MixStats) {
    let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
    let n_l1 = hierarchy.l1_stats().set_accesses.len();
    let n_l2 = hierarchy.l2_stats().set_accesses.len();
    let mut lanes: Vec<LaneCache> = (0..n_tenants)
        .map(|_| LaneCache {
            l1: CacheStats::new(n_l1),
            l2: CacheStats::new(n_l2),
            quanta: 0,
        })
        .collect();

    let mut prev_l1 = hierarchy.l1_stats().clone();
    let mut prev_l2 = hierarchy.l2_stats().clone();
    while let Some((tenant, events)) = cursor.pull_quantum() {
        for ev in &events {
            if let Some(addr) = ev.addr() {
                let write = matches!(ev, Event::Store { .. });
                let _ = hierarchy.access_hinted(addr, write, NO_HINT);
            }
        }
        let _ = hierarchy.take_memory_writes();

        let lane = &mut lanes[tenant];
        lane.quanta += 1;
        add_delta(&mut lane.l1, hierarchy.l1_stats(), &mut prev_l1);
        add_delta(&mut lane.l2, hierarchy.l2_stats(), &mut prev_l2);
    }

    let mix_stats = cursor.mix_stats().clone();
    (lanes, mix_stats)
}

/// Adds `now - prev` into `into`, then advances `prev` to `now`.
fn add_delta(into: &mut CacheStats, now: &CacheStats, prev: &mut CacheStats) {
    into.accesses += now.accesses - prev.accesses;
    into.hits += now.hits - prev.hits;
    into.misses += now.misses - prev.misses;
    into.writes += now.writes - prev.writes;
    into.writebacks += now.writebacks - prev.writebacks;
    for (acc, (n, p)) in into
        .set_accesses
        .iter_mut()
        .zip(now.set_accesses.iter().zip(&prev.set_accesses))
    {
        *acc += n - p;
    }
    for (acc, (n, p)) in into
        .set_misses
        .iter_mut()
        .zip(now.set_misses.iter().zip(&prev.set_misses))
    {
        *acc += n - p;
    }
    *prev = now.clone();
}

/// Field-wise sum, used by the debug-build consistency assertion.
#[cfg(any(debug_assertions, feature = "check"))]
fn add_into(acc: &mut CacheStats, more: &CacheStats) {
    acc.accesses += more.accesses;
    acc.hits += more.hits;
    acc.misses += more.misses;
    acc.writes += more.writes;
    acc.writebacks += more.writebacks;
    for (a, m) in acc.set_accesses.iter_mut().zip(&more.set_accesses) {
        *a += m;
    }
    for (a, m) in acc.set_misses.iter_mut().zip(&more.set_misses) {
        *a += m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_recorded;
    use primecache_workloads::{by_name, MixConfig, TenantMix};

    fn mix2(refs: u64) -> TenantMix {
        let a = by_name("tree").unwrap().record(refs);
        let b = by_name("swim").unwrap().record(refs);
        TenantMix::new(
            vec![("tree".into(), a), ("swim".into(), b)],
            MixConfig {
                quantum_instructions: 700,
                ..MixConfig::default()
            },
        )
    }

    #[test]
    fn single_tenant_mix_matches_the_plain_replay() {
        let trace = by_name("mcf").unwrap().record(3_000);
        let machine = MachineConfig::paper_default();
        for scheme in [Scheme::Base, Scheme::PrimeModulo] {
            let plain = run_recorded(&trace, scheme, &machine);
            let mix = TenantMix::with_defaults(vec![("mcf".into(), trace.clone())]);
            let run = run_tenant_mix(&mix, scheme, &machine);
            assert_eq!(run.aggregate.breakdown, plain.breakdown);
            assert_eq!(run.aggregate.l1, plain.l1);
            assert_eq!(run.aggregate.l2, plain.l2);
            assert_eq!(run.aggregate.dram, plain.dram);
            assert_eq!(run.lanes.len(), 1);
            assert_eq!(run.lanes[0].l1, plain.l1);
            assert_eq!(run.lanes[0].l2, plain.l2);
        }
    }

    #[test]
    fn lanes_sum_to_the_aggregate() {
        let mix = mix2(2_000);
        let machine = MachineConfig::paper_default();
        let run = run_tenant_mix(&mix, Scheme::Base, &machine);
        assert_eq!(run.lanes.len(), 2);
        let l2_sum: u64 = run.lanes.iter().map(|l| l.l2.misses).sum();
        assert_eq!(l2_sum, run.aggregate.l2.misses);
        let l1_sum: u64 = run.lanes.iter().map(|l| l.l1.accesses).sum();
        assert_eq!(l1_sum, run.aggregate.l1.accesses);
        let refs: u64 = run.lanes.iter().map(|l| l.refs).sum();
        assert_eq!(refs, run.aggregate.l1.accesses);
        assert!(run.mix.switches > 0, "two tenants must actually interleave");
    }

    #[test]
    fn runs_are_deterministic() {
        let mix = mix2(1_500);
        let machine = MachineConfig::paper_default();
        let a = run_tenant_mix(&mix, Scheme::Xor, &machine);
        let b = run_tenant_mix(&mix, Scheme::Xor, &machine);
        assert_eq!(a.aggregate.l2, b.aggregate.l2);
        assert_eq!(a.mix, b.mix);
        for (x, y) in a.lanes.iter().zip(&b.lanes) {
            assert_eq!(x.l2, y.l2);
            assert_eq!(x.quanta, y.quanta);
        }
    }

    #[test]
    fn solo_baseline_is_the_same_stream_without_contention() {
        let mix = mix2(2_000);
        let machine = MachineConfig::paper_default();
        let run = run_tenant_mix(&mix, Scheme::Base, &machine);
        for (i, lane) in run.lanes.iter().enumerate() {
            let (l1, _) = tenant_solo_baseline(&mix, i, Scheme::Base, &machine);
            // Identical address stream: L1 sees one demand access per
            // memory reference regardless of co-tenants.
            assert_eq!(l1.accesses, lane.l1.accesses);
            assert_eq!(l1.accesses, lane.refs);
            // True-LRU inclusion argument: foreign interleavings can
            // only push a tenant's own blocks down the LRU stacks, so
            // its shared L1 misses never drop below its solo misses.
            assert!(
                lane.l1.misses >= l1.misses,
                "tenant {i}: shared L1 misses {} < solo {}",
                lane.l1.misses,
                l1.misses
            );
        }
    }
}
