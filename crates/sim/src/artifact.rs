//! Run-report construction: wraps a [`RunResult`] in the versioned,
//! self-describing [`RunReport`] artifact of `primecache_obs`.
//!
//! This module is always compiled — a report needs only the end-of-run
//! aggregates every build produces. The `obs` cargo feature adds the
//! [`crate::observe`] drivers, which feed the report a full metric dump
//! and event counts on top.

use std::path::Path;
use std::time::Instant;

use primecache_obs::{
    BreakdownSummary, CacheSummary, DramSummary, Metrics, Provenance, RunReport, RUN_REPORT_SCHEMA,
    RUN_REPORT_VERSION,
};
use primecache_workloads::Workload;

use crate::{run_workload, MachineConfig, RunResult, Scheme};

fn cache_summary(s: &primecache_cache::CacheStats) -> CacheSummary {
    CacheSummary {
        accesses: s.accesses,
        hits: s.hits,
        misses: s.misses,
        writes: s.writes,
        writebacks: s.writebacks,
    }
}

/// Builds a report from a finished run plus its provenance inputs.
///
/// `metrics`, `events_recorded`, and `events_dropped` come from an
/// observed run; pass `Metrics::new()` and zeros for an uninstrumented
/// one — the aggregate sections are complete either way.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn build_report(
    result: &RunResult,
    machine: &MachineConfig,
    workload: &str,
    refs: u64,
    wall_ms: f64,
    metrics: Metrics,
    events_recorded: u64,
    events_dropped: u64,
) -> RunReport {
    RunReport {
        schema: RUN_REPORT_SCHEMA.to_owned(),
        version: RUN_REPORT_VERSION,
        provenance: Provenance {
            workload: workload.to_owned(),
            scheme: result.scheme.label().to_owned(),
            refs,
            // The bundled generators are deterministic functions of the
            // workload name; there is no RNG seed to record.
            seed: 0,
            config_hash: machine.fingerprint(result.scheme),
            git_rev: primecache_obs::git_revision(Path::new("."))
                .unwrap_or_else(|| "unknown".to_owned()),
            wall_ms,
            sim_cycles: result.breakdown.total(),
        },
        breakdown: BreakdownSummary {
            busy: result.breakdown.busy,
            other_stall: result.breakdown.other_stall,
            mem_stall: result.breakdown.mem_stall,
        },
        l1: cache_summary(&result.l1),
        l2: cache_summary(&result.l2),
        dram: DramSummary {
            reads: result.dram.reads,
            writes: result.dram.writes,
            row_hits: result.dram.row_hits,
            row_misses: result.dram.row_misses,
            queue_cycles: result.dram.queue_cycles,
        },
        metrics,
        events_recorded,
        events_dropped,
    }
}

/// Runs `workload` under `scheme` on the paper's machine and returns the
/// report. Uses the uninstrumented driver — aggregates only, no metric
/// dump; [`crate::observe::observed_report`] (cargo feature `obs`) is
/// the instrumented equivalent.
#[must_use]
pub fn report_for_run(workload: &Workload, scheme: Scheme, refs: u64) -> RunReport {
    let started = Instant::now();
    let result = run_workload(workload, scheme, refs);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    build_report(
        &result,
        &MachineConfig::paper_default(),
        workload.name,
        refs,
        wall_ms,
        Metrics::new(),
        0,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_workloads::by_name;

    #[test]
    fn report_mirrors_the_run_result_bit_exactly() {
        let w = by_name("tree").unwrap();
        let report = report_for_run(w, Scheme::PrimeModulo, 10_000);
        let rerun = run_workload(w, Scheme::PrimeModulo, 10_000);
        assert_eq!(report.l2.misses, rerun.l2.misses);
        assert_eq!(report.l2.accesses, rerun.l2.accesses);
        assert_eq!(report.l1.hits, rerun.l1.hits);
        assert_eq!(report.breakdown.busy, rerun.breakdown.busy);
        assert_eq!(report.provenance.sim_cycles, rerun.breakdown.total());
        assert_eq!(report.provenance.scheme, "pMod");
    }

    #[test]
    fn report_json_round_trips_through_text() {
        let w = by_name("swim").unwrap();
        let report = report_for_run(w, Scheme::Base, 5_000);
        let text = report.to_json().render_pretty();
        let parsed = RunReport::from_json_str(&text).unwrap();
        assert_eq!(parsed, report);
    }
}
