//! CSV export of experiment data (for external plotting/analysis).
//!
//! All builders return plain CSV strings with a header row; the
//! `export_csv` binary in `primecache-bench` writes one file per figure.

use crate::experiments::StridePoint;
use crate::suite::Sweep;
use crate::Scheme;

/// Escapes a CSV field (quotes when it contains a comma/quote/newline).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// CSV of normalized execution times: `app,scheme1,scheme2,...`.
///
/// # Examples
///
/// ```
/// use primecache_sim::export::times_csv;
/// use primecache_sim::suite::run_sweep;
/// use primecache_sim::Scheme;
///
/// let sweep = run_sweep(&[Scheme::Base], 2_000);
/// let csv = times_csv(&sweep, &[Scheme::Base], &["tree"]);
/// assert!(csv.starts_with("app,Base\n"));
/// assert!(csv.contains("tree,1.0000"));
/// ```
#[must_use]
pub fn times_csv(sweep: &Sweep, schemes: &[Scheme], names: &[&str]) -> String {
    let mut out = String::from("app");
    for s in schemes {
        out.push(',');
        out.push_str(&field(s.label()));
    }
    out.push('\n');
    for &name in names {
        out.push_str(&field(name));
        for &s in schemes {
            let v = sweep.normalized_time(name, s).unwrap_or(f64::NAN);
            out.push_str(&format!(",{v:.4}"));
        }
        out.push('\n');
    }
    out
}

/// CSV of normalized L2 miss counts, same layout as [`times_csv`].
#[must_use]
pub fn misses_csv(sweep: &Sweep, schemes: &[Scheme], names: &[&str]) -> String {
    let mut out = String::from("app");
    for s in schemes {
        out.push(',');
        out.push_str(&field(s.label()));
    }
    out.push('\n');
    for &name in names {
        out.push_str(&field(name));
        for &s in schemes {
            let v = sweep.normalized_misses(name, s).unwrap_or(f64::NAN);
            out.push_str(&format!(",{v:.4}"));
        }
        out.push('\n');
    }
    out
}

/// CSV of a stride sweep (Figs. 5/6): `stride,value`.
#[must_use]
pub fn stride_csv(points: &[StridePoint]) -> String {
    let mut out = String::from("stride,value\n");
    for p in points {
        out.push_str(&format!("{},{:.6}\n", p.stride, p.value));
    }
    out
}

/// CSV of a per-set distribution (Fig. 13): `set,misses`.
#[must_use]
pub fn distribution_csv(dist: &[u64]) -> String {
    let mut out = String::from("set,misses\n");
    for (i, &m) in dist.iter().enumerate() {
        out.push_str(&format!("{i},{m}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::StridePoint;

    #[test]
    fn stride_csv_layout() {
        let csv = stride_csv(&[
            StridePoint {
                stride: 1,
                value: 1.0,
            },
            StridePoint {
                stride: 2,
                value: 3.5,
            },
        ]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "stride,value");
        assert_eq!(lines[1], "1,1.000000");
        assert_eq!(lines[2], "2,3.500000");
    }

    #[test]
    fn distribution_csv_layout() {
        let csv = distribution_csv(&[5, 0, 7]);
        assert_eq!(csv, "set,misses\n0,5\n1,0\n2,7\n");
    }

    #[test]
    fn fields_are_escaped() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
