//! Machine configuration and the compared cache schemes.

use primecache_analyze::{has_errors, lint_kind, lint_skew_disp, lint_skew_xor, Lint};
use primecache_cache::{
    bank_disp_factor, CacheConfig, HierarchyConfig, L2Organization, ReplacementKind, SkewHashKind,
    SkewedConfig,
};
use primecache_core::expr::ExprId;
use primecache_core::index::{Geometry, HashKind};
use primecache_cpu::CpuConfig;
use primecache_mem::MemConfig;
use serde::{Deserialize, Serialize};

/// The cache configurations the paper's figures compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Traditional 4-way L2 (`Base`).
    Base,
    /// Traditional 8-way same-size L2 (`8-way`, Figs. 7/8).
    EightWay,
    /// XOR-indexed 4-way L2 (`XOR`).
    Xor,
    /// Prime-modulo 4-way L2 (`pMod`).
    PrimeModulo,
    /// Prime-displacement 4-way L2 (`pDisp`).
    PrimeDisplacement,
    /// Seznec's skewed L2 with circular-shift XOR (`SKW`).
    Skewed,
    /// Skewed L2 with prime displacement per bank (`skw+pDisp`).
    SkewedPrimeDisplacement,
    /// Fully-associative same-size L2 (`FA`, Figs. 11/12).
    FullyAssociative,
    /// A user-defined index function compiled from the expression DSL
    /// (`expr:<src>` on the CLI), run as a 4-way L2. The scheme is gated
    /// by the static certificate: [`MachineConfig::check_scheme`] rejects
    /// it before simulation when the lowered model lints with errors.
    Expr(ExprId),
}

impl Scheme {
    /// All schemes, in presentation order.
    pub const ALL: [Scheme; 8] = [
        Scheme::Base,
        Scheme::EightWay,
        Scheme::Xor,
        Scheme::PrimeModulo,
        Scheme::PrimeDisplacement,
        Scheme::Skewed,
        Scheme::SkewedPrimeDisplacement,
        Scheme::FullyAssociative,
    ];

    /// The single-hash schemes of Figs. 7/8.
    pub const SINGLE_HASH: [Scheme; 5] = [
        Scheme::Base,
        Scheme::EightWay,
        Scheme::Xor,
        Scheme::PrimeModulo,
        Scheme::PrimeDisplacement,
    ];

    /// The multi-hash comparison of Figs. 9/10.
    pub const MULTI_HASH: [Scheme; 4] = [
        Scheme::Base,
        Scheme::PrimeModulo,
        Scheme::Skewed,
        Scheme::SkewedPrimeDisplacement,
    ];

    /// The miss-count comparison of Figs. 11/12.
    pub const MISS_REDUCTION: [Scheme; 5] = [
        Scheme::Base,
        Scheme::PrimeModulo,
        Scheme::PrimeDisplacement,
        Scheme::SkewedPrimeDisplacement,
        Scheme::FullyAssociative,
    ];

    /// Display label matching the paper's figures. DSL schemes report
    /// their registered expression name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Base => "Base",
            Scheme::EightWay => "8-way",
            Scheme::Xor => "XOR",
            Scheme::PrimeModulo => "pMod",
            Scheme::PrimeDisplacement => "pDisp",
            Scheme::Skewed => "SKW",
            Scheme::SkewedPrimeDisplacement => "skw+pDisp",
            Scheme::FullyAssociative => "FA",
            Scheme::Expr(id) => id.name(),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The full simulated machine (Table 3) with a scheme-selected L2.
///
/// # Examples
///
/// ```
/// use primecache_sim::{MachineConfig, Scheme};
///
/// let m = MachineConfig::paper_default();
/// let h = m.hierarchy_config(Scheme::PrimeModulo);
/// assert_eq!(h.l1.size_bytes(), 16 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Processor parameters.
    pub cpu: CpuConfig,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// L2 capacity in bytes.
    pub l2_size: u64,
    /// L2 line size in bytes.
    pub l2_line: u64,
}

impl MachineConfig {
    /// The paper's Table-3 machine.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cpu: CpuConfig::paper_default(),
            mem: MemConfig::paper_default(),
            l2_size: 512 * 1024,
            l2_line: 64,
        }
    }

    /// The L2 organization for a scheme.
    #[must_use]
    pub fn l2_organization(&self, scheme: Scheme) -> L2Organization {
        let set_assoc = |assoc: u32, hash: HashKind| {
            L2Organization::SetAssoc(
                CacheConfig::new(self.l2_size, assoc, self.l2_line)
                    .with_hash(hash)
                    .with_replacement(ReplacementKind::Lru),
            )
        };
        match scheme {
            Scheme::Base => set_assoc(4, HashKind::Traditional),
            Scheme::EightWay => set_assoc(8, HashKind::Traditional),
            Scheme::Xor => set_assoc(4, HashKind::Xor),
            Scheme::PrimeModulo => set_assoc(4, HashKind::PrimeModulo),
            Scheme::PrimeDisplacement => set_assoc(4, HashKind::PrimeDisplacement),
            Scheme::Skewed => L2Organization::Skewed(SkewedConfig::new(
                self.l2_size,
                4,
                self.l2_line,
                SkewHashKind::Xor,
            )),
            Scheme::SkewedPrimeDisplacement => L2Organization::Skewed(SkewedConfig::new(
                self.l2_size,
                4,
                self.l2_line,
                SkewHashKind::PrimeDisplacement,
            )),
            Scheme::FullyAssociative => L2Organization::FullyAssociative {
                size_bytes: self.l2_size,
                line_bytes: self.l2_line,
            },
            Scheme::Expr(id) => set_assoc(4, HashKind::Expr(id)),
        }
    }

    /// The full hierarchy configuration for a scheme (paper L1 in front).
    #[must_use]
    pub fn hierarchy_config(&self, scheme: Scheme) -> HierarchyConfig {
        HierarchyConfig::paper_default(self.l2_organization(scheme))
    }

    /// Stable fingerprint of this machine under `scheme`: the FNV-1a
    /// hash (hex) of the canonical `Debug` rendering of the machine and
    /// the hierarchy it builds. Two runs with the same fingerprint
    /// simulated the same configuration; it is the
    /// `provenance.config_hash` of run reports.
    #[must_use]
    pub fn fingerprint(&self, scheme: Scheme) -> String {
        let canonical = format!("{:?}|{:?}", self, self.hierarchy_config(scheme));
        format!("{:016x}", primecache_obs::fnv1a_64(canonical.as_bytes()))
    }

    /// Statically lints the L2 configuration a scheme would build:
    /// composite moduli, even displacement factors, rank-deficient or
    /// duplicated skew banks, documented stride hazards.
    #[must_use]
    pub fn lint_scheme(&self, scheme: Scheme) -> Vec<Lint> {
        match self.l2_organization(scheme) {
            L2Organization::SetAssoc(c) => lint_kind(c.hash(), Geometry::new(c.n_set_phys())),
            L2Organization::Skewed(c) => {
                let geom = Geometry::new(c.sets_per_bank());
                match c.hash() {
                    SkewHashKind::Xor => lint_skew_xor(geom, c.banks()),
                    SkewHashKind::PrimeDisplacement => {
                        let factors: Vec<u64> = (0..c.banks()).map(bank_disp_factor).collect();
                        lint_skew_disp(geom, &factors)
                    }
                }
            }
            L2Organization::FullyAssociative { .. } => Vec::new(),
        }
    }

    /// Runs the lint pass and panics on any error-level finding — the
    /// guard the run drivers place in front of suite construction.
    ///
    /// # Panics
    ///
    /// Panics with the joined lint messages when the scheme's L2
    /// configuration is degenerate.
    pub fn check_scheme(&self, scheme: Scheme) {
        let lints = self.lint_scheme(scheme);
        assert!(
            !has_errors(&lints),
            "degenerate {} configuration:\n{}",
            scheme.label(),
            lints
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Scheme::SkewedPrimeDisplacement.label(), "skw+pDisp");
        assert_eq!(Scheme::EightWay.to_string(), "8-way");
    }

    #[test]
    fn every_scheme_builds_a_hierarchy() {
        let m = MachineConfig::paper_default();
        for s in Scheme::ALL {
            let cfg = m.hierarchy_config(s);
            let _ = primecache_cache::Hierarchy::new(cfg);
        }
    }

    #[test]
    fn eight_way_has_double_assoc() {
        let m = MachineConfig::paper_default();
        match m.l2_organization(Scheme::EightWay) {
            L2Organization::SetAssoc(c) => {
                assert_eq!(c.assoc(), 8);
                assert_eq!(c.size_bytes(), 512 * 1024);
            }
            other => panic!("unexpected organization {other:?}"),
        }
    }

    #[test]
    fn every_scheme_lints_clean_of_errors() {
        let m = MachineConfig::paper_default();
        for s in Scheme::ALL {
            let lints = m.lint_scheme(s);
            assert!(!primecache_analyze::has_errors(&lints), "{s}: {lints:?}");
            m.check_scheme(s); // must not panic
        }
    }

    #[test]
    fn xor_scheme_carries_the_stride_warning() {
        let m = MachineConfig::paper_default();
        let lints = m.lint_scheme(Scheme::Xor);
        assert!(lints.iter().any(|l| l.code == "pathological-null-space"));
        // The paper's recommended scheme is warning-free.
        assert!(m.lint_scheme(Scheme::PrimeModulo).is_empty());
    }

    #[test]
    fn fingerprints_separate_schemes_but_not_runs() {
        let m = MachineConfig::paper_default();
        assert_eq!(
            m.fingerprint(Scheme::PrimeModulo),
            m.fingerprint(Scheme::PrimeModulo)
        );
        assert_ne!(m.fingerprint(Scheme::Base), m.fingerprint(Scheme::Xor));
        let mut bigger = m;
        bigger.l2_size *= 2;
        assert_ne!(
            m.fingerprint(Scheme::Base),
            bigger.fingerprint(Scheme::Base)
        );
    }

    #[test]
    fn scheme_groups_have_expected_sizes() {
        assert_eq!(Scheme::SINGLE_HASH.len(), 5);
        assert_eq!(Scheme::MULTI_HASH.len(), 4);
        assert_eq!(Scheme::MISS_REDUCTION.len(), 5);
    }

    #[test]
    fn expr_scheme_flows_through_the_lint_gate() {
        use primecache_core::expr::register_anonymous;
        let m = MachineConfig::paper_default();
        let good = register_anonymous("a % 2039").expect("valid expression");
        let lints = m.lint_scheme(Scheme::Expr(good));
        assert!(!primecache_analyze::has_errors(&lints), "{lints:?}");
        m.check_scheme(Scheme::Expr(good)); // must not panic
        assert_eq!(Scheme::Expr(good).label(), "expr:a % 2039");

        let bad = register_anonymous("a % 2046").expect("valid expression");
        let lints = m.lint_scheme(Scheme::Expr(bad));
        assert!(lints.iter().any(|l| l.code == "non-prime-modulus"));
    }

    #[test]
    #[should_panic(expected = "non-prime-modulus")]
    fn composite_modulus_expr_is_rejected_before_simulation() {
        let m = MachineConfig::paper_default();
        let bad = primecache_core::expr::register_anonymous("a % 2046").expect("valid expression");
        m.check_scheme(Scheme::Expr(bad));
    }
}
