//! Per-table and per-figure experiment drivers.
//!
//! Each function returns plain data; the `primecache-bench` binaries print
//! them in the paper's format and `EXPERIMENTS.md` records the comparison.

use primecache_cache::paging::{PageMapper, PagePolicy};
use primecache_cache::{Cache, CacheConfig, CacheSim, FullyAssociative, InfiniteCache};
use primecache_core::index::{Geometry, HashKind, SetIndexer};
use primecache_core::metrics::{balance, concentration, strided_addresses};
use primecache_trace::Event;
use primecache_workloads::{by_name, Workload};
use serde::{Deserialize, Serialize};

use crate::suite::{run_sweep, Sweep};
use crate::{run_trace, run_workload, MachineConfig, RunResult, Scheme};

/// Number of strided accesses used for the Fig. 5/6 metrics (a multiple of
/// the 2048-set geometry so ideal balance is attainable).
pub const METRIC_ACCESSES: usize = 8192;

/// One point of the Fig. 5/6 sweeps.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StridePoint {
    /// Stride in blocks.
    pub stride: u64,
    /// Balance (Eq. 1) or concentration (Eq. 2) value.
    pub value: f64,
}

/// Fig. 5: balance vs stride (1..=max_stride) for one hash function over
/// the paper's 2048-physical-set L2 geometry.
#[must_use]
pub fn fig5_balance(kind: HashKind, max_stride: u64) -> Vec<StridePoint> {
    stride_sweep(kind, max_stride, |idx, addrs| {
        balance(idx, addrs.iter().copied())
    })
}

/// Fig. 6: concentration vs stride for one hash function.
#[must_use]
pub fn fig6_concentration(kind: HashKind, max_stride: u64) -> Vec<StridePoint> {
    stride_sweep(kind, max_stride, |idx, addrs| {
        concentration(idx, addrs.iter().copied())
    })
}

fn stride_sweep(
    kind: HashKind,
    max_stride: u64,
    f: impl Fn(&dyn SetIndexer, &[u64]) -> f64 + Sync,
) -> Vec<StridePoint> {
    let geom = Geometry::new(2048);
    let indexer = kind.build(geom);
    (1..=max_stride)
        .map(|stride| {
            let addrs = strided_addresses(stride, METRIC_ACCESSES);
            StridePoint {
                stride,
                value: f(indexer.as_ref(), &addrs),
            }
        })
        .collect()
}

/// Figs. 7/8 (single hash) or 9/10 (multi hash): normalized execution
/// times for the given schemes across all 23 workloads.
///
/// Returns the underlying [`Sweep`]; callers split it into the
/// uniform/non-uniform halves with
/// [`primecache_workloads::non_uniform_names`].
#[must_use]
pub fn exec_time_sweep(schemes: &[Scheme], target_refs: u64) -> Sweep {
    let mut with_base: Vec<Scheme> = vec![Scheme::Base];
    with_base.extend(schemes.iter().copied().filter(|&s| s != Scheme::Base));
    run_sweep(&with_base, target_refs)
}

/// Figs. 11/12: normalized L2 miss counts for the MISS_REDUCTION schemes.
#[must_use]
pub fn miss_reduction_sweep(target_refs: u64) -> Sweep {
    run_sweep(&Scheme::MISS_REDUCTION, target_refs)
}

/// Fig. 13: distribution of L2 misses across the cache sets for `tree`
/// under one scheme. Returns per-set miss counts.
///
/// # Panics
///
/// Panics if the `tree` workload is missing from the registry.
#[must_use]
pub fn fig13_miss_distribution(scheme: Scheme, target_refs: u64) -> Vec<u64> {
    let tree = by_name("tree").expect("tree workload exists");
    run_workload(tree, scheme, target_refs).l2.set_misses
}

/// Fraction of sets carrying `share` of all misses — the Fig. 13a claim
/// ("the vast majority of cache misses … concentrated in about 10% of the
/// sets").
#[must_use]
pub fn sets_carrying_share(set_misses: &[u64], share: f64) -> f64 {
    let total: u64 = set_misses.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = set_misses.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let target = (total as f64 * share) as u64;
    let mut acc = 0u64;
    let mut sets = 0usize;
    for m in sorted {
        if acc >= target {
            break;
        }
        acc += m;
        sets += 1;
    }
    sets as f64 / set_misses.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_traditional_even_odd_split() {
        let pts = fig5_balance(HashKind::Traditional, 32);
        for p in &pts {
            if p.stride % 2 == 1 {
                assert!(p.value < 1.01, "odd stride {}: {}", p.stride, p.value);
            } else {
                assert!(p.value > 1.2, "even stride {}: {}", p.stride, p.value);
            }
        }
    }

    #[test]
    fn fig5_pmod_flat_at_one() {
        let pts = fig5_balance(HashKind::PrimeModulo, 64);
        assert!(pts.iter().all(|p| p.value < 1.02));
    }

    #[test]
    fn fig6_pmod_flat_at_zero() {
        let pts = fig6_concentration(HashKind::PrimeModulo, 64);
        assert!(pts.iter().all(|p| p.value < 1e-9), "{pts:?}");
    }

    #[test]
    fn fig6_xor_not_flat() {
        let pts = fig6_concentration(HashKind::Xor, 64);
        let nonzero = pts.iter().filter(|p| p.value > 1.0).count();
        assert!(nonzero > 32, "{nonzero} of 64 strides concentrate");
    }

    #[test]
    fn fig13_base_concentrates_misses() {
        let dist = fig13_miss_distribution(Scheme::Base, 60_000);
        let frac = sets_carrying_share(&dist, 0.9);
        assert!(
            frac < 0.25,
            "90% of tree's Base misses should sit in few sets, got {frac}"
        );
    }

    #[test]
    fn sets_carrying_share_handles_empty() {
        assert_eq!(sets_carrying_share(&[0, 0, 0], 0.9), 0.0);
    }
}

/// The three-C decomposition of a workload's L2 demand misses.
///
/// Computed over the L1-filtered access stream: compulsory misses from an
/// unbounded cache, capacity misses as the fully-associative excess over
/// compulsory, and conflict misses as the organization's excess over
/// fully-associative (clamped at zero — skewed caches occasionally beat
/// FA-LRU, as the paper notes for cg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissTaxonomy {
    /// First-touch (cold) misses.
    pub compulsory: u64,
    /// Fully-associative misses beyond compulsory.
    pub capacity: u64,
    /// Organization misses beyond fully-associative.
    pub conflict: u64,
    /// Total misses of the organization under study.
    pub total: u64,
}

impl MissTaxonomy {
    /// Conflict misses as a fraction of all misses (0 when there are no
    /// misses).
    #[must_use]
    pub fn conflict_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.conflict as f64 / self.total as f64
        }
    }
}

/// Decomposes a workload's L2 misses under `scheme` into the three Cs.
///
/// # Panics
///
/// Panics if `scheme` is [`Scheme::FullyAssociative`] (its conflict
/// component is zero by construction — pick an organization to study).
#[must_use]
pub fn miss_taxonomy(workload: &Workload, scheme: Scheme, target_refs: u64) -> MissTaxonomy {
    assert!(
        scheme != Scheme::FullyAssociative,
        "taxonomy of FA against itself is trivially zero-conflict"
    );
    let machine = MachineConfig::paper_default();
    // L1-filter the trace once, then feed the same demand stream to the
    // three reference structures.
    let mut l1 = Cache::new(CacheConfig::new(16 * 1024, 2, 32));
    let mut demand: Vec<(u64, bool)> = Vec::new();
    for ev in workload.trace(target_refs) {
        if let Some(addr) = ev.addr() {
            let write = matches!(ev, Event::Store { .. });
            if !l1.access(addr, write) {
                demand.push((addr, write));
            }
        }
    }
    let mut infinite = InfiniteCache::new(machine.l2_line);
    let mut fa = FullyAssociative::new(machine.l2_size, machine.l2_line);
    let scheme_run = run_workload(workload, scheme, target_refs);
    for &(addr, write) in &demand {
        infinite.access(addr, write);
        fa.access(addr, write);
    }
    let compulsory = infinite.stats().misses;
    let fa_misses = fa.stats().misses;
    let total = scheme_run.l2.misses;
    MissTaxonomy {
        compulsory,
        capacity: fa_misses.saturating_sub(compulsory),
        conflict: total.saturating_sub(fa_misses),
        total,
    }
}

/// Runs a workload under a scheme with its virtual addresses translated
/// through a page-allocation policy first (the L2 is physically indexed).
#[must_use]
pub fn run_workload_paged(
    workload: &Workload,
    scheme: Scheme,
    target_refs: u64,
    policy: PagePolicy,
    page_size: u64,
) -> RunResult {
    let mut mapper = PageMapper::new(policy, page_size);
    let trace: Vec<Event> = workload
        .trace(target_refs)
        .into_iter()
        .map(|ev| match ev {
            Event::Load { addr, dep } => Event::Load {
                addr: mapper.translate(addr),
                dep,
            },
            Event::Store { addr } => Event::Store {
                addr: mapper.translate(addr),
            },
            other => other,
        })
        .collect();
    run_trace(trace, scheme, &MachineConfig::paper_default())
}

#[cfg(test)]
mod taxonomy_tests {
    use super::*;
    use primecache_cache::paging::PagePolicy;

    #[test]
    fn taxonomy_components_are_consistent() {
        let tree = by_name("tree").unwrap();
        let t = miss_taxonomy(tree, Scheme::Base, 60_000);
        assert!(t.compulsory > 0);
        assert!(t.total >= t.conflict);
        assert!(t.conflict_fraction() <= 1.0);
    }

    #[test]
    fn tree_under_base_is_conflict_dominated() {
        let tree = by_name("tree").unwrap();
        let base = miss_taxonomy(tree, Scheme::Base, 120_000);
        let pmod = miss_taxonomy(tree, Scheme::PrimeModulo, 120_000);
        assert!(base.conflict_fraction() > 0.5, "Base tree: {:?}", base);
        assert!(
            pmod.conflict < base.conflict / 2,
            "pMod must remove most conflicts: {pmod:?} vs {base:?}"
        );
    }

    #[test]
    fn paged_runs_translate_deterministically() {
        let swim = by_name("swim").unwrap();
        let a = run_workload_paged(swim, Scheme::Base, 20_000, PagePolicy::Random, 4096);
        let b = run_workload_paged(swim, Scheme::Base, 20_000, PagePolicy::Random, 4096);
        assert_eq!(a.l2.misses, b.l2.misses);
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn identity_paging_matches_unpaged_run() {
        let swim = by_name("swim").unwrap();
        let paged = run_workload_paged(swim, Scheme::Base, 20_000, PagePolicy::Identity, 4096);
        let plain = run_workload(swim, Scheme::Base, 20_000);
        assert_eq!(paged.l2.misses, plain.l2.misses);
    }
}
