//! Full-suite sweeps: all 23 applications across schemes, in parallel.
//!
//! The worker protocol — an atomic claim cursor handing each task to
//! exactly one worker, results deposited into pre-sized per-task slots —
//! is [`primecache_conc::port::sweep`], instantiated here with the
//! production sync backend. The same source under the model backend is
//! verified schedule-exhaustively (`pcache conc-check`): every task runs
//! exactly once and lands in its own slot, no task is ever lost.

use std::collections::BTreeMap;

use primecache_conc::port::sweep::{claim_loop, store_slot};
use primecache_conc::sync::{AtomicUsize, Mutex};
use primecache_workloads::{all, TraceStore, TraceStoreStats, Workload};
use serde::{Deserialize, Serialize};

use crate::{run_replay, run_workload, RunResult, Scheme};

/// Results of one (workload, scheme) cell of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Workload name.
    pub workload: &'static str,
    /// Whether the workload is in the paper's non-uniform group.
    pub non_uniform: bool,
    /// The run's results.
    pub result: RunResult,
}

/// Scheduling record of one sweep task: which worker ran which cell,
/// when (µs since sweep start), and at what LPT cost priority.
/// The raw data behind `pcache trace-events --sweep` and any
/// load-balance analysis of the LPT dispatcher.
#[derive(Debug, Clone, Serialize)]
pub struct TaskRecord {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme label.
    pub scheme: &'static str,
    /// Scheduling cost the LPT order used.
    pub cost: u64,
    /// Index of the worker thread that ran the task.
    pub worker: u32,
    /// Wall-clock microseconds from sweep start to task start.
    pub start_us: u64,
    /// Wall-clock microseconds from sweep start to task end.
    pub end_us: u64,
}

/// A complete sweep: `results[workload][scheme]`.
#[derive(Debug, Default, Serialize)]
pub struct Sweep {
    /// All cells, keyed by workload then scheme label.
    pub cells: BTreeMap<&'static str, BTreeMap<&'static str, Cell>>,
    /// Per-task scheduling records, in dispatch (LPT) order.
    pub tasks: Vec<TaskRecord>,
    /// Recorded-trace store counters when the sweep ran generate-once /
    /// replay-per-scheme, `None` when every cell generated live (target
    /// above [`STORE_MAX_REFS`]).
    pub store: Option<TraceStoreStats>,
}

/// A `(workload, scheme)` cell missing from a [`Sweep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// The workload whose cell was requested.
    pub workload: String,
    /// The scheme label requested.
    pub scheme: &'static str,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep has no cell for workload {:?} under scheme {}",
            self.workload, self.scheme
        )
    }
}

impl std::error::Error for SweepError {}

impl Sweep {
    /// Looks up one cell.
    #[must_use]
    pub fn get(&self, workload: &str, scheme: Scheme) -> Option<&Cell> {
        self.cells.get(workload)?.get(scheme.label())
    }

    /// Looks up one cell, reporting *which* cell is missing instead of
    /// panicking — the error path for consumers that require a complete
    /// sweep.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepError`] naming the missing `(workload, scheme)`
    /// pair.
    pub fn require(&self, workload: &str, scheme: Scheme) -> Result<&Cell, SweepError> {
        self.get(workload, scheme).ok_or_else(|| SweepError {
            workload: workload.to_owned(),
            scheme: scheme.label(),
        })
    }

    /// Checks sweep completeness: one cell per `(workload, scheme)` pair
    /// and nothing else.
    ///
    /// [`run_sweep`] asserts this in debug builds (and in release builds
    /// with the `check` feature) before returning.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or unexpected cell.
    pub fn validate(&self, workloads: &[Workload], schemes: &[Scheme]) -> Result<(), String> {
        if self.cells.len() != workloads.len() {
            return Err(format!(
                "sweep covers {} workloads, expected {}",
                self.cells.len(),
                workloads.len()
            ));
        }
        let mut total = 0usize;
        for w in workloads {
            for &s in schemes {
                if self.get(w.name, s).is_none() {
                    return Err(format!(
                        "sweep is missing the ({}, {}) cell",
                        w.name,
                        s.label()
                    ));
                }
                total += 1;
            }
        }
        let stored: usize = self.cells.values().map(BTreeMap::len).sum();
        if stored != total {
            return Err(format!(
                "sweep stores {stored} cells, expected {total} \
                 (workloads x schemes)"
            ));
        }
        Ok(())
    }

    /// Normalized execution time of `scheme` vs `Base` for a workload
    /// (the y-axis of Figs. 7–10).
    #[must_use]
    pub fn normalized_time(&self, workload: &str, scheme: Scheme) -> Option<f64> {
        let base = self.get(workload, Scheme::Base)?;
        let cell = self.get(workload, scheme)?;
        Some(cell.result.breakdown.normalized_to(&base.result.breakdown))
    }

    /// Speedup of `scheme` vs `Base` for a workload.
    #[must_use]
    pub fn speedup(&self, workload: &str, scheme: Scheme) -> Option<f64> {
        self.normalized_time(workload, scheme).map(|n| 1.0 / n)
    }

    /// Normalized L2 miss count vs `Base` (the y-axis of Figs. 11/12).
    ///
    /// Returns `None` when either cell is absent *or* the baseline had no
    /// misses — a zero-miss baseline has no meaningful normalization, and
    /// the old `0.0` answer silently read as "the scheme eliminated every
    /// miss".
    ///
    /// ```
    /// use primecache_cache::CacheStats;
    /// use primecache_cpu::ExecBreakdown;
    /// use primecache_mem::DramStats;
    /// use primecache_sim::suite::{Cell, Sweep};
    /// use primecache_sim::{RunResult, Scheme};
    ///
    /// let cell = |scheme: Scheme, misses: u64| {
    ///     let mut l2 = CacheStats::new(16);
    ///     l2.misses = misses;
    ///     Cell {
    ///         workload: "synthetic",
    ///         non_uniform: false,
    ///         result: RunResult {
    ///             scheme,
    ///             breakdown: ExecBreakdown::default(),
    ///             l1: CacheStats::new(16),
    ///             l2,
    ///             dram: DramStats::default(),
    ///         },
    ///     }
    /// };
    /// let mut sweep = Sweep::default();
    /// let row = sweep.cells.entry("synthetic").or_default();
    /// row.insert(Scheme::Base.label(), cell(Scheme::Base, 0));
    /// row.insert(Scheme::Xor.label(), cell(Scheme::Xor, 7));
    ///
    /// // Zero-miss baseline: the ratio is undefined, so the answer is
    /// // `None` — NOT `0.0` ("every miss eliminated").
    /// assert_eq!(sweep.normalized_misses("synthetic", Scheme::Xor), None);
    /// ```
    #[must_use]
    pub fn normalized_misses(&self, workload: &str, scheme: Scheme) -> Option<f64> {
        let base = self.get(workload, Scheme::Base)?.result.l2_misses();
        let mine = self.get(workload, scheme)?.result.l2_misses();
        if base == 0 {
            return None;
        }
        Some(mine as f64 / base as f64)
    }
}

/// Relative simulation cost of one `(workload, scheme)` cell, used to
/// schedule longest tasks first (LPT): with equal-length traces the
/// dominant cost axis is the per-access work of the L2 organization —
/// the fully-associative probe scans every line, the skewed banks probe
/// one hash per way — and the tiebreaker is the workload's footprint
/// (bigger footprints miss more, and misses cost DRAM modeling work).
fn task_cost(workload: &Workload, scheme: Scheme) -> u64 {
    let scheme_weight: u64 = match scheme {
        Scheme::FullyAssociative => 8,
        Scheme::Skewed | Scheme::SkewedPrimeDisplacement => 3,
        _ => 2,
    };
    let footprint =
        primecache_workloads::profile::profile_of(workload.name).map_or(1, |p| p.footprint_bytes);
    // log2 of the footprint keeps the scheme weight dominant while still
    // ordering workloads within a scheme.
    scheme_weight * 64 + u64::from(footprint.ilog2())
}

/// Reference-target ceiling for generate-once sweeps. At the committed
/// compactness (≈2 B/event, ≈2 events/ref) a 23-workload store at this
/// target holds roughly `23 × 2M × 4 B ≈ 180 MB` — comfortably
/// in-memory. Above the ceiling [`run_sweep`] falls back to live
/// per-cell generation, which keeps peak memory O(1) in `target_refs`
/// at the cost of regenerating each trace once per scheme.
pub const STORE_MAX_REFS: u64 = 2_000_000;

/// Records all 23 workloads in parallel (one generation each, fanned
/// across cores with the same model-checked claim/slot protocol the
/// sweep itself uses) into a [`TraceStore`].
fn record_suite(workloads: &[Workload], target_refs: u64) -> TraceStore {
    let slots: Vec<Mutex<Option<(usize, primecache_trace::EncodedTrace)>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let avail = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let workers = avail.min(workloads.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let slots = &slots;
            scope.spawn(move || {
                claim_loop(next, workloads.len(), |i| {
                    store_slot(&slots[i], (i, workloads[i].record(target_refs)));
                });
            });
        }
    });
    let mut store = TraceStore::new(target_refs);
    for slot in slots {
        let (i, trace) = slot
            .into_inner()
            .expect("every dispatched recording fills its slot");
        store.insert(workloads[i].name, trace);
    }
    store
}

/// Runs `schemes` × all 23 workloads with `target_refs`-long traces,
/// fanning out across CPU cores.
///
/// Dataflow: up to [`STORE_MAX_REFS`] refs/workload the sweep first
/// *records* each workload exactly once (parallel, same-thread compact
/// encoding) into a [`TraceStore`], then every `(workload, scheme)`
/// cell replays the recording — generation cost is paid once instead of
/// once per scheme, which makes the sweep sim-bound rather than
/// generator-bound. Replay is bit-identical to live generation, so
/// results are unchanged. Beyond the ceiling, cells generate live as
/// before (O(1) memory).
///
/// Scheduling: cells are dispatched longest-cost-first (`task_cost`),
/// so a slow cell (e.g. fully-associative `charmm`) starts early instead
/// of serializing the tail of the sweep. Each task writes into its own
/// pre-sized result slot — no contended collection vector.
#[must_use]
pub fn run_sweep(schemes: &[Scheme], target_refs: u64) -> Sweep {
    // Static lint pass first: refuse to burn a 23-application sweep on a
    // degenerate L2 configuration.
    let machine = crate::MachineConfig::paper_default();
    for &s in schemes {
        machine.check_scheme(s);
    }
    // Generate-once phase: record the suite before any cell runs.
    let store = (target_refs <= STORE_MAX_REFS).then(|| record_suite(all(), target_refs));
    let mut tasks: Vec<(&'static Workload, Scheme)> = all()
        .iter()
        .flat_map(|w| schemes.iter().map(move |&s| (w, s)))
        .collect();
    tasks.sort_by_key(|&(w, s)| std::cmp::Reverse(task_cost(w, s)));
    let slots: Vec<Mutex<Option<(Cell, TaskRecord)>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let avail = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    // The clamp below keeps surplus workers from spawning at all, but a
    // grid smaller than the machine is still worth flagging: the run's
    // wall-clock won't reflect the hardware's parallelism.
    for lint in primecache_analyze::lint_sweep_shape(tasks.len(), avail) {
        eprintln!("{lint}");
    }
    let workers = avail.min(tasks.len().max(1));
    let epoch = std::time::Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let tasks = &tasks;
            let slots = &slots;
            let store = store.as_ref();
            let machine = &machine;
            scope.spawn(move || {
                claim_loop(next, tasks.len(), |i| {
                    let (w, s) = tasks[i];
                    let start_us = epoch.elapsed().as_micros() as u64;
                    let result = match store {
                        Some(store) => {
                            let cursor = store
                                .replay(w.name)
                                .expect("record phase stored every suite workload");
                            run_replay(cursor, s, machine)
                        }
                        None => run_workload(w, s, target_refs),
                    };
                    let record = TaskRecord {
                        workload: w.name,
                        scheme: s.label(),
                        cost: task_cost(w, s),
                        worker: worker as u32,
                        start_us,
                        end_us: epoch.elapsed().as_micros() as u64,
                    };
                    let cell = Cell {
                        workload: w.name,
                        non_uniform: w.expected_non_uniform,
                        result,
                    };
                    store_slot(&slots[i], (cell, record));
                });
            });
        }
    });
    let mut sweep = Sweep {
        store: store.as_ref().map(TraceStore::stats),
        ..Sweep::default()
    };
    for slot in slots {
        let (cell, record) = slot
            .into_inner()
            .expect("every dispatched task fills its slot");
        sweep.tasks.push(record);
        sweep
            .cells
            .entry(cell.workload)
            .or_default()
            .insert(cell.result.scheme.label(), cell);
    }
    #[cfg(any(debug_assertions, feature = "check"))]
    if let Err(e) = sweep.validate(all(), schemes) {
        panic!("sweep completeness violated: {e}");
    }
    sweep
}

/// One row of the paper's Table 4.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table4Row {
    /// The hashing scheme.
    pub scheme: Scheme,
    /// (min, avg, max) speedup over the uniform applications.
    pub uniform: (f64, f64, f64),
    /// (min, avg, max) speedup over the non-uniform applications.
    pub non_uniform: (f64, f64, f64),
    /// Applications slowed down by more than 1% (pathological cases).
    pub pathological: usize,
}

/// Computes Table 4 from a sweep that includes `Base` and the listed
/// schemes.
#[must_use]
pub fn table4(sweep: &Sweep, schemes: &[Scheme]) -> Vec<Table4Row> {
    let stats = |names: &[&str], scheme: Scheme| -> (f64, f64, f64) {
        let speedups: Vec<f64> = names
            .iter()
            .filter_map(|n| sweep.speedup(n, scheme))
            .collect();
        if speedups.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(0.0f64, f64::max);
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        (min, avg, max)
    };
    let uniform = primecache_workloads::uniform_names();
    let non_uniform = primecache_workloads::non_uniform_names();
    let everything: Vec<&str> = uniform.iter().chain(non_uniform.iter()).copied().collect();
    schemes
        .iter()
        .map(|&scheme| {
            let pathological = everything
                .iter()
                .filter_map(|n| sweep.speedup(n, scheme))
                .filter(|&s| s < 0.99)
                .count();
            Table4Row {
                scheme,
                uniform: stats(&uniform, scheme),
                non_uniform: stats(&non_uniform, scheme),
                pathological,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_covers_everything() {
        let sweep = run_sweep(&[Scheme::Base, Scheme::PrimeModulo], 5_000);
        assert_eq!(sweep.cells.len(), 23);
        for (name, per_scheme) in &sweep.cells {
            assert_eq!(per_scheme.len(), 2, "{name}");
        }
        assert!(sweep.normalized_time("tree", Scheme::PrimeModulo).is_some());
        // One scheduling record per cell, each internally consistent.
        assert_eq!(sweep.tasks.len(), 23 * 2);
        for t in &sweep.tasks {
            assert!(t.start_us <= t.end_us, "{t:?}");
            assert!(t.cost > 0);
        }
        // LPT: dispatch order is non-increasing in cost.
        for pair in sweep.tasks.windows(2) {
            assert!(pair[0].cost >= pair[1].cost);
        }
        // Generate-once accounting: 23 records, one replay per cell.
        let st = sweep.store.expect("small sweep serves from the store");
        assert_eq!(st.records, 23);
        assert_eq!(st.replays, 23 * 2);
        assert_eq!(st.target_refs, 5_000);
        assert!(st.encoded_bytes > 0);
        assert!(st.events > 0);
    }

    #[test]
    fn store_served_cells_match_live_generation() {
        // The replayed sweep must be bit-identical to per-cell live
        // generation — the sweep-level face of the replay_equivalence
        // battery.
        let sweep = run_sweep(&[Scheme::Base, Scheme::Xor], 4_000);
        for name in ["tree", "mcf", "swim"] {
            for s in [Scheme::Base, Scheme::Xor] {
                let live = run_workload(primecache_workloads::by_name(name).unwrap(), s, 4_000);
                let cell = sweep.get(name, s).expect("cell present");
                assert_eq!(
                    cell.result.breakdown,
                    live.breakdown,
                    "{name}/{}",
                    s.label()
                );
                assert_eq!(cell.result.l1, live.l1, "{name}/{}", s.label());
                assert_eq!(cell.result.l2, live.l2, "{name}/{}", s.label());
                assert_eq!(cell.result.dram, live.dram, "{name}/{}", s.label());
            }
        }
    }

    #[test]
    fn table4_has_one_row_per_scheme() {
        let sweep = run_sweep(&[Scheme::Base, Scheme::PrimeModulo], 5_000);
        let rows = table4(&sweep, &[Scheme::PrimeModulo]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.non_uniform.0 <= r.non_uniform.1 && r.non_uniform.1 <= r.non_uniform.2);
    }

    #[test]
    fn parallel_sweeps_are_deterministic() -> Result<(), SweepError> {
        // The fan-out must not introduce ordering nondeterminism.
        let a = run_sweep(&[Scheme::Base, Scheme::Xor], 4_000);
        let b = run_sweep(&[Scheme::Base, Scheme::Xor], 4_000);
        for w in primecache_workloads::all() {
            for s in [Scheme::Base, Scheme::Xor] {
                assert_eq!(
                    a.require(w.name, s)?.result.l2.misses,
                    b.require(w.name, s)?.result.l2.misses,
                    "{}/{}",
                    w.name,
                    s.label()
                );
                assert_eq!(
                    a.require(w.name, s)?.result.breakdown,
                    b.require(w.name, s)?.result.breakdown
                );
            }
        }
        Ok(())
    }

    #[test]
    fn base_normalizes_to_one() -> Result<(), SweepError> {
        let sweep = run_sweep(&[Scheme::Base], 5_000);
        for w in ["swim", "tree", "mcf"] {
            let n = sweep
                .normalized_time(w, Scheme::Base)
                .ok_or_else(|| SweepError {
                    workload: w.to_owned(),
                    scheme: Scheme::Base.label(),
                })?;
            assert!((n - 1.0).abs() < 1e-12, "{w}: {n}");
        }
        Ok(())
    }

    #[test]
    fn require_names_the_missing_cell() {
        let sweep = Sweep::default();
        let err = sweep.require("tree", Scheme::Xor).unwrap_err();
        assert_eq!(err.workload, "tree");
        assert_eq!(err.scheme, Scheme::Xor.label());
        assert!(err.to_string().contains("tree"));
    }

    #[test]
    fn normalized_misses_is_none_on_zero_miss_baseline() {
        // A baseline with zero misses must yield None, not a silent 0.0
        // that reads as "every miss eliminated".
        let mut sweep = run_sweep(&[Scheme::Base, Scheme::Xor], 4_000);
        let name = {
            let (&name, per_scheme) = sweep.cells.iter_mut().next().expect("non-empty sweep");
            let base = per_scheme
                .get_mut(Scheme::Base.label())
                .expect("base cell present");
            base.result.l2.misses = 0;
            base.result.l2.hits = base.result.l2.accesses;
            name
        };
        assert_eq!(sweep.normalized_misses(name, Scheme::Xor), None);
    }

    #[test]
    fn sweep_validate_fires_on_seeded_missing_cell() {
        let mut sweep = run_sweep(&[Scheme::Base, Scheme::Xor], 4_000);
        let schemes = [Scheme::Base, Scheme::Xor];
        assert_eq!(sweep.validate(all(), &schemes), Ok(()));
        // Corrupt: drop one scheme cell from one workload.
        sweep
            .cells
            .get_mut("tree")
            .expect("tree present")
            .remove(Scheme::Xor.label());
        let err = sweep.validate(all(), &schemes).unwrap_err();
        assert!(err.contains("(tree, XOR)"), "{err}");
    }
}
