//! Single-run driver.

use primecache_cache::{CacheStats, Hierarchy};
use primecache_cpu::{Cpu, ExecBreakdown};
use primecache_mem::{Dram, DramStats};
use primecache_trace::Event;
use primecache_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::{MachineConfig, Scheme};

/// Everything one simulation produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Execution-time breakdown (Figs. 7–10).
    pub breakdown: ExecBreakdown,
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 demand statistics (Figs. 11–13 count these misses).
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
}

impl RunResult {
    /// L2 demand misses — the paper's miss metric.
    #[must_use]
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses
    }
}

/// Runs an explicit trace under a scheme on the paper's machine.
#[must_use]
pub fn run_trace(trace: Vec<Event>, scheme: Scheme, machine: &MachineConfig) -> RunResult {
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
    let mut dram = Dram::new(machine.mem);
    let mut cpu = Cpu::new(machine.cpu);
    let breakdown = cpu.run(trace, &mut hierarchy, &mut dram);
    RunResult {
        scheme,
        breakdown,
        l1: hierarchy.l1_stats().clone(),
        l2: hierarchy.l2_stats().clone(),
        dram: *dram.stats(),
    }
}

/// Runs a workload under a scheme on the paper's default machine.
///
/// `target_refs` controls the trace length (memory references).
///
/// # Examples
///
/// ```
/// use primecache_sim::{run_workload, Scheme};
/// use primecache_workloads::by_name;
///
/// let r = run_workload(by_name("swim").unwrap(), Scheme::Base, 20_000);
/// assert!(r.breakdown.total() > 0);
/// ```
#[must_use]
pub fn run_workload(workload: &Workload, scheme: Scheme, target_refs: u64) -> RunResult {
    run_trace(
        workload.trace(target_refs),
        scheme,
        &MachineConfig::paper_default(),
    )
}

/// Runs a workload with a warmup phase: the first `warm_refs` memory
/// references fill the caches and open the DRAM rows, then every
/// statistic (and the cycle clock) resets and only the next
/// `measure_refs` references are measured — excluding compulsory misses
/// from the figures, as steady-state methodology prescribes.
///
/// # Examples
///
/// ```
/// use primecache_sim::{run_workload_warm, Scheme};
/// use primecache_workloads::by_name;
///
/// let r = run_workload_warm(by_name("tree").unwrap(), Scheme::PrimeModulo, 20_000, 20_000);
/// assert!(r.l1.accesses >= 20_000);
/// ```
#[must_use]
pub fn run_workload_warm(
    workload: &Workload,
    scheme: Scheme,
    warm_refs: u64,
    measure_refs: u64,
) -> RunResult {
    let machine = MachineConfig::paper_default();
    let trace = workload.trace(warm_refs + measure_refs);
    // Split at the event where `warm_refs` memory references have passed.
    let mut seen = 0u64;
    let split = trace
        .iter()
        .position(|e| {
            if e.is_memory() {
                seen += 1;
            }
            seen >= warm_refs
        })
        .map_or(trace.len(), |i| i + 1);
    let (warm, measure) = trace.split_at(split);

    let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
    let mut dram = Dram::new(machine.mem);
    let mut cpu = Cpu::new(machine.cpu);
    let _ = cpu.run(warm.to_vec(), &mut hierarchy, &mut dram);
    hierarchy.reset_stats();
    dram.new_epoch();
    let breakdown = cpu.run(measure.to_vec(), &mut hierarchy, &mut dram);
    RunResult {
        scheme,
        breakdown,
        l1: hierarchy.l1_stats().clone(),
        l2: hierarchy.l2_stats().clone(),
        dram: *dram.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_workloads::by_name;

    #[test]
    fn run_produces_consistent_stats() {
        let r = run_workload(by_name("swim").unwrap(), Scheme::Base, 20_000);
        assert!(r.l1.accesses >= 20_000);
        assert_eq!(r.l2.hits + r.l2.misses, r.l2.accesses);
        assert!(r.breakdown.total() > 0);
    }

    #[test]
    fn tree_pmod_beats_base() {
        let tree = by_name("tree").unwrap();
        let base = run_workload(tree, Scheme::Base, 60_000);
        let pmod = run_workload(tree, Scheme::PrimeModulo, 60_000);
        assert!(
            pmod.l2_misses() * 2 < base.l2_misses(),
            "pMod {} vs Base {}",
            pmod.l2_misses(),
            base.l2_misses()
        );
        assert!(pmod.breakdown.total() < base.breakdown.total());
    }

    #[test]
    fn warm_runs_exclude_cold_misses() {
        let tree = by_name("tree").unwrap();
        let cold = run_workload(tree, Scheme::PrimeModulo, 60_000);
        let warm = run_workload_warm(tree, Scheme::PrimeModulo, 60_000, 60_000);
        // Warmed pMod tree is nearly all hits: its measured miss rate must
        // be far below the cold-start run's.
        assert!(
            warm.l2.miss_rate() < cold.l2.miss_rate() / 2.0,
            "warm {} vs cold {}",
            warm.l2.miss_rate(),
            cold.l2.miss_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let w = by_name("mcf").unwrap();
        let a = run_workload(w, Scheme::Xor, 10_000);
        let b = run_workload(w, Scheme::Xor, 10_000);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.l2.misses, b.l2.misses);
    }
}
