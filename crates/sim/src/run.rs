//! Single-run driver.

use primecache_cache::{CacheStats, Hierarchy};
use primecache_cpu::{Cpu, ExecBreakdown};
use primecache_mem::{Dram, DramStats};
use primecache_trace::Event;
use primecache_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::{MachineConfig, Scheme};

/// Everything one simulation produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Execution-time breakdown (Figs. 7–10).
    pub breakdown: ExecBreakdown,
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 demand statistics (Figs. 11–13 count these misses).
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
}

impl RunResult {
    /// L2 demand misses — the paper's miss metric.
    #[must_use]
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses
    }
}

/// Runs an explicit event stream under a scheme on the paper's machine.
///
/// Accepts anything iterable — a materialized `Vec<Event>` or a lazy
/// [`primecache_workloads::EventStream`] — so peak memory can stay O(1)
/// in trace length.
#[must_use]
pub fn run_trace<T>(trace: T, scheme: Scheme, machine: &MachineConfig) -> RunResult
where
    T: IntoIterator<Item = Event>,
{
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
    let mut dram = Dram::new(machine.mem);
    let mut cpu = Cpu::new(machine.cpu);
    let breakdown = cpu.run(trace, &mut hierarchy, &mut dram);
    RunResult {
        scheme,
        breakdown,
        l1: hierarchy.l1_stats().clone(),
        l2: hierarchy.l2_stats().clone(),
        dram: *dram.stats(),
    }
}

/// Runs a workload under a scheme on the paper's default machine.
///
/// `target_refs` controls the trace length (memory references). The
/// trace is streamed from a generator thread, never materialized.
///
/// # Examples
///
/// ```
/// use primecache_sim::{run_workload, Scheme};
/// use primecache_workloads::by_name;
///
/// let r = run_workload(by_name("swim").unwrap(), Scheme::Base, 20_000);
/// assert!(r.breakdown.total() > 0);
/// ```
#[must_use]
pub fn run_workload(workload: &Workload, scheme: Scheme, target_refs: u64) -> RunResult {
    run_trace(
        workload.events(target_refs),
        scheme,
        &MachineConfig::paper_default(),
    )
}

/// Runs a workload with a warmup phase: the first `warm_refs` memory
/// references fill the caches and open the DRAM rows, then every
/// statistic (and the cycle clock) resets and only the next
/// `measure_refs` references are measured — excluding compulsory misses
/// from the figures, as steady-state methodology prescribes.
///
/// The warm/measure boundary is a mid-stream stat reset on one
/// continuous event stream: no combined `warm + measure` trace is ever
/// built in memory.
///
/// # Examples
///
/// ```
/// use primecache_sim::{run_workload_warm, Scheme};
/// use primecache_workloads::by_name;
///
/// let r = run_workload_warm(by_name("tree").unwrap(), Scheme::PrimeModulo, 20_000, 20_000);
/// assert!(r.l1.accesses >= 20_000);
/// ```
#[must_use]
pub fn run_workload_warm(
    workload: &Workload,
    scheme: Scheme,
    warm_refs: u64,
    measure_refs: u64,
) -> RunResult {
    let machine = MachineConfig::paper_default();
    let mut stream = workload.events(warm_refs + measure_refs);

    let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
    let mut dram = Dram::new(machine.mem);
    let mut cpu = Cpu::new(machine.cpu);

    // Warm phase: pull events off the shared stream until `warm_refs`
    // memory references have passed. The boundary falls immediately
    // *after* the event that completes the `warm_refs`-th reference,
    // exactly where the old split-a-materialized-Vec implementation cut.
    let mut seen = 0u64;
    let mut boundary = false;
    let warm = std::iter::from_fn(|| {
        if boundary {
            return None;
        }
        let ev = stream.next()?;
        if ev.is_memory() {
            seen += 1;
        }
        if seen >= warm_refs {
            boundary = true;
        }
        Some(ev)
    });
    let _ = cpu.run(warm, &mut hierarchy, &mut dram);

    // Mid-stream reset: statistics and the cycle clock restart, cache
    // and DRAM *state* (tags, LRU, open rows) carries over.
    hierarchy.reset_stats();
    dram.new_epoch();

    let breakdown = cpu.run(&mut stream, &mut hierarchy, &mut dram);
    RunResult {
        scheme,
        breakdown,
        l1: hierarchy.l1_stats().clone(),
        l2: hierarchy.l2_stats().clone(),
        dram: *dram.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_workloads::by_name;

    #[test]
    fn run_produces_consistent_stats() {
        let r = run_workload(by_name("swim").unwrap(), Scheme::Base, 20_000);
        assert!(r.l1.accesses >= 20_000);
        assert_eq!(r.l2.hits + r.l2.misses, r.l2.accesses);
        assert!(r.breakdown.total() > 0);
    }

    #[test]
    fn tree_pmod_beats_base() {
        let tree = by_name("tree").unwrap();
        let base = run_workload(tree, Scheme::Base, 60_000);
        let pmod = run_workload(tree, Scheme::PrimeModulo, 60_000);
        assert!(
            pmod.l2_misses() * 2 < base.l2_misses(),
            "pMod {} vs Base {}",
            pmod.l2_misses(),
            base.l2_misses()
        );
        assert!(pmod.breakdown.total() < base.breakdown.total());
    }

    #[test]
    fn warm_runs_exclude_cold_misses() {
        let tree = by_name("tree").unwrap();
        let cold = run_workload(tree, Scheme::PrimeModulo, 60_000);
        let warm = run_workload_warm(tree, Scheme::PrimeModulo, 60_000, 60_000);
        // Warmed pMod tree is nearly all hits: its measured miss rate must
        // be far below the cold-start run's.
        assert!(
            warm.l2.miss_rate() < cold.l2.miss_rate() / 2.0,
            "warm {} vs cold {}",
            warm.l2.miss_rate(),
            cold.l2.miss_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let w = by_name("mcf").unwrap();
        let a = run_workload(w, Scheme::Xor, 10_000);
        let b = run_workload(w, Scheme::Xor, 10_000);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.l2.misses, b.l2.misses);
    }

    /// The pre-streaming `run_workload_warm` materialized the combined
    /// trace and split it at the warm boundary. Reproduce that path here
    /// and assert the mid-stream-reset implementation is bit-identical.
    fn warm_via_materialized_split(
        workload: &primecache_workloads::Workload,
        scheme: Scheme,
        warm_refs: u64,
        measure_refs: u64,
    ) -> RunResult {
        let machine = MachineConfig::paper_default();
        let trace = workload.trace(warm_refs + measure_refs);
        let mut seen = 0u64;
        let split = trace
            .iter()
            .position(|e| {
                if e.is_memory() {
                    seen += 1;
                }
                seen >= warm_refs
            })
            .map_or(trace.len(), |i| i + 1);
        let (warm, measure) = trace.split_at(split);

        let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
        let mut dram = Dram::new(machine.mem);
        let mut cpu = Cpu::new(machine.cpu);
        let _ = cpu.run(warm.to_vec(), &mut hierarchy, &mut dram);
        hierarchy.reset_stats();
        dram.new_epoch();
        let breakdown = cpu.run(measure.to_vec(), &mut hierarchy, &mut dram);
        RunResult {
            scheme,
            breakdown,
            l1: hierarchy.l1_stats().clone(),
            l2: hierarchy.l2_stats().clone(),
            dram: *dram.stats(),
        }
    }

    #[test]
    fn warm_stream_reset_matches_legacy_split_path() {
        for (name, scheme, warm, measure) in [
            ("tree", Scheme::PrimeModulo, 20_000, 20_000),
            ("mcf", Scheme::Base, 5_000, 15_000),
            ("swim", Scheme::Xor, 0, 10_000), // zero-warm edge case
        ] {
            let w = by_name(name).unwrap();
            let streamed = run_workload_warm(w, scheme, warm, measure);
            let legacy = warm_via_materialized_split(w, scheme, warm, measure);
            assert_eq!(
                streamed.breakdown, legacy.breakdown,
                "{name}/{scheme:?}: breakdown diverges"
            );
            assert_eq!(streamed.l1, legacy.l1, "{name}/{scheme:?}: L1 diverges");
            assert_eq!(streamed.l2, legacy.l2, "{name}/{scheme:?}: L2 diverges");
            assert_eq!(
                streamed.dram, legacy.dram,
                "{name}/{scheme:?}: DRAM diverges"
            );
        }
    }

    #[test]
    fn streamed_run_matches_materialized_run() {
        let machine = MachineConfig::paper_default();
        for name in ["tree", "swim", "cg"] {
            let w = by_name(name).unwrap();
            let streamed = run_trace(w.events(15_000), Scheme::PrimeModulo, &machine);
            let materialized = run_trace(w.trace(15_000), Scheme::PrimeModulo, &machine);
            assert_eq!(streamed.breakdown, materialized.breakdown, "{name}");
            assert_eq!(streamed.l2, materialized.l2, "{name}");
        }
    }
}
