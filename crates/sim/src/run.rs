//! Single-run driver.
//!
//! The public entry points ([`run_trace`], [`run_workload`],
//! [`run_workload_warm`]) dispatch **once** per run on the scheme's L2
//! organization and hash kind, then hand the whole trace to a driver
//! monomorphized over the concrete cache and index-function types — no
//! per-reference `dyn` dispatch on the hot path. The streamed drivers
//! additionally precompute L2 set indexes a chunk at a time
//! ([`primecache_workloads::EventStream::next_chunk`]) and pass them to
//! the hierarchy as hints.
//!
//! All drivers are bit-identical to the dynamically-dispatched
//! reference path, kept as [`run_trace_reference`]; the
//! `batched_equivalence` integration test proves it per workload and
//! scheme (stats, writeback order, fingerprints).

use primecache_cache::{
    bank_disp_factor, Cache, CacheStats, FullyAssociative, Hierarchy, HierarchyConfig,
    L2Organization, L2Sim, SkewHashKind, SkewedCache, NO_HINT,
};
use primecache_core::index::{
    Geometry, HashKind, PrimeDisplacement, PrimeModulo, SetIndexer, SkewDispBank, SkewXorBank,
    Traditional, Xor,
};
use primecache_cpu::{Cpu, ExecBreakdown};
use primecache_mem::{Dram, DramStats};
use primecache_trace::{EncodedTrace, Event, ReplayCursor};
use primecache_workloads::{EventChunks, Workload};
use serde::{Deserialize, Serialize};

use crate::{MachineConfig, Scheme};

/// Everything one simulation produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Execution-time breakdown (Figs. 7–10).
    pub breakdown: ExecBreakdown,
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 demand statistics (Figs. 11–13 count these misses).
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
}

impl RunResult {
    /// L2 demand misses — the paper's miss metric.
    #[must_use]
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses
    }
}

/// Per-scheme L2 set-index precomputation for the batched drivers.
///
/// The hinter owns a copy of the *same* index function the L2 cache was
/// built with, so a hint is exactly the value the cache would compute
/// (debug builds assert this inside the cache).
trait L2Hint {
    /// The L2 set index of a block address, or [`NO_HINT`] when the
    /// organization has no single per-access set (skewed, FA).
    fn l2_hint(&self, block: u64) -> u32;
}

/// No precomputation: skewed and fully-associative L2s probe all their
/// candidate locations anyway.
struct NoHint;

impl L2Hint for NoHint {
    #[inline]
    fn l2_hint(&self, _block: u64) -> u32 {
        NO_HINT
    }
}

/// Precomputes set indexes with a concrete index function (the
/// set-associative schemes).
struct IndexHint<I: SetIndexer>(I);

impl<I: SetIndexer> L2Hint for IndexHint<I> {
    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn l2_hint(&self, block: u64) -> u32 {
        // Lossless: cache constructors reject >= 2^32-set configurations,
        // and this is a copy of the cache's own index function.
        let set = self.0.index(block);
        debug_assert!(set < u64::from(NO_HINT), "set {set} out of hint range");
        set as u32
    }
}

/// `(event, L2 set hint)` pairs pulled chunk-at-a-time from any
/// [`EventChunks`] source — a live `EventStream` or a recorded
/// [`ReplayCursor`]: each chunk's set indexes are computed in one batch
/// pass before any event is simulated.
struct HintedChunks<S: EventChunks, H: L2Hint> {
    stream: S,
    hinter: H,
    l2_line_shift: u32,
    buf: std::vec::IntoIter<(Event, u32)>,
}

impl<S: EventChunks, H: L2Hint> HintedChunks<S, H> {
    fn new(stream: S, hinter: H, l2_line_bytes: u64) -> Self {
        Self {
            stream,
            hinter,
            l2_line_shift: l2_line_bytes.trailing_zeros(),
            buf: Vec::new().into_iter(),
        }
    }
}

impl<S: EventChunks, H: L2Hint> Iterator for HintedChunks<S, H> {
    type Item = (Event, u32);

    fn next(&mut self) -> Option<(Event, u32)> {
        loop {
            if let Some(pair) = self.buf.next() {
                return Some(pair);
            }
            let chunk = self.stream.pull_chunk()?;
            let shift = self.l2_line_shift;
            let hinted: Vec<(Event, u32)> = chunk
                .into_iter()
                .map(|ev| {
                    let hint = ev
                        .addr()
                        .map_or(NO_HINT, |a| self.hinter.l2_hint(a >> shift));
                    (ev, hint)
                })
                .collect();
            self.buf = hinted.into_iter();
        }
    }
}

/// One monomorphized run request; [`dispatch`] resolves the scheme's L2
/// and hinter types once and calls [`DriverOp::exec`] with them.
trait DriverOp {
    fn exec<X: L2Sim, H: L2Hint>(self, hcfg: HierarchyConfig, l2: X, hinter: H) -> RunResult;
}

/// Resolves `scheme` to concrete L2 cache + hinter types and runs `op`
/// monomorphized over them. This is the once-per-run dispatch that
/// replaces per-reference `Box<dyn SetIndexer>` calls.
fn dispatch<Op: DriverOp>(machine: &MachineConfig, scheme: Scheme, op: Op) -> RunResult {
    let hcfg = machine.hierarchy_config(scheme);
    match hcfg.l2 {
        L2Organization::SetAssoc(cfg) => {
            let geom = Geometry::new(cfg.n_set_phys());
            match cfg.hash() {
                HashKind::Traditional => {
                    let ix = Traditional::new(geom);
                    op.exec(hcfg, Cache::with_typed(cfg, ix), IndexHint(ix))
                }
                HashKind::Xor => {
                    let ix = Xor::new(geom);
                    op.exec(hcfg, Cache::with_typed(cfg, ix), IndexHint(ix))
                }
                HashKind::PrimeModulo => {
                    let ix = PrimeModulo::new(geom);
                    op.exec(hcfg, Cache::with_typed(cfg, ix), IndexHint(ix))
                }
                HashKind::PrimeDisplacement => {
                    let ix = PrimeDisplacement::paper_default(geom);
                    op.exec(hcfg, Cache::with_typed(cfg, ix), IndexHint(ix))
                }
                HashKind::Expr(id) => {
                    let ix = id.indexer();
                    op.exec(hcfg, Cache::with_typed(cfg, ix), IndexHint(ix))
                }
            }
        }
        L2Organization::Skewed(cfg) => match cfg.hash() {
            SkewHashKind::Xor => op.exec(
                hcfg,
                SkewedCache::with_banks(cfg, |b, g| SkewXorBank::new(g, b)),
                NoHint,
            ),
            SkewHashKind::PrimeDisplacement => op.exec(
                hcfg,
                SkewedCache::with_banks(cfg, |b, g| SkewDispBank::new(g, bank_disp_factor(b))),
                NoHint,
            ),
        },
        L2Organization::FullyAssociative {
            size_bytes,
            line_bytes,
        } => op.exec(hcfg, FullyAssociative::new(size_bytes, line_bytes), NoHint),
    }
}

/// Builds the L1 for a hierarchy: monomorphized [`Traditional`] for the
/// paper's L1 (always traditional indexing), boxed otherwise, then runs
/// `and_then` with the assembled hierarchy.
fn with_hierarchy<X, R>(
    hcfg: HierarchyConfig,
    l2: X,
    and_then: impl FnOnce(HierarchyDispatch<X>) -> R,
) -> R
where
    X: L2Sim,
{
    if hcfg.l1.hash() == HashKind::Traditional {
        let l1 = Cache::with_typed(
            hcfg.l1,
            Traditional::new(Geometry::new(hcfg.l1.n_set_phys())),
        );
        and_then(HierarchyDispatch::Mono(Hierarchy::with_parts(hcfg, l1, l2)))
    } else {
        and_then(HierarchyDispatch::BoxedL1(Hierarchy::with_parts(
            hcfg,
            Cache::new(hcfg.l1),
            l2,
        )))
    }
}

/// The two L1 shapes [`with_hierarchy`] can produce.
enum HierarchyDispatch<X: L2Sim> {
    Mono(Hierarchy<X, Traditional>),
    BoxedL1(Hierarchy<X, Box<dyn SetIndexer>>),
}

/// Runs one hinted event sequence to completion and packages the result.
fn drive<X>(
    machine: &MachineConfig,
    scheme: Scheme,
    hcfg: HierarchyConfig,
    l2: X,
    trace: impl IntoIterator<Item = (Event, u32)>,
) -> RunResult
where
    X: L2Sim,
{
    with_hierarchy(hcfg, l2, |mut hd| {
        let mut dram = Dram::new(machine.mem);
        let mut cpu = Cpu::new(machine.cpu);
        let (breakdown, l1, l2, dram_stats) = match &mut hd {
            HierarchyDispatch::Mono(h) => {
                let b = cpu.run_hinted(trace, h, &mut dram);
                (b, h.l1_stats().clone(), h.l2_stats().clone(), *dram.stats())
            }
            HierarchyDispatch::BoxedL1(h) => {
                let b = cpu.run_hinted(trace, h, &mut dram);
                (b, h.l1_stats().clone(), h.l2_stats().clone(), *dram.stats())
            }
        };
        RunResult {
            scheme,
            breakdown,
            l1,
            l2,
            dram: dram_stats,
        }
    })
}

/// [`run_trace`]'s op: drive an arbitrary event iterator (monomorphized
/// caches, no batching — hints need chunked input).
struct TraceOp<'m, T> {
    trace: T,
    machine: &'m MachineConfig,
    scheme: Scheme,
}

impl<T: IntoIterator<Item = Event>> DriverOp for TraceOp<'_, T> {
    fn exec<X: L2Sim, H: L2Hint>(self, hcfg: HierarchyConfig, l2: X, _hinter: H) -> RunResult {
        drive(
            self.machine,
            self.scheme,
            hcfg,
            l2,
            self.trace.into_iter().map(|ev| (ev, NO_HINT)),
        )
    }
}

/// [`run_workload`]'s / [`run_replay`]'s op: drive any [`EventChunks`]
/// source chunk-batched, with per-chunk L2 set-index precomputation.
struct StreamOp<'m, S: EventChunks> {
    stream: S,
    machine: &'m MachineConfig,
    scheme: Scheme,
}

impl<S: EventChunks> DriverOp for StreamOp<'_, S> {
    fn exec<X: L2Sim, H: L2Hint>(self, hcfg: HierarchyConfig, l2: X, hinter: H) -> RunResult {
        let line = l2_line_bytes(&hcfg.l2);
        let hinted = HintedChunks::new(self.stream, hinter, line);
        drive(self.machine, self.scheme, hcfg, l2, hinted)
    }
}

/// [`run_workload_warm`]'s op: chunk-batched like [`StreamOp`], with the
/// warm/measure stat reset spliced mid-stream.
struct WarmStreamOp<'m, S: EventChunks> {
    stream: S,
    machine: &'m MachineConfig,
    scheme: Scheme,
    warm_refs: u64,
}

impl<S: EventChunks> DriverOp for WarmStreamOp<'_, S> {
    fn exec<X: L2Sim, H: L2Hint>(self, hcfg: HierarchyConfig, l2: X, hinter: H) -> RunResult {
        let scheme = self.scheme;
        let machine = self.machine;
        let warm_refs = self.warm_refs;
        let line = l2_line_bytes(&hcfg.l2);
        let mut hinted = HintedChunks::new(self.stream, hinter, line);
        with_hierarchy(hcfg, l2, |mut hd| {
            let mut dram = Dram::new(machine.mem);
            let mut cpu = Cpu::new(machine.cpu);

            // Warm phase: pull events until `warm_refs` memory references
            // have passed. The boundary falls immediately *after* the
            // event that completes the `warm_refs`-th reference, exactly
            // where the materialized-split implementation cut.
            let mut seen = 0u64;
            let mut boundary = false;
            let warm = std::iter::from_fn(|| {
                if boundary {
                    return None;
                }
                let (ev, hint) = hinted.next()?;
                if ev.is_memory() {
                    seen += 1;
                }
                if seen >= warm_refs {
                    boundary = true;
                }
                Some((ev, hint))
            });

            let (breakdown, l1, l2, dram_stats) = match &mut hd {
                HierarchyDispatch::Mono(h) => {
                    let _ = cpu.run_hinted(warm, h, &mut dram);
                    h.reset_stats();
                    dram.new_epoch();
                    let b = cpu.run_hinted(&mut hinted, h, &mut dram);
                    (b, h.l1_stats().clone(), h.l2_stats().clone(), *dram.stats())
                }
                HierarchyDispatch::BoxedL1(h) => {
                    let _ = cpu.run_hinted(warm, h, &mut dram);
                    h.reset_stats();
                    dram.new_epoch();
                    let b = cpu.run_hinted(&mut hinted, h, &mut dram);
                    (b, h.l1_stats().clone(), h.l2_stats().clone(), *dram.stats())
                }
            };
            RunResult {
                scheme,
                breakdown,
                l1,
                l2,
                dram: dram_stats,
            }
        })
    }
}

/// The L2 line size of an organization.
fn l2_line_bytes(l2: &L2Organization) -> u64 {
    match l2 {
        L2Organization::SetAssoc(c) => c.line_bytes(),
        L2Organization::Skewed(c) => c.line_bytes(),
        L2Organization::FullyAssociative { line_bytes, .. } => *line_bytes,
    }
}

/// Runs an explicit event stream under a scheme on the paper's machine.
///
/// Accepts anything iterable — a materialized `Vec<Event>` or a lazy
/// [`primecache_workloads::EventStream`] — so peak memory can stay O(1)
/// in trace length. The caches are monomorphized over the scheme's
/// index functions (selected here, once).
#[must_use]
pub fn run_trace<T>(trace: T, scheme: Scheme, machine: &MachineConfig) -> RunResult
where
    T: IntoIterator<Item = Event>,
{
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    dispatch(
        machine,
        scheme,
        TraceOp {
            trace,
            machine,
            scheme,
        },
    )
}

/// The dynamically-dispatched reference driver: `Box<dyn SetIndexer>`
/// caches behind [`Hierarchy::new`], exactly the pre-batching hot path.
///
/// Kept as the differential baseline for the monomorphized drivers —
/// the `batched_equivalence` integration test asserts bit-identical
/// stats, writeback order, and breakdowns against it. Not intended for
/// performance work.
#[must_use]
pub fn run_trace_reference<T>(trace: T, scheme: Scheme, machine: &MachineConfig) -> RunResult
where
    T: IntoIterator<Item = Event>,
{
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
    let mut dram = Dram::new(machine.mem);
    let mut cpu = Cpu::new(machine.cpu);
    let breakdown = cpu.run(trace, &mut hierarchy, &mut dram);
    RunResult {
        scheme,
        breakdown,
        l1: hierarchy.l1_stats().clone(),
        l2: hierarchy.l2_stats().clone(),
        dram: *dram.stats(),
    }
}

/// [`run_workload`] on the dynamically-dispatched reference driver:
/// the same streamed trace, driven event-at-a-time through boxed-index
/// caches. The before side of the before/after throughput tables
/// (`pcache bench`/`throughput --reference`); results are bit-identical
/// to [`run_workload`], only slower.
#[must_use]
pub fn run_workload_reference(workload: &Workload, scheme: Scheme, target_refs: u64) -> RunResult {
    let machine = MachineConfig::paper_default();
    run_trace_reference(workload.events(target_refs), scheme, &machine)
}

/// Runs a workload under a scheme on the paper's default machine.
///
/// `target_refs` controls the trace length (memory references). The
/// trace is streamed from a generator thread, never materialized; the
/// driver pulls it chunk-at-a-time and precomputes each chunk's L2 set
/// indexes before simulating it.
///
/// # Examples
///
/// ```
/// use primecache_sim::{run_workload, Scheme};
/// use primecache_workloads::by_name;
///
/// let r = run_workload(by_name("swim").unwrap(), Scheme::Base, 20_000);
/// assert!(r.breakdown.total() > 0);
/// ```
#[must_use]
pub fn run_workload(workload: &Workload, scheme: Scheme, target_refs: u64) -> RunResult {
    let machine = MachineConfig::paper_default();
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    dispatch(
        &machine,
        scheme,
        StreamOp {
            stream: workload.events(target_refs),
            machine: &machine,
            scheme,
        },
    )
}

/// Runs a *recorded* trace replay under a scheme: the chunk-batched
/// driver of [`run_workload`] fed from a [`ReplayCursor`] instead of a
/// live generator stream.
///
/// Decode is bit-identical to live generation (the codec is lossless
/// and the recording sink sees the same push sequence), so results
/// match [`run_workload`] exactly — stats, writeback order, breakdowns —
/// which the `replay_equivalence` integration test pins for all 23
/// workloads × all 8 schemes. This is the per-cell hot path of
/// [`crate::suite::run_sweep`]: one generation, eight replays.
#[must_use]
pub fn run_replay(cursor: ReplayCursor<'_>, scheme: Scheme, machine: &MachineConfig) -> RunResult {
    run_chunks(cursor, scheme, machine)
}

/// Runs any [`EventChunks`] source through the chunk-batched driver.
///
/// This is the generic entry behind [`run_replay`]: a recorded
/// [`ReplayCursor`], an imported trace's cursor, or a multi-tenant
/// [`primecache_workloads::MixCursor`] all drive the identical
/// monomorphized hot path, so results across sources differ only by
/// their event sequences — pinned by `tests/ingest_equivalence.rs`
/// (single-tenant mix == plain replay, bit-exactly).
#[must_use]
pub fn run_chunks<S: EventChunks>(stream: S, scheme: Scheme, machine: &MachineConfig) -> RunResult {
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    dispatch(
        machine,
        scheme,
        StreamOp {
            stream,
            machine,
            scheme,
        },
    )
}

/// [`run_replay`] over a whole recorded trace, from its start.
#[must_use]
pub fn run_recorded(trace: &EncodedTrace, scheme: Scheme, machine: &MachineConfig) -> RunResult {
    run_replay(trace.replay(), scheme, machine)
}

/// Records `workload` once (same-thread, compact encoding) and replays
/// the recording through the batched driver — bit-identical to
/// [`run_workload`] on the paper's default machine.
#[must_use]
pub fn run_workload_recorded(workload: &Workload, scheme: Scheme, target_refs: u64) -> RunResult {
    let machine = MachineConfig::paper_default();
    run_recorded(&workload.record(target_refs), scheme, &machine)
}

/// Runs a workload with a warmup phase: the first `warm_refs` memory
/// references fill the caches and open the DRAM rows, then every
/// statistic (and the cycle clock) resets and only the next
/// `measure_refs` references are measured — excluding compulsory misses
/// from the figures, as steady-state methodology prescribes.
///
/// The warm/measure boundary is a mid-stream stat reset on one
/// continuous event stream: no combined `warm + measure` trace is ever
/// built in memory.
///
/// # Examples
///
/// ```
/// use primecache_sim::{run_workload_warm, Scheme};
/// use primecache_workloads::by_name;
///
/// let r = run_workload_warm(by_name("tree").unwrap(), Scheme::PrimeModulo, 20_000, 20_000);
/// assert!(r.l1.accesses >= 20_000);
/// ```
#[must_use]
pub fn run_workload_warm(
    workload: &Workload,
    scheme: Scheme,
    warm_refs: u64,
    measure_refs: u64,
) -> RunResult {
    let machine = MachineConfig::paper_default();
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    dispatch(
        &machine,
        scheme,
        WarmStreamOp {
            stream: workload.events(warm_refs + measure_refs),
            machine: &machine,
            scheme,
            warm_refs,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_workloads::by_name;

    #[test]
    fn run_produces_consistent_stats() {
        let r = run_workload(by_name("swim").unwrap(), Scheme::Base, 20_000);
        assert!(r.l1.accesses >= 20_000);
        assert_eq!(r.l2.hits + r.l2.misses, r.l2.accesses);
        assert!(r.breakdown.total() > 0);
    }

    #[test]
    fn tree_pmod_beats_base() {
        let tree = by_name("tree").unwrap();
        let base = run_workload(tree, Scheme::Base, 60_000);
        let pmod = run_workload(tree, Scheme::PrimeModulo, 60_000);
        assert!(
            pmod.l2_misses() * 2 < base.l2_misses(),
            "pMod {} vs Base {}",
            pmod.l2_misses(),
            base.l2_misses()
        );
        assert!(pmod.breakdown.total() < base.breakdown.total());
    }

    #[test]
    fn warm_runs_exclude_cold_misses() {
        let tree = by_name("tree").unwrap();
        let cold = run_workload(tree, Scheme::PrimeModulo, 60_000);
        let warm = run_workload_warm(tree, Scheme::PrimeModulo, 60_000, 60_000);
        // Warmed pMod tree is nearly all hits: its measured miss rate must
        // be far below the cold-start run's.
        assert!(
            warm.l2.miss_rate() < cold.l2.miss_rate() / 2.0,
            "warm {} vs cold {}",
            warm.l2.miss_rate(),
            cold.l2.miss_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let w = by_name("mcf").unwrap();
        let a = run_workload(w, Scheme::Xor, 10_000);
        let b = run_workload(w, Scheme::Xor, 10_000);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.l2.misses, b.l2.misses);
    }

    /// The pre-streaming `run_workload_warm` materialized the combined
    /// trace and split it at the warm boundary. Reproduce that path here
    /// (on the reference dyn driver) and assert the mid-stream-reset
    /// batched implementation is bit-identical.
    fn warm_via_materialized_split(
        workload: &primecache_workloads::Workload,
        scheme: Scheme,
        warm_refs: u64,
        measure_refs: u64,
    ) -> RunResult {
        let machine = MachineConfig::paper_default();
        let trace = workload.trace(warm_refs + measure_refs);
        let mut seen = 0u64;
        let split = trace
            .iter()
            .position(|e| {
                if e.is_memory() {
                    seen += 1;
                }
                seen >= warm_refs
            })
            .map_or(trace.len(), |i| i + 1);
        let (warm, measure) = trace.split_at(split);

        let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
        let mut dram = Dram::new(machine.mem);
        let mut cpu = Cpu::new(machine.cpu);
        let _ = cpu.run(warm.to_vec(), &mut hierarchy, &mut dram);
        hierarchy.reset_stats();
        dram.new_epoch();
        let breakdown = cpu.run(measure.to_vec(), &mut hierarchy, &mut dram);
        RunResult {
            scheme,
            breakdown,
            l1: hierarchy.l1_stats().clone(),
            l2: hierarchy.l2_stats().clone(),
            dram: *dram.stats(),
        }
    }

    #[test]
    fn warm_stream_reset_matches_legacy_split_path() {
        for (name, scheme, warm, measure) in [
            ("tree", Scheme::PrimeModulo, 20_000, 20_000),
            ("mcf", Scheme::Base, 5_000, 15_000),
            ("swim", Scheme::Xor, 0, 10_000), // zero-warm edge case
        ] {
            let w = by_name(name).unwrap();
            let streamed = run_workload_warm(w, scheme, warm, measure);
            let legacy = warm_via_materialized_split(w, scheme, warm, measure);
            assert_eq!(
                streamed.breakdown, legacy.breakdown,
                "{name}/{scheme:?}: breakdown diverges"
            );
            assert_eq!(streamed.l1, legacy.l1, "{name}/{scheme:?}: L1 diverges");
            assert_eq!(streamed.l2, legacy.l2, "{name}/{scheme:?}: L2 diverges");
            assert_eq!(
                streamed.dram, legacy.dram,
                "{name}/{scheme:?}: DRAM diverges"
            );
        }
    }

    #[test]
    fn streamed_run_matches_materialized_run() {
        let machine = MachineConfig::paper_default();
        for name in ["tree", "swim", "cg"] {
            let w = by_name(name).unwrap();
            let streamed = run_trace(w.events(15_000), Scheme::PrimeModulo, &machine);
            let materialized = run_trace(w.trace(15_000), Scheme::PrimeModulo, &machine);
            assert_eq!(streamed.breakdown, materialized.breakdown, "{name}");
            assert_eq!(streamed.l2, materialized.l2, "{name}");
        }
    }

    #[test]
    fn dsl_pmod_scheme_matches_builtin_pmod_bit_for_bit() {
        // The DSL-compiled `a % 2039` closure must be indistinguishable
        // from the hand-written pMod indexer inside the batched driver:
        // same sets, same hints, same latency class, same stats.
        let id = primecache_core::expr::register_anonymous("a % 2039").expect("valid expression");
        let w = by_name("tree").unwrap();
        let expr = run_workload(w, Scheme::Expr(id), 20_000);
        let pmod = run_workload(w, Scheme::PrimeModulo, 20_000);
        assert_eq!(expr.breakdown, pmod.breakdown);
        assert_eq!(expr.l1, pmod.l1);
        assert_eq!(expr.l2, pmod.l2);
        assert_eq!(expr.dram, pmod.dram);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-prime-modulus")]
    fn run_trace_rejects_uncertified_expr_scheme_before_simulation() {
        let id = primecache_core::expr::register_anonymous("a % 2046").expect("valid expression");
        let machine = MachineConfig::paper_default();
        let _ = run_trace(Vec::new(), Scheme::Expr(id), &machine);
    }

    #[test]
    fn batched_drivers_match_reference_quick() {
        // A quick per-scheme smoke of what the root `batched_equivalence`
        // battery proves exhaustively: the monomorphized chunk-batched
        // driver is bit-identical to the dyn reference path.
        let machine = MachineConfig::paper_default();
        let w = by_name("mcf").unwrap();
        for scheme in [
            Scheme::PrimeModulo,
            Scheme::Skewed,
            Scheme::FullyAssociative,
        ] {
            let batched = run_workload(w, scheme, 8_000);
            let reference = run_trace_reference(w.trace(8_000), scheme, &machine);
            assert_eq!(batched.breakdown, reference.breakdown, "{scheme:?}");
            assert_eq!(batched.l1, reference.l1, "{scheme:?}");
            assert_eq!(batched.l2, reference.l2, "{scheme:?}");
            assert_eq!(batched.dram, reference.dram, "{scheme:?}");
        }
    }
}
