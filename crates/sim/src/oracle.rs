//! Simulator-backed probe oracle: the bridge between the attack engine
//! and the real cache models.
//!
//! [`SimOracle`] implements [`ProbeOracle`] by replaying each crafted
//! block trace against a *fresh* cache built from the scheme's real L2
//! organization and counting misses — exactly the observable the attack
//! engine is allowed (cold-cache per probe is the attack's contract; see
//! `primecache_core::probe`). Two shapes are offered:
//!
//! * [`SimOracle::direct`] — the scheme's index function in a
//!   direct-mapped probe cache (associativity 1, same set count, same
//!   hash). This is the structure-recovery shape: `same_set` probes are
//!   exact. A fully-associative L2 probes as a capacity-1 cache (every
//!   pair conflicts — which *is* its conflict structure), and a skewed
//!   L2 keeps its native multi-bank form (it has no single-hash
//!   equivalent; recovery is expected to declare it Opaque).
//! * [`SimOracle::native`] — the scheme's real organization, full
//!   associativity and replacement. This is the eviction-cost shape.
//!
//! [`static_model`] is the other half of the differential oracle: the
//! analyzer's certified model for the same scheme, or `None` for the
//! skewed organizations (no single index function exists to model).

use primecache_analyze::{model_of, IndexModel};
use primecache_cache::{
    Cache, CacheConfig, FullyAssociative, L2Organization, ReplacementKind, SkewedCache,
    SkewedConfig,
};
use primecache_core::index::Geometry;
use primecache_core::probe::{ProbeCost, ProbeOracle};

use crate::config::{MachineConfig, Scheme};

/// Probing window width used by the CLI and the differential tests: the
/// paper machine's 4 GB physical address space is 2^26 blocks of 64 B.
pub const PROBE_BITS: u32 = 26;

enum Backend {
    SetAssoc(CacheConfig),
    Skewed(SkewedConfig),
    Fully { size_bytes: u64, line_bytes: u64 },
}

/// A [`ProbeOracle`] that answers by simulating the scheme's L2.
pub struct SimOracle {
    backend: Backend,
    in_bits: u32,
    cost: ProbeCost,
}

impl SimOracle {
    /// The structure-recovery shape: direct-mapped probe cache with the
    /// scheme's index function (see module docs for the FA and skewed
    /// special cases).
    #[must_use]
    pub fn direct(machine: &MachineConfig, scheme: Scheme, in_bits: u32) -> Self {
        let backend = match machine.l2_organization(scheme) {
            L2Organization::SetAssoc(c) => Backend::SetAssoc(
                CacheConfig::new(c.n_set_phys() * c.line_bytes(), 1, c.line_bytes())
                    .with_hash(c.hash())
                    .with_replacement(ReplacementKind::Lru),
            ),
            L2Organization::Skewed(c) => Backend::Skewed(c),
            L2Organization::FullyAssociative { line_bytes, .. } => Backend::Fully {
                size_bytes: line_bytes,
                line_bytes,
            },
        };
        Self {
            backend,
            in_bits,
            cost: ProbeCost::default(),
        }
    }

    /// The eviction-cost shape: the scheme's real L2 organization.
    #[must_use]
    pub fn native(machine: &MachineConfig, scheme: Scheme, in_bits: u32) -> Self {
        let backend = match machine.l2_organization(scheme) {
            L2Organization::SetAssoc(c) => Backend::SetAssoc(c),
            L2Organization::Skewed(c) => Backend::Skewed(c),
            L2Organization::FullyAssociative {
                size_bytes,
                line_bytes,
            } => Backend::Fully {
                size_bytes,
                line_bytes,
            },
        };
        Self {
            backend,
            in_bits,
            cost: ProbeCost::default(),
        }
    }
}

impl ProbeOracle for SimOracle {
    fn in_bits(&self) -> u32 {
        self.in_bits
    }

    fn n_set_phys(&self) -> u64 {
        match &self.backend {
            Backend::SetAssoc(c) => c.n_set_phys(),
            Backend::Skewed(c) => c.sets_per_bank(),
            Backend::Fully { .. } => 1,
        }
    }

    fn assoc(&self) -> u32 {
        match &self.backend {
            Backend::SetAssoc(c) => c.assoc(),
            Backend::Skewed(c) => c.banks() * c.ways_per_bank(),
            Backend::Fully {
                size_bytes,
                line_bytes,
            } => u32::try_from(size_bytes / line_bytes).expect("L2 capacity fits u32"),
        }
    }

    fn misses(&mut self, blocks: &[u64]) -> u64 {
        self.cost.probes += 1;
        self.cost.refs += blocks.len() as u64;
        let cold_misses = |hits: &mut dyn FnMut(u64) -> bool| -> u64 {
            blocks.iter().filter(|&&b| !hits(b)).count() as u64
        };
        match &self.backend {
            Backend::SetAssoc(config) => {
                let mut cache = Cache::new(*config);
                cold_misses(&mut |b| cache.access_block(b, false))
            }
            Backend::Skewed(config) => {
                let mut cache = SkewedCache::new(*config);
                cold_misses(&mut |b| cache.access_block(b, false))
            }
            Backend::Fully {
                size_bytes,
                line_bytes,
            } => {
                let mut cache = FullyAssociative::new(*size_bytes, *line_bytes);
                cold_misses(&mut |b| cache.access_block(b, false))
            }
        }
    }

    fn cost(&self) -> ProbeCost {
        self.cost
    }
}

/// The static analyzer's model of a scheme's index function — the other
/// arm of the differential oracle. `None` for skewed organizations: a
/// multi-bank skew has no single set-index function, so the honest
/// static answer matches the attack's expected Opaque verdict. A
/// fully-associative L2 is the one-set cache, `a mod 1`.
#[must_use]
pub fn static_model(machine: &MachineConfig, scheme: Scheme, in_bits: u32) -> Option<IndexModel> {
    match machine.l2_organization(scheme) {
        L2Organization::SetAssoc(c) => {
            Some(model_of(c.hash(), Geometry::new(c.n_set_phys()), in_bits))
        }
        L2Organization::Skewed(_) => None,
        L2Organization::FullyAssociative { .. } => Some(IndexModel::Residue {
            modulus: 1,
            in_bits,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_oracle_agrees_with_the_static_model_on_pairs() {
        let machine = MachineConfig::paper_default();
        for scheme in [Scheme::Base, Scheme::Xor, Scheme::PrimeModulo] {
            let model = static_model(&machine, scheme, PROBE_BITS).unwrap();
            let mut oracle = SimOracle::direct(&machine, scheme, PROBE_BITS);
            for (a, b) in [(0u64, 2048u64), (0, 2039), (7, 2056), (1, 2050), (3, 99)] {
                assert_eq!(
                    oracle.same_set(a, b),
                    model.eval(a) == model.eval(b),
                    "{scheme}: pair ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn native_shapes_report_the_real_geometry() {
        let machine = MachineConfig::paper_default();
        let fa = SimOracle::native(&machine, Scheme::FullyAssociative, PROBE_BITS);
        assert_eq!(fa.assoc(), 8192);
        assert_eq!(fa.n_set_phys(), 1);
        let skw = SimOracle::native(&machine, Scheme::Skewed, PROBE_BITS);
        assert_eq!(skw.assoc(), 4);
        assert_eq!(skw.n_set_phys(), 2048);
        let eight = SimOracle::native(&machine, Scheme::EightWay, PROBE_BITS);
        assert_eq!(eight.assoc(), 8);
        assert_eq!(eight.n_set_phys(), 1024);
    }

    #[test]
    fn fully_associative_probes_as_the_one_set_cache() {
        let machine = MachineConfig::paper_default();
        let mut direct = SimOracle::direct(&machine, Scheme::FullyAssociative, PROBE_BITS);
        assert!(direct.same_set(3, 1 << 20));
        assert_eq!(direct.n_set_phys(), 1);
        let c = direct.cost();
        assert_eq!(c.probes, 1);
        assert_eq!(c.refs, 3);
    }

    #[test]
    fn skewed_oracle_never_sees_a_pairwise_conflict() {
        let machine = MachineConfig::paper_default();
        let mut oracle = SimOracle::direct(&machine, Scheme::Skewed, PROBE_BITS);
        for d in [2048u64, 2049, 2039, 1 << 22] {
            assert!(!oracle.same_set(0, d), "stride {d}");
        }
    }

    #[test]
    fn static_models_exist_exactly_where_a_single_hash_does() {
        let machine = MachineConfig::paper_default();
        for scheme in Scheme::ALL {
            let m = static_model(&machine, scheme, PROBE_BITS);
            let skewed = matches!(scheme, Scheme::Skewed | Scheme::SkewedPrimeDisplacement);
            assert_eq!(m.is_none(), skewed, "{scheme}");
        }
    }
}
