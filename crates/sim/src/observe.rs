//! Instrumented run drivers (cargo feature `obs`).
//!
//! [`run_workload_observed`] is [`crate::run_workload`] with a
//! `primecache_obs` recorder attached to every model: the hierarchy
//! reports demand accesses, each cache its evictions, the DRAM its
//! requests, and the CPU feeds the sim-time clock. On top of the hot
//! counters, the harvested [`Metrics`] carry the per-cause stall
//! attribution (the Fig. 8 stack, subdivided), the streaming-pipeline
//! back-pressure counters, and the end-of-run L2 occupancy histogram.
//!
//! [`run_workload_observed_replayed`] is the same instrumented run fed
//! from a recorded trace instead of a live generator: the workload is
//! recorded once into a [`TraceStore`] and simulated from a replay
//! cursor, with `trace_store.*` metrics describing the store and the
//! `stream.*` metrics reflecting the replay path (chunk cadence
//! identical to streaming, zero blocked waits, zero channel depth).

use std::rc::Rc;
use std::time::Instant;

use primecache_cache::Hierarchy;
use primecache_cpu::Cpu;
use primecache_mem::Dram;
use primecache_obs::{Histogram, Metrics, ObsConfig, Recorder, RunReport};
use primecache_workloads::{EventChunks, TraceStore, Workload};

use crate::{artifact, MachineConfig, RunResult, Scheme};

/// Everything an instrumented run produces.
#[derive(Debug)]
pub struct ObservedRun {
    /// The plain run result (identical to the uninstrumented driver's).
    pub result: RunResult,
    /// The recorder, holding exact counters and any buffered events.
    pub recorder: Recorder,
    /// Full named-metric dump: the recorder's counters plus the
    /// CPU/stream/occupancy supplements collected here.
    pub metrics: Metrics,
}

/// Runs `workload` under `scheme` with observability attached.
///
/// Counters are exact regardless of `cfg` (sampling only thins traced
/// `access` events), so `recorder.hot` matches the `stats.rs` aggregates
/// in `result` bit-exactly — an invariant the `obs_layer` integration
/// test pins.
#[must_use]
pub fn run_workload_observed(
    workload: &Workload,
    scheme: Scheme,
    target_refs: u64,
    cfg: ObsConfig,
) -> ObservedRun {
    observe_chunks(workload.events(target_refs), scheme, cfg)
}

/// [`run_workload_observed`] fed from a recorded trace: `workload` is
/// recorded once into a single-entry [`TraceStore`] and the simulation
/// consumes a replay cursor. Results are bit-identical to the live run;
/// the metrics additionally carry `trace_store.records`,
/// `trace_store.replays`, and `trace_store.encoded_bytes`, and the
/// `stream.*` family describes the replay path (same chunk cadence,
/// `blocked_waits` and `channel_depth` pinned at zero — a replay never
/// waits on a generator).
#[must_use]
pub fn run_workload_observed_replayed(
    workload: &Workload,
    scheme: Scheme,
    target_refs: u64,
    cfg: ObsConfig,
) -> ObservedRun {
    let store = TraceStore::record_all(std::slice::from_ref(workload), target_refs);
    let cursor = store.replay(workload.name).expect("workload just recorded");
    let mut run = observe_chunks(cursor, scheme, cfg);
    let st = store.stats();
    run.metrics.set_counter(
        "trace_store.records",
        "traces",
        "workload traces recorded into the store (one generation each)",
        st.records,
    );
    run.metrics.set_counter(
        "trace_store.replays",
        "cursors",
        "replay cursors served from the store",
        st.replays,
    );
    run.metrics.set_counter(
        "trace_store.encoded_bytes",
        "bytes",
        "compact encoded size of all recorded traces",
        st.encoded_bytes,
    );
    run
}

/// Runs any [`EventChunks`] source with observability attached — the
/// instrumented sibling of [`crate::run_chunks`]. This is the shared
/// engine behind [`run_workload_observed`] and
/// [`run_workload_observed_replayed`], and is public so imported traces
/// ([`primecache_ingest`](https://docs.rs/primecache-ingest)'s cursors)
/// and multi-tenant mixes get the same exact counters as native
/// workloads.
#[must_use]
pub fn observe_chunks<S: EventChunks>(
    mut source: S,
    scheme: Scheme,
    cfg: ObsConfig,
) -> ObservedRun {
    let machine = MachineConfig::paper_default();
    #[cfg(any(debug_assertions, feature = "check"))]
    machine.check_scheme(scheme);
    let handle = Recorder::handle(cfg);

    let mut hierarchy = Hierarchy::new(machine.hierarchy_config(scheme));
    hierarchy.attach_obs(handle.clone());
    let mut dram = Dram::new(machine.mem);
    dram.attach_obs(handle.clone());
    let mut cpu = Cpu::new(machine.cpu);
    cpu.attach_obs(handle.clone());

    let breakdown = cpu.run(&mut source, &mut hierarchy, &mut dram);
    let result = RunResult {
        scheme,
        breakdown,
        l1: hierarchy.l1_stats().clone(),
        l2: hierarchy.l2_stats().clone(),
        dram: *dram.stats(),
    };

    let stalls = cpu.last_stall_attribution();
    let (chunks, blocked_waits) = source.chunk_stats();
    let (stream_depth, stream_chunk) = source.chunk_config();
    let occupancy = hierarchy.l2_occupancy();
    drop((hierarchy, dram, cpu, source));
    let recorder = Rc::try_unwrap(handle)
        .expect("all instrumented owners dropped")
        .into_inner();

    let mut metrics = recorder.metrics();
    let cycles = |m: &mut Metrics, name: &str, help: &str, v: u64| {
        m.set_counter(name, "cycles", help, v);
    };
    cycles(
        &mut metrics,
        "cpu.stall.rob_cycles",
        "stall cycles from the ROB window filling behind a load",
        stalls.rob,
    );
    cycles(
        &mut metrics,
        "cpu.stall.mlp_cycles",
        "stall cycles from the in-flight-load (MLP) limit",
        stalls.mlp,
    );
    cycles(
        &mut metrics,
        "cpu.stall.dep_cycles",
        "stall cycles exposed by dependent (serializing) loads",
        stalls.dep,
    );
    cycles(
        &mut metrics,
        "cpu.stall.store_cycles",
        "stall cycles waiting on a full store buffer",
        stalls.store,
    );
    cycles(
        &mut metrics,
        "cpu.stall.drain_cycles",
        "stall cycles draining in-flight loads at program end",
        stalls.drain,
    );
    cycles(
        &mut metrics,
        "cpu.stall.branch_cycles",
        "branch-misprediction penalty cycles (other_stall)",
        stalls.branch,
    );
    metrics.set_counter(
        "stream.chunks",
        "chunks",
        "trace chunks pulled from the generator thread",
        chunks,
    );
    metrics.set_counter(
        "stream.blocked_waits",
        "chunks",
        "chunk pulls that found the channel empty (consumer outran generator)",
        blocked_waits,
    );
    metrics.set_counter(
        "stream.channel_depth",
        "slots",
        "configured chunk slots in flight between generator and consumer",
        stream_depth as u64,
    );
    metrics.set_counter(
        "stream.chunk_events",
        "events",
        "configured events per streamed chunk",
        stream_chunk as u64,
    );
    let mut hist = Histogram::new(vec![0, 1, 2, 3, 4, 6, 8]);
    for n in occupancy {
        hist.observe(n);
    }
    metrics.set_histogram(
        "cache.l2.occupancy_per_set",
        "lines",
        "end-of-run distribution of valid lines across L2 sets",
        hist,
    );

    ObservedRun {
        result,
        recorder,
        metrics,
    }
}

/// Runs an instrumented simulation and wraps it in a [`RunReport`]
/// carrying the full metric dump; also returns the recorder so callers
/// can drain traced events.
#[must_use]
pub fn observed_report(
    workload: &Workload,
    scheme: Scheme,
    refs: u64,
    cfg: ObsConfig,
) -> (RunReport, Recorder) {
    let started = Instant::now();
    let run = run_workload_observed(workload, scheme, refs, cfg);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = artifact::build_report(
        &run.result,
        &MachineConfig::paper_default(),
        workload.name,
        refs,
        wall_ms,
        run.metrics,
        run.recorder.events_recorded(),
        run.recorder.events_dropped(),
    );
    (report, run.recorder)
}

/// [`observed_report`] on the record-then-replay path: the wall-clock
/// covers recording plus the replayed simulation, and the metric dump
/// includes the `trace_store.*` family.
#[must_use]
pub fn observed_report_replayed(
    workload: &Workload,
    scheme: Scheme,
    refs: u64,
    cfg: ObsConfig,
) -> (RunReport, Recorder) {
    let started = Instant::now();
    let run = run_workload_observed_replayed(workload, scheme, refs, cfg);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = artifact::build_report(
        &run.result,
        &MachineConfig::paper_default(),
        workload.name,
        refs,
        wall_ms,
        run.metrics,
        run.recorder.events_recorded(),
        run.recorder.events_dropped(),
    );
    (report, run.recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use primecache_workloads::by_name;

    #[test]
    fn observed_counters_match_stats_bit_exactly() {
        for name in ["tree", "swim", "mcf"] {
            let w = by_name(name).unwrap();
            let run = run_workload_observed(w, Scheme::PrimeModulo, 20_000, ObsConfig::default());
            let h = &run.recorder.hot;
            assert_eq!(h.l1_accesses, run.result.l1.accesses, "{name}");
            assert_eq!(h.l1_hits, run.result.l1.hits, "{name}");
            assert_eq!(h.l1_misses, run.result.l1.misses, "{name}");
            assert_eq!(h.l1_writes, run.result.l1.writes, "{name}");
            assert_eq!(h.l2_accesses, run.result.l2.accesses, "{name}");
            assert_eq!(h.l2_hits, run.result.l2.hits, "{name}");
            assert_eq!(h.l2_misses, run.result.l2.misses, "{name}");
            assert_eq!(h.l2_writes, run.result.l2.writes, "{name}");
            assert_eq!(h.dram_reads, run.result.dram.reads, "{name}");
            assert_eq!(h.dram_writes, run.result.dram.writes, "{name}");
            assert_eq!(h.dram_row_hits, run.result.dram.row_hits, "{name}");
            assert_eq!(h.dram_queue_cycles, run.result.dram.queue_cycles, "{name}");
        }
    }

    #[test]
    fn observation_does_not_perturb_the_simulation() {
        let w = by_name("cg").unwrap();
        let plain = run_workload(w, Scheme::Xor, 15_000);
        let observed = run_workload_observed(
            w,
            Scheme::Xor,
            15_000,
            ObsConfig {
                trace_events: true,
                sample_every: 3,
                ..ObsConfig::default()
            },
        );
        assert_eq!(plain.breakdown, observed.result.breakdown);
        assert_eq!(plain.l2, observed.result.l2);
        assert_eq!(plain.dram, observed.result.dram);
    }

    #[test]
    fn stall_metrics_partition_mem_stall() {
        let run = run_workload_observed(
            by_name("mcf").unwrap(),
            Scheme::Base,
            20_000,
            ObsConfig::default(),
        );
        let m = &run.metrics;
        let mem_sum = ["rob", "mlp", "dep", "store", "drain"]
            .iter()
            .map(|c| m.counter(&format!("cpu.stall.{c}_cycles")).unwrap())
            .sum::<u64>();
        assert_eq!(mem_sum, run.result.breakdown.mem_stall);
        assert_eq!(
            m.counter("cpu.stall.branch_cycles").unwrap(),
            run.result.breakdown.other_stall
        );
    }

    #[test]
    fn replayed_observation_matches_live_and_reports_the_store() {
        let w = by_name("mcf").unwrap();
        let live = run_workload_observed(w, Scheme::PrimeModulo, 12_000, ObsConfig::default());
        let replayed =
            run_workload_observed_replayed(w, Scheme::PrimeModulo, 12_000, ObsConfig::default());
        // Bit-identical simulation: breakdown, both cache levels, DRAM.
        assert_eq!(live.result.breakdown, replayed.result.breakdown);
        assert_eq!(live.result.l1, replayed.result.l1);
        assert_eq!(live.result.l2, replayed.result.l2);
        assert_eq!(live.result.dram, replayed.result.dram);
        // The store counters describe one record serving one replay.
        let m = &replayed.metrics;
        assert_eq!(m.counter("trace_store.records"), Some(1));
        assert_eq!(m.counter("trace_store.replays"), Some(1));
        assert!(m.counter("trace_store.encoded_bytes").unwrap() > 0);
        assert!(live.metrics.counter("trace_store.records").is_none());
        // Replay stream parity: same chunk cadence as the live stream,
        // but no channel and no generator to wait on.
        assert_eq!(
            m.counter("stream.chunks"),
            live.metrics.counter("stream.chunks")
        );
        assert_eq!(m.counter("stream.blocked_waits"), Some(0));
        assert_eq!(m.counter("stream.channel_depth"), Some(0));
        assert_eq!(
            m.counter("stream.chunk_events"),
            live.metrics.counter("stream.chunk_events")
        );
    }

    #[test]
    fn tracing_records_timestamped_events() {
        let (report, recorder) = observed_report(
            by_name("tree").unwrap(),
            Scheme::PrimeModulo,
            5_000,
            ObsConfig {
                trace_events: true,
                ..ObsConfig::default()
            },
        );
        assert!(report.events_recorded > 0);
        assert_eq!(
            report.metrics.counter("cache.l2.demand_misses"),
            Some(report.l2.misses)
        );
        // Timestamps are monotone within the buffered window.
        let times: Vec<u64> = recorder.events().map(|e| e.t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
