//! Plain-text table rendering for the bench binaries.

/// Renders a table with a header row, aligning columns by width.
///
/// # Examples
///
/// ```
/// use primecache_sim::report::render_table;
///
/// let s = render_table(
///     &["app", "speedup"],
///     &[vec!["tree".into(), "2.34".into()]],
/// );
/// assert!(s.contains("tree"));
/// assert!(s.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders a numeric series as a one-line unicode sparkline (8 levels),
/// used by the figure binaries to sketch the Fig. 5/6 curves in a
/// terminal.
///
/// Values are scaled between `lo` and `hi` (values outside clamp).
///
/// # Examples
///
/// ```
/// use primecache_sim::report::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0], 0.0, 1.0);
/// assert_eq!(s.chars().count(), 3);
/// ```
#[must_use]
pub fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    const LEVELS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            LEVELS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Formats a float with 2 decimals (the paper's usual precision).
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["xxxxxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.iter().all(|&w| w == widths[0]), "{t}");
    }

    #[test]
    fn formats() {
        assert_eq!(f2(1.275), "1.27"); // banker's-ish display rounding
        assert_eq!(f3(0.1), "0.100");
    }
    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 1.0], 0.0, 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '\u{2581}');
        assert_eq!(chars[1], '\u{2588}');
    }

    #[test]
    fn sparkline_clamps_out_of_range() {
        let s = sparkline(&[-5.0, 50.0], 0.0, 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '\u{2581}');
        assert_eq!(chars[1], '\u{2588}');
    }

    #[test]
    fn sparkline_empty_and_flat() {
        assert_eq!(sparkline(&[], 0.0, 1.0), "");
        let flat = sparkline(&[2.0, 2.0, 2.0], 2.0, 2.0);
        assert_eq!(flat.chars().count(), 3);
    }
}
