//! End-to-end simulation throughput measurement (simulated refs/sec).
//!
//! The ROADMAP's north star is a simulator that runs "as fast as the
//! hardware allows"; this module is how that claim stays honest. It
//! drives the full streaming pipeline — generator thread, bounded
//! channel, CPU model, hierarchy, DRAM — over all 23 workloads per
//! scheme, measures wall-clock, and reports memory references retired
//! per second. The `throughput` bench binary emits the result as
//! `BENCH_throughput.json`, and CI fails when a scheme regresses more
//! than the allowed fraction against the committed baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use primecache_workloads::{all, TraceStore, Workload};

use crate::{run_trace, run_workload, run_workload_reference, MachineConfig, RunResult, Scheme};

/// Throughput of one scheme across the whole workload suite.
#[derive(Debug, Clone)]
pub struct SchemeThroughput {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Total memory references simulated (all 23 workloads).
    pub refs: u64,
    /// Wall-clock seconds for the whole suite.
    pub seconds: f64,
    /// Simulated memory references per second.
    pub refs_per_sec: f64,
}

/// A labeled non-scheme throughput entry: the trace-pipeline stages
/// (`gen:stream`, `gen:record`, `replay:decode`) and the whole-sweep
/// aggregate (`sweep:aggregate`). Written into the same `"schemes"`
/// array of `BENCH_throughput.json`, keyed by label, so the baseline
/// scanner and regression gate treat them exactly like scheme entries.
#[derive(Debug, Clone)]
pub struct NamedThroughput {
    /// Entry label (`gen:*`, `replay:*`, `sweep:*`).
    pub label: &'static str,
    /// Memory references processed.
    pub refs: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// References per second.
    pub refs_per_sec: f64,
}

/// A full throughput report: every requested scheme over all workloads,
/// plus any labeled pipeline-stage extras.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// References requested per workload.
    pub refs_per_workload: u64,
    /// Number of workloads in the suite.
    pub workloads: usize,
    /// Per-scheme measurements, in the order requested.
    pub schemes: Vec<SchemeThroughput>,
    /// Labeled non-scheme measurements (generation, decode, aggregate).
    pub extras: Vec<NamedThroughput>,
}

/// Measures end-to-end refs/sec for each scheme: all 23 workloads,
/// `refs_per_workload` references each, streamed through the batched
/// monomorphized drivers (the production hot path).
#[must_use]
pub fn measure(schemes: &[Scheme], refs_per_workload: u64) -> ThroughputReport {
    measure_with(schemes, refs_per_workload, run_workload)
}

/// [`measure`] on the pre-batching reference driver (`Box<dyn
/// SetIndexer>` caches, event-at-a-time). Same results, slower — the
/// "before" column of the README/DESIGN before/after tables, measured
/// on the same machine in the same session as the batched numbers.
#[must_use]
pub fn measure_reference(schemes: &[Scheme], refs_per_workload: u64) -> ThroughputReport {
    measure_with(schemes, refs_per_workload, run_workload_reference)
}

fn measure_with(
    schemes: &[Scheme],
    refs_per_workload: u64,
    runner: fn(&Workload, Scheme, u64) -> RunResult,
) -> ThroughputReport {
    let suite = all();
    let per_scheme = schemes
        .iter()
        .map(|&scheme| {
            let start = Instant::now();
            let mut refs = 0u64;
            for w in suite {
                let r = runner(w, scheme, refs_per_workload);
                refs += r.l1.accesses;
            }
            let seconds = start.elapsed().as_secs_f64();
            SchemeThroughput {
                scheme,
                refs,
                seconds,
                refs_per_sec: if seconds > 0.0 {
                    refs as f64 / seconds
                } else {
                    0.0
                },
            }
        })
        .collect();
    ThroughputReport {
        refs_per_workload,
        workloads: suite.len(),
        schemes: per_scheme,
        extras: Vec::new(),
    }
}

/// Times `stage`, which returns the memory references it processed, and
/// packages the result as a labeled entry.
fn timed_extra(label: &'static str, stage: impl FnOnce() -> u64) -> NamedThroughput {
    let start = Instant::now();
    let refs = stage();
    let seconds = start.elapsed().as_secs_f64();
    NamedThroughput {
        label,
        refs,
        seconds,
        refs_per_sec: if seconds > 0.0 {
            refs as f64 / seconds
        } else {
            0.0
        },
    }
}

/// Records the whole suite (timed as `gen:record`) and measures the two
/// other pure pipeline stages: `gen:stream` (drain the live
/// spawn+channel generator path) and `replay:decode` (drain replay
/// cursors over the fresh store). Returns the store for reuse.
fn measure_pipeline_stages(refs_per_workload: u64) -> (TraceStore, Vec<NamedThroughput>) {
    let suite = all();
    let gen_stream = timed_extra("gen:stream", || {
        suite
            .iter()
            .map(|w| {
                w.events(refs_per_workload)
                    .filter(primecache_trace::Event::is_memory)
                    .count() as u64
            })
            .sum()
    });
    let mut store = TraceStore::new(refs_per_workload);
    let gen_record = timed_extra("gen:record", || {
        for w in suite {
            store.record(w);
        }
        store.refs()
    });
    let replay_decode = timed_extra("replay:decode", || {
        suite
            .iter()
            .map(|w| {
                store
                    .replay(w.name)
                    .expect("suite recorded")
                    .filter(primecache_trace::Event::is_memory)
                    .count() as u64
            })
            .sum()
    });
    (store, vec![gen_stream, gen_record, replay_decode])
}

/// [`measure`] on the generate-once/replay-everywhere hot path: the
/// suite is recorded once into the compact store (`gen:record` extra),
/// then each workload's trace is decoded once into a flat event buffer
/// (`replay:materialize` extra) and every scheme simulates straight off
/// that buffer through the slice driver — no per-scheme re-decode, no
/// chunk re-batching, no hint precompute. Also measures the pure
/// pipeline stages (`gen:stream`, `replay:decode`) and an end-to-end
/// `sweep:aggregate` entry: total simulated refs across all schemes
/// divided by record + materialize + simulation time, the number a
/// whole sweep actually experiences.
#[must_use]
pub fn measure_replayed(schemes: &[Scheme], refs_per_workload: u64) -> ThroughputReport {
    let suite = all();
    let machine = MachineConfig::paper_default();
    let (store, mut extras) = measure_pipeline_stages(refs_per_workload);
    let record_seconds = extras
        .iter()
        .find(|e| e.label == "gen:record")
        .map_or(0.0, |e| e.seconds);
    let mut per_refs = vec![0u64; schemes.len()];
    let mut per_seconds = vec![0.0f64; schemes.len()];
    let mut materialize_seconds = 0.0f64;
    let mut materialize_refs = 0u64;
    for w in suite {
        let start = Instant::now();
        let events: Vec<primecache_trace::Event> =
            store.replay(w.name).expect("suite recorded").collect();
        materialize_seconds += start.elapsed().as_secs_f64();
        materialize_refs += events
            .iter()
            .filter(|e| primecache_trace::Event::is_memory(e))
            .count() as u64;
        for (i, &scheme) in schemes.iter().enumerate() {
            let start = Instant::now();
            let r = run_trace(events.iter().copied(), scheme, &machine);
            per_seconds[i] += start.elapsed().as_secs_f64();
            per_refs[i] += r.l1.accesses;
        }
    }
    let per_scheme: Vec<SchemeThroughput> = schemes
        .iter()
        .zip(per_refs.iter().zip(&per_seconds))
        .map(|(&scheme, (&refs, &seconds))| SchemeThroughput {
            scheme,
            refs,
            seconds,
            refs_per_sec: if seconds > 0.0 {
                refs as f64 / seconds
            } else {
                0.0
            },
        })
        .collect();
    extras.push(NamedThroughput {
        label: "replay:materialize",
        refs: materialize_refs,
        seconds: materialize_seconds,
        refs_per_sec: if materialize_seconds > 0.0 {
            materialize_refs as f64 / materialize_seconds
        } else {
            0.0
        },
    });
    let sim_refs: u64 = per_scheme.iter().map(|s| s.refs).sum();
    let sim_seconds: f64 = per_scheme.iter().map(|s| s.seconds).sum();
    let total_seconds = record_seconds + materialize_seconds + sim_seconds;
    extras.push(NamedThroughput {
        label: "sweep:aggregate",
        refs: sim_refs,
        seconds: total_seconds,
        refs_per_sec: if total_seconds > 0.0 {
            sim_refs as f64 / total_seconds
        } else {
            0.0
        },
    });
    ThroughputReport {
        refs_per_workload,
        workloads: suite.len(),
        schemes: per_scheme,
        extras,
    }
}

/// Pure trace-pipeline throughput, no simulation: `gen:stream`,
/// `gen:record`, and `replay:decode` over the whole suite (the `bench
/// --gen-only` mode). The report's `schemes` list is empty.
#[must_use]
pub fn measure_gen_only(refs_per_workload: u64) -> ThroughputReport {
    let (_store, extras) = measure_pipeline_stages(refs_per_workload);
    ThroughputReport {
        refs_per_workload,
        workloads: all().len(),
        schemes: Vec::new(),
        extras,
    }
}

impl ThroughputReport {
    /// All entries — schemes then extras — as uniform
    /// `(label, refs, seconds, refs_per_sec)` rows. The JSON writer,
    /// baseline check, and regression gate all iterate this, so a
    /// pipeline-stage extra is gated exactly like a scheme.
    fn entries(&self) -> impl Iterator<Item = (&str, u64, f64, f64)> {
        self.schemes
            .iter()
            .map(|s| (s.scheme.label(), s.refs, s.seconds, s.refs_per_sec))
            .chain(
                self.extras
                    .iter()
                    .map(|e| (e.label, e.refs, e.seconds, e.refs_per_sec)),
            )
    }

    /// Renders the report as the `BENCH_throughput.json` document.
    ///
    /// Hand-rolled writer (the workspace `serde` is a no-op shim); the
    /// format is the one [`baseline_refs_per_sec`] parses back. Extras
    /// go in the same `"schemes"` array as the schemes — the scanner is
    /// label-keyed and treats both identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"refs_per_workload\": {},", self.refs_per_workload);
        let _ = writeln!(out, "  \"workloads\": {},", self.workloads);
        out.push_str("  \"schemes\": [\n");
        let total = self.schemes.len() + self.extras.len();
        for (i, (label, refs, seconds, refs_per_sec)) in self.entries().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"scheme\": \"{label}\", \"refs\": {refs}, \"seconds\": {seconds:.6}, \
                 \"refs_per_sec\": {refs_per_sec:.0}}}{comma}",
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Entries (schemes or extras) in this report that have no baseline
    /// entry — and are therefore **not gated** by
    /// [`ThroughputReport::regressions`].
    ///
    /// A newly added entry silently slipping past the regression gate
    /// is exactly how a perf floor rots; callers must surface these as a
    /// loud warning (and CI, via `--strict`, as a hard failure) until a
    /// baseline entry lands.
    #[must_use]
    pub fn missing_from_baseline(&self, baseline: &BTreeMap<String, f64>) -> Vec<String> {
        self.entries()
            .filter(|(label, ..)| !baseline.contains_key(*label))
            .map(|(label, ..)| label.to_owned())
            .collect()
    }

    /// Compares this report against a committed baseline and returns one
    /// message per entry (scheme or extra) whose refs/sec fell more than
    /// `max_regress` (a fraction, e.g. `0.30`) below the baseline value.
    ///
    /// Entries absent from the baseline are **not** gated here — collect
    /// them with [`ThroughputReport::missing_from_baseline`] and treat
    /// them as an error in CI.
    #[must_use]
    pub fn regressions(&self, baseline: &BTreeMap<String, f64>, max_regress: f64) -> Vec<String> {
        self.entries()
            .filter_map(|(label, _refs, _seconds, refs_per_sec)| {
                let &base = baseline.get(label)?;
                let floor = base * (1.0 - max_regress);
                (refs_per_sec < floor).then(|| {
                    format!(
                        "{label}: {refs_per_sec:.0} refs/sec is below the regression floor \
                         {floor:.0} (baseline {base:.0}, max regression {:.0}%)",
                        max_regress * 100.0
                    )
                })
            })
            .collect()
    }
}

/// Extracts `scheme label -> refs_per_sec` pairs from a throughput JSON
/// document (the format [`ThroughputReport::to_json`] writes).
///
/// A minimal scanner, not a general JSON parser: it pairs each
/// `"scheme": "<label>"` with the next `"refs_per_sec": <number>`.
#[must_use]
pub fn baseline_refs_per_sec(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"scheme\":") {
        rest = &rest[at + "\"scheme\":".len()..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        let label = rest[open + 1..open + 1 + close].to_owned();
        let Some(rp) = rest.find("\"refs_per_sec\":") else {
            break;
        };
        let tail = rest[rp + "\"refs_per_sec\":".len()..].trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse::<f64>() {
            out.insert(label, v);
        }
        rest = &rest[rp + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_covers_requested_schemes() {
        let report = measure(&[Scheme::Base, Scheme::PrimeModulo], 500);
        assert_eq!(report.schemes.len(), 2);
        for s in &report.schemes {
            assert!(s.refs >= 500 * 23, "{}: {} refs", s.scheme.label(), s.refs);
            assert!(s.refs_per_sec > 0.0);
        }
    }

    #[test]
    fn json_round_trips_through_the_baseline_scanner() {
        let report = measure(&[Scheme::Base, Scheme::Xor], 200);
        let json = report.to_json();
        let parsed = baseline_refs_per_sec(&json);
        assert_eq!(parsed.len(), 2);
        for s in &report.schemes {
            let v = parsed[s.scheme.label()];
            // to_json rounds to whole refs/sec.
            assert!(
                (v - s.refs_per_sec).abs() <= 1.0,
                "{v} vs {}",
                s.refs_per_sec
            );
        }
    }

    #[test]
    fn regression_check_fires_only_below_floor() {
        let report = ThroughputReport {
            refs_per_workload: 1,
            workloads: 23,
            schemes: vec![
                SchemeThroughput {
                    scheme: Scheme::Base,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 65.0,
                },
                SchemeThroughput {
                    scheme: Scheme::Xor,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 75.0,
                },
            ],
            extras: vec![NamedThroughput {
                label: "gen:record",
                refs: 23,
                seconds: 1.0,
                refs_per_sec: 40.0,
            }],
        };
        let baseline: BTreeMap<String, f64> = [
            ("Base".to_owned(), 100.0),
            ("XOR".to_owned(), 100.0),
            ("gen:record".to_owned(), 100.0),
        ]
        .into();
        let msgs = report.regressions(&baseline, 0.30);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs[0].starts_with("Base:"), "{}", msgs[0]);
        // Extras are gated by the same floor logic as schemes.
        assert!(msgs[1].starts_with("gen:record:"), "{}", msgs[1]);
    }

    #[test]
    fn schemes_missing_from_baseline_are_reported_not_gated() {
        // The old behavior silently skipped unknown schemes — a scheme
        // could land, never get a baseline entry, and regress forever
        // without tripping CI. `regressions` still only gates schemes
        // with a baseline, but `missing_from_baseline` must name every
        // ungated scheme so callers can warn (or fail, in CI).
        let report = ThroughputReport {
            refs_per_workload: 1,
            workloads: 23,
            schemes: vec![
                SchemeThroughput {
                    scheme: Scheme::FullyAssociative,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 1.0,
                },
                SchemeThroughput {
                    scheme: Scheme::Base,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 99.0,
                },
            ],
            extras: vec![NamedThroughput {
                label: "replay:decode",
                refs: 23,
                seconds: 1.0,
                refs_per_sec: 1.0,
            }],
        };
        let baseline: BTreeMap<String, f64> = [("Base".to_owned(), 100.0)].into();
        assert!(report.regressions(&baseline, 0.3).is_empty());
        assert_eq!(
            report.missing_from_baseline(&baseline),
            vec!["FA", "replay:decode"]
        );
        assert!(report.missing_from_baseline(&BTreeMap::new()).len() == 3);
    }

    #[test]
    fn fully_covered_baseline_reports_nothing_missing() {
        let report = ThroughputReport {
            refs_per_workload: 1,
            workloads: 23,
            schemes: vec![SchemeThroughput {
                scheme: Scheme::Xor,
                refs: 23,
                seconds: 1.0,
                refs_per_sec: 50.0,
            }],
            extras: vec![],
        };
        let baseline: BTreeMap<String, f64> = [("XOR".to_owned(), 100.0)].into();
        assert!(report.missing_from_baseline(&baseline).is_empty());
    }

    #[test]
    fn replayed_measurement_emits_pipeline_extras() {
        let report = measure_replayed(&[Scheme::Base, Scheme::PrimeModulo], 400);
        assert_eq!(report.schemes.len(), 2);
        for s in &report.schemes {
            assert!(s.refs >= 400 * 23, "{}: {} refs", s.scheme.label(), s.refs);
        }
        let labels: Vec<&str> = report.extras.iter().map(|e| e.label).collect();
        assert_eq!(
            labels,
            [
                "gen:stream",
                "gen:record",
                "replay:decode",
                "replay:materialize",
                "sweep:aggregate"
            ]
        );
        // Every stage processed the full suite's memory references.
        for e in &report.extras {
            assert!(e.refs >= 400 * 23, "{}: {} refs", e.label, e.refs);
            assert!(e.refs_per_sec > 0.0, "{}", e.label);
        }
        // Replayed and live simulation agree on the reference count.
        let live = measure(&[Scheme::Base], 400);
        assert_eq!(report.schemes[0].refs, live.schemes[0].refs);
    }

    #[test]
    fn gen_only_measurement_has_no_schemes() {
        let report = measure_gen_only(300);
        assert!(report.schemes.is_empty());
        let labels: Vec<&str> = report.extras.iter().map(|e| e.label).collect();
        assert_eq!(labels, ["gen:stream", "gen:record", "replay:decode"]);
        // Stream and record see the same trace; decode replays it.
        assert_eq!(report.extras[0].refs, report.extras[1].refs);
        assert_eq!(report.extras[1].refs, report.extras[2].refs);
    }

    #[test]
    fn extras_round_trip_through_the_baseline_scanner() {
        let report = ThroughputReport {
            refs_per_workload: 1,
            workloads: 23,
            schemes: vec![SchemeThroughput {
                scheme: Scheme::Base,
                refs: 23,
                seconds: 1.0,
                refs_per_sec: 123.0,
            }],
            extras: vec![NamedThroughput {
                label: "sweep:aggregate",
                refs: 184,
                seconds: 2.0,
                refs_per_sec: 92.0,
            }],
        };
        let parsed = baseline_refs_per_sec(&report.to_json());
        assert_eq!(parsed.len(), 2);
        assert!((parsed["Base"] - 123.0).abs() < 0.5);
        assert!((parsed["sweep:aggregate"] - 92.0).abs() < 0.5);
    }
}
