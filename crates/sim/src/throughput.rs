//! End-to-end simulation throughput measurement (simulated refs/sec).
//!
//! The ROADMAP's north star is a simulator that runs "as fast as the
//! hardware allows"; this module is how that claim stays honest. It
//! drives the full streaming pipeline — generator thread, bounded
//! channel, CPU model, hierarchy, DRAM — over all 23 workloads per
//! scheme, measures wall-clock, and reports memory references retired
//! per second. The `throughput` bench binary emits the result as
//! `BENCH_throughput.json`, and CI fails when a scheme regresses more
//! than the allowed fraction against the committed baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use primecache_workloads::{all, Workload};

use crate::{run_workload, run_workload_reference, RunResult, Scheme};

/// Throughput of one scheme across the whole workload suite.
#[derive(Debug, Clone)]
pub struct SchemeThroughput {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Total memory references simulated (all 23 workloads).
    pub refs: u64,
    /// Wall-clock seconds for the whole suite.
    pub seconds: f64,
    /// Simulated memory references per second.
    pub refs_per_sec: f64,
}

/// A full throughput report: every requested scheme over all workloads.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// References requested per workload.
    pub refs_per_workload: u64,
    /// Number of workloads in the suite.
    pub workloads: usize,
    /// Per-scheme measurements, in the order requested.
    pub schemes: Vec<SchemeThroughput>,
}

/// Measures end-to-end refs/sec for each scheme: all 23 workloads,
/// `refs_per_workload` references each, streamed through the batched
/// monomorphized drivers (the production hot path).
#[must_use]
pub fn measure(schemes: &[Scheme], refs_per_workload: u64) -> ThroughputReport {
    measure_with(schemes, refs_per_workload, run_workload)
}

/// [`measure`] on the pre-batching reference driver (`Box<dyn
/// SetIndexer>` caches, event-at-a-time). Same results, slower — the
/// "before" column of the README/DESIGN before/after tables, measured
/// on the same machine in the same session as the batched numbers.
#[must_use]
pub fn measure_reference(schemes: &[Scheme], refs_per_workload: u64) -> ThroughputReport {
    measure_with(schemes, refs_per_workload, run_workload_reference)
}

fn measure_with(
    schemes: &[Scheme],
    refs_per_workload: u64,
    runner: fn(&Workload, Scheme, u64) -> RunResult,
) -> ThroughputReport {
    let suite = all();
    let per_scheme = schemes
        .iter()
        .map(|&scheme| {
            let start = Instant::now();
            let mut refs = 0u64;
            for w in suite {
                let r = runner(w, scheme, refs_per_workload);
                refs += r.l1.accesses;
            }
            let seconds = start.elapsed().as_secs_f64();
            SchemeThroughput {
                scheme,
                refs,
                seconds,
                refs_per_sec: if seconds > 0.0 {
                    refs as f64 / seconds
                } else {
                    0.0
                },
            }
        })
        .collect();
    ThroughputReport {
        refs_per_workload,
        workloads: suite.len(),
        schemes: per_scheme,
    }
}

impl ThroughputReport {
    /// Renders the report as the `BENCH_throughput.json` document.
    ///
    /// Hand-rolled writer (the workspace `serde` is a no-op shim); the
    /// format is the one [`baseline_refs_per_sec`] parses back.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"refs_per_workload\": {},", self.refs_per_workload);
        let _ = writeln!(out, "  \"workloads\": {},", self.workloads);
        out.push_str("  \"schemes\": [\n");
        for (i, s) in self.schemes.iter().enumerate() {
            let comma = if i + 1 < self.schemes.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"scheme\": \"{}\", \"refs\": {}, \"seconds\": {:.6}, \
                 \"refs_per_sec\": {:.0}}}{comma}",
                s.scheme.label(),
                s.refs,
                s.seconds,
                s.refs_per_sec
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Schemes in this report that have no baseline entry — and are
    /// therefore **not gated** by [`ThroughputReport::regressions`].
    ///
    /// A newly added scheme silently slipping past the regression gate
    /// is exactly how a perf floor rots; callers must surface these as a
    /// loud warning (and CI, via `--strict`, as a hard failure) until a
    /// baseline entry lands.
    #[must_use]
    pub fn missing_from_baseline(&self, baseline: &BTreeMap<String, f64>) -> Vec<String> {
        self.schemes
            .iter()
            .filter(|s| !baseline.contains_key(s.scheme.label()))
            .map(|s| s.scheme.label().to_owned())
            .collect()
    }

    /// Compares this report against a committed baseline and returns one
    /// message per scheme whose refs/sec fell more than `max_regress`
    /// (a fraction, e.g. `0.30`) below the baseline value.
    ///
    /// Schemes absent from the baseline are **not** gated here — collect
    /// them with [`ThroughputReport::missing_from_baseline`] and treat
    /// them as an error in CI.
    #[must_use]
    pub fn regressions(&self, baseline: &BTreeMap<String, f64>, max_regress: f64) -> Vec<String> {
        self.schemes
            .iter()
            .filter_map(|s| {
                let &base = baseline.get(s.scheme.label())?;
                let floor = base * (1.0 - max_regress);
                (s.refs_per_sec < floor).then(|| {
                    format!(
                        "{}: {:.0} refs/sec is below the regression floor {:.0} \
                         (baseline {:.0}, max regression {:.0}%)",
                        s.scheme.label(),
                        s.refs_per_sec,
                        floor,
                        base,
                        max_regress * 100.0
                    )
                })
            })
            .collect()
    }
}

/// Extracts `scheme label -> refs_per_sec` pairs from a throughput JSON
/// document (the format [`ThroughputReport::to_json`] writes).
///
/// A minimal scanner, not a general JSON parser: it pairs each
/// `"scheme": "<label>"` with the next `"refs_per_sec": <number>`.
#[must_use]
pub fn baseline_refs_per_sec(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"scheme\":") {
        rest = &rest[at + "\"scheme\":".len()..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        let label = rest[open + 1..open + 1 + close].to_owned();
        let Some(rp) = rest.find("\"refs_per_sec\":") else {
            break;
        };
        let tail = rest[rp + "\"refs_per_sec\":".len()..].trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse::<f64>() {
            out.insert(label, v);
        }
        rest = &rest[rp + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_covers_requested_schemes() {
        let report = measure(&[Scheme::Base, Scheme::PrimeModulo], 500);
        assert_eq!(report.schemes.len(), 2);
        for s in &report.schemes {
            assert!(s.refs >= 500 * 23, "{}: {} refs", s.scheme.label(), s.refs);
            assert!(s.refs_per_sec > 0.0);
        }
    }

    #[test]
    fn json_round_trips_through_the_baseline_scanner() {
        let report = measure(&[Scheme::Base, Scheme::Xor], 200);
        let json = report.to_json();
        let parsed = baseline_refs_per_sec(&json);
        assert_eq!(parsed.len(), 2);
        for s in &report.schemes {
            let v = parsed[s.scheme.label()];
            // to_json rounds to whole refs/sec.
            assert!(
                (v - s.refs_per_sec).abs() <= 1.0,
                "{v} vs {}",
                s.refs_per_sec
            );
        }
    }

    #[test]
    fn regression_check_fires_only_below_floor() {
        let report = ThroughputReport {
            refs_per_workload: 1,
            workloads: 23,
            schemes: vec![
                SchemeThroughput {
                    scheme: Scheme::Base,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 65.0,
                },
                SchemeThroughput {
                    scheme: Scheme::Xor,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 75.0,
                },
            ],
        };
        let baseline: BTreeMap<String, f64> =
            [("Base".to_owned(), 100.0), ("XOR".to_owned(), 100.0)].into();
        let msgs = report.regressions(&baseline, 0.30);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].starts_with("Base:"), "{}", msgs[0]);
    }

    #[test]
    fn schemes_missing_from_baseline_are_reported_not_gated() {
        // The old behavior silently skipped unknown schemes — a scheme
        // could land, never get a baseline entry, and regress forever
        // without tripping CI. `regressions` still only gates schemes
        // with a baseline, but `missing_from_baseline` must name every
        // ungated scheme so callers can warn (or fail, in CI).
        let report = ThroughputReport {
            refs_per_workload: 1,
            workloads: 23,
            schemes: vec![
                SchemeThroughput {
                    scheme: Scheme::FullyAssociative,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 1.0,
                },
                SchemeThroughput {
                    scheme: Scheme::Base,
                    refs: 23,
                    seconds: 1.0,
                    refs_per_sec: 99.0,
                },
            ],
        };
        let baseline: BTreeMap<String, f64> = [("Base".to_owned(), 100.0)].into();
        assert!(report.regressions(&baseline, 0.3).is_empty());
        assert_eq!(report.missing_from_baseline(&baseline), vec!["FA"]);
        assert!(report.missing_from_baseline(&BTreeMap::new()).len() == 2);
    }

    #[test]
    fn fully_covered_baseline_reports_nothing_missing() {
        let report = ThroughputReport {
            refs_per_workload: 1,
            workloads: 23,
            schemes: vec![SchemeThroughput {
                scheme: Scheme::Xor,
                refs: 23,
                seconds: 1.0,
                refs_per_sec: 50.0,
            }],
        };
        let baseline: BTreeMap<String, f64> = [("XOR".to_owned(), 100.0)].into();
        assert!(report.missing_from_baseline(&baseline).is_empty());
    }
}
