//! End-to-end validation of the §4 uniformity classification: running each
//! workload through the paper's L1 + Base L2 must classify exactly the
//! paper's seven applications (bt, cg, ft, irr, mcf, sp, tree) as
//! non-uniform by the stdev/mean > 0.5 criterion.

use primecache_cache::{CacheConfig, Hierarchy, HierarchyConfig, L2Organization};
use primecache_core::metrics::uniformity_ratio;
use primecache_workloads::all;

/// Memory refs per workload for the classification run. Kept moderate so
/// the test is fast; the full reproduction uses larger traces.
const REFS: u64 = 200_000;

fn l2_histogram(workload: &primecache_workloads::Workload) -> Vec<u64> {
    let mut h = Hierarchy::new(HierarchyConfig::paper_default(L2Organization::SetAssoc(
        CacheConfig::new(512 * 1024, 4, 64),
    )));
    for ev in workload.trace(REFS) {
        if let Some(addr) = ev.addr() {
            let write = matches!(ev, primecache_trace::Event::Store { .. });
            h.access(addr, write);
        }
    }
    h.l2_stats().set_accesses.clone()
}

#[test]
fn classification_matches_the_paper() {
    let mut mismatches = Vec::new();
    for w in all() {
        let hist = l2_histogram(w);
        let cv = uniformity_ratio(&hist);
        let non_uniform = cv > 0.5;
        if non_uniform != w.expected_non_uniform {
            mismatches.push(format!(
                "{}: cv = {cv:.3}, expected {}",
                w.name,
                if w.expected_non_uniform {
                    "non-uniform"
                } else {
                    "uniform"
                }
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "classification mismatches:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn non_uniform_apps_have_substantial_l2_traffic() {
    // A workload whose L2 demand stream is tiny cannot drive the figures.
    for w in all().iter().filter(|w| w.expected_non_uniform) {
        let hist = l2_histogram(w);
        let total: u64 = hist.iter().sum();
        assert!(
            total > REFS / 50,
            "{}: only {total} L2 demand accesses from {REFS} refs",
            w.name
        );
    }
}
