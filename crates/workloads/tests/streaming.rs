//! Streaming-vs-materialized equivalence for every workload.
//!
//! The streaming pipeline only earns its keep if it is invisible to the
//! simulator: `events(n)` must yield exactly the event sequence
//! `trace(n)` materializes, for all 23 generators, or every figure in
//! the reproduction would silently depend on the delivery mechanism.

use primecache_trace::Event;
use primecache_workloads::all;

const REFS: u64 = 30_000;

#[test]
fn streams_match_materialized_traces_event_for_event() {
    for w in all() {
        let materialized = w.trace(REFS);
        let streamed: Vec<Event> = w.events(REFS).collect();
        assert_eq!(
            materialized.len(),
            streamed.len(),
            "{}: stream length diverges",
            w.name
        );
        for (i, (a, b)) in materialized.iter().zip(&streamed).enumerate() {
            assert_eq!(a, b, "{}: first divergence at event {i}", w.name);
        }
    }
}

#[test]
fn streams_are_deterministic_across_invocations() {
    for w in all() {
        let a: Vec<Event> = w.events(5_000).collect();
        let b: Vec<Event> = w.events(5_000).collect();
        assert_eq!(a, b, "{}", w.name);
    }
}

#[test]
fn dropping_a_stream_early_terminates_cleanly() {
    for w in all() {
        // Ask for far more than we read; Drop joins the generator thread,
        // so this test hanging would mean a stuck producer.
        let mut stream = w.events(100_000_000);
        for _ in 0..10_000 {
            assert!(stream.next().is_some(), "{}", w.name);
        }
        drop(stream);
    }
}
