//! SPECint-style workloads: bzip2, gap, parser (uniform) and mcf
//! (non-uniform).

use crate::util::{Lcg, TraceSink};

const KB: u64 = 1024;

/// SPEC bzip2: block-sorting compression. A ~256 KB work block is scanned
/// sequentially and revisited with data-dependent (but uniformly spread)
/// suffix comparisons. The working set cycles just inside the L2 with true
/// LRU — the reuse pattern a skewed pseudo-LRU cache degrades (Fig. 10).
pub fn bzip2(t: &mut TraceSink) {
    let mut rng = Lcg::new(0xB2);
    let block_base = 0xC000_0000u64 + 104; // packed buffer, odd offset
    let block = 256 * KB;
    let ptrs_base = 0xD000_0000u64 + 8;
    let mut pos = 0u64;
    while !t.done() {
        // Sequential scan of the block (RLE + frequency counting).
        for _ in 0..4 {
            t.load(block_base + pos % block);
            pos += 48 + rng.below(16); // sub-line steps, forward
        }
        // Suffix comparisons: two spread probes into the same block.
        let a = rng.below(block);
        let b = rng.below(block);
        t.load(block_base + a);
        t.load(block_base + b);
        t.store(ptrs_base + (pos / 64 % (512 * KB)) * 4);
        t.work(26);
        if rng.chance(1, 6) {
            t.branch(rng.chance(1, 5));
        }
    }
}

/// SPEC gap: computational group theory. Bag-of-objects heap with packed
/// 64-byte objects walked via pointer chains; allocation order makes the
/// heap dense, so set usage is uniform.
pub fn gap(t: &mut TraceSink) {
    let mut rng = Lcg::new(0x9A);
    let heap_base = 0xE000_0000u64;
    let objects = 64 * 1024u64; // 4 MB of packed 64-B objects
    let mut cursor = 0u64;
    while !t.done() {
        // Follow a short pointer chain (dependent loads).
        for _ in 0..3 {
            cursor = (cursor * 31 + rng.below(997) + 1) % objects;
            t.chase(heap_base + cursor * 64 + rng.below(6) * 8);
        }
        // Touch the object body.
        t.load(heap_base + cursor * 64 + 32);
        t.store(heap_base + cursor * 64 + 48);
        t.work(18);
        t.branch(rng.chance(1, 9));
    }
}

/// SPEC mcf: network-simplex minimum-cost flow. Node structures are 128
/// bytes but the tree traversal touches only their 64-byte head, so half
/// the L2 sets carry all the chase traffic (the non-uniform histogram);
/// the arc array streams through sequentially with capacity misses no
/// hashing can remove. The result is a memory-bound app with a modest
/// hashing upside, matching the paper's mcf bar.
pub fn mcf(t: &mut TraceSink) {
    let mut rng = Lcg::new(0x3C);
    let arcs_base = 0x8000_0000u64;
    let arc_bytes = 4 * 1024 * KB; // 4 MB of packed 96-B arcs: streams
    let nodes_base = 0x9800_0000u64;
    let n_nodes = 7_000u64; // 875 KB of 128-B nodes, heads only
    let mut node = 0u64;
    let mut arc_pos = 0u64;
    while !t.done() {
        // Arc pricing scan: sequential over packed 96-B arc records.
        for _ in 0..2 {
            let a = arcs_base + (arc_pos * 96) % arc_bytes;
            t.load(a);
            arc_pos += 1;
            t.work(16);
        }
        // Tree traversal: dependent chases into padded node heads;
        // popular nodes (small indices) dominate.
        for _ in 0..3 {
            node = rng.skewed(n_nodes);
            t.chase(nodes_base + node * 128);
            t.work(44);
        }
        if rng.chance(1, 3) {
            t.store(nodes_base + node * 128 + 24);
        }
        t.branch(rng.chance(1, 5));
    }
}

/// SPEC parser: dictionary word lookups in a packed hash table plus a
/// small parse-state stack; bucket indices are uniform.
pub fn parser(t: &mut TraceSink) {
    let mut rng = Lcg::new(0xAE);
    let dict_base = 0xF000_0000u64 + 56;
    let buckets = 1_000_003u64; // prime-sized table, packed 16-B entries
    let stack_base = 0xF800_0000u64;
    let mut depth = 0u64;
    while !t.done() {
        // Hash lookup with a short probe chain.
        let h = rng.below(buckets);
        t.load(dict_base + h * 16);
        if rng.chance(1, 3) {
            t.chase(dict_base + ((h * 7 + 13) % buckets) * 16);
        }
        // Parse-state stack: hot, tiny, L1-resident.
        depth = (depth + 1) % 64;
        t.load(stack_base + depth * 8);
        t.store(stack_base + depth * 8);
        t.work(20);
        t.branch(rng.chance(1, 7));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::materialize;
    use primecache_trace::TraceStats;

    #[test]
    fn generators_reach_target() {
        for (name, f) in [
            ("bzip2", bzip2 as fn(&mut TraceSink)),
            ("gap", gap),
            ("mcf", mcf),
            ("parser", parser),
        ] {
            let stats: TraceStats = materialize(f, 5_000).iter().collect();
            assert!(stats.memory_refs() >= 5_000, "{name}");
            assert!(stats.memory_refs() < 5_100, "{name} overshoots");
        }
    }

    #[test]
    fn mcf_node_chases_touch_only_heads() {
        let node_blocks: Vec<u64> = materialize(mcf, 20_000)
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| a >= 0x9800_0000u64)
            .map(|a| a / 64)
            .collect();
        assert!(!node_blocks.is_empty());
        assert!(
            node_blocks.iter().all(|b| b % 2 == 0),
            "node heads are 128-B aligned"
        );
    }

    #[test]
    fn mcf_and_gap_chase_pointers() {
        for f in [mcf as fn(&mut TraceSink), gap] {
            let stats: TraceStats = materialize(f, 10_000).iter().collect();
            assert!(stats.dependent_loads > 1_000, "{stats:?}");
        }
    }

    #[test]
    fn bzip2_stays_in_its_block() {
        let max = materialize(bzip2, 20_000)
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| (0xC000_0000..0xD000_0000u64).contains(&a))
            .max()
            .unwrap();
        assert!(max < 0xC000_0000 + 401 * KB);
    }

    #[test]
    fn determinism() {
        assert_eq!(materialize(mcf, 3_000), materialize(mcf, 3_000));
        assert_eq!(materialize(parser, 3_000), materialize(parser, 3_000));
    }
}
