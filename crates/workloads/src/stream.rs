//! Streaming trace delivery: run a generator on its own thread and pull
//! events through a bounded channel.
//!
//! The paper's evaluation runs hundreds of millions of references per
//! cell; materializing such traces as `Vec<Event>` makes peak memory
//! linear in trace length and forces regeneration per scheme. An
//! [`EventStream`] instead keeps at most a few chunks in flight
//! (`STREAM_CHUNK` events × channel depth), so peak memory is O(1) in
//! `target_refs`, and generation overlaps with simulation on multicore
//! hosts.
//!
//! The chunk protocol itself lives in
//! [`primecache_conc::port::stream`], instantiated here with the
//! production [`StdBackend`]; the *same source* instantiated with the
//! model backend is verified schedule-exhaustively (`pcache
//! conc-check`): delivery order is schedule-invariant, the `chunks`
//! counter is exact, and early drop always unwinds and joins the
//! generator.
//!
//! Determinism is preserved exactly: the generator emits the same
//! sequence whether it writes to a buffer or a channel, which the
//! `streaming` integration test asserts event-for-event for all 23
//! workloads.

use primecache_conc::port::stream::ChunkStream;
use primecache_conc::StdBackend;
use primecache_trace::Event;

use crate::util::{TraceSink, STREAM_CHUNK};

/// Default bounded chunk slots in flight between generator and consumer.
/// With `STREAM_CHUNK` events per slot this caps buffered events at
/// `CHANNEL_DEPTH * STREAM_CHUNK` regardless of trace length.
const CHANNEL_DEPTH: usize = 4;

/// A lazily generated, O(1)-memory trace: `Iterator<Item = Event>`.
///
/// Produced by [`crate::Workload::events`]. The generator runs on a
/// dedicated thread and is torn down promptly when the stream is dropped
/// early: the hangup surfaces as a failed chunk send, which flips the
/// sink's `done()` flag and unwinds the generator loop; dropping the
/// stream joins the generator thread before returning.
#[derive(Debug)]
pub struct EventStream {
    inner: ChunkStream<StdBackend, Event>,
}

impl EventStream {
    /// Spawns `generator` with a channel-backed [`TraceSink`] targeting
    /// `target_refs` memory references, with default channel depth and
    /// chunk size.
    pub(crate) fn spawn(generator: fn(&mut TraceSink), target_refs: u64) -> Self {
        Self::spawn_with(generator, target_refs, CHANNEL_DEPTH, STREAM_CHUNK)
    }

    /// [`EventStream::spawn`] with explicit channel `depth` (chunk slots
    /// in flight) and `chunk_events` (events per chunk). Peak buffered
    /// memory is proportional to `depth * chunk_events`.
    ///
    /// # Panics
    ///
    /// Panics when `depth` or `chunk_events` is zero.
    pub(crate) fn spawn_with(
        generator: fn(&mut TraceSink),
        target_refs: u64,
        depth: usize,
        chunk_events: usize,
    ) -> Self {
        Self {
            inner: ChunkStream::spawn("trace-gen", depth, chunk_events, move |sink| {
                let mut trace = TraceSink::for_channel(target_refs, sink);
                generator(&mut trace);
                trace.finish();
            }),
        }
    }

    /// Back-pressure counters: `(chunks, blocked_waits)` — chunks pulled
    /// from the generator, and how many of those pulls found the channel
    /// empty and had to block. A high ratio means the consumer outruns
    /// the generator; zero blocked waits means generation fully overlaps
    /// with simulation.
    #[must_use]
    pub fn stream_stats(&self) -> (u64, u64) {
        self.inner.stats()
    }

    /// The stream's buffering configuration: `(depth, chunk_events)`.
    /// Peak buffered events is their product.
    #[must_use]
    pub fn stream_config(&self) -> (usize, usize) {
        self.inner.config()
    }

    /// Next whole chunk of events (at most `chunk_events` long), or
    /// `None` once the generator is exhausted. The batched drivers in
    /// `primecache-sim` precompute L2 set indexes over whole chunks.
    ///
    /// Order-compatible with the `Iterator` view: the concatenation of
    /// chunks (interleaved with any `next()` pulls) is exactly the
    /// generated event sequence.
    pub fn next_chunk(&mut self) -> Option<Vec<Event>> {
        self.inner.next_chunk()
    }
}

impl Iterator for EventStream {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        self.inner.next_item()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};

    use super::*;

    fn counting(t: &mut TraceSink) {
        let mut i = 0u64;
        while !t.done() {
            t.load(i * 64);
            if i.is_multiple_of(7) {
                t.work(3);
            }
            i += 1;
        }
    }

    #[test]
    fn stream_matches_materialized() {
        let streamed: Vec<Event> = EventStream::spawn(counting, 10_000).collect();
        let buffered = crate::util::materialize(counting, 10_000);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn depth_one_stream_matches_materialized() {
        // The tightest possible channel (one chunk slot, tiny chunks)
        // maximizes producer/consumer lockstep; delivery must still be
        // byte-identical to the buffered path.
        let streamed: Vec<Event> = EventStream::spawn_with(counting, 10_000, 1, 64).collect();
        let buffered = crate::util::materialize(counting, 10_000);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn early_drop_terminates_generator() {
        // Target far beyond what the consumer reads; Drop must still
        // return promptly (the generator unwinds on the failed send).
        let mut stream = EventStream::spawn(counting, u64::MAX >> 8);
        for _ in 0..10 * STREAM_CHUNK {
            assert!(stream.next().is_some());
        }
        drop(stream); // must not hang
    }

    static COUNTING_FLAGGED_RETURNED: AtomicBool = AtomicBool::new(false);

    fn counting_flagged(t: &mut TraceSink) {
        counting(t);
        COUNTING_FLAGGED_RETURNED.store(true, Ordering::SeqCst);
    }

    #[test]
    fn early_drop_joins_generator_thread() {
        // Drop mid-chunk (fewer events consumed than one chunk holds):
        // by the time drop() returns, the generator must have observed
        // the hangup, unwound its loop normally (no panic propagation)
        // and had its thread joined — the flag write is the generator's
        // last statement, so seeing it proves the join was real.
        let mut stream = EventStream::spawn(counting_flagged, u64::MAX >> 8);
        for _ in 0..STREAM_CHUNK / 2 {
            assert!(stream.next().is_some());
        }
        drop(stream);
        assert!(
            COUNTING_FLAGGED_RETURNED.load(Ordering::SeqCst),
            "drop returned before the generator thread finished"
        );
    }

    #[test]
    fn empty_target_yields_empty_stream() {
        let events: Vec<Event> = EventStream::spawn(counting, 0).collect();
        assert!(events.is_empty());
    }

    #[test]
    fn chunked_pull_matches_materialized() {
        let mut stream = EventStream::spawn(counting, 10_000);
        let mut chunked = Vec::new();
        while let Some(chunk) = stream.next_chunk() {
            assert!(!chunk.is_empty());
            assert!(chunk.len() <= STREAM_CHUNK);
            chunked.extend(chunk);
        }
        assert!(stream.next_chunk().is_none(), "stream stays exhausted");
        let buffered = crate::util::materialize(counting, 10_000);
        assert_eq!(chunked, buffered);
    }

    #[test]
    fn interleaved_item_and_chunk_pulls_preserve_order() {
        // Pull a few items, then a chunk (which must return the rest of
        // the partially consumed chunk first), then drain: concatenation
        // must equal the buffered sequence.
        // > STREAM_CHUNK refs so the trace spans several chunks.
        let target = 3 * STREAM_CHUNK as u64;
        let mut stream = EventStream::spawn(counting, target);
        let mut got = Vec::new();
        for _ in 0..7 {
            got.push(stream.next().unwrap());
        }
        got.extend(stream.next_chunk().unwrap());
        got.push(stream.next().unwrap());
        while let Some(chunk) = stream.next_chunk() {
            got.extend(chunk);
        }
        let buffered = crate::util::materialize(counting, target);
        assert_eq!(got, buffered);
    }

    #[test]
    fn stream_stats_count_chunks() {
        let mut stream = EventStream::spawn(counting, 10_000);
        let n = stream.by_ref().count() as u64;
        assert!(n >= 10_000);
        let (chunks, blocked) = stream.stream_stats();
        assert_eq!(chunks, n.div_ceil(STREAM_CHUNK as u64));
        assert!(blocked <= chunks);
    }
}
