//! Streaming trace delivery: run a generator on its own thread and pull
//! events through a bounded channel.
//!
//! The paper's evaluation runs hundreds of millions of references per
//! cell; materializing such traces as `Vec<Event>` makes peak memory
//! linear in trace length and forces regeneration per scheme. An
//! [`EventStream`] instead keeps at most a few chunks in flight
//! (`STREAM_CHUNK` events × channel depth), so peak memory is O(1) in
//! `target_refs`, and generation overlaps with simulation on multicore
//! hosts.
//!
//! Determinism is preserved exactly: the generator emits the same
//! sequence whether it writes to a buffer or a channel, which the
//! `streaming` integration test asserts event-for-event for all 23
//! workloads.

use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::thread::JoinHandle;

use primecache_trace::Event;

use crate::util::TraceSink;

/// Bounded chunk slots in flight between generator and consumer. With
/// `STREAM_CHUNK` events per slot this caps buffered events at
/// `CHANNEL_DEPTH * STREAM_CHUNK` regardless of trace length.
const CHANNEL_DEPTH: usize = 4;

/// A lazily generated, O(1)-memory trace: `Iterator<Item = Event>`.
///
/// Produced by [`crate::Workload::events`]. The generator runs on a
/// dedicated thread and is torn down promptly when the stream is dropped
/// early: the hangup surfaces as a failed chunk send, which flips the
/// sink's `done()` flag and unwinds the generator loop.
#[derive(Debug)]
pub struct EventStream {
    rx: Option<Receiver<Vec<Event>>>,
    chunk: std::vec::IntoIter<Event>,
    handle: Option<JoinHandle<()>>,
    /// Chunks received from the generator so far.
    chunks: u64,
    /// Chunk receives that found the channel empty and had to block —
    /// the consumer outran the generator (channel back-pressure).
    blocked_waits: u64,
}

impl EventStream {
    /// Spawns `generator` with a channel-backed [`TraceSink`] targeting
    /// `target_refs` memory references.
    pub(crate) fn spawn(generator: fn(&mut TraceSink), target_refs: u64) -> Self {
        let (tx, rx): (SyncSender<Vec<Event>>, _) = std::sync::mpsc::sync_channel(CHANNEL_DEPTH);
        let handle = std::thread::Builder::new()
            .name("trace-gen".into())
            .spawn(move || {
                let mut sink = TraceSink::for_channel(target_refs, tx);
                generator(&mut sink);
                sink.finish();
            })
            .expect("spawn trace generator thread");
        Self {
            rx: Some(rx),
            chunk: Vec::new().into_iter(),
            handle: Some(handle),
            chunks: 0,
            blocked_waits: 0,
        }
    }

    /// Back-pressure counters: `(chunks, blocked_waits)` — chunks pulled
    /// from the generator, and how many of those pulls found the channel
    /// empty and had to block. A high ratio means the consumer outruns
    /// the generator; zero blocked waits means generation fully overlaps
    /// with simulation.
    #[must_use]
    pub fn stream_stats(&self) -> (u64, u64) {
        (self.chunks, self.blocked_waits)
    }
}

impl Iterator for EventStream {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if let Some(ev) = self.chunk.next() {
                return Some(ev);
            }
            // Try a non-blocking receive first purely to observe
            // back-pressure: an empty channel here means this pull will
            // block on the generator. One `try_recv` per chunk (4096
            // events) is noise on the hot path.
            let rx = self.rx.as_ref()?;
            let received = match rx.try_recv() {
                Ok(chunk) => Ok(chunk),
                Err(TryRecvError::Empty) => {
                    self.blocked_waits += 1;
                    rx.recv().map_err(|_| ())
                }
                Err(TryRecvError::Disconnected) => Err(()),
            };
            match received {
                Ok(chunk) => {
                    self.chunks += 1;
                    self.chunk = chunk.into_iter();
                }
                Err(()) => {
                    // Generator finished and dropped its sender.
                    self.rx = None;
                    return None;
                }
            }
        }
    }
}

impl Drop for EventStream {
    fn drop(&mut self) {
        // Drop the receiver first so any blocked send in the generator
        // fails immediately, then reap the thread.
        self.rx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::STREAM_CHUNK;

    fn counting(t: &mut TraceSink) {
        let mut i = 0u64;
        while !t.done() {
            t.load(i * 64);
            if i.is_multiple_of(7) {
                t.work(3);
            }
            i += 1;
        }
    }

    #[test]
    fn stream_matches_materialized() {
        let streamed: Vec<Event> = EventStream::spawn(counting, 10_000).collect();
        let buffered = crate::util::materialize(counting, 10_000);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn early_drop_terminates_generator() {
        // Target far beyond what the consumer reads; Drop must still
        // return promptly (the generator unwinds on the failed send).
        let mut stream = EventStream::spawn(counting, u64::MAX >> 8);
        for _ in 0..10 * STREAM_CHUNK {
            assert!(stream.next().is_some());
        }
        drop(stream); // must not hang
    }

    #[test]
    fn empty_target_yields_empty_stream() {
        let events: Vec<Event> = EventStream::spawn(counting, 0).collect();
        assert!(events.is_empty());
    }

    #[test]
    fn stream_stats_count_chunks() {
        let mut stream = EventStream::spawn(counting, 10_000);
        let n = stream.by_ref().count() as u64;
        assert!(n >= 10_000);
        let (chunks, blocked) = stream.stream_stats();
        assert_eq!(chunks, n.div_ceil(STREAM_CHUNK as u64));
        assert!(blocked <= chunks);
    }
}
