//! Synthetic models of the 23 memory-intensive applications of the paper's
//! evaluation (§4).
//!
//! The paper evaluates on real benchmarks (SPEC2000/95, NAS, Olden,
//! SparseBench, the Hawaii treecode, and several scientific kernels). This
//! crate substitutes each with a deterministic trace generator modelled on
//! the published memory-access structure of that code — grid sweeps,
//! power-of-two FFT strides, CSR sparse gathers, pointer chases over padded
//! heap objects, neighbour-list gathers, histograms. The substitution is
//! faithful in the dimension that matters to the paper: the *set-index
//! distribution* of the L2 access stream and its temporal reuse.
//!
//! The same seven applications the paper lists — `bt`, `cg`, `ft`, `irr`,
//! `mcf`, `sp`, `tree` — are non-uniform under traditional indexing by the
//! §4 criterion (`stdev/mean > 0.5` over per-set accesses), which the test
//! suite verifies end-to-end against the cache simulator.
//!
//! # Examples
//!
//! ```
//! use primecache_workloads::{all, by_name};
//!
//! assert_eq!(all().len(), 23);
//! let tree = by_name("tree").unwrap();
//! assert!(tree.expected_non_uniform);
//! let trace = tree.trace(10_000);
//! assert!(trace.iter().filter(|e| e.is_memory()).count() >= 10_000);
//! ```

mod grid;
mod md;
mod nas;
mod pointer;
pub mod probe;
pub mod profile;
mod registry;
mod sparse;
mod spec_int;
mod store;
mod stream;
pub mod tenant;
mod util;

pub use registry::{all, by_name, non_uniform_names, uniform_names, Workload};
pub use store::{EventChunks, TraceStore, TraceStoreStats};
pub use stream::EventStream;
pub use tenant::{MixConfig, MixCursor, MixStats, TenantMix};
pub use util::{materialize, record, Lcg, TraceSink, STREAM_CHUNK};
