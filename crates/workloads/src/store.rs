//! The in-memory recorded-trace store behind generate-once sweeps, and
//! the [`EventChunks`] abstraction that lets the simulation drivers pull
//! chunks from either a live generator stream or a recorded replay.
//!
//! A design-space sweep runs every scheme over the *identical* 23
//! traces; generating them once per scheme makes the sweep
//! generator-bound. A [`TraceStore`] records each workload exactly once
//! (same-thread, straight into the compact delta/varint encoding) and
//! then hands out any number of read-only [`ReplayCursor`]s, so the 8×
//! redundant generation cost collapses to 1× + cheap decodes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use primecache_trace::{EncodedTrace, Event, ReplayCursor};
use serde::Serialize;

use crate::registry::Workload;
use crate::stream::EventStream;

/// A source of trace events the batched simulation drivers can consume
/// chunk-at-a-time: a live [`EventStream`] or a recorded
/// [`ReplayCursor`]. Implementors must deliver the same event sequence
/// through `next` and `next_chunk` (remainder-first on interleaving).
pub trait EventChunks: Iterator<Item = Event> {
    /// Next whole chunk of events, or `None` at end of trace.
    ///
    /// (Named `pull_chunk` rather than `next_chunk` to stay clear of the
    /// unstable `Iterator::next_chunk`.)
    fn pull_chunk(&mut self) -> Option<Vec<Event>>;

    /// `(chunks delivered, blocked_waits)` so far. Replays never block:
    /// their second component is always 0.
    fn chunk_stats(&self) -> (u64, u64);

    /// `(channel depth, events per chunk)`. Replays have no channel:
    /// their depth is 0.
    fn chunk_config(&self) -> (usize, usize);
}

impl EventChunks for EventStream {
    fn pull_chunk(&mut self) -> Option<Vec<Event>> {
        self.next_chunk()
    }

    fn chunk_stats(&self) -> (u64, u64) {
        self.stream_stats()
    }

    fn chunk_config(&self) -> (usize, usize) {
        self.stream_config()
    }
}

impl EventChunks for ReplayCursor<'_> {
    fn pull_chunk(&mut self) -> Option<Vec<Event>> {
        self.next_chunk()
    }

    fn chunk_stats(&self) -> (u64, u64) {
        self.stream_stats()
    }

    fn chunk_config(&self) -> (usize, usize) {
        self.stream_config()
    }
}

/// Mirror of the standard library's `Iterator for &mut I`: a driver can
/// consume a mutable borrow and leave the source inspectable afterwards
/// (e.g. an importer stream whose deferred parse error the caller checks
/// once the run finishes).
impl<S: EventChunks + ?Sized> EventChunks for &mut S {
    fn pull_chunk(&mut self) -> Option<Vec<Event>> {
        (**self).pull_chunk()
    }

    fn chunk_stats(&self) -> (u64, u64) {
        (**self).chunk_stats()
    }

    fn chunk_config(&self) -> (usize, usize) {
        (**self).chunk_config()
    }
}

/// Counters a [`TraceStore`] exposes to observability and sweep reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TraceStoreStats {
    /// Workload traces recorded (one generation each).
    pub records: u64,
    /// Replay cursors handed out (generations *avoided*, after the
    /// first, for every record replayed more than once).
    pub replays: u64,
    /// Total encoded bytes held across all records.
    pub encoded_bytes: u64,
    /// Total events across all records.
    pub events: u64,
    /// The reference target every record was generated to.
    pub target_refs: u64,
}

/// An in-memory map of workload name → recorded [`EncodedTrace`].
///
/// Records are written once (single generation per workload per sweep)
/// and replayed many times; `replay` takes `&self`, so a parallel sweep
/// shares one store across all workers with no locking on the replay
/// path.
#[derive(Debug)]
pub struct TraceStore {
    target_refs: u64,
    entries: BTreeMap<&'static str, EncodedTrace>,
    replays: AtomicU64,
}

impl TraceStore {
    /// Creates an empty store whose records will target `target_refs`
    /// memory references each.
    #[must_use]
    pub fn new(target_refs: u64) -> Self {
        Self {
            target_refs,
            entries: BTreeMap::new(),
            replays: AtomicU64::new(0),
        }
    }

    /// Records every workload in `workloads` (serially, on the calling
    /// thread). Sweep drivers that want parallel recording insert
    /// per-worker results via [`TraceStore::insert`] instead.
    #[must_use]
    pub fn record_all(workloads: &[Workload], target_refs: u64) -> Self {
        let mut store = Self::new(target_refs);
        for w in workloads {
            store.record(w);
        }
        store
    }

    /// Generates and stores `workload`'s trace at the store's target.
    pub fn record(&mut self, workload: &Workload) {
        self.insert(workload.name, workload.record(self.target_refs));
    }

    /// Stores an already-recorded trace under `name` (replacing any
    /// previous record).
    pub fn insert(&mut self, name: &'static str, trace: EncodedTrace) {
        self.entries.insert(name, trace);
    }

    /// A replay cursor over `name`'s record, or `None` when the
    /// workload was never recorded. Each call counts one served replay.
    #[must_use]
    pub fn replay(&self, name: &str) -> Option<ReplayCursor<'_>> {
        let trace = self.entries.get(name)?;
        self.replays.fetch_add(1, Ordering::Relaxed);
        Some(trace.replay())
    }

    /// The recorded trace for `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&EncodedTrace> {
        self.entries.get(name)
    }

    /// The reference target each record was generated to.
    #[must_use]
    pub fn target_refs(&self) -> u64 {
        self.target_refs
    }

    /// Number of workloads recorded.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Replay cursors handed out so far.
    #[must_use]
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Total encoded bytes held.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.entries.values().map(EncodedTrace::encoded_bytes).sum()
    }

    /// Total events held.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.entries.values().map(EncodedTrace::events).sum()
    }

    /// Total memory references held.
    #[must_use]
    pub fn refs(&self) -> u64 {
        self.entries.values().map(EncodedTrace::refs).sum()
    }

    /// Snapshot of the store's counters.
    #[must_use]
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            records: self.records(),
            replays: self.replays(),
            encoded_bytes: self.encoded_bytes(),
            events: self.events(),
            target_refs: self.target_refs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    #[test]
    fn store_replays_the_recorded_sequence() {
        let w = by_name("swim").unwrap();
        let mut store = TraceStore::new(5_000);
        store.record(w);
        let live: Vec<Event> = w.trace(5_000);
        let replayed: Vec<Event> = store.replay("swim").unwrap().collect();
        assert_eq!(replayed, live);
        // Replays are repeatable and independent.
        let again: Vec<Event> = store.replay("swim").unwrap().collect();
        assert_eq!(again, live);
        assert_eq!(store.replays(), 2);
        assert_eq!(store.records(), 1);
        assert!(store.encoded_bytes() > 0);
    }

    #[test]
    fn missing_workload_yields_none() {
        let store = TraceStore::new(100);
        assert!(store.replay("nope").is_none());
        assert_eq!(store.replays(), 0);
    }

    #[test]
    fn concurrent_replays_share_one_record() {
        let w = by_name("mcf").unwrap();
        let mut store = TraceStore::new(2_000);
        store.record(w);
        let expect: Vec<Event> = w.trace(2_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = &store;
                let expect = &expect;
                scope.spawn(move || {
                    let got: Vec<Event> = store.replay("mcf").unwrap().collect();
                    assert_eq!(&got, expect);
                });
            }
        });
        assert_eq!(store.stats().replays, 4);
    }

    #[test]
    fn event_chunks_is_object_safe_enough_for_both_sources() {
        // The same driver-side consumption pattern must see the same
        // events from a live stream and a replay cursor.
        fn drain(mut src: impl EventChunks) -> (Vec<Event>, u64) {
            let mut out = Vec::new();
            while let Some(chunk) = src.pull_chunk() {
                out.extend(chunk);
            }
            (out, src.chunk_stats().0)
        }
        let w = by_name("tree").unwrap();
        let store = TraceStore::record_all(&[*w], 3_000);
        let (live, live_chunks) = drain(w.events(3_000));
        let (replayed, replay_chunks) = drain(store.replay("tree").unwrap());
        assert_eq!(replayed, live);
        // Same chunk cadence: recording cuts chunks at STREAM_CHUNK too.
        assert_eq!(replay_chunks, live_chunks);
    }
}
