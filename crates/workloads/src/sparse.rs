//! Sparse-solver workloads: cg and irr (non-uniform), sparse and equake
//! (uniform).
//!
//! All four are CSR-style matrix-vector kernels; they differ in the layout
//! of the gathered vector. `cg` gathers into power-of-two-aligned graph
//! partitions and `irr` into 256-byte-padded mesh nodes — both concentrate
//! L2 sets. `sparse` and `equake` gather into densely packed vectors with
//! odd row lengths — uniform.

use crate::util::{Lcg, TraceSink};

const KB: u64 = 1024;
#[allow(dead_code)]
const MB: u64 = 1024 * 1024;

/// Shared CSR sweep: for each row, stream `nnz_per_row` (value, col) pairs
/// and gather `x[col]` via `gather`, then store `y[row]`.
fn csr_sweep(
    t: &mut TraceSink,
    seed: u64,
    rows: u64,
    nnz_per_row: u64,
    work_per_nz: u32,
    mut gather: impl FnMut(&mut Lcg, u64) -> u64,
) {
    let mut rng = Lcg::new(seed);
    let vals_base = 0x6_0000_0000u64;
    let y_base = 0x7_0000_0000u64 + 8 * KB + 40;
    // The iterative solver re-reads the same matrix every iteration.
    let matrix_nz = rows * nnz_per_row;
    let mut nz_pos = 0u64;
    'outer: loop {
        for row in 0..rows {
            for _ in 0..nnz_per_row {
                // Stream the matrix entry (value + column index).
                t.load(vals_base + (nz_pos % matrix_nz) * 12);
                nz_pos += 1;
                // Gather from x.
                let x_addr = gather(&mut rng, row);
                t.load(x_addr);
                t.fp_work(work_per_nz);
                if t.done() {
                    break 'outer;
                }
            }
            t.store(y_base + row * 8);
            t.branch(rng.chance(1, 16));
        }
    }
}

/// NAS cg: conjugate gradient on a renumbered random graph. Gathers split
/// into a hot head — the high-degree vertices, a 64 KB region whose blocks
/// cover only half the L2 sets (the non-uniform histogram) — and a cold
/// tail of ~5000 scattered heap blocks touched at random.
///
/// The tail slightly exceeds the L2, so cg's misses are capacity-ish and
/// randomly placed: no *single* rehash can remove them. Only the skewed
/// caches, with their extra placement freedom, win — exactly the paper's
/// observation that "with cg and mst, only the skewed associative schemes
/// are able to obtain speedups" (§5.3).
pub fn cg(t: &mut TraceSink) {
    let hot_base = 0x8000_0000u64; // 64 KB of hot vertices, block-aligned
    let hot_blocks = 1024u64;
    // The cold vertices live on ~7000 *scattered* blocks of a large heap
    // (the graph generator's random placement): every set-index function
    // sees the same Poisson imbalance, so only the extra placement
    // freedom of a skewed cache removes the overflow conflicts.
    let tail_base = 0x8800_0000u64;
    let mut placement = Lcg::new(0xC61);
    let tail_blocks: Vec<u64> = (0..3_500)
        .map(|_| tail_base + placement.below(32 * 1024) * 64)
        .collect();
    csr_sweep(t, 0xC6, 1 << 11, 8, 24, move |rng, _row| {
        if rng.chance(3, 5) {
            // High-degree head, skewed toward the very front.
            hot_base + rng.skewed(hot_blocks) * 64 + rng.below(8) * 8
        } else {
            tail_blocks[rng.below(tail_blocks.len() as u64) as usize] + rng.below(8) * 8
        }
    })
}

/// An iterative PDE solver on an irregular mesh (the paper's `irr`). Mesh
/// nodes are 256-byte padded structures; the solver gathers the 64-byte
/// header of each neighbour, so only every fourth L2 set is ever touched
/// by the gather stream.
pub fn irr(t: &mut TraceSink) {
    let nodes = 8_192u64; // 2 MB of 256-B nodes
    let node_base = 0x8000_0000u64;
    csr_sweep(t, 0x17, 1 << 14, 9, 320, move |rng, row| {
        // High-degree mesh vertices dominate the gathers; the rest are a
        // local window around the row's own node.
        let neigh = if rng.chance(2, 3) {
            rng.skewed(nodes)
        } else {
            (row + rng.below(128)) % nodes
        };
        node_base + neigh * 256 + rng.below(8) * 8
    })
}

/// SparseBench sparse: conjugate-gradient iteration over a banded matrix
/// with densely packed x — uniform sets. Its near-capacity cyclic reuse is
/// what the skewed pseudo-LRU mishandles (a Fig. 10 pathological app).
pub fn sparse(t: &mut TraceSink) {
    let x_base = 0xA000_0000u64 + 24; // packed, odd offset
    let n = 48_000u64; // 384 KB vector: just inside the L2
    csr_sweep(t, 0x5A, n / 8, 7, 9, move |rng, row| {
        // Banded: columns near the diagonal.
        let col = (row * 8 + rng.below(640)) % n;
        x_base + col * 8
    })
}

/// SPEC equake: sparse matrix-vector products from an unstructured FEM
/// mesh; the renumbered mesh gives a roughly uniform gather distribution.
pub fn equake(t: &mut TraceSink) {
    let x_base = 0xB000_0000u64 + 8;
    let n = 380_000u64; // ~3 MB packed vector of 3-vectors
    csr_sweep(t, 0xEA, 1 << 15, 5, 12, move |rng, _row| {
        x_base + rng.below(n) * 8
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::materialize;
    use primecache_trace::TraceStats;

    #[test]
    fn generators_reach_target() {
        for (name, f) in [
            ("cg", cg as fn(&mut TraceSink)),
            ("irr", irr),
            ("sparse", sparse),
            ("equake", equake),
        ] {
            let stats: TraceStats = materialize(f, 5_000).iter().collect();
            assert!(stats.memory_refs() >= 5_000, "{name}");
            assert!(stats.memory_refs() < 5_100, "{name} overshoots");
        }
    }

    #[test]
    fn irr_touches_only_padded_headers() {
        let blocks: std::collections::HashSet<u64> = materialize(irr, 20_000)
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| (0x8000_0000..0x6_0000_0000u64).contains(&a))
            .map(|a| a / 64)
            .collect();
        // Node headers live on 256-B boundaries: every block is ≡ 0 mod 4.
        assert!(blocks.iter().all(|b| b % 4 == 0));
        assert!(blocks.len() > 1_000);
    }

    #[test]
    fn cg_gathers_cluster_in_the_hot_head() {
        // 3/5 of gathers target the 64 KB high-degree head.
        let gathers: Vec<u64> = materialize(cg, 20_000)
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| (0x8000_0000..0x6_0000_0000u64).contains(&a))
            .collect();
        let in_hot = gathers
            .iter()
            .filter(|&&a| a < 0x8000_0000 + 64 * KB)
            .count();
        assert!(in_hot * 2 > gathers.len(), "{in_hot}/{}", gathers.len());
    }

    #[test]
    fn determinism() {
        assert_eq!(materialize(cg, 3_000), materialize(cg, 3_000));
        assert_eq!(materialize(sparse, 3_000), materialize(sparse, 3_000));
    }
}
