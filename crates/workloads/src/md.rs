//! Molecular-dynamics workloads: charmm, moldyn, nbf (all uniform).
//!
//! All three are neighbour-list force kernels over packed particle arrays;
//! they differ in particle record size, neighbourhood locality and
//! compute-to-memory ratio. Packed (non-padded) records keep set usage
//! uniform; charmm's larger working set gives it the visible conflict
//! misses a fully-associative cache removes in Fig. 12.

use crate::util::{Lcg, TraceSink};

/// Shared neighbour-list kernel.
fn md_kernel(
    t: &mut TraceSink,
    seed: u64,
    n_particles: u64,
    record_bytes: u64,
    neighbours: u64,
    window: u64,
    work_per_pair: u32,
) {
    let mut rng = Lcg::new(seed);
    let pos_base = 0x8000_0000u64 + 8; // packed, odd offset
    let force_base = 0xA000_0000u64 + 16;
    let mut i = 0u64;
    while !t.done() {
        // Load particle i.
        t.load(pos_base + i * record_bytes);
        // Gather its neighbours (spatially local window).
        for _ in 0..neighbours {
            let j = (i + rng.below(window) + 1) % n_particles;
            t.load(pos_base + j * record_bytes);
            t.fp_work(work_per_pair);
        }
        // Accumulate force.
        t.load(force_base + i * record_bytes);
        t.store(force_base + i * record_bytes);
        t.fp_work(8);
        if i.is_multiple_of(16) {
            t.branch(rng.chance(1, 14));
        }
        i = (i + 1) % n_particles;
    }
}

/// CHARMM: full molecular mechanics; 48-byte records, wide neighbourhoods,
/// a multi-megabyte working set with reuse that gives real (uniformly
/// spread) conflict misses.
pub fn charmm(t: &mut TraceSink) {
    md_kernel(t, 0xC4, 60_000, 48, 12, 4_096, 14)
}

/// moldyn: the CHARMM kernel in isolation; smaller system, tighter
/// neighbourhoods, more compute per pair.
pub fn moldyn(t: &mut TraceSink) {
    md_kernel(t, 0x3D, 16_384, 48, 8, 512, 18)
}

/// GROMOS nbf: non-bonded-force kernel; 32-byte records, very local
/// neighbourhoods — nearly streaming.
pub fn nbf(t: &mut TraceSink) {
    md_kernel(t, 0x8F, 32_768, 32, 6, 128, 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::materialize;
    use primecache_trace::TraceStats;

    #[test]
    fn generators_reach_target() {
        for (name, f) in [
            ("charmm", charmm as fn(&mut TraceSink)),
            ("moldyn", moldyn),
            ("nbf", nbf),
        ] {
            let stats: TraceStats = materialize(f, 5_000).iter().collect();
            assert!(stats.memory_refs() >= 5_000, "{name}");
            assert!(stats.memory_refs() < 5_100, "{name} overshoots");
        }
    }

    #[test]
    fn gathers_are_window_local() {
        let addrs: Vec<u64> = materialize(nbf, 10_000)
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| a < 0xA000_0000)
            .collect();
        // Consecutive gathers should be close (within the window span).
        let mut local = 0usize;
        for w in addrs.windows(2) {
            if w[0].abs_diff(w[1]) < 256 * 32 {
                local += 1;
            }
        }
        assert!(local * 2 > addrs.len(), "{local}/{}", addrs.len());
    }

    #[test]
    fn records_are_packed_not_padded() {
        // No power-of-two alignment: addresses mod 64 take many values.
        let mods: std::collections::HashSet<u64> = materialize(charmm, 10_000)
            .iter()
            .filter_map(|e| e.addr())
            .map(|a| a % 64)
            .collect();
        assert!(mods.len() > 4, "{mods:?}");
    }

    #[test]
    fn determinism() {
        assert_eq!(materialize(charmm, 3_000), materialize(charmm, 3_000));
        assert_eq!(materialize(nbf, 3_000), materialize(nbf, 3_000));
    }
}
