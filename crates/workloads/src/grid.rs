//! Structured-grid workloads: swim, mgrid, applu, tomcatv, euler (uniform)
//! and bt, sp (non-uniform).
//!
//! The uniform codes model Fortran stencil sweeps over grids with *odd*
//! leading dimensions (513, 130, 33…), the layout that naturally spreads
//! accesses over cache sets. The NAS `bt`/`sp` models capture the opposite:
//! many solution/RHS arrays allocated at large power-of-two alignments plus
//! boundary-plane phases, so a handful of 128 KB-periodic regions overlay
//! the same L2 sets and thrash a 4-way cache — the conflict pattern prime
//! indexing untangles.

use crate::util::{Lcg, TraceSink};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// SPEC swim: shallow-water stencils over 513x513 REAL*8 grids.
///
/// Three-source one-destination sweeps, unit stride, odd row length —
/// uniform set usage, misses dominated by capacity (streaming).
pub fn swim(t: &mut TraceSink) {
    let n = 513u64; // odd grid dimension, as in the real code
    let elems = n * n;
    let base = |arr: u64| arr * (elems * 8 + 8 * 1024) + 0x1000_0000;
    'outer: loop {
        // U, V, P -> UNEW (and cyclic renaming across iterations).
        for i in 0..elems {
            t.load(base(0) + i * 8);
            t.load(base(1) + i * 8);
            t.load(base(2) + i * 8);
            t.store(base(3) + i * 8);
            t.fp_work(10);
            if t.done() {
                break 'outer;
            }
        }
    }
}

/// SPEC mgrid: multigrid V-cycles on a 130^3-padded grid.
///
/// 27-point restriction/prolongation at several resolutions; strides are
/// odd multiples of the line size, so sets are used uniformly. The cyclic
/// reuse of the near-capacity fine grid is what a pseudo-LRU skewed cache
/// mishandles (one of the paper's Fig. 10 pathological apps).
pub fn mgrid(t: &mut TraceSink) {
    let n = 66u64; // odd-ish padded dimension (64 + 2 ghost)
    let plane = n * n;
    let base = 0x2000_0000u64;
    // Working set ~ n^3 * 8 * 2 arrays ≈ 4.6 MB fine grid; the hot coarse
    // levels cycle within the L2.
    'outer: loop {
        for level in [1u64, 2, 4] {
            let stride = 8 * level;
            let count = (n * plane) / level;
            for i in 0..count {
                let a = base + i * stride;
                t.load(a);
                t.load(a + plane * 8 * level);
                t.load(a + n * 8 * level);
                t.store(base + 48 * MB + i * stride);
                t.fp_work(12);
                if t.done() {
                    break 'outer;
                }
            }
        }
        // Coarse-level relaxations: small grid, heavy reuse.
        let coarse = 17u64 * 17 * 17;
        for _ in 0..4 {
            for i in 0..coarse {
                t.load(base + 96 * MB + i * 8);
                t.fp_work(6);
                if t.done() {
                    break 'outer;
                }
            }
        }
    }
}

/// SPEC applu: SSOR solver, 33^3 grid of 5-variable cells (AoS, 40 B).
///
/// Forward/backward wavefront sweeps; the 40-byte element size keeps
/// block usage dense and uniform.
pub fn applu(t: &mut TraceSink) {
    let n = 33u64;
    let cells = n * n * n;
    let elem = 40u64; // 5 doubles
    let base = 0x3000_0000u64;
    let rhs = base + cells * elem + 4 * KB + 40; // odd offset
    'outer: loop {
        // Forward sweep.
        for c in 0..cells {
            for v in 0..5 {
                t.load(base + c * elem + v * 8);
            }
            t.store(rhs + c * elem);
            t.fp_work(24);
            if t.done() {
                break 'outer;
            }
        }
        // Backward sweep.
        for c in (0..cells).rev() {
            t.load(rhs + c * elem);
            t.store(base + c * elem);
            t.fp_work(16);
            if t.done() {
                break 'outer;
            }
        }
    }
}

/// SPEC tomcatv: mesh generation, 513x513 grids, row and column sweeps.
///
/// Column sweeps have a stride of 513*8 = 4104 bytes — 64.125 blocks, an
/// odd walk that rotates through every set.
pub fn tomcatv(t: &mut TraceSink) {
    let n = 513u64;
    let base = |arr: u64| 0x4000_0000 + arr * (n * n * 8 + 3 * KB + 24);
    'outer: loop {
        // Row-major residual sweep over X and Y meshes.
        for i in 0..n * n {
            t.load(base(0) + i * 8);
            t.load(base(1) + i * 8);
            t.store(base(2) + i * 8);
            t.fp_work(14);
            if t.done() {
                break 'outer;
            }
        }
        // Column solve (tridiagonal along columns).
        for col in 0..n {
            for row in 0..n {
                let idx = row * n + col;
                t.load(base(2) + idx * 8);
                t.store(base(3) + idx * 8);
                t.fp_work(8);
            }
            t.branch(col % 16 == 0);
            if t.done() {
                break 'outer;
            }
        }
    }
}

/// NASA euler: 3D flux solver on a 50^3 grid, 5-variable AoS cells.
///
/// Non-power-of-two everything; the three directional sweeps walk at 40 B,
/// 2 KB and 100 KB strides — all odd in block units, hence uniform, but
/// with enough L2-scale reuse that a fully-associative cache still removes
/// some conflict misses (as in the paper's Fig. 12).
pub fn euler(t: &mut TraceSink) {
    let n = 50u64;
    let elem = 40u64;
    let base = 0x5000_0000u64;
    let cells = n * n * n;
    'outer: loop {
        for (stride_cells, label_work) in [(1u64, 20u32), (n, 16), (n * n, 16)] {
            let mut c = 0u64;
            for _ in 0..cells {
                let a = base + (c % cells) * elem;
                t.load(a);
                t.load(a + 8);
                t.load(a + 16);
                t.store(a + 24);
                t.fp_work(label_work);
                c += stride_cells;
                if c >= cells {
                    c = c % cells + 1; // next pencil
                }
                if t.done() {
                    break 'outer;
                }
            }
        }
    }
}

/// Shared machinery of the NAS `bt`/`sp` models: an iterative solver
/// sweeping `regions` solution/RHS arrays (`region_bytes` each, all based
/// at multiples of `align`, so their blocks alias under traditional
/// indexing) one after the other, every iteration.
///
/// The combined working set fits the L2 — but under traditional indexing
/// each set must hold one block *per region*, and with more regions than
/// even an 8-way cache has ways the whole sweep misses every iteration.
/// A prime index spreads the regions apart and the steady state becomes
/// all-hits. Because the sweeps are unit-stride, the Base misses are
/// cheap streaming misses (DRAM row hits, MLP-overlapped), which keeps
/// the memory-stall share of execution at realistic levels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn aligned_multiarray(
    t: &mut TraceSink,
    seed: u64,
    regions: u64,
    region_bytes: u64,
    align: u64,
    loads_per_block: u64,
    work_per_load: u32,
    sweeps_per_region: u32,
) {
    let mut rng = Lcg::new(seed);
    let hot_base = |r: u64| 0x8000_0000 + r * align;
    let blocks_per_region = region_bytes / 64;
    'outer: loop {
        for r in 0..regions {
            // Several solver sub-stages sweep the same region in a row;
            // the repeats hit under any indexing, diluting the conflict
            // misses of the first pass to a realistic share of execution.
            for _ in 0..sweeps_per_region {
                for b in 0..blocks_per_region {
                    let block_addr = hot_base(r) + b * 64;
                    for e in 0..loads_per_block {
                        t.load(block_addr + (e * 8) % 64);
                        t.fp_work(work_per_load);
                    }
                    if b % 8 == 0 {
                        t.store(block_addr + 56);
                    }
                    if b % 32 == 0 {
                        t.branch(rng.chance(1, 24));
                    }
                    if t.done() {
                        break 'outer;
                    }
                }
            }
        }
    }
}

/// NAS bt: block-tridiagonal solver. Twelve power-of-two-aligned solution
/// and RHS arrays swept every iteration — more aliased regions than even
/// an 8-way cache has ways, so only rehashing helps (the archetypal
/// non-uniform app). The 5x5 block solves give heavy per-element compute.
pub fn bt(t: &mut TraceSink) {
    aligned_multiarray(t, 0xB7, 12, 32 * KB, 4 * MB + 128 * KB, 6, 150, 1)
}

/// NAS sp: scalar-pentadiagonal solver. Ten aligned 24 KB working planes,
/// lighter per-element compute than bt.
pub fn sp(t: &mut TraceSink) {
    aligned_multiarray(t, 0x59, 10, 24 * KB, 2 * MB, 5, 130, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::materialize;
    use primecache_trace::TraceStats;

    #[test]
    fn all_generators_hit_their_target() {
        for (name, f) in [
            ("swim", swim as fn(&mut TraceSink)),
            ("mgrid", mgrid),
            ("applu", applu),
            ("tomcatv", tomcatv),
            ("euler", euler),
            ("bt", bt),
            ("sp", sp),
        ] {
            let trace = materialize(f, 5_000);
            let stats: TraceStats = trace.iter().collect();
            assert!(stats.memory_refs() >= 5_000, "{name}: {stats:?}");
            assert!(stats.memory_refs() < 6_000, "{name} overshoots: {stats:?}");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(materialize(bt, 2_000), materialize(bt, 2_000));
        assert_eq!(materialize(swim, 2_000), materialize(swim, 2_000));
    }

    #[test]
    fn bt_touches_aligned_regions() {
        let trace = materialize(bt, 10_000);
        let hot = trace
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| (0x8000_0000..0x4_0000_0000).contains(&a))
            .count();
        assert!(hot > 5_000, "bt must be dominated by the hot arrays: {hot}");
    }

    #[test]
    fn swim_emits_stores() {
        let stats: TraceStats = materialize(swim, 8_000).iter().collect();
        assert!(stats.stores > 1_000);
        assert!(stats.loads > 3 * stats.stores / 2);
    }
}
