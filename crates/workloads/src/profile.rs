//! Structured per-workload profiles: what each model imitates and why it
//! behaves the way it does.

use serde::{Deserialize, Serialize};

/// The dominant access-pattern class of a workload model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternClass {
    /// Unit-/odd-stride stencil sweeps over grids.
    GridSweep,
    /// Sweeps over several power-of-two-aligned arrays (the bt/sp/ft
    /// conflict generator).
    AlignedMultiArray,
    /// CSR-style streaming with gathers.
    SparseGather,
    /// Dependent pointer chases over heap structures.
    PointerChase,
    /// Hash-table probing.
    HashProbe,
    /// Histogram / counting.
    Histogram,
    /// Blocked dense linear algebra.
    BlockedDense,
    /// Neighbour-list particle gathers.
    NeighborList,
    /// Block-transform compression.
    BlockSort,
}

/// Why a workload does (or does not) conflict under traditional indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictMechanism {
    /// No engineered conflicts: odd strides / packed records.
    None,
    /// More power-of-two-aligned live regions than the cache has ways.
    AlignedRegions,
    /// Structures padded to a power of two; only a fraction of the sets
    /// is ever touched.
    PaddedStructs,
    /// Randomly scattered blocks at ~capacity: Poisson imbalance that
    /// only multiple hash functions absorb.
    ScatteredBlocks,
}

/// A workload's profile: pattern, conflict mechanism and footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Dominant pattern class.
    pub pattern: PatternClass,
    /// Conflict mechanism under traditional indexing.
    pub conflict: ConflictMechanism,
    /// Approximate touched footprint in bytes (order of magnitude).
    pub footprint_bytes: u64,
    /// Whether the trace contains serializing (dependent) loads.
    pub has_dependent_loads: bool,
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Returns the profile for a workload name, if known.
///
/// # Examples
///
/// ```
/// use primecache_workloads::profile::{profile_of, ConflictMechanism};
///
/// let tree = profile_of("tree").unwrap();
/// assert_eq!(tree.conflict, ConflictMechanism::PaddedStructs);
/// assert!(tree.has_dependent_loads);
/// ```
#[must_use]
pub fn profile_of(name: &str) -> Option<Profile> {
    use ConflictMechanism as C;
    use PatternClass as P;
    let p = |pattern, conflict, footprint_bytes, has_dependent_loads| Profile {
        pattern,
        conflict,
        footprint_bytes,
        has_dependent_loads,
    };
    Some(match name {
        "bzip2" => p(P::BlockSort, C::None, 256 * KB, false),
        "gap" => p(P::PointerChase, C::None, 4 * MB, true),
        "mcf" => p(P::PointerChase, C::PaddedStructs, 5 * MB, true),
        "parser" => p(P::HashProbe, C::None, 16 * MB, true),
        "applu" => p(P::GridSweep, C::None, 3 * MB, false),
        "mgrid" => p(P::GridSweep, C::None, 5 * MB, false),
        "swim" => p(P::GridSweep, C::None, 8 * MB, false),
        "equake" => p(P::SparseGather, C::None, 5 * MB, false),
        "tomcatv" => p(P::GridSweep, C::None, 8 * MB, false),
        "mst" => p(P::HashProbe, C::ScatteredBlocks, 640 * KB, true),
        "bt" => p(P::AlignedMultiArray, C::AlignedRegions, 384 * KB, false),
        "ft" => p(P::AlignedMultiArray, C::AlignedRegions, 8 * MB, false),
        "lu" => p(P::BlockedDense, C::None, 5 * MB, false),
        "is" => p(P::Histogram, C::None, MB, false),
        "sp" => p(P::AlignedMultiArray, C::AlignedRegions, 240 * KB, false),
        "cg" => p(P::SparseGather, C::ScatteredBlocks, 700 * KB, false),
        "sparse" => p(P::SparseGather, C::None, 900 * KB, false),
        "tree" => p(P::PointerChase, C::PaddedStructs, 2 * MB, true),
        "irr" => p(P::SparseGather, C::PaddedStructs, 4 * MB, false),
        "charmm" => p(P::NeighborList, C::None, 3 * MB, false),
        "moldyn" => p(P::NeighborList, C::None, 800 * KB, false),
        "nbf" => p(P::NeighborList, C::None, MB, false),
        "euler" => p(P::GridSweep, C::None, 5 * MB, false),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all;
    use primecache_trace::TraceStats;

    #[test]
    fn every_workload_has_a_profile() {
        for w in all() {
            assert!(profile_of(w.name).is_some(), "{} missing", w.name);
        }
        assert!(profile_of("nonexistent").is_none());
    }

    #[test]
    fn conflict_mechanism_matches_classification() {
        // Apps with an engineered conflict mechanism are non-uniform or
        // scattered-block apps; apps with None are uniform. (mst and cg
        // are the scattered-block cases: mst is uniform-histogram, cg
        // non-uniform via its hot head.)
        for w in all() {
            let prof = profile_of(w.name).unwrap();
            match prof.conflict {
                ConflictMechanism::AlignedRegions | ConflictMechanism::PaddedStructs => {
                    assert!(w.expected_non_uniform, "{}", w.name);
                }
                ConflictMechanism::None => {
                    assert!(!w.expected_non_uniform, "{}", w.name);
                }
                ConflictMechanism::ScatteredBlocks => {} // either group
            }
        }
    }

    #[test]
    fn dependent_load_flag_matches_traces() {
        for w in all() {
            let prof = profile_of(w.name).unwrap();
            let stats: TraceStats = w.trace(20_000).iter().collect();
            assert_eq!(
                stats.dependent_loads > 0,
                prof.has_dependent_loads,
                "{}: {} dependent loads",
                w.name,
                stats.dependent_loads
            );
        }
    }

    #[test]
    fn footprints_are_within_an_order_of_magnitude() {
        // Measure the true touched footprint on a long trace and compare
        // to the declared estimate.
        use std::collections::HashSet;
        for w in all() {
            let prof = profile_of(w.name).unwrap();
            let blocks: HashSet<u64> = w
                .trace(300_000)
                .iter()
                .filter_map(|e| e.addr())
                .map(|a| a / 64)
                .collect();
            let measured = blocks.len() as u64 * 64;
            let ratio = measured as f64 / prof.footprint_bytes as f64;
            assert!(
                (0.05..=20.0).contains(&ratio),
                "{}: declared {} bytes, measured {} (ratio {ratio:.2})",
                w.name,
                prof.footprint_bytes,
                measured
            );
        }
    }
}
