//! Attacker probe-trace generators.
//!
//! The attack engine (`crates/attack`) crafts tiny, fully deterministic
//! block-address traces and observes only miss counts. The builders here
//! are the *trace side* of that campaign — re-access probes, eviction
//! probes, stride candidate ladders, seeded random pools — shared by the
//! simulator-backed oracle, the check battery, and the root differential
//! test so every consumer probes with byte-identical traces.
//!
//! Block traces convert to ordinary [`Event`] traces with
//! [`probe_events`], so a probe can also be replayed through the full
//! trace-driven drivers (every access is a serializing load: a probe
//! measures occupancy, and overlapping its misses would let the timing
//! model reorder the eviction the probe exists to observe).

use primecache_trace::Event;

use crate::util::Lcg;

/// The `[a, b, a]` same-set re-access probe (direct-mapped probing).
#[must_use]
pub fn pairwise_probe(a: u64, b: u64) -> [u64; 3] {
    [a, b, a]
}

/// The `[victim, candidates.., victim]` eviction probe.
#[must_use]
pub fn eviction_probe(victim: u64, candidates: &[u64]) -> Vec<u64> {
    let mut trace = Vec::with_capacity(candidates.len() + 2);
    trace.push(victim);
    trace.extend_from_slice(candidates);
    trace.push(victim);
    trace
}

/// `count` stride candidates `victim + i·stride` (i = 1..=count), keeping
/// only distinct blocks inside the `in_bits` probing window.
#[must_use]
pub fn stride_candidates(victim: u64, stride: u64, count: u32, in_bits: u32) -> Vec<u64> {
    let limit = if in_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << in_bits) - 1
    };
    (1..=u64::from(count))
        .filter_map(|i| {
            let c = victim.checked_add(i.checked_mul(stride)?)?;
            (c <= limit && c != victim).then_some(c)
        })
        .collect()
}

/// The naive attacker's stride ladder for a cache with `n_set` physical
/// sets over an `in_bits` window: multiples of the set count
/// (traditional indexing falls here), the classic `n ± 1` XOR strides,
/// and every power of two from the index width up (page-like strides;
/// prime-displacement's tag-annihilation stride `2^(2k)` is one of
/// them). None of these is a multiple of a prime modulus — which is
/// exactly the Theorem-1 hardening the attack report quantifies.
#[must_use]
pub fn naive_strides(n_set: u64, in_bits: u32) -> Vec<u64> {
    let mut out = vec![n_set, n_set + 1, n_set.saturating_sub(1).max(1), 2 * n_set];
    let k = n_set.next_power_of_two().trailing_zeros();
    for j in k..in_bits.min(63) {
        out.push(1u64 << j);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// A seeded pool of `count` distinct random blocks inside the `in_bits`
/// window, excluding `victim` (the raw material of the random-pool
/// eviction tier).
#[must_use]
pub fn random_pool(seed: u64, count: usize, in_bits: u32, victim: u64) -> Vec<u64> {
    let mask = if in_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << in_bits) - 1
    };
    let mut rng = Lcg::new(seed ^ 0xA77A_C4E5_u64);
    let mut seen = std::collections::HashSet::with_capacity(count + 1);
    seen.insert(victim);
    let mut pool = Vec::with_capacity(count);
    while pool.len() < count {
        let b = rng.next_u64() & mask;
        if seen.insert(b) {
            pool.push(b);
        }
    }
    pool
}

/// Converts a block-address probe into a replayable event trace over
/// `line_bytes` lines: serializing loads, one per block.
#[must_use]
pub fn probe_events(blocks: &[u64], line_bytes: u64) -> Vec<Event> {
    blocks
        .iter()
        .map(|&b| Event::chase(b * line_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_shaped_right() {
        assert_eq!(pairwise_probe(1, 2), [1, 2, 1]);
        assert_eq!(eviction_probe(7, &[1, 2]), vec![7, 1, 2, 7]);
    }

    #[test]
    fn stride_candidates_stay_in_window_and_distinct() {
        let c = stride_candidates(0, 1 << 20, 8, 22);
        assert_eq!(c, vec![1 << 20, 2 << 20, 3 << 20]);
        let all = stride_candidates(3, 5, 4, 26);
        assert_eq!(all, vec![8, 13, 18, 23]);
    }

    #[test]
    fn naive_strides_cover_the_classic_attacks() {
        let s = naive_strides(2048, 26);
        assert!(s.contains(&2048)); // traditional
        assert!(s.contains(&2049)); // XOR
        assert!(s.contains(&(1 << 22))); // pDisp tag annihilation
        assert!(!s.contains(&2039)); // never the prime modulus
    }

    #[test]
    fn random_pool_is_deterministic_distinct_and_avoids_victim() {
        let a = random_pool(9, 500, 20, 42);
        let b = random_pool(9, 500, 20, 42);
        assert_eq!(a, b);
        assert_eq!(
            a.iter().collect::<std::collections::HashSet<_>>().len(),
            500
        );
        assert!(!a.contains(&42));
        assert!(a.iter().all(|&x| x < (1 << 20)));
    }

    #[test]
    fn probe_events_are_serializing_loads() {
        let ev = probe_events(&[3, 5], 64);
        assert_eq!(ev, vec![Event::chase(192), Event::chase(320)]);
    }
}
