//! Pointer-chasing workloads: tree (non-uniform) and mst (uniform).

use crate::util::{Lcg, TraceSink};

/// The Hawaii Barnes–Hut treecode (`tree`): force evaluation walks an
/// octree whose cell nodes the allocator rounds up to 512-byte slots, but
/// each visit touches only the 64-byte header — so just 12.5% of the L2
/// sets carry the whole traversal (Fig. 13a shows ~10% of sets hot). The
/// upper tree levels are revisited for every body, so the piled-up sets
/// thrash a 4-way cache; prime indexing spreads the nodes and removes
/// nearly all misses (the paper's biggest win, ~2.3–2.6x).
pub fn tree(t: &mut TraceSink) {
    let mut rng = Lcg::new(0x7E);
    // 4000 x 512-B allocator slots: 250 KB of *touched* node headers —
    // inside the L2 when spread by a prime index, but piled 15-deep onto
    // 256 sets (4 ways) under traditional indexing.
    let node_base = 0x8000_0000u64;
    let n_nodes = 4_000u64;
    let bodies_base = 0x9000_0000u64 + 40;
    let n_bodies = 2_048u64; // 192 KB of bodies: L2-resident
    let mut body = 0u64;
    while !t.done() {
        // Load the body being updated.
        t.load(bodies_base + body * 96);
        // Walk from the root: upper levels are shared and hot, deeper
        // nodes are body-specific (skewed draw => node 0 is the root,
        // small indices are the upper levels).
        let depth = 6 + rng.below(4);
        for level in 0..depth {
            let node = if level < 3 {
                // Upper levels: one of the first few nodes.
                rng.below(1 << (3 * level).min(9))
            } else {
                rng.skewed(n_nodes)
            };
            t.chase(node_base + node * 512);
            // The multipole acceptance test + force kernel per cell.
            t.work(300);
        }
        // Accumulate force into the body.
        t.store(bodies_base + body * 96 + 48);
        t.work(30);
        t.branch(rng.chance(1, 10));
        body = (body + 1) % n_bodies;
    }
}

/// Olden mst: minimum spanning tree over a hash-table-based graph. Hash
/// entries are packed 64-byte records spread uniformly, chased
/// dependently. Uniform sets, but with cross-set reuse patterns a skewed
/// cache can exploit (mst only speeds up under SKW in the paper, Fig. 10).
pub fn mst(t: &mut TraceSink) {
    let mut rng = Lcg::new(0x57);
    // Hash-table entries are allocated all over the heap: ~8500 scattered
    // blocks, randomly placed, with combined footprint right at the L2
    // capacity. Every single-hash placement sees the same Poisson set
    // imbalance, so Base/pMod/pDisp tie — only the skewed caches, with a
    // different placement per bank, absorb the overflow (the paper: "with
    // cg and mst, only the skewed associative schemes obtain speedups").
    let hash_base = 0xA000_0000u64;
    let mut placement = Lcg::new(0x571);
    let entries: Vec<u64> = (0..8_500)
        .map(|_| hash_base + placement.below(48 * 1024) * 64)
        .collect();
    let n_entries = entries.len() as u64;
    let vertex_base = 0xB000_0000u64 + 16;
    let n_vertices = 3_000u64;
    while !t.done() {
        // Pick a vertex, walk its adjacency via hash probes.
        let v = rng.below(n_vertices);
        t.load(vertex_base + v * 32);
        let probes = 2 + rng.below(3);
        let mut h = v * 2_654_435_761 % n_entries;
        for _ in 0..probes {
            t.chase(entries[h as usize] + rng.below(6) * 8);
            h = (h * 31 + 17) % n_entries;
            t.work(6);
        }
        // Relax the edge.
        t.store(vertex_base + v * 32 + 16);
        t.work(10);
        t.branch(rng.chance(1, 8));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::materialize;
    use primecache_trace::TraceStats;

    #[test]
    fn generators_reach_target() {
        for (name, f) in [("tree", tree as fn(&mut TraceSink)), ("mst", mst)] {
            let stats: TraceStats = materialize(f, 5_000).iter().collect();
            assert!(stats.memory_refs() >= 5_000, "{name}");
            assert!(stats.memory_refs() < 5_100, "{name} overshoots");
        }
    }

    #[test]
    fn tree_nodes_are_512_byte_slots() {
        let node_addrs: Vec<u64> = materialize(tree, 20_000)
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| (0x8000_0000..0x9000_0000u64).contains(&a))
            .collect();
        assert!(!node_addrs.is_empty());
        assert!(node_addrs.iter().all(|a| a % 512 == 0));
        // Only 1/8 of the block space is touched.
        let blocks: std::collections::HashSet<u64> = node_addrs.iter().map(|a| a / 64).collect();
        assert!(blocks.iter().all(|b| b % 8 == 0));
    }

    #[test]
    fn tree_reuses_upper_levels() {
        let mut counts = std::collections::HashMap::new();
        for a in materialize(tree, 30_000)
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| (0x8000_0000..0x9000_0000u64).contains(&a))
        {
            *counts.entry(a).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 100, "the root must be revisited constantly: {max}");
    }

    #[test]
    fn both_are_chase_heavy() {
        for f in [tree as fn(&mut TraceSink), mst] {
            let stats: TraceStats = materialize(f, 10_000).iter().collect();
            assert!(stats.dependent_loads * 2 > stats.memory_refs(), "{stats:?}");
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(materialize(tree, 3_000), materialize(tree, 3_000));
        assert_eq!(materialize(mst, 3_000), materialize(mst, 3_000));
    }
}
