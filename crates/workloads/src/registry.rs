//! The registry of all 23 application models.

use primecache_trace::{EncodedTrace, Event};

use crate::stream::EventStream;
use crate::util::{materialize, record, TraceSink};
use crate::{grid, md, nas, pointer, sparse, spec_int};

/// One application model: a named deterministic trace generator plus the
/// uniformity class the paper reports for it (§4).
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// Suite the original benchmark came from.
    pub suite: &'static str,
    /// Whether the paper classifies it as non-uniform (stdev/mean > 0.5).
    pub expected_non_uniform: bool,
    generator: fn(&mut TraceSink),
}

impl Workload {
    /// Materializes a trace with at least `target_refs` memory references.
    ///
    /// Peak memory is linear in trace length; prefer [`Workload::events`]
    /// for large reference counts.
    #[must_use]
    pub fn trace(&self, target_refs: u64) -> Vec<Event> {
        materialize(self.generator, target_refs)
    }

    /// Streams the same event sequence as [`Workload::trace`] with O(1)
    /// peak memory: the generator runs on its own thread and events
    /// arrive through a bounded channel.
    #[must_use]
    pub fn events(&self, target_refs: u64) -> EventStream {
        EventStream::spawn(self.generator, target_refs)
    }

    /// [`Workload::events`] with explicit streaming knobs: `depth` chunk
    /// slots in flight and `chunk_events` events per chunk. Peak
    /// buffered memory is proportional to `depth * chunk_events`; the
    /// delivered event sequence is identical for every setting.
    ///
    /// # Panics
    ///
    /// Panics when `depth` or `chunk_events` is zero.
    #[must_use]
    pub fn events_with(&self, target_refs: u64, depth: usize, chunk_events: usize) -> EventStream {
        EventStream::spawn_with(self.generator, target_refs, depth, chunk_events)
    }

    /// Generates the same event sequence as [`Workload::trace`] /
    /// [`Workload::events`] **once**, on the calling thread, into a
    /// compact delta/varint [`EncodedTrace`] that can be replayed any
    /// number of times ([`EncodedTrace::replay`]) — the generate-once
    /// path behind [`crate::TraceStore`] and sweep replay.
    #[must_use]
    pub fn record(&self, target_refs: u64) -> EncodedTrace {
        record(self.generator, target_refs)
    }
}

/// All 23 workloads, in the paper's §4 listing order.
#[must_use]
pub fn all() -> &'static [Workload] {
    const ALL: &[Workload] = &[
        Workload {
            name: "bzip2",
            suite: "SPECint2000",
            expected_non_uniform: false,
            generator: spec_int::bzip2,
        },
        Workload {
            name: "gap",
            suite: "SPECint2000",
            expected_non_uniform: false,
            generator: spec_int::gap,
        },
        Workload {
            name: "mcf",
            suite: "SPECint2000",
            expected_non_uniform: true,
            generator: spec_int::mcf,
        },
        Workload {
            name: "parser",
            suite: "SPECint2000",
            expected_non_uniform: false,
            generator: spec_int::parser,
        },
        Workload {
            name: "applu",
            suite: "SPECfp2000",
            expected_non_uniform: false,
            generator: grid::applu,
        },
        Workload {
            name: "mgrid",
            suite: "SPECfp2000",
            expected_non_uniform: false,
            generator: grid::mgrid,
        },
        Workload {
            name: "swim",
            suite: "SPECfp2000",
            expected_non_uniform: false,
            generator: grid::swim,
        },
        Workload {
            name: "equake",
            suite: "SPECfp2000",
            expected_non_uniform: false,
            generator: sparse::equake,
        },
        Workload {
            name: "tomcatv",
            suite: "SPECfp95",
            expected_non_uniform: false,
            generator: grid::tomcatv,
        },
        Workload {
            name: "mst",
            suite: "Olden",
            expected_non_uniform: false,
            generator: pointer::mst,
        },
        Workload {
            name: "bt",
            suite: "NAS",
            expected_non_uniform: true,
            generator: grid::bt,
        },
        Workload {
            name: "ft",
            suite: "NAS",
            expected_non_uniform: true,
            generator: nas::ft,
        },
        Workload {
            name: "lu",
            suite: "NAS",
            expected_non_uniform: false,
            generator: nas::lu,
        },
        Workload {
            name: "is",
            suite: "NAS",
            expected_non_uniform: false,
            generator: nas::is,
        },
        Workload {
            name: "sp",
            suite: "NAS",
            expected_non_uniform: true,
            generator: grid::sp,
        },
        Workload {
            name: "cg",
            suite: "NAS",
            expected_non_uniform: true,
            generator: sparse::cg,
        },
        Workload {
            name: "sparse",
            suite: "SparseBench",
            expected_non_uniform: false,
            generator: sparse::sparse,
        },
        Workload {
            name: "tree",
            suite: "Univ. of Hawaii",
            expected_non_uniform: true,
            generator: pointer::tree,
        },
        Workload {
            name: "irr",
            suite: "CFD kernel",
            expected_non_uniform: true,
            generator: sparse::irr,
        },
        Workload {
            name: "charmm",
            suite: "MD",
            expected_non_uniform: false,
            generator: md::charmm,
        },
        Workload {
            name: "moldyn",
            suite: "MD kernel",
            expected_non_uniform: false,
            generator: md::moldyn,
        },
        Workload {
            name: "nbf",
            suite: "GROMOS",
            expected_non_uniform: false,
            generator: md::nbf,
        },
        Workload {
            name: "euler",
            suite: "NASA",
            expected_non_uniform: false,
            generator: grid::euler,
        },
    ];
    ALL
}

/// Looks up a workload by its paper name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Workload> {
    all().iter().find(|w| w.name == name)
}

/// Names of the non-uniform applications, as the paper lists them (§4):
/// "bt, cg, ft, irr, mcf, sp, and tree".
#[must_use]
pub fn non_uniform_names() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = all()
        .iter()
        .filter(|w| w.expected_non_uniform)
        .map(|w| w.name)
        .collect();
    v.sort_unstable();
    v
}

/// Names of the uniform applications.
#[must_use]
pub fn uniform_names() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = all()
        .iter()
        .filter(|w| !w.expected_non_uniform)
        .map(|w| w.name)
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_workloads() {
        assert_eq!(all().len(), 23);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn paper_non_uniform_set() {
        // §4: "30% of them (7 benchmarks) are non-uniform: bt, cg, ft,
        // irr, mcf, sp, and tree."
        assert_eq!(
            non_uniform_names(),
            ["bt", "cg", "ft", "irr", "mcf", "sp", "tree"]
        );
        assert_eq!(uniform_names().len(), 16);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("swim").is_some());
        assert!(by_name("doom").is_none());
        assert_eq!(by_name("mcf").unwrap().suite, "SPECint2000");
    }

    #[test]
    fn every_workload_generates_memory_refs() {
        for w in all() {
            let trace = w.trace(1_000);
            let refs = trace.iter().filter(|e| e.is_memory()).count();
            assert!(refs >= 1_000, "{}: {refs}", w.name);
        }
    }

    #[test]
    fn every_workload_streams_memory_refs() {
        for w in all() {
            let refs = w.events(1_000).filter(Event::is_memory).count();
            assert!(refs >= 1_000, "{}: {refs}", w.name);
        }
    }
}
