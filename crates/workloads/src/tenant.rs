//! Deterministic multi-program interleaving: N recorded traces
//! time-sliced through one shared cache hierarchy.
//!
//! The paper evaluates single-program traces, but conflict misses are
//! worst when many tenants hammer one shared L2. A [`TenantMix`] holds N
//! recorded traces (generated workloads or imported files) and hands out
//! [`MixCursor`]s: seeded quantum schedulers that replay the tenants in
//! randomly interleaved time slices, tagging each tenant's addresses
//! with a high-bit namespace so distinct tenants never alias the same
//! physical lines.
//!
//! Determinism and bit-exactness are the design constraints:
//!
//! * The schedule is a pure function of `(tenant traces, MixConfig)` —
//!   the scheduler PRNG is a seeded [`Lcg`], so every cursor over the
//!   same mix replays the identical interleaved sequence. The simulation
//!   side exploits this to run its timing pass and its per-tenant
//!   attribution pass over two cursors and know they saw the same
//!   stream.
//! * Tenant 0's namespace tag is `0 << ns_shift = 0`, and XOR with 0 is
//!   the identity: a **single-tenant mix replays its trace unchanged**,
//!   so `run_chunks(mix.cursor(), ..)` is bit-identical to
//!   `run_recorded(trace, ..)` — pinned by `tests/ingest_equivalence.rs`.
//!
//! A quantum is measured in *instructions* ([`Event::instructions`]),
//! not events, mirroring how an OS scheduler or SMT fetch policy slices
//! time rather than memory operations. Events are never split: the
//! quantum boundary falls after the event that reaches the target.

use primecache_trace::{EncodedTrace, Event, ReplayCursor};
use serde::Serialize;

use crate::store::EventChunks;
use crate::util::Lcg;

/// Scheduling and namespace parameters of a [`TenantMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MixConfig {
    /// Instructions per scheduling quantum (events are never split; the
    /// slice ends after the event that reaches this target, and
    /// zero-instruction events never end a slice).
    pub quantum_instructions: u64,
    /// Seed of the scheduler's [`Lcg`]; same seed, same interleaving.
    pub seed: u64,
    /// Bit position of the per-tenant address namespace: tenant `i`'s
    /// addresses are XOR-tagged with `i << ns_shift`. Tenant 0 is always
    /// untouched.
    pub ns_shift: u32,
}

impl Default for MixConfig {
    fn default() -> Self {
        Self {
            quantum_instructions: 20_000,
            seed: 0x7E9A_11CE_D5EE_D001,
            // Workload footprints live far below 2^48; tagging bit 48+
            // keeps namespaces disjoint without disturbing low-order
            // index bits.
            ns_shift: 48,
        }
    }
}

/// Per-cursor interleaving counters, indexed by tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MixStats {
    /// Scheduling quanta delivered.
    pub quanta: u64,
    /// Quanta whose tenant differed from the previous quantum's.
    pub switches: u64,
    /// Memory events whose *untagged* address already occupied bits at
    /// or above `ns_shift` (the tag then aliases instead of
    /// namespacing; external traces with full 64-bit addresses can
    /// trip this, generated workloads never do).
    pub ns_overflows: u64,
    /// Events delivered per tenant.
    pub events: Vec<u64>,
    /// Memory references delivered per tenant.
    pub refs: Vec<u64>,
    /// Instructions delivered per tenant.
    pub instructions: Vec<u64>,
}

/// N named, recorded traces plus the scheduling parameters that
/// interleave them. Owns the traces; cursors borrow them.
#[derive(Debug)]
pub struct TenantMix {
    tenants: Vec<(String, EncodedTrace)>,
    cfg: MixConfig,
}

impl TenantMix {
    /// Builds a mix over `tenants` (name, recorded trace) pairs.
    ///
    /// # Panics
    ///
    /// Panics when `tenants` is empty, the quantum is zero, `ns_shift`
    /// is outside `1..=63`, or the tenant count does not fit the
    /// namespace bits above `ns_shift`.
    #[must_use]
    pub fn new(tenants: Vec<(String, EncodedTrace)>, cfg: MixConfig) -> Self {
        assert!(!tenants.is_empty(), "a mix needs at least one tenant");
        assert!(cfg.quantum_instructions > 0, "quantum must be positive");
        assert!(
            (1..=63).contains(&cfg.ns_shift),
            "ns_shift must be in 1..=63"
        );
        assert!(
            tenants.len() as u64 - 1 <= u64::MAX >> cfg.ns_shift,
            "{} tenants do not fit a {}-bit namespace",
            tenants.len(),
            64 - cfg.ns_shift
        );
        Self { tenants, cfg }
    }

    /// [`TenantMix::new`] with the default [`MixConfig`].
    #[must_use]
    pub fn with_defaults(tenants: Vec<(String, EncodedTrace)>) -> Self {
        Self::new(tenants, MixConfig::default())
    }

    /// The scheduling parameters.
    #[must_use]
    pub fn config(&self) -> &MixConfig {
        &self.cfg
    }

    /// Number of tenants.
    #[must_use]
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant names, in index order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Tenant `idx`'s recorded trace.
    #[must_use]
    pub fn trace(&self, idx: usize) -> &EncodedTrace {
        &self.tenants[idx].1
    }

    /// A fresh interleaving cursor from the start of every trace. Every
    /// cursor over the same mix yields the identical sequence.
    #[must_use]
    pub fn cursor(&self) -> MixCursor<'_> {
        let lanes = (0..self.tenants.len())
            .map(|i| self.lane(i))
            .collect::<Vec<_>>();
        MixCursor::over(lanes, self.cfg)
    }

    /// A cursor replaying tenant `idx` *alone*, still under the
    /// namespace tag it carries in the shared mix — the solo baseline an
    /// interference measurement divides by (identical address stream,
    /// no co-tenants).
    #[must_use]
    pub fn solo_cursor(&self, idx: usize) -> MixCursor<'_> {
        MixCursor::over(vec![self.lane(idx)], self.cfg)
    }

    fn lane(&self, idx: usize) -> Lane<'_> {
        Lane {
            cursor: self.tenants[idx].1.replay(),
            ns: (idx as u64) << self.cfg.ns_shift,
        }
    }
}

/// One tenant's replay position inside a cursor.
#[derive(Debug)]
struct Lane<'a> {
    cursor: ReplayCursor<'a>,
    ns: u64,
}

/// The interleaved event stream of a [`TenantMix`]: an
/// [`EventChunks`] source (one chunk = one scheduling quantum) that the
/// unchanged batched drivers consume, plus [`MixCursor::pull_quantum`]
/// for consumers that need to know which tenant each slice belongs to.
#[derive(Debug)]
pub struct MixCursor<'a> {
    lanes: Vec<Lane<'a>>,
    /// Indexes of lanes not yet exhausted.
    live: Vec<usize>,
    rng: Lcg,
    quantum: u64,
    shift: u32,
    /// Remainder of a quantum partially consumed through `next`.
    buf: std::collections::VecDeque<Event>,
    last: Option<usize>,
    stats: MixStats,
}

impl<'a> MixCursor<'a> {
    fn over(lanes: Vec<Lane<'a>>, cfg: MixConfig) -> Self {
        let n = lanes.len();
        Self {
            live: (0..n).collect(),
            lanes,
            rng: Lcg::new(cfg.seed),
            quantum: cfg.quantum_instructions,
            shift: cfg.ns_shift,
            buf: std::collections::VecDeque::new(),
            last: None,
            stats: MixStats {
                events: vec![0; n],
                refs: vec![0; n],
                instructions: vec![0; n],
                ..MixStats::default()
            },
        }
    }

    /// The next scheduling quantum as `(tenant index, tagged events)`,
    /// or `None` once every tenant is exhausted.
    ///
    /// This is the tenant-aware twin of
    /// [`EventChunks::pull_chunk`]; interleaving the two (or `next`)
    /// drains the same sequence exactly once, remainder-first.
    pub fn pull_quantum(&mut self) -> Option<(usize, Vec<Event>)> {
        while !self.live.is_empty() {
            let slot = self.rng.below(self.live.len() as u64) as usize;
            let pick = self.live[slot];
            let ns = self.lanes[pick].ns;
            let mut out = Vec::new();
            let mut issued = 0u64;
            let mut exhausted = false;
            while issued < self.quantum {
                let Some(ev) = self.lanes[pick].cursor.next() else {
                    exhausted = true;
                    break;
                };
                issued += ev.instructions();
                if ev.addr().is_some_and(|a| a >> self.shift != 0) {
                    self.stats.ns_overflows += 1;
                }
                out.push(retag(ev, ns));
            }
            if exhausted {
                self.live.remove(slot);
            }
            if out.is_empty() {
                // Picked a lane that had nothing left (empty trace):
                // it is retired now, try the remaining ones.
                continue;
            }
            self.stats.quanta += 1;
            if self.last.is_some() && self.last != Some(pick) {
                self.stats.switches += 1;
            }
            self.last = Some(pick);
            self.stats.events[pick] += out.len() as u64;
            self.stats.refs[pick] += out.iter().filter(|e| e.is_memory()).count() as u64;
            self.stats.instructions[pick] += issued;
            return Some((pick, out));
        }
        None
    }

    /// Interleaving counters accumulated so far.
    #[must_use]
    pub fn mix_stats(&self) -> &MixStats {
        &self.stats
    }
}

/// Applies a tenant's XOR namespace tag to a memory event's address.
fn retag(ev: Event, ns: u64) -> Event {
    match ev {
        Event::Load { addr, dep } => Event::Load {
            addr: addr ^ ns,
            dep,
        },
        Event::Store { addr } => Event::Store { addr: addr ^ ns },
        other => other,
    }
}

impl Iterator for MixCursor<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if let Some(ev) = self.buf.pop_front() {
                return Some(ev);
            }
            let (_, quantum) = self.pull_quantum()?;
            self.buf.extend(quantum);
        }
    }
}

impl EventChunks for MixCursor<'_> {
    fn pull_chunk(&mut self) -> Option<Vec<Event>> {
        if !self.buf.is_empty() {
            return Some(self.buf.drain(..).collect());
        }
        self.pull_quantum().map(|(_, events)| events)
    }

    fn chunk_stats(&self) -> (u64, u64) {
        // A mix replays recordings: it never blocks on a generator.
        (self.stats.quanta, 0)
    }

    fn chunk_config(&self) -> (usize, usize) {
        // No channel; the "chunk size" is the quantum, in instructions
        // rather than events (usize::MAX-saturating for giant quanta).
        (0, usize::try_from(self.quantum).unwrap_or(usize::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    fn recorded(name: &str, refs: u64) -> (String, EncodedTrace) {
        (name.to_string(), by_name(name).unwrap().record(refs))
    }

    fn strip(ev: Event, ns: u64) -> Event {
        retag(ev, ns)
    }

    #[test]
    fn single_tenant_mix_is_the_plain_trace() {
        let (name, trace) = recorded("tree", 4_000);
        let expected = trace.decode_all().unwrap();
        let mix = TenantMix::with_defaults(vec![(name, trace)]);
        let via_next: Vec<Event> = mix.cursor().collect();
        assert_eq!(via_next, expected, "tenant 0's tag must be the identity");
        let mut chunked = Vec::new();
        let mut cur = mix.cursor();
        while let Some(c) = cur.pull_chunk() {
            chunked.extend(c);
        }
        assert_eq!(chunked, expected);
    }

    #[test]
    fn same_seed_same_interleaving() {
        let mix = TenantMix::with_defaults(vec![
            recorded("tree", 3_000),
            recorded("mcf", 3_000),
            recorded("swim", 3_000),
        ]);
        let a: Vec<(usize, Vec<Event>)> = std::iter::from_fn({
            let mut c = mix.cursor();
            move || c.pull_quantum()
        })
        .collect();
        let b: Vec<(usize, Vec<Event>)> = std::iter::from_fn({
            let mut c = mix.cursor();
            move || c.pull_quantum()
        })
        .collect();
        assert_eq!(a, b);
        assert!(a.len() > 3, "expected several quanta, got {}", a.len());
        assert!(a.iter().any(|(t, _)| *t != a[0].0), "never switched tenant");
    }

    #[test]
    fn every_event_delivered_once_with_disjoint_namespaces() {
        let tenants = vec![recorded("tree", 2_000), recorded("mcf", 2_000)];
        let originals: Vec<Vec<Event>> = tenants
            .iter()
            .map(|(_, t)| t.decode_all().unwrap())
            .collect();
        let mix = TenantMix::new(
            tenants,
            MixConfig {
                quantum_instructions: 1_500,
                ..MixConfig::default()
            },
        );
        let shift = mix.config().ns_shift;
        let mut per_lane: Vec<Vec<Event>> = vec![Vec::new(); 2];
        let mut cur = mix.cursor();
        while let Some((t, events)) = cur.pull_quantum() {
            for ev in &events {
                if let Some(addr) = ev.addr() {
                    assert_eq!(addr >> shift, t as u64, "address outside namespace {t}");
                }
            }
            let ns = (t as u64) << shift;
            per_lane[t].extend(events.into_iter().map(|e| strip(e, ns)));
        }
        // Untagged, each lane is exactly its tenant's recorded sequence.
        assert_eq!(per_lane, originals);
        let stats = cur.mix_stats();
        assert_eq!(
            stats.events.iter().sum::<u64>(),
            originals.iter().map(|t| t.len() as u64).sum::<u64>()
        );
        assert_eq!(stats.refs, vec![mix.trace(0).refs(), mix.trace(1).refs()]);
        assert_eq!(stats.ns_overflows, 0);
        assert!(stats.switches > 0);
    }

    #[test]
    fn next_and_pull_chunk_interleave_remainder_first() {
        let mix = TenantMix::new(
            vec![recorded("swim", 2_000)],
            MixConfig {
                quantum_instructions: 500,
                ..MixConfig::default()
            },
        );
        let expected: Vec<Event> = mix.cursor().collect();
        let mut cur = mix.cursor();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(cur.next().unwrap());
        }
        let remainder = cur.pull_chunk().unwrap();
        assert!(remainder.len() < expected.len() - 5, "remainder, not all");
        got.extend(remainder);
        while let Some(c) = cur.pull_chunk() {
            got.extend(c);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn solo_cursor_is_the_tagged_tenant_alone() {
        let tenants = vec![recorded("tree", 2_000), recorded("mcf", 2_000)];
        let mcf = tenants[1].1.decode_all().unwrap();
        let mix = TenantMix::with_defaults(tenants);
        let ns = 1u64 << mix.config().ns_shift;
        let solo: Vec<Event> = mix.solo_cursor(1).collect();
        let tagged: Vec<Event> = mcf.into_iter().map(|e| retag(e, ns)).collect();
        assert_eq!(solo, tagged);
    }

    #[test]
    fn overflowing_addresses_are_counted() {
        let trace = EncodedTrace::encode(&[Event::load(1 << 60), Event::load(64)], 16);
        let mix = TenantMix::with_defaults(vec![("ext".to_string(), trace)]);
        let mut cur = mix.cursor();
        while cur.pull_quantum().is_some() {}
        assert_eq!(cur.mix_stats().ns_overflows, 1);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_mix_rejected() {
        let _ = TenantMix::with_defaults(Vec::new());
    }
}
