//! Generator utilities: deterministic PRNG and trace-emission helpers.

use primecache_conc::port::stream::ChunkSink;
use primecache_conc::StdBackend;
use primecache_trace::{EncodedTrace, Event, TraceEncoder};

/// A 64-bit linear congruential generator (Knuth's MMIX multiplier).
///
/// Every workload derives its randomness from an [`Lcg`] seeded by the
/// workload name, so traces are bit-reproducible across runs and platforms.
///
/// # Examples
///
/// ```
/// use primecache_workloads::Lcg;
///
/// let mut a = Lcg::new(42);
/// let mut b = Lcg::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    #[inline]
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Output mix (xorshift) to decorrelate low bits.
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// The plain-modulo reduction has the classic modulo bias (values
    /// below `2^64 mod bound` are marginally more likely). That bias is
    /// **intentional and frozen**: every committed workload trace,
    /// fingerprint, and figure derives from this exact draw sequence, and
    /// a "fairer" rejection-sampling loop would consume a
    /// data-dependent number of raw draws — silently re-seeding every
    /// downstream address. At the bounds the workloads use (≤ 2^26) the
    /// bias is < 2^-38 and has no bearing on the set-index distributions
    /// the paper measures. Do not change the reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `num/denom`.
    #[inline]
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// A Zipf-ish skewed draw in `[0, bound)`: smaller values much more
    /// likely (used for hot-node selection in graph workloads).
    #[inline]
    pub fn skewed(&mut self, bound: u64) -> u64 {
        let r = self.next_u64();
        // Square a uniform fraction: density ~ 1/(2*sqrt(x)).
        let f = (r >> 11) as f64 / (1u64 << 53) as f64;
        ((f * f) * bound as f64) as u64
    }
}

/// Default events per channel chunk when a sink streams to an
/// [`crate::EventStream`] (overridable via [`crate::Workload::events_with`]),
/// and the chunk cadence of every recorded trace ([`record`]).
///
/// Large enough to amortize channel synchronization over thousands of
/// events, small enough that peak buffered memory (chunk × channel depth)
/// stays well under a megabyte.
///
/// Public because bit-exact trace round trips depend on it: an importer
/// that re-encodes an exported trace must cut chunks at the same cadence
/// to reproduce the recorded frame byte-for-byte (`primecache-ingest`
/// does, and `ci/ingest_smoke.sh` `cmp`s the files).
pub const STREAM_CHUNK: usize = 16384;

/// Where a [`TraceSink`] delivers its events.
#[derive(Debug)]
enum Output {
    /// Materialize the whole trace (legacy `Workload::trace` path, tests).
    Buffer(Vec<Event>),
    /// Stream fixed-size chunks to a consumer thread through the
    /// model-checked chunk protocol; the sink's `is_closed` flips when
    /// the consumer hangs up, which makes [`TraceSink::done`] return true
    /// so the generator unwinds early instead of producing into the void.
    Channel(ChunkSink<StdBackend, Event>),
    /// Same-thread pull-mode recording: events go straight into a
    /// delta/varint [`TraceEncoder`] — no generator thread, no channel
    /// hop — producing the compact [`EncodedTrace`] a
    /// [`crate::TraceStore`] replays to every scheme of a sweep.
    Record(TraceEncoder),
}

/// Builder that appends events while tracking how many memory references
/// have been emitted — generators loop until [`TraceSink::done`].
///
/// The streaming generator contract: a generator is a
/// `fn(&mut TraceSink)` that emits a deterministic event sequence
/// (independent of the output mode) and polls `done()` at least once per
/// bounded number of events. The same generator therefore serves both the
/// materialized `Workload::trace` path and the O(1)-memory
/// `Workload::events` stream.
#[derive(Debug)]
pub struct TraceSink {
    out: Output,
    refs: u64,
    target: u64,
}

impl TraceSink {
    /// Creates a buffering sink, pre-allocating for `target_refs`
    /// references.
    #[must_use]
    pub fn with_target(target_refs: u64) -> Self {
        Self {
            out: Output::Buffer(Vec::with_capacity(
                (target_refs as usize).saturating_mul(2).min(1 << 26),
            )),
            refs: 0,
            target: target_refs,
        }
    }

    /// Creates a sink that streams chunks through `sink` (used by
    /// [`crate::EventStream`]).
    pub(crate) fn for_channel(target_refs: u64, sink: ChunkSink<StdBackend, Event>) -> Self {
        Self {
            out: Output::Channel(sink),
            refs: 0,
            target: target_refs,
        }
    }

    /// Creates a recording sink that encodes events on the calling
    /// thread in `chunk_events`-sized encoded chunks (used by
    /// [`record`] / [`crate::Workload::record`]).
    pub(crate) fn for_recording(target_refs: u64, chunk_events: usize) -> Self {
        Self {
            out: Output::Record(TraceEncoder::new(chunk_events)),
            refs: 0,
            target: target_refs,
        }
    }

    /// Memory references emitted so far.
    #[must_use]
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// The reference target the generator should run to.
    #[must_use]
    pub fn target(&self) -> u64 {
        self.target
    }

    /// True once the generator should stop: the reference target is met,
    /// or (in streaming mode) the consumer dropped the stream.
    #[must_use]
    pub fn done(&self) -> bool {
        self.refs >= self.target || matches!(&self.out, Output::Channel(sink) if sink.is_closed())
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        match &mut self.out {
            Output::Buffer(events) => events.push(ev),
            Output::Channel(sink) => sink.push(ev),
            Output::Record(enc) => enc.push(ev),
        }
    }

    /// Emits an independent load.
    #[inline]
    pub fn load(&mut self, addr: u64) {
        self.push(Event::load(addr));
        self.refs += 1;
    }

    /// Emits a serializing (pointer-chase) load.
    #[inline]
    pub fn chase(&mut self, addr: u64) {
        self.push(Event::chase(addr));
        self.refs += 1;
    }

    /// Emits a store.
    #[inline]
    pub fn store(&mut self, addr: u64) {
        self.push(Event::Store { addr });
        self.refs += 1;
    }

    /// Emits `n` instructions of integer compute.
    #[inline]
    pub fn work(&mut self, n: u32) {
        if n > 0 {
            self.push(Event::Work(n));
        }
    }

    /// Emits `n` instructions of floating-point compute (issued through
    /// the 4-wide FP units of Table 3).
    #[inline]
    pub fn fp_work(&mut self, n: u32) {
        if n > 0 {
            self.push(Event::FpWork(n));
        }
    }

    /// Emits a branch.
    #[inline]
    pub fn branch(&mut self, mispredict: bool) {
        self.push(Event::Branch { mispredict });
    }

    /// Flushes any partially filled streaming chunk (no-op when
    /// buffering or recording — the encoder flushes in `into_recorded`).
    pub(crate) fn finish(&mut self) {
        if let Output::Channel(sink) = &mut self.out {
            sink.finish();
        }
    }

    /// Finishes a buffered trace.
    ///
    /// # Panics
    ///
    /// Panics when called on a streaming or recording sink; streamed
    /// events have already been handed to the consumer, recorded ones to
    /// the encoder.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        match self.out {
            Output::Buffer(events) => events,
            Output::Channel(_) | Output::Record(_) => {
                panic!("into_events on a non-buffering TraceSink")
            }
        }
    }

    /// Finishes a recorded trace, sealing the final encoded chunk.
    ///
    /// # Panics
    ///
    /// Panics when called on a sink that is not in recording mode.
    #[must_use]
    pub fn into_recorded(self) -> EncodedTrace {
        match self.out {
            Output::Record(enc) => enc.finish(),
            Output::Buffer(_) | Output::Channel(_) => {
                panic!("into_recorded on a non-recording TraceSink")
            }
        }
    }
}

/// Runs a streaming generator to completion into a materialized `Vec`.
///
/// This is the legacy-compatible path: `materialize(f, n)` produces
/// exactly the event sequence the pre-streaming `fn(u64) -> Vec<Event>`
/// generators returned.
#[must_use]
pub fn materialize(generator: fn(&mut TraceSink), target_refs: u64) -> Vec<Event> {
    let mut sink = TraceSink::with_target(target_refs);
    generator(&mut sink);
    sink.into_events()
}

/// Runs a streaming generator to completion on the *calling* thread,
/// encoding its events into a compact [`EncodedTrace`].
///
/// This is the pull-mode recording path: it produces exactly the event
/// sequence [`materialize`] / [`crate::EventStream`] deliver (generators
/// are deterministic and output-mode-blind), but skips the spawn+channel
/// hop and stores the result at a few bytes per event instead of 16.
#[must_use]
pub fn record(generator: fn(&mut TraceSink), target_refs: u64) -> EncodedTrace {
    let mut sink = TraceSink::for_recording(target_refs, STREAM_CHUNK);
    generator(&mut sink);
    sink.into_recorded()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_varied() {
        let mut g = Lcg::new(7);
        let vals: Vec<u64> = (0..100).map(|_| g.below(1000)).collect();
        let distinct: std::collections::HashSet<u64> = vals.iter().copied().collect();
        assert!(
            distinct.len() > 50,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut g = Lcg::new(1);
        for _ in 0..1000 {
            assert!(g.below(17) < 17);
        }
    }

    #[test]
    fn skewed_prefers_small_values() {
        let mut g = Lcg::new(3);
        let n = 10_000;
        let small = (0..n).filter(|_| g.skewed(1000) < 250).count();
        // P(x < 250) = sqrt(0.25) = 0.5 under the squared-uniform law.
        assert!(small > n * 4 / 10, "{small} of {n} draws below 25%");
    }

    #[test]
    fn sink_counts_only_memory_refs() {
        let mut sink = TraceSink::with_target(10);
        sink.load(0);
        sink.work(5);
        sink.store(64);
        sink.branch(false);
        sink.chase(128);
        assert_eq!(sink.refs(), 3);
        assert_eq!(sink.into_events().len(), 5);
    }

    #[test]
    fn work_zero_is_elided() {
        let mut sink = TraceSink::with_target(1);
        sink.work(0);
        assert!(sink.into_events().is_empty());
    }

    #[test]
    fn done_tracks_target() {
        let mut sink = TraceSink::with_target(2);
        assert!(!sink.done());
        sink.load(0);
        assert!(!sink.done());
        sink.load(64);
        assert!(sink.done());
    }

    #[test]
    fn channel_sink_reports_done_after_receiver_drops() {
        let (tx, rx) = primecache_conc::sync::spsc(1);
        let mut sink = TraceSink::for_channel(u64::MAX, ChunkSink::new(tx, STREAM_CHUNK));
        drop(rx);
        // The hangup is only observed at the next chunk flush.
        for i in 0..2 * STREAM_CHUNK as u64 {
            sink.load(i * 64);
        }
        assert!(sink.done());
    }

    #[test]
    fn channel_sink_streams_all_events_in_order() {
        use primecache_conc::ReceiverApi;
        let (tx, rx) = primecache_conc::sync::spsc(4);
        let mut sink = TraceSink::for_channel(u64::MAX, ChunkSink::new(tx, STREAM_CHUNK));
        let n = STREAM_CHUNK as u64 + 17;
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(chunk) = rx.recv() {
                got.extend(chunk);
            }
            got
        });
        for i in 0..n {
            sink.load(i * 64);
        }
        sink.finish();
        drop(sink);
        let got = consumer.join().expect("consumer thread");
        assert_eq!(got.len() as u64, n);
        assert_eq!(got[0], Event::load(0));
        assert_eq!(got[got.len() - 1], Event::load((n - 1) * 64));
    }

    #[test]
    fn recorded_trace_matches_materialized() {
        fn tiny(t: &mut TraceSink) {
            let mut g = Lcg::new(99);
            while !t.done() {
                t.load(g.below(1 << 20) * 64);
                t.work(3);
                t.branch(g.chance(1, 10));
            }
        }
        let recorded = record(tiny, 40_000);
        let buffered = materialize(tiny, 40_000);
        assert_eq!(recorded.decode_all().unwrap(), buffered);
        assert_eq!(recorded.events(), buffered.len() as u64);
        assert_eq!(recorded.refs(), 40_000);
        // Chunk boundaries mirror the streaming path's STREAM_CHUNK.
        assert_eq!(recorded.chunk_events(), STREAM_CHUNK);
        // The compactness target the format exists for.
        assert!(
            recorded.bytes_per_event() < 5.0,
            "{} B/event",
            recorded.bytes_per_event()
        );
    }

    #[test]
    fn materialize_matches_handwritten_generator() {
        fn tiny(t: &mut TraceSink) {
            let mut a = 0u64;
            while !t.done() {
                t.load(a);
                a += 64;
            }
        }
        let trace = materialize(tiny, 5);
        assert_eq!(
            trace,
            (0..5).map(|i| Event::load(i * 64)).collect::<Vec<_>>()
        );
    }
}
