//! Generator utilities: deterministic PRNG and trace-emission helpers.

use primecache_trace::Event;

/// A 64-bit linear congruential generator (Knuth's MMIX multiplier).
///
/// Every workload derives its randomness from an [`Lcg`] seeded by the
/// workload name, so traces are bit-reproducible across runs and platforms.
///
/// # Examples
///
/// ```
/// use primecache_workloads::Lcg;
///
/// let mut a = Lcg::new(42);
/// let mut b = Lcg::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Output mix (xorshift) to decorrelate low bits.
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// A Zipf-ish skewed draw in `[0, bound)`: smaller values much more
    /// likely (used for hot-node selection in graph workloads).
    pub fn skewed(&mut self, bound: u64) -> u64 {
        let r = self.next_u64();
        // Square a uniform fraction: density ~ 1/(2*sqrt(x)).
        let f = (r >> 11) as f64 / (1u64 << 53) as f64;
        ((f * f) * bound as f64) as u64
    }
}

/// Builder that appends events while tracking how many memory references
/// have been emitted — generators loop until they reach their target.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Vec<Event>,
    refs: u64,
}

impl TraceSink {
    /// Creates an empty sink, pre-allocating for `target_refs` references.
    #[must_use]
    pub fn with_target(target_refs: u64) -> Self {
        Self {
            events: Vec::with_capacity((target_refs as usize).saturating_mul(2).min(1 << 26)),
            refs: 0,
        }
    }

    /// Memory references emitted so far.
    #[must_use]
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Emits an independent load.
    pub fn load(&mut self, addr: u64) {
        self.events.push(Event::load(addr));
        self.refs += 1;
    }

    /// Emits a serializing (pointer-chase) load.
    pub fn chase(&mut self, addr: u64) {
        self.events.push(Event::chase(addr));
        self.refs += 1;
    }

    /// Emits a store.
    pub fn store(&mut self, addr: u64) {
        self.events.push(Event::Store { addr });
        self.refs += 1;
    }

    /// Emits `n` instructions of integer compute.
    pub fn work(&mut self, n: u32) {
        if n > 0 {
            self.events.push(Event::Work(n));
        }
    }

    /// Emits `n` instructions of floating-point compute (issued through
    /// the 4-wide FP units of Table 3).
    pub fn fp_work(&mut self, n: u32) {
        if n > 0 {
            self.events.push(Event::FpWork(n));
        }
    }

    /// Emits a branch.
    pub fn branch(&mut self, mispredict: bool) {
        self.events.push(Event::Branch { mispredict });
    }

    /// Finishes the trace.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_varied() {
        let mut g = Lcg::new(7);
        let vals: Vec<u64> = (0..100).map(|_| g.below(1000)).collect();
        let distinct: std::collections::HashSet<u64> = vals.iter().copied().collect();
        assert!(
            distinct.len() > 50,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut g = Lcg::new(1);
        for _ in 0..1000 {
            assert!(g.below(17) < 17);
        }
    }

    #[test]
    fn skewed_prefers_small_values() {
        let mut g = Lcg::new(3);
        let n = 10_000;
        let small = (0..n).filter(|_| g.skewed(1000) < 250).count();
        // P(x < 250) = sqrt(0.25) = 0.5 under the squared-uniform law.
        assert!(small > n * 4 / 10, "{small} of {n} draws below 25%");
    }

    #[test]
    fn sink_counts_only_memory_refs() {
        let mut sink = TraceSink::with_target(10);
        sink.load(0);
        sink.work(5);
        sink.store(64);
        sink.branch(false);
        sink.chase(128);
        assert_eq!(sink.refs(), 3);
        assert_eq!(sink.into_events().len(), 5);
    }

    #[test]
    fn work_zero_is_elided() {
        let mut sink = TraceSink::with_target(1);
        sink.work(0);
        assert!(sink.into_events().is_empty());
    }
}
