//! NAS kernels: ft (non-uniform), is and lu (uniform).

use crate::util::{Lcg, TraceSink};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// NAS ft: 3D FFT. The model captures the transpose-based structure: a set
/// of power-of-two-aligned stage buffers (pencil scratch areas) reused
/// across butterfly stages, plus unit-stride bit-reversal passes.
///
/// The six 64 KB stage buffers all sit at 2 MB alignments, so under
/// traditional indexing they overlay the same 1024 L2 sets — six ways of
/// pressure on a 4-way cache — while the other half of the cache idles:
/// non-uniform *and* conflict-bound, the paper's ft signature.
pub fn ft(t: &mut TraceSink) {
    let mut rng = Lcg::new(0xF7);
    let stage_base = |s: u64| 0x8000_0000 + s * (4 * MB);
    let stages = 10u64;
    let buf_blocks = 24 * KB / 64; // 384 blocks per stage buffer
    let data_base = 0x4_0000_0000u64;
    let data_elems = 4 * MB / 16; // complex doubles, streamed
                                  // Twiddle-factor table walked with a near-power-of-two block stride
                                  // (2047): harmless to modulo indexing (odd, and coprime with 2039)
                                  // but the classic XOR pathology of §3.3.
    let twiddle_base = 0x6_0000_0000u64;
    let twiddle_lines = 96u64;
    let mut pos = 0u64;
    let mut twiddle_pos = 0u64;
    'outer: loop {
        // Butterfly stages: sweep each pencil buffer in turn. All buffers
        // alias under traditional indexing, so the cross-stage reuse
        // misses every pass; the unit-stride sweep keeps those misses
        // cheap streaming misses.
        for s in 0..stages {
            // Three butterfly sub-stages per pencil: the repeats hit under
            // any indexing; only the first pass pays the cross-stage
            // conflicts.
            for _pass in 0..3 {
                for o in 0..buf_blocks {
                    for e in 0..4u64 {
                        t.load(stage_base(s) + o * 64 + e * 16);
                        t.fp_work(140);
                    }
                    t.store(stage_base(s) + o * 64);
                    // Twiddle walk at a near-power-of-two block stride:
                    // the classic XOR pathology of §3.3, harmless to
                    // pMod and Base.
                    if o % 8 == 0 {
                        t.load(twiddle_base + (twiddle_pos % twiddle_lines) * 2047 * 64);
                        twiddle_pos += 1;
                        t.fp_work(12);
                    }
                    if t.done() {
                        break 'outer;
                    }
                }
            }
            t.branch(rng.chance(1, 8));
        }
        // Bit-reversal copy pass over the main data: unit-stride stream.
        for _ in 0..4 * buf_blocks {
            t.load(data_base + (pos % data_elems) * 16);
            t.store(data_base + 64 * MB + (pos % data_elems) * 16);
            t.fp_work(10);
            pos += 1;
            if t.done() {
                break 'outer;
            }
        }
    }
}

/// NAS is: integer sort. Random keys stream in, histogram buckets count
/// them; bucket indices are uniformly distributed, so set usage is even.
pub fn is(t: &mut TraceSink) {
    let mut rng = Lcg::new(0x15);
    let keys_base = 0x6000_0000u64;
    let buckets_base = 0x7000_0000u64 + 8 * KB + 24; // odd offset
    let n_buckets = 1u64 << 16; // 256 KB of 4-byte counters
    let n_keys = 1u64 << 22;
    let mut i = 0u64;
    while !t.done() {
        // Sequential key read.
        t.load(keys_base + (i % n_keys) * 4);
        // Random-bucket increment: load + store.
        let b = rng.below(n_buckets);
        t.load(buckets_base + b * 4);
        t.store(buckets_base + b * 4);
        t.fp_work(6);
        if i.is_multiple_of(32) {
            t.branch(rng.chance(1, 12));
        }
        i += 1;
    }
}

/// NAS lu: blocked dense LU factorization (right-looking). Each step
/// factors a 32x32 panel and then updates the whole trailing submatrix,
/// so coverage of the (odd-pitch) matrix is dense and set usage uniform;
/// the active panel enjoys L2-resident reuse.
pub fn lu(t: &mut TraceSink) {
    let n = 768u64; // matrix dimension (multiple of the 32 block)
    let bs = 32u64;
    let row_bytes = n * 8 + 64; // padded, non-power-of-two pitch
    let base = 0x9000_0000u64;
    let addr = |r: u64, c: u64| base + r * row_bytes + c * 8;
    let nb = n / bs;
    'outer: loop {
        for k in 0..nb {
            // Factor the diagonal panel: rows k*bs.., column block k.
            for r in k * bs..(k + 1) * bs {
                for c in k * bs..(k + 1) * bs {
                    t.load(addr(r, c));
                    t.load(addr(c, r)); // the transposed pivot access
                    t.store(addr(r, c));
                    t.fp_work(9);
                }
                if t.done() {
                    break 'outer;
                }
            }
            // Trailing update: the whole remaining submatrix, row-major.
            for r in (k + 1) * bs..n {
                for c in ((k + 1) * bs..n).step_by(8) {
                    t.load(addr(r, c));
                    t.load(addr(k * bs + (r % bs), c)); // panel row reuse
                    t.store(addr(r, c));
                    t.fp_work(20);
                }
                if t.done() {
                    break 'outer;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::materialize;
    use primecache_trace::TraceStats;

    #[test]
    fn generators_reach_target() {
        for (name, f) in [("ft", ft as fn(&mut TraceSink)), ("is", is), ("lu", lu)] {
            let stats: TraceStats = materialize(f, 5_000).iter().collect();
            assert!(stats.memory_refs() >= 5_000, "{name}");
            assert!(stats.memory_refs() < 5_200, "{name} overshoots");
        }
    }

    #[test]
    fn ft_hot_buffers_dominate() {
        let trace = materialize(ft, 20_000);
        let hot = trace
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| a < 0x4_0000_0000)
            .count();
        let total = trace.iter().filter(|e| e.is_memory()).count();
        assert!(hot * 2 > total, "{hot}/{total}");
    }

    #[test]
    fn is_buckets_spread() {
        let trace = materialize(is, 30_000);
        let buckets: std::collections::HashSet<u64> = trace
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&a| a >= 0x7000_0000)
            .map(|a| (a - 0x7000_0000) / 4)
            .collect();
        assert!(buckets.len() > 5_000, "{}", buckets.len());
    }

    #[test]
    fn determinism() {
        assert_eq!(materialize(ft, 3_000), materialize(ft, 3_000));
        assert_eq!(materialize(is, 3_000), materialize(is, 3_000));
        assert_eq!(materialize(lu, 3_000), materialize(lu, 3_000));
    }
}
