//! CLI subcommand implementations.

use primecache_analyze::{
    certify_all, certify_expr, has_errors, model_of, report_json, self_check, xor_folded_model,
    Theorem1,
};
use primecache_attack::{
    attack_report_json, eviction_cost, AttackEntry, EvictConfig, RecoveryConfig,
};
use primecache_core::index::{Geometry, HashKind, SetIndexer, XorFolded};
use primecache_core::metrics::{
    balance, concentration, strided_addresses, uniformity_ratio, violation_fraction, OnlineMetrics,
};
use primecache_ingest::text::write_text;
use primecache_ingest::{import_path, SourceFormat};
use primecache_sim::experiments::miss_taxonomy;
use primecache_sim::report::render_table;
use primecache_sim::suite::run_sweep;
use primecache_sim::throughput::{
    baseline_refs_per_sec, measure, measure_gen_only, measure_replayed,
};
use primecache_sim::{
    run_chunks, run_tenant_mix, run_workload, static_model, tenant_solo_baseline, MachineConfig,
    RunResult, Scheme, SimOracle, PROBE_BITS,
};
use primecache_trace::{read_trace, write_trace, EncodedTrace, TraceStats, FRAME_MAGIC};
use primecache_workloads::profile::profile_of;
use primecache_workloads::{all, by_name, MixConfig, TenantMix};

use crate::args::{flag_parsed, flag_value, positional};

/// Top-level usage text.
pub const USAGE: &str = "\
pcache — prime-number cache indexing simulator (HPCA 2004 reproduction)

USAGE:
  pcache list [--verbose]                  list the 23 workload models
  pcache run <app> [--scheme S] [--refs N] simulate one (workload, scheme)
  pcache classify [--refs N]               uniformity classification (§4)
  pcache sweep [--refs N]                  all apps x main schemes
  pcache metrics --stride S                balance/concentration at a stride
  pcache metrics --app <name> [--refs N]   same metrics over a workload trace
  pcache taxonomy [--refs N]               three-C miss decomposition
  pcache bench [--scheme S] [--refs N] [--strict] [--live | --gen-only]
                                           simulator throughput (refs/sec);
                                           default records once and replays
                                           per scheme; --live streams per
                                           scheme; --gen-only times only the
                                           trace pipeline stages
  pcache analyze [--json]                  static certificates + config lints
  pcache analyze --expr 'SRC' [--name N] [--json]
                                           certify one DSL index expression
  pcache analyze --self-check [--refs N]   cross-validate the static analyzer
  pcache attack [--scheme S | --expr SRC] [--json] [--seed N]
                                           black-box index recovery +
                                           eviction-set construction cost;
                                           checks every recovered model
                                           against the static one
  pcache conc-check [--bound N] [--check NAME] [--replay SEED]
                                           model-check the concurrency protocols
  pcache report <app> [--scheme S] [--refs N] [--out FILE] [--compact]
               [--replay]                  self-describing run report (JSON);
                                           --replay simulates from a recorded
                                           trace and adds trace_store.* metrics
  pcache trace-events <app> [--scheme S] [--refs N] [--sample N] [--ring N]
                      [--out FILE]         per-access event trace (JSONL)
  pcache trace-events --sweep [--refs N] [--out FILE]
                                           sweep-task scheduling trace (JSONL)
  pcache trace <app> --out FILE [--refs N] [--format pct1|pcte|text]
                                           dump a trace (flat binary, recorded
                                           PCTE frame, or importable text)
  pcache import FILE [--out FILE] [--run] [--scheme S]
                                           validate + convert an external trace
                                           (text, PCTE, or flat PCT1; grammar in
                                           TRACE_FORMAT.md); --out writes the
                                           PCTE conversion, --run simulates it
  pcache sweep --tenants A,B[,...] [--refs N] [--quantum Q] [--seed S]
                                           interleave N workloads (or trace
                                           files) through one shared L2 and
                                           report per-scheme, per-tenant
                                           interference miss blowup
  pcache inspect FILE                      summarize a binary trace (flat PCT1
                                           or PCTE frame)

SCHEMES: Base, 8-way, XOR, pMod, pDisp, SKW, skw+pDisp, FA,
         or a DSL expression: expr:'a % 2039' (see DESIGN.md for the grammar;
         the scheme is statically certified before any simulation runs)
";

fn parse_scheme(label: &str) -> Result<Scheme, String> {
    if let Some(src) = label.strip_prefix("expr:") {
        return primecache_core::expr::register_anonymous(src)
            .map(Scheme::Expr)
            .map_err(|e| format!("invalid expression scheme '{src}': {e}"));
    }
    Scheme::ALL
        .into_iter()
        .find(|s| s.label() == label)
        .ok_or_else(|| format!("unknown scheme '{label}' (built-ins or expr:<src>)"))
}

/// `pcache list [--verbose]`
pub fn list(args: &[String]) -> i32 {
    let verbose = args.iter().any(|a| a == "--verbose");
    if verbose {
        let rows: Vec<Vec<String>> = all()
            .iter()
            .map(|w| {
                let p = profile_of(w.name).expect("every workload has a profile");
                vec![
                    w.name.to_owned(),
                    w.suite.to_owned(),
                    if w.expected_non_uniform {
                        "non-uniform"
                    } else {
                        "uniform"
                    }
                    .to_owned(),
                    format!("{:?}", p.pattern),
                    format!("{:?}", p.conflict),
                    format!("{} KB", p.footprint_bytes / 1024),
                    if p.has_dependent_loads { "yes" } else { "no" }.to_owned(),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &[
                    "app",
                    "suite",
                    "class (§4)",
                    "pattern",
                    "conflicts",
                    "footprint",
                    "chases"
                ],
                &rows
            )
        );
    } else {
        let rows: Vec<Vec<String>> = all()
            .iter()
            .map(|w| {
                vec![
                    w.name.to_owned(),
                    w.suite.to_owned(),
                    if w.expected_non_uniform {
                        "non-uniform"
                    } else {
                        "uniform"
                    }
                    .to_owned(),
                ]
            })
            .collect();
        print!("{}", render_table(&["app", "suite", "class (§4)"], &rows));
    }
    0
}

/// `pcache run <app> [--scheme S] [--refs N]`
pub fn run(args: &[String]) -> i32 {
    let Some(name) = positional(args) else {
        eprintln!("usage: pcache run <app> [--scheme S] [--refs N]");
        return 2;
    };
    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}' (try `pcache list`)");
        return 2;
    };
    let scheme_label = flag_value(args, "--scheme").unwrap_or("pMod");
    let scheme = match parse_scheme(scheme_label) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let refs = match flag_parsed(args, "--refs", 200_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let base = run_workload(workload, Scheme::Base, refs);
    let r = if scheme == Scheme::Base {
        base.clone()
    } else {
        run_workload(workload, scheme, refs)
    };
    println!("{name} under {scheme} ({refs} refs):");
    println!(
        "  cycles: {} (busy {}, other {}, mem {})",
        r.breakdown.total(),
        r.breakdown.busy,
        r.breakdown.other_stall,
        r.breakdown.mem_stall
    );
    println!(
        "  L1: {} accesses, {:.2}% miss; L2 demand: {} accesses, {:.2}% miss",
        r.l1.accesses,
        r.l1.miss_rate() * 100.0,
        r.l2.accesses,
        r.l2.miss_rate() * 100.0
    );
    println!(
        "  vs Base: time x{:.3}, misses x{:.3}",
        r.breakdown.total() as f64 / base.breakdown.total() as f64,
        r.l2.misses as f64 / base.l2.misses.max(1) as f64
    );
    println!(
        "  DRAM: {} reads, {} writes, {:.1}% row hits",
        r.dram.reads,
        r.dram.writes,
        r.dram.row_hit_rate() * 100.0
    );
    0
}

/// `pcache classify [--refs N]`
pub fn classify(args: &[String]) -> i32 {
    let refs = match flag_parsed(args, "--refs", 200_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut rows = Vec::new();
    for w in all() {
        let r = run_workload(w, Scheme::Base, refs);
        let cv = uniformity_ratio(&r.l2.set_accesses);
        rows.push(vec![
            w.name.to_owned(),
            format!("{cv:.3}"),
            if cv > 0.5 { "non-uniform" } else { "uniform" }.to_owned(),
            if (cv > 0.5) == w.expected_non_uniform {
                "="
            } else {
                "MISMATCH"
            }
            .to_owned(),
        ]);
    }
    print!(
        "{}",
        render_table(&["app", "stdev/mean", "class", "vs paper"], &rows)
    );
    0
}

/// The scheme grid `pcache sweep` dispatches; `pcache analyze` lints the
/// resulting task count against the machine's worker count.
const SWEEP_SCHEMES: [Scheme; 5] = [
    Scheme::Base,
    Scheme::Xor,
    Scheme::PrimeModulo,
    Scheme::PrimeDisplacement,
    Scheme::SkewedPrimeDisplacement,
];

/// `pcache sweep [--refs N]` / `pcache sweep --tenants A,B[,...]`
pub fn sweep(args: &[String]) -> i32 {
    if flag_value(args, "--tenants").is_some() {
        return sweep_tenants(args);
    }
    let refs = match flag_parsed(args, "--refs", 100_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let schemes = SWEEP_SCHEMES;
    let sweep = run_sweep(&schemes, refs);
    let mut header = vec!["app"];
    header.extend(schemes.iter().skip(1).map(|s| s.label()));
    let mut rows = Vec::new();
    for w in all() {
        let mut row = vec![w.name.to_owned()];
        for &s in schemes.iter().skip(1) {
            row.push(format!(
                "{:.3}",
                sweep.normalized_time(w.name, s).unwrap_or(f64::NAN)
            ));
        }
        rows.push(row);
    }
    println!("execution time normalized to Base ({refs} refs):\n");
    print!("{}", render_table(&header, &rows));
    if let Some(st) = sweep.store {
        println!(
            "\ntrace store: {} workloads recorded once ({} events, {} KB encoded), \
             {} replays served",
            st.records,
            st.events,
            st.encoded_bytes / 1024,
            st.replays
        );
    }
    0
}

/// `pcache sweep --tenants A,B[,...] [--refs N] [--quantum Q] [--seed S]`
///
/// Builds a deterministic multi-tenant mix — each token is a workload
/// name (recorded at `--refs`) or an importable trace file — and runs it
/// through every sweep scheme on one shared hierarchy. For each tenant
/// the table compares its L2 misses inside the mix against its solo
/// baseline (same tagged address stream, no co-tenants); the blowup
/// ratio is pure inter-tenant interference.
fn sweep_tenants(args: &[String]) -> i32 {
    let spec = flag_value(args, "--tenants").expect("caller checked the flag");
    let defaults = MixConfig::default();
    let (refs, quantum, seed) = match (
        flag_parsed(args, "--refs", 50_000u64),
        flag_parsed(args, "--quantum", defaults.quantum_instructions),
        flag_parsed(args, "--seed", defaults.seed),
    ) {
        (Ok(r), Ok(q), Ok(s)) => (r, q, s),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if quantum == 0 {
        eprintln!("--quantum must be positive (instructions per scheduling slice)");
        return 2;
    }
    let mut tenants = Vec::new();
    for tok in spec.split(',').filter(|t| !t.is_empty()) {
        if let Some(w) = by_name(tok) {
            tenants.push((w.name.to_owned(), w.record(refs)));
        } else if std::path::Path::new(tok).is_file() {
            let label = std::path::Path::new(tok)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(tok)
                .to_owned();
            match import_path(tok) {
                Ok(i) => tenants.push((label, i.trace)),
                Err(e) => {
                    eprintln!("cannot import tenant '{tok}': {e}");
                    return 1;
                }
            }
        } else {
            eprintln!(
                "unknown tenant '{tok}': neither a workload (try `pcache list`) \
                 nor a trace file"
            );
            return 2;
        }
    }
    if tenants.is_empty() {
        eprintln!("--tenants needs at least one workload name or trace file");
        return 2;
    }
    let n = tenants.len();
    let names: Vec<String> = tenants.iter().map(|(t, _)| t.clone()).collect();
    let mix = TenantMix::new(
        tenants,
        MixConfig {
            quantum_instructions: quantum,
            seed,
            ..defaults
        },
    );
    let machine = MachineConfig::paper_default();
    let mut header: Vec<String> = vec!["scheme".into(), "L2 miss%".into()];
    for name in &names {
        header.push(format!("{name} shared"));
        header.push(format!("{name} solo"));
        header.push(format!("{name} blowup"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    let mut quanta = 0u64;
    let mut switches = 0u64;
    for scheme in SWEEP_SCHEMES {
        let run = run_tenant_mix(&mix, scheme, &machine);
        let mut row = vec![
            scheme.label().to_owned(),
            format!("{:.2}", run.aggregate.l2.miss_rate() * 100.0),
        ];
        for (i, lane) in run.lanes.iter().enumerate() {
            let (_, solo_l2) = tenant_solo_baseline(&mix, i, scheme, &machine);
            row.push(lane.l2.misses.to_string());
            row.push(solo_l2.misses.to_string());
            row.push(format!(
                "x{:.3}",
                lane.l2.misses as f64 / solo_l2.misses.max(1) as f64
            ));
        }
        rows.push(row);
        quanta = run.mix.quanta;
        switches = run.mix.switches;
    }
    println!(
        "{n} tenants time-sliced through one shared hierarchy \
         ({quantum}-instruction quanta, seed {seed:#x}):\n"
    );
    print!("{}", render_table(&header_refs, &rows));
    println!(
        "\nschedule: {quanta} quanta, {switches} tenant switches \
         (deterministic; L2 misses per tenant, solo = same stream alone)"
    );
    0
}

/// `pcache bench [--scheme S] [--refs N] [--out FILE] [--baseline FILE]
/// [--max-regress PCT] [--strict] [--live | --gen-only]`
///
/// Measures end-to-end simulator throughput (simulated memory references
/// per wall-clock second) over the whole workload suite, one row per
/// scheme. The default mode records the suite once and replays it per
/// scheme (the `run_sweep` dataflow), reporting the trace-pipeline
/// stages alongside; `--live` times the old generate-per-scheme
/// streaming path; `--gen-only` times only the pipeline stages, no
/// simulation. `--out` writes the `BENCH_throughput.json` document;
/// `--baseline` turns the run into a regression gate. A measured entry
/// with no baseline entry is *ungated* — it always warns loudly, and
/// with `--strict` (CI) it fails the run, so new schemes cannot slip
/// past the perf floor unbaselined.
pub fn bench(args: &[String]) -> i32 {
    let refs = match flag_parsed(args, "--refs", 50_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let schemes: Vec<Scheme> = match flag_value(args, "--scheme") {
        None => Scheme::ALL.to_vec(),
        Some(label) => match parse_scheme(label) {
            Ok(s) => vec![s],
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
    };
    let max_regress = match flag_parsed(args, "--max-regress", 30.0f64) {
        Ok(v) => v / 100.0,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let live = args.iter().any(|a| a == "--live");
    let gen_only = args.iter().any(|a| a == "--gen-only");
    if live && gen_only {
        eprintln!("--live and --gen-only are mutually exclusive");
        return 2;
    }
    let report = if gen_only {
        measure_gen_only(refs)
    } else if live {
        measure(&schemes, refs)
    } else {
        measure_replayed(&schemes, refs)
    };
    let mut rows: Vec<Vec<String>> = report
        .schemes
        .iter()
        .map(|s| {
            vec![
                s.scheme.label().to_owned(),
                s.refs.to_string(),
                format!("{:.2}", s.seconds),
                format!("{:.0}", s.refs_per_sec),
            ]
        })
        .collect();
    rows.extend(report.extras.iter().map(|e| {
        vec![
            e.label.to_owned(),
            e.refs.to_string(),
            format!("{:.2}", e.seconds),
            format!("{:.0}", e.refs_per_sec),
        ]
    }));
    let mode = if gen_only {
        "trace pipeline only"
    } else if live {
        "live streaming"
    } else {
        "recorded replay"
    };
    println!(
        "simulator throughput ({mode}): {refs} refs/workload x {} workloads per scheme:\n",
        report.workloads
    );
    print!(
        "{}",
        render_table(&["entry", "refs", "seconds", "refs/sec"], &rows)
    );
    if let Some(out) = flag_value(args, "--out") {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("cannot write {out}: {e}");
            return 1;
        }
        println!("\nwrote {out}");
    }
    if let Some(path) = flag_value(args, "--baseline") {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return 1;
            }
        };
        let baseline = baseline_refs_per_sec(&json);
        if baseline.is_empty() {
            eprintln!("baseline {path} contains no scheme entries");
            return 1;
        }
        let strict = args.iter().any(|a| a == "--strict");
        let missing = report.missing_from_baseline(&baseline);
        if !missing.is_empty() {
            eprintln!(
                "WARNING: {} entr(y/ies) measured but absent from baseline {path} \
                 (ungated by the regression check): {}",
                missing.len(),
                missing.join(", ")
            );
            if strict {
                eprintln!("--strict: unbaselined entries are an error; add entries to {path}");
                return 1;
            }
        }
        let regressions = report.regressions(&baseline, max_regress);
        if !regressions.is_empty() {
            eprintln!("throughput regression vs {path}:");
            for msg in &regressions {
                eprintln!("  {msg}");
            }
            return 1;
        }
        println!(
            "no entry regressed more than {:.0}% vs {path}",
            max_regress * 100.0
        );
    }
    0
}

/// `pcache metrics --stride S [--sets N]` or `--app <name> [--refs N]`
pub fn metrics(args: &[String]) -> i32 {
    if let Some(app) = flag_value(args, "--app") {
        return metrics_app(app, args);
    }
    let stride = match flag_parsed(args, "--stride", 1u64) {
        Ok(v) if v > 0 => v,
        _ => {
            eprintln!("usage: pcache metrics --stride S [--sets N]");
            return 2;
        }
    };
    let sets = match flag_parsed(args, "--sets", 2048u64) {
        Ok(v) if v.is_power_of_two() && v >= 4 => v,
        _ => {
            eprintln!("--sets must be a power of two >= 4");
            return 2;
        }
    };
    let geom = Geometry::new(sets);
    let addrs = strided_addresses(stride, (sets * 4) as usize);
    let mut rows = Vec::new();
    for kind in HashKind::ALL {
        let idx = kind.build(geom);
        rows.push(vec![
            kind.label().to_owned(),
            format!("{:.3}", balance(&idx, addrs.iter().copied())),
            format!("{:.1}", concentration(&idx, addrs.iter().copied())),
            format!("{:.4}", violation_fraction(&idx, &addrs)),
        ]);
    }
    println!("stride {stride} over {sets} physical sets:\n");
    print!(
        "{}",
        render_table(
            &[
                "hash",
                "balance (1=ideal)",
                "concentration (0=ideal)",
                "violations"
            ],
            &rows
        )
    );
    0
}

/// `pcache taxonomy [--refs N]`
pub fn taxonomy(args: &[String]) -> i32 {
    let refs = match flag_parsed(args, "--refs", 150_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut rows = Vec::new();
    for w in all() {
        let t = miss_taxonomy(w, Scheme::Base, refs);
        rows.push(vec![
            w.name.to_owned(),
            t.compulsory.to_string(),
            t.capacity.to_string(),
            t.conflict.to_string(),
            format!("{:.0}%", t.conflict_fraction() * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "app",
                "compulsory",
                "capacity",
                "conflict",
                "conflict share"
            ],
            &rows
        )
    );
    0
}

/// The L2 geometry and skew-bank geometry the paper machine builds.
fn analysis_geometries(machine: &MachineConfig) -> (Geometry, Geometry) {
    let geom = match machine.l2_organization(Scheme::Base) {
        primecache_cache::L2Organization::SetAssoc(c) => Geometry::new(c.n_set_phys()),
        _ => Geometry::new(2048),
    };
    let bank_geom = match machine.l2_organization(Scheme::Skewed) {
        primecache_cache::L2Organization::Skewed(c) => Geometry::new(c.sets_per_bank()),
        _ => geom,
    };
    (geom, bank_geom)
}

/// `pcache analyze [--json]` / `pcache analyze --expr 'SRC'` /
/// `pcache analyze --self-check [--refs N]`
pub fn analyze(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--self-check") {
        return analyze_self_check(args);
    }
    if let Some(src) = flag_value(args, "--expr") {
        return analyze_expr(src, args);
    }
    let machine = MachineConfig::paper_default();
    let (geom, bank_geom) = analysis_geometries(&machine);
    let in_bits = (2 * geom.index_bits() + 4).min(64);
    let certs = certify_all(geom, bank_geom, in_bits);
    let lints: Vec<(Scheme, primecache_analyze::Lint)> = Scheme::ALL
        .into_iter()
        .flat_map(|s| machine.lint_scheme(s).into_iter().map(move |l| (s, l)))
        .collect();
    // Sweep-shape lint: the task grid `pcache sweep` would dispatch vs
    // this machine's worker pool (pre-clamp, as the scheduler sees it).
    let n_tasks = SWEEP_SCHEMES.len() * all().len();
    let n_workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let sweep_lints = primecache_analyze::lint_sweep_shape(n_tasks, n_workers);
    let mut bare: Vec<primecache_analyze::Lint> = lints.iter().map(|(_, l)| l.clone()).collect();
    bare.extend(sweep_lints.iter().cloned());
    if args.iter().any(|a| a == "--json") {
        println!("{}", report_json(&certs, &bare));
        return i32::from(has_errors(&bare));
    }
    let rows: Vec<Vec<String>> = certs
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.n_set.to_string(),
                c.rank.to_string(),
                c.kernel_dim.to_string(),
                c.smallest_conflict_stride()
                    .map_or_else(|| "—".to_owned(), |d| d.to_string()),
                if c.permutation { "yes" } else { "no" }.to_owned(),
                format!("{:.1}", c.balance_bound),
                c.invariance.label().to_owned(),
                match &c.theorem1 {
                    Theorem1::Holds { modulus } => format!("holds (p={modulus})"),
                    Theorem1::Fails { witness_stride } => {
                        format!("fails (stride {witness_stride})")
                    }
                    Theorem1::NoGuarantee => "no guarantee".to_owned(),
                },
            ]
        })
        .collect();
    println!(
        "static certificates over {} address bits ({} L2 sets, {}-set skew banks):\n",
        in_bits,
        geom.n_set_phys(),
        bank_geom.n_set_phys()
    );
    print!(
        "{}",
        render_table(
            &[
                "hash",
                "sets",
                "rank",
                "kernel",
                "min stride",
                "perm",
                "bal bound",
                "invariance",
                "theorem 1"
            ],
            &rows
        )
    );
    println!();
    if bare.is_empty() {
        println!(
            "config lints: all {} schemes clean; sweep shape {} tasks / {} workers ok",
            Scheme::ALL.len(),
            n_tasks,
            n_workers
        );
    } else {
        println!("config lints:");
        for (s, l) in &lints {
            println!("  {s}: {l}");
        }
        for l in &sweep_lints {
            println!("  sweep: {l}");
        }
    }
    i32::from(has_errors(&bare))
}

/// `pcache analyze --expr 'SRC' [--name N] [--json]`: compile one DSL
/// index expression, lower it to its abstract model, and print the
/// certificate plus the lints the paper machine's L2 geometry raises —
/// the same gate `--scheme expr:SRC` simulation runs behind.
fn analyze_expr(src: &str, args: &[String]) -> i32 {
    let registered = match flag_value(args, "--name") {
        Some(name) => primecache_core::expr::register(name, src),
        None => primecache_core::expr::register_anonymous(src),
    };
    let id = match registered {
        Ok(id) => id,
        Err(e) => {
            eprintln!("invalid expression '{src}': {e}");
            return 2;
        }
    };
    let machine = MachineConfig::paper_default();
    let (geom, _) = analysis_geometries(&machine);
    let in_bits = (2 * geom.index_bits() + 4).min(64);
    let cert = certify_expr(id.name().to_owned(), id.folded(), in_bits);
    let lints = machine.lint_scheme(Scheme::Expr(id));
    if args.iter().any(|a| a == "--json") {
        println!("{}", report_json(std::slice::from_ref(&cert), &lints));
        return i32::from(has_errors(&lints));
    }
    println!("expression: {src}");
    println!("  folded:      {}", id.folded());
    println!(
        "  certificate: {} ({} sets over {} address bits)",
        if cert.exact {
            "exact"
        } else {
            "sampled (opaque model)"
        },
        cert.n_set,
        cert.in_bits
    );
    println!("  rank {} / kernel dim {}", cert.rank, cert.kernel_dim);
    println!(
        "  permutation: {}; balance bound {:.2}{}",
        if cert.permutation { "yes" } else { "no" },
        cert.balance_bound,
        if cert.balanced { "" } else { " (UNBALANCED)" }
    );
    match cert.smallest_conflict_stride() {
        Some(d) => println!("  smallest conflict stride: {d}"),
        None => println!("  no universal conflict stride found"),
    }
    match &cert.theorem1 {
        Theorem1::Holds { modulus } => println!("  theorem 1: holds (p = {modulus})"),
        Theorem1::Fails { witness_stride } => {
            println!("  theorem 1: fails (witness stride {witness_stride})");
        }
        Theorem1::NoGuarantee => println!("  theorem 1: no guarantee"),
    }
    if lints.is_empty() {
        println!("  lints: clean — `--scheme expr:{src}` will simulate");
    } else {
        println!("  lints:");
        for l in &lints {
            println!("    {l}");
        }
        if has_errors(&lints) {
            println!("  the simulator's certificate gate REJECTS this scheme");
        }
    }
    i32::from(has_errors(&lints))
}

/// `pcache analyze --self-check [--refs N]`: the full static-vs-concrete
/// cross-validation battery, then the 23-workload distribution check.
fn analyze_self_check(args: &[String]) -> i32 {
    let refs = match flag_parsed(args, "--refs", 60_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut failed = false;
    let report = self_check();
    for stage in &report.stages {
        match &stage.failure {
            None => println!("  ok   {} ({} cases)", stage.name, stage.cases),
            Some(f) => {
                println!("  FAIL {}: {f}", stage.name);
                failed = true;
            }
        }
    }
    match check_workload_distributions(refs) {
        Ok(cases) => println!(
            "  ok   workload-distributions ({cases} cases over {} apps)",
            all().len()
        ),
        Err(f) => {
            println!("  FAIL workload-distributions: {f}");
            failed = true;
        }
    }
    let machine = MachineConfig::paper_default();
    let mut lint_errors = 0usize;
    for s in Scheme::ALL {
        if has_errors(&machine.lint_scheme(s)) {
            println!("  FAIL lint: scheme {s} has error-level lints");
            lint_errors += 1;
        }
    }
    if lint_errors == 0 {
        println!("  ok   config-lints ({} schemes)", Scheme::ALL.len());
    } else {
        failed = true;
    }
    i32::from(failed)
}

/// `pcache conc-check [--bound N] [--check NAME] [--replay SEED]`:
/// exhaustively model-checks the shipped concurrency protocols (the
/// streaming chunk channel and the sweep claim cursor) up to a
/// preemption bound, plus the seeded-bug demos that prove the checker
/// catches what it claims to.
///
/// `--replay SEED` (with `--check NAME`) re-executes exactly one
/// recorded schedule — the workflow for debugging a violation a CI run
/// printed.
pub fn conc_check(args: &[String]) -> i32 {
    let bound = match flag_parsed(args, "--bound", 2usize) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let only = flag_value(args, "--check");
    let checker = primecache_conc::Checker::with_bound(bound);
    if let Some(seed) = flag_value(args, "--replay") {
        let Some(name) = only else {
            eprintln!("--replay needs --check NAME to know which protocol to re-run");
            return 2;
        };
        let Some(check) = primecache_conc::self_check::find(name) else {
            eprintln!("unknown check '{name}' (try `pcache conc-check` to list them)");
            return 2;
        };
        let report = check.replay(&checker, seed);
        return match report.violation {
            Some(v) => {
                println!("replayed {name} @ {seed}:\n{v}");
                1
            }
            None => {
                println!("replayed {name} @ {seed}: schedule completed cleanly");
                0
            }
        };
    }
    println!("model-checking the shipped concurrency protocols (preemption bound {bound}):");
    let mut failed = false;
    for check in primecache_conc::self_check::checks() {
        if only.is_some_and(|n| n != check.name) {
            continue;
        }
        let report = check.run(&checker);
        let stats = format!(
            "{} schedules, {} pruned, depth {}{}",
            report.schedules,
            report.pruned,
            report.max_depth,
            if report.truncated { ", TRUNCATED" } else { "" }
        );
        match (&report.violation, check.expect_violation) {
            (None, false) => println!("  ok   {} ({stats})", check.name),
            (Some(v), true) => println!(
                "  ok   {} (expected violation found; replay seed {}; {stats})",
                check.name, v.seed
            ),
            (Some(v), false) => {
                println!("  FAIL {} ({stats}):\n{v}", check.name);
                failed = true;
            }
            (None, true) => {
                println!(
                    "  FAIL {}: seeded bug not found in {} schedules — checker lost coverage",
                    check.name, report.schedules
                );
                failed = true;
            }
        }
    }
    i32::from(failed)
}

/// Streams every workload's block addresses through each single-function
/// indexer and checks the measured set-index distribution stays inside
/// the statically predicted image (e.g. pMod never touches the 9 sets at
/// or above its modulus) and matches the symbolic model access-by-access.
fn check_workload_distributions(refs: u64) -> Result<u64, String> {
    let geom = Geometry::new(2048);
    // 64-bit models: exact for arbitrary workload address ranges.
    let mut indexers: Vec<(String, primecache_analyze::IndexModel, Box<dyn SetIndexer>)> =
        HashKind::ALL
            .into_iter()
            .map(|kind| {
                (
                    kind.label().to_owned(),
                    model_of(kind, geom, 64),
                    kind.build(geom),
                )
            })
            .collect();
    indexers.push((
        "XOR-fold".to_owned(),
        xor_folded_model(geom, 64),
        Box::new(XorFolded::new(geom)),
    ));
    let mut cases = 0u64;
    for w in all() {
        let blocks: Vec<u64> = w
            .trace(refs)
            .iter()
            .filter_map(primecache_trace::Event::addr)
            .map(|a| a / 64)
            .collect();
        for (name, model, idx) in &indexers {
            let n_set = model.n_set();
            for &b in &blocks {
                let predicted = model.eval(b);
                let measured = idx.index(b);
                if predicted != measured {
                    return Err(format!(
                        "{}/{name}: model predicts set {predicted}, indexer \
                         maps block {b:#x} to {measured}",
                        w.name
                    ));
                }
                if measured >= n_set {
                    return Err(format!(
                        "{}/{name}: block {b:#x} landed on set {measured}, \
                         outside the static image [0, {n_set})",
                        w.name
                    ));
                }
                cases += 1;
            }
        }
    }
    Ok(cases)
}

/// `pcache metrics --app <name>`: the §2 metrics over a workload's block
/// stream under each hash function.
fn metrics_app(app: &str, args: &[String]) -> i32 {
    let Some(workload) = by_name(app) else {
        eprintln!("unknown workload '{app}' (try `pcache list`)");
        return 2;
    };
    let refs = match flag_parsed(args, "--refs", 100_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let geom = Geometry::new(2048);
    let blocks: Vec<u64> = workload
        .trace(refs)
        .iter()
        .filter_map(|e| e.addr())
        .map(|a| a / 64)
        .collect();
    let mut rows = Vec::new();
    for kind in HashKind::ALL {
        let idx = kind.build(geom);
        let mut m = OnlineMetrics::new(idx.n_set());
        for &b in &blocks {
            m.observe(&idx, b);
        }
        rows.push(vec![
            kind.label().to_owned(),
            format!("{:.3}", m.balance()),
            format!("{:.1}", m.concentration()),
            format!("{:.3}", m.uniformity()),
        ]);
    }
    println!(
        "{app}: {} block accesses through a 2048-set geometry:
",
        blocks.len()
    );
    print!(
        "{}",
        render_table(&["hash", "balance", "concentration", "stdev/mean"], &rows)
    );
    0
}

/// `pcache report <app> [--scheme S] [--refs N] [--out FILE] [--compact]
/// [--replay]`
///
/// Runs one simulation and emits the versioned `primecache.run-report`
/// JSON document: provenance (config fingerprint, git revision, wall and
/// simulated time), the execution breakdown, per-level cache and DRAM
/// totals, and — when built with the `obs` feature — the full named
/// metric dump. With `--replay`, the simulation consumes a recorded
/// trace instead of a live generator (bit-identical results); the
/// metric dump then includes the `trace_store.*` family and the replay
/// path's `stream.*` counters.
pub fn report(args: &[String]) -> i32 {
    let Some(name) = positional(args) else {
        eprintln!(
            "usage: pcache report <app> [--scheme S] [--refs N] [--out FILE] \
             [--compact] [--replay]"
        );
        return 2;
    };
    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}' (try `pcache list`)");
        return 2;
    };
    let scheme_label = flag_value(args, "--scheme").unwrap_or("pMod");
    let scheme = match parse_scheme(scheme_label) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let refs = match flag_parsed(args, "--refs", 200_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let replay = args.iter().any(|a| a == "--replay");
    #[cfg(feature = "obs")]
    let report = if replay {
        primecache_sim::observe::observed_report_replayed(
            workload,
            scheme,
            refs,
            primecache_obs::ObsConfig::default(),
        )
        .0
    } else {
        primecache_sim::observe::observed_report(
            workload,
            scheme,
            refs,
            primecache_obs::ObsConfig::default(),
        )
        .0
    };
    #[cfg(not(feature = "obs"))]
    let report = {
        if replay {
            eprintln!(
                "note: this pcache was built without the `obs` feature; --replay \
                 results are bit-identical to the live path, and the trace_store.* \
                 metrics need an obs build"
            );
        }
        primecache_sim::report_for_run(workload, scheme, refs)
    };
    let text = if args.iter().any(|a| a == "--compact") {
        let mut t = report.to_json().render();
        t.push('\n');
        t
    } else {
        report.to_json().render_pretty()
    };
    match flag_value(args, "--out") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &text) {
                eprintln!("cannot write {out}: {e}");
                return 1;
            }
            println!("wrote run report for {name}/{scheme} to {out}");
        }
        None => print!("{text}"),
    }
    0
}

/// `pcache trace-events <app> [--scheme S] [--refs N] [--sample N]
/// [--ring N] [--out FILE]` and `pcache trace-events --sweep [--refs N]
/// [--out FILE]`
///
/// Emits JSONL: one event object per line (`"ev"` discriminates
/// access/eviction/dram/task; schema in OBSERVABILITY.md). The per-run
/// form needs the `obs` build feature; the `--sweep` form (scheduling
/// records of the parallel sweep) works in every build.
pub fn trace_events(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--sweep") {
        return trace_events_sweep(args);
    }
    trace_events_run(args)
}

/// Writes `lines` of JSONL to `--out` or stdout.
fn emit_jsonl(args: &[String], events: &[primecache_obs::ObsEvent]) -> i32 {
    use primecache_obs::{EventSink, JsonlSink};
    let mut sink = match flag_value(args, "--out") {
        Some(out) => match std::fs::File::create(out) {
            Ok(f) => {
                JsonlSink::new(Box::new(std::io::BufWriter::new(f)) as Box<dyn std::io::Write>)
            }
            Err(e) => {
                eprintln!("cannot create {out}: {e}");
                return 1;
            }
        },
        None => JsonlSink::new(Box::new(std::io::stdout().lock()) as Box<dyn std::io::Write>),
    };
    for ev in events {
        sink.emit(ev);
    }
    let lines = sink.lines();
    if sink.finish().is_err() || lines != events.len() as u64 {
        eprintln!("short write: {lines} of {} events", events.len());
        return 1;
    }
    if let Some(out) = flag_value(args, "--out") {
        println!("wrote {lines} events to {out}");
    }
    0
}

#[cfg(feature = "obs")]
fn trace_events_run(args: &[String]) -> i32 {
    let Some(name) = positional(args) else {
        eprintln!(
            "usage: pcache trace-events <app> [--scheme S] [--refs N] \
             [--sample N] [--ring N] [--out FILE]"
        );
        return 2;
    };
    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}' (try `pcache list`)");
        return 2;
    };
    let scheme_label = flag_value(args, "--scheme").unwrap_or("pMod");
    let scheme = match parse_scheme(scheme_label) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let (refs, sample, ring) = match (
        flag_parsed(args, "--refs", 50_000u64),
        flag_parsed(args, "--sample", 1u64),
        flag_parsed(args, "--ring", 1usize << 20),
    ) {
        (Ok(r), Ok(s), Ok(g)) => (r, s, g),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let cfg = primecache_obs::ObsConfig {
        trace_events: true,
        sample_every: sample.max(1),
        ring_capacity: ring,
    };
    let (report, mut recorder) =
        primecache_sim::observe::observed_report(workload, scheme, refs, cfg);
    if report.events_dropped > 0 {
        eprintln!(
            "note: ring overflowed; {} oldest events dropped (raise --ring or --sample)",
            report.events_dropped
        );
    }
    let mut mem = primecache_obs::MemorySink::default();
    recorder.drain_events(&mut mem);
    emit_jsonl(args, &mem.events)
}

#[cfg(not(feature = "obs"))]
fn trace_events_run(_args: &[String]) -> i32 {
    eprintln!(
        "this pcache was built without the `obs` feature; per-access event \
         tracing is unavailable (rebuild with `--features obs`). \
         `pcache trace-events --sweep` works in every build."
    );
    2
}

/// `pcache trace-events --sweep [--refs N] [--out FILE]`: runs a small
/// parallel sweep and emits one `task` event per (workload, scheme)
/// cell, recording worker assignment and wall-clock placement.
fn trace_events_sweep(args: &[String]) -> i32 {
    use primecache_obs::{EventKind, ObsEvent};
    let refs = match flag_parsed(args, "--refs", 20_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let sweep = run_sweep(&[Scheme::Base, Scheme::PrimeModulo], refs);
    let events: Vec<ObsEvent> = sweep
        .tasks
        .iter()
        .map(|t| ObsEvent {
            t: t.start_us,
            kind: EventKind::Task {
                workload: t.workload.to_owned(),
                scheme: t.scheme.to_owned(),
                cost: t.cost,
                worker: t.worker,
                start_us: t.start_us,
                end_us: t.end_us,
            },
        })
        .collect();
    emit_jsonl(args, &events)
}

/// `pcache trace <app> --out FILE [--refs N] [--format pct1|pcte|text]`
///
/// `pct1` (default) is the flat binary dump, `pcte` the chunked
/// recorded-trace frame, `text` the line-oriented grammar of
/// TRACE_FORMAT.md. The `pcte` and `text` exports come from the same
/// recording, so `pcache import` of the text file reproduces the PCTE
/// file byte-for-byte (same fingerprint) — `ci/ingest_smoke.sh` pins it.
pub fn trace(args: &[String]) -> i32 {
    let Some(name) = positional(args) else {
        eprintln!("usage: pcache trace <app> --out FILE [--refs N] [--format pct1|pcte|text]");
        return 2;
    };
    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}'");
        return 2;
    };
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("--out FILE is required");
        return 2;
    };
    let refs = match flag_parsed(args, "--refs", 100_000u64) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let format = flag_value(args, "--format").unwrap_or("pct1");
    let (label, n_events, bytes) = match format {
        "pct1" => {
            let events = workload.trace(refs);
            let bytes = write_trace(&events);
            ("flat PCT1", events.len() as u64, bytes)
        }
        "pcte" => {
            let trace = workload.record(refs);
            ("PCTE frame", trace.events(), trace.to_bytes())
        }
        "text" => {
            let trace = workload.record(refs);
            let events = trace.decode_all().expect("a fresh recording decodes");
            let mut buf = Vec::new();
            write_text(events, &mut buf).expect("Vec<u8> writes cannot fail");
            ("text", trace.events(), buf)
        }
        other => {
            eprintln!("unknown --format '{other}' (pct1, pcte, or text)");
            return 2;
        }
    };
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    println!(
        "wrote {n_events} events ({} bytes, {label}) to {out}",
        bytes.len()
    );
    0
}

/// `pcache import FILE [--out FILE] [--run] [--scheme S]`
///
/// Validates an external trace (line-oriented text, a PCTE frame, or a
/// legacy flat PCT1 dump — sniffed by magic), converts it to the
/// recorded PCTE form, and prints provenance: source shape, event and
/// reference counts, address range, encoded size, and the frame
/// fingerprint. `--out` writes the conversion; `--run` simulates the
/// imported trace through the standard batched driver.
pub fn import(args: &[String]) -> i32 {
    let Some(path) = positional(args) else {
        eprintln!("usage: pcache import FILE [--out FILE] [--run] [--scheme S]");
        return 2;
    };
    let imported = match import_path(path) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("cannot import {path}: {e}");
            return 1;
        }
    };
    let st = &imported.stats;
    println!("{path}: valid {} source", st.format);
    if st.format == SourceFormat::Text {
        println!(
            "  lines: {} ({} blank or comment-only)",
            st.lines, st.silent_lines
        );
    }
    println!(
        "  events: {} ({} loads, {} stores, {} branches), {} refs, {} instructions",
        st.events,
        st.loads,
        st.stores,
        st.branches,
        st.refs(),
        st.instructions
    );
    match st.addr_range {
        Some((lo, hi)) => println!("  address range: {lo:#x}..={hi:#x}"),
        None => println!("  address range: (no memory events)"),
    }
    println!(
        "  converted: {} chunks, {:.2} bytes/event, fingerprint {:016x}",
        imported.trace.chunks().len(),
        imported.trace.bytes_per_event(),
        imported.trace.fingerprint()
    );
    if let Some(out) = flag_value(args, "--out") {
        let bytes = imported.trace.to_bytes();
        if let Err(e) = std::fs::write(out, &bytes) {
            eprintln!("cannot write {out}: {e}");
            return 1;
        }
        println!("  wrote PCTE frame ({} bytes) to {out}", bytes.len());
    }
    if args.iter().any(|a| a == "--run") {
        let scheme_label = flag_value(args, "--scheme").unwrap_or("pMod");
        let scheme = match parse_scheme(scheme_label) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        let machine = MachineConfig::paper_default();
        let r = run_chunks(imported.chunks(), scheme, &machine);
        print_run_summary(&r);
    }
    0
}

/// The `--run` tail of [`import`]: a compact, diff-stable simulation
/// summary (`ci/ingest_smoke.sh` compares these lines across the text
/// and binary imports of the same trace).
fn print_run_summary(r: &RunResult) {
    println!(
        "simulated under {}: {} cycles (busy {}, other {}, mem {})",
        r.scheme,
        r.breakdown.total(),
        r.breakdown.busy,
        r.breakdown.other_stall,
        r.breakdown.mem_stall
    );
    println!(
        "  L1: {} accesses, {} misses; L2: {} accesses, {} misses, {} writebacks",
        r.l1.accesses, r.l1.misses, r.l2.accesses, r.l2.misses, r.l2.writebacks
    );
    println!(
        "  DRAM: {} reads, {} writes, {:.1}% row hits",
        r.dram.reads,
        r.dram.writes,
        r.dram.row_hit_rate() * 100.0
    );
}

/// `pcache inspect FILE` — summarizes a flat PCT1 dump or a chunked
/// PCTE frame (recognized by magic).
pub fn inspect(args: &[String]) -> i32 {
    let Some(path) = positional(args) else {
        eprintln!("usage: pcache inspect FILE");
        return 2;
    };
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    if data.starts_with(FRAME_MAGIC) {
        let trace = match EncodedTrace::from_bytes_diagnose(&data) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot decode {path}: {e}");
                return 1;
            }
        };
        let events = trace.decode_all().expect("a validated frame decodes");
        let stats: TraceStats = events.iter().collect();
        println!(
            "{path}: PCTE frame, {} events, {} refs in {} chunks",
            trace.events(),
            trace.refs(),
            trace.chunks().len()
        );
        println!(
            "  encoded: {} bytes ({:.2} bytes/event), fingerprint {:016x}",
            data.len(),
            trace.bytes_per_event(),
            trace.fingerprint()
        );
        print_trace_stats(&stats);
        return 0;
    }
    let events = match read_trace(&data) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("cannot decode {path}: {e}");
            return 1;
        }
    };
    let stats: TraceStats = events.iter().collect();
    println!("{path}: {} events", events.len());
    print_trace_stats(&stats);
    0
}

/// The per-kind event breakdown shared by both [`inspect`] branches.
fn print_trace_stats(stats: &TraceStats) {
    println!("  instructions: {}", stats.instructions);
    println!(
        "  loads: {} ({} dependent), stores: {}",
        stats.loads, stats.dependent_loads, stats.stores
    );
    println!(
        "  branches: {} ({} mispredicted)",
        stats.branches, stats.mispredicts
    );
    println!(
        "  memory intensity: {:.1}%",
        stats.memory_intensity() * 100.0
    );
}

/// `pcache attack [--scheme S | --expr SRC] [--json] [--seed N]`: run the
/// black-box recovery engine and the three-tier eviction-set cost
/// measurement against one scheme (or all eight built-ins), and check
/// every recovered model against the static analyzer's — the
/// differential oracle. Exit code 1 when any scheme disagrees.
pub fn attack(args: &[String]) -> i32 {
    let seed = match flag_parsed(args, "--seed", 0x5EEDu64) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let schemes: Vec<Scheme> = if let Some(src) = flag_value(args, "--expr") {
        match parse_scheme(&format!("expr:{src}")) {
            Ok(s) => vec![s],
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    } else if let Some(label) = flag_value(args, "--scheme") {
        match parse_scheme(label) {
            Ok(s) => vec![s],
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    } else {
        Scheme::ALL.to_vec()
    };
    let machine = MachineConfig::paper_default();
    for &scheme in &schemes {
        let lints = machine.lint_scheme(scheme);
        if has_errors(&lints) {
            eprintln!(
                "refusing to attack degenerate {} configuration:",
                scheme.label()
            );
            for l in &lints {
                eprintln!("  {l}");
            }
            return 2;
        }
    }
    let entries: Vec<AttackEntry> = schemes
        .iter()
        .map(|&s| attack_scheme(&machine, s, seed))
        .collect();
    let all_agree = entries.iter().all(|e| e.agrees_static);
    if args.iter().any(|a| a == "--json") {
        println!("{}", attack_report_json(&entries));
        return i32::from(!all_agree);
    }
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            let recovered = match &e.recovery.verdict {
                primecache_attack::Verdict::Model(m) => {
                    primecache_analyze::canonicalize(m).to_string()
                }
                primecache_attack::Verdict::Opaque { .. } => "opaque (declared)".to_owned(),
            };
            let tier = |name: &str| {
                e.eviction.tier(name).map_or_else(
                    || "—".to_owned(),
                    |t| {
                        if t.success {
                            format!("{} refs", t.cost.refs)
                        } else if t.detail.starts_with("skipped") {
                            "skipped".to_owned()
                        } else if t.detail.starts_with("recovery declared") {
                            "no model".to_owned()
                        } else {
                            "resists".to_owned()
                        }
                    },
                )
            };
            vec![
                e.scheme.clone(),
                recovered,
                e.recovery.cost.probes.to_string(),
                e.recovery.cost.refs.to_string(),
                if e.agrees_static { "agree" } else { "MISMATCH" }.to_owned(),
                tier("naive-stride"),
                tier("random-pool"),
                tier("informed"),
            ]
        })
        .collect();
    println!(
        "black-box recovery + eviction-set cost over {PROBE_BITS} address bits \
         (informed tier includes recovery cost):\n"
    );
    print!(
        "{}",
        render_table(
            &[
                "scheme",
                "recovered model",
                "probes",
                "refs",
                "vs static",
                "naive evict",
                "pool evict",
                "informed evict"
            ],
            &rows
        )
    );
    println!();
    if all_agree {
        println!(
            "differential oracle: all {} scheme(s) agree with the static analyzer",
            entries.len()
        );
        0
    } else {
        println!("differential oracle: MISMATCH — recovered and static models differ");
        1
    }
}

/// One scheme's full attack campaign: recovery against the direct probe
/// shape, then eviction-set cost against the native organization.
fn attack_scheme(machine: &MachineConfig, scheme: Scheme, seed: u64) -> AttackEntry {
    let rcfg = RecoveryConfig {
        seed,
        ..RecoveryConfig::default()
    };
    let mut direct = SimOracle::direct(machine, scheme, PROBE_BITS);
    let recovery = primecache_attack::recover(&mut direct, &rcfg);
    let statik = static_model(machine, scheme, PROBE_BITS);
    let agrees_static = recovery.verdict.matches_static(statik.as_ref());
    let informed = match &recovery.verdict {
        primecache_attack::Verdict::Model(m) => Some(m.clone()),
        primecache_attack::Verdict::Opaque { .. } => None,
    };
    let mut native = SimOracle::native(machine, scheme, PROBE_BITS);
    let eviction = eviction_cost(
        &mut native,
        informed.as_ref(),
        recovery.cost,
        &EvictConfig {
            seed,
            ..EvictConfig::default()
        },
    );
    AttackEntry {
        scheme: scheme.label().to_owned(),
        recovery,
        agrees_static,
        static_canonical: statik.as_ref().map(primecache_analyze::canonicalize),
        eviction,
    }
}
