//! Library surface of the `pcache` CLI (exposed for testing; the binary
//! in `main.rs` is a thin dispatcher over [`commands`]).
//!
//! Each subcommand fronts one layer of the reproduction: `run` / `sweep`
//! drive the §5 evaluation (one cell or the full 23-application suite),
//! `classify` reprints the §4 uniform/non-uniform split, `metrics`
//! evaluates the §2 balance/concentration equations at a stride,
//! `analyze` runs the static GF(2)/residue certificates and config
//! lints, `bench` measures simulator throughput, and `report` /
//! `trace-events` emit the observability artifacts (versioned
//! [`RunReport`](primecache_obs::RunReport) JSON and JSONL event
//! traces — see `OBSERVABILITY.md`). Flag parsing is hand-rolled in
//! [`args`]; there are no external CLI dependencies.

pub mod args;
pub mod commands;
