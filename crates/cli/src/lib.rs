//! Library surface of the `pcache` CLI (exposed for testing; the binary
//! in `main.rs` is a thin dispatcher over [`commands`]).

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
