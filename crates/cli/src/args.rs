//! Tiny flag parser for the CLI (no external dependencies).

/// Extracts `--flag value` from an argument list; returns `None` when the
/// flag is absent.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Extracts a parsed `--flag value`, falling back to `default`.
///
/// # Errors
///
/// Returns an error string when the flag is present but unparsable.
pub fn flag_parsed<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for {flag}")),
    }
}

/// First positional (non-flag) argument.
pub fn positional(args: &[String]) -> Option<&str> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flag_extraction() {
        let args = v(&["tree", "--refs", "5000", "--scheme", "pMod"]);
        assert_eq!(flag_value(&args, "--refs"), Some("5000"));
        assert_eq!(flag_value(&args, "--scheme"), Some("pMod"));
        assert_eq!(flag_value(&args, "--none"), None);
    }

    #[test]
    fn parsed_with_default() {
        let args = v(&["--refs", "123"]);
        assert_eq!(flag_parsed(&args, "--refs", 7u64), Ok(123));
        assert_eq!(flag_parsed(&args, "--other", 7u64), Ok(7));
        assert!(flag_parsed(&v(&["--refs", "abc"]), "--refs", 0u64).is_err());
    }

    #[test]
    fn positional_skips_flags() {
        assert_eq!(positional(&v(&["--refs", "9", "tree"])), Some("tree"));
        assert_eq!(positional(&v(&["tree", "--refs", "9"])), Some("tree"));
        assert_eq!(positional(&v(&["--refs", "9"])), None);
    }
}
