//! `pcache` — command-line driver for the primecache simulators.
//!
//! ```text
//! pcache list                              list the 23 workload models
//! pcache run <app> [--scheme S] [--refs N] simulate one (workload, scheme)
//! pcache classify [--refs N]               §4 uniformity classification
//! pcache sweep [--refs N]                  all apps x main schemes
//! pcache metrics --stride S                balance/concentration at a stride
//! pcache bench [--scheme S] [--refs N]     simulator throughput (refs/sec)
//! pcache analyze [--json|--self-check]     static certificates + config lints
//! pcache attack [--scheme S] [--json]      black-box index recovery + eviction cost
//! pcache conc-check [--bound N]            model-check the concurrency protocols
//! pcache report <app> [--out FILE]         self-describing run report (JSON)
//! pcache trace-events <app>|--sweep        event trace (JSONL)
//! pcache trace <app> --out FILE [--refs N] dump a trace (pct1/pcte/text)
//! pcache import FILE [--run]               validate + convert an external trace
//! pcache sweep --tenants A,B [--refs N]    multi-tenant interference sweep
//! pcache inspect FILE                      summarize a binary trace
//! ```

use primecache_cli::commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("list") => commands::list(&argv[1..]),
        Some("run") => commands::run(&argv[1..]),
        Some("classify") => commands::classify(&argv[1..]),
        Some("sweep") => commands::sweep(&argv[1..]),
        Some("metrics") => commands::metrics(&argv[1..]),
        Some("taxonomy") => commands::taxonomy(&argv[1..]),
        Some("bench") => commands::bench(&argv[1..]),
        Some("analyze") => commands::analyze(&argv[1..]),
        Some("attack") => commands::attack(&argv[1..]),
        Some("conc-check") => commands::conc_check(&argv[1..]),
        Some("report") => commands::report(&argv[1..]),
        Some("trace-events") => commands::trace_events(&argv[1..]),
        Some("trace") => commands::trace(&argv[1..]),
        Some("import") => commands::import(&argv[1..]),
        Some("inspect") => commands::inspect(&argv[1..]),
        Some("help" | "--help" | "-h") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            eprint!("{}", commands::USAGE);
            2
        }
    };
    std::process::exit(code);
}
