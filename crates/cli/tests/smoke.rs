//! Smoke tests of the CLI subcommands (exit codes; output goes to stdout).

use primecache_cli::commands;

fn args(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn list_succeeds() {
    assert_eq!(commands::list(&args(&[])), 0);
    assert_eq!(commands::list(&args(&["--verbose"])), 0);
}

#[test]
fn run_validates_inputs() {
    assert_eq!(commands::run(&args(&[])), 2);
    assert_eq!(commands::run(&args(&["doom"])), 2);
    assert_eq!(commands::run(&args(&["tree", "--scheme", "wat"])), 2);
    assert_eq!(commands::run(&args(&["tree", "--refs", "nope"])), 2);
    assert_eq!(
        commands::run(&args(&["tree", "--scheme", "pMod", "--refs", "5000"])),
        0
    );
}

#[test]
fn metrics_validates_inputs() {
    assert_eq!(commands::metrics(&args(&["--stride", "0"])), 2);
    assert_eq!(
        commands::metrics(&args(&["--stride", "7", "--sets", "100"])),
        2
    );
    assert_eq!(commands::metrics(&args(&["--stride", "7"])), 0);
    assert_eq!(commands::metrics(&args(&["--app", "nothere"])), 2);
    assert_eq!(
        commands::metrics(&args(&["--app", "tree", "--refs", "3000"])),
        0
    );
}

#[test]
fn trace_and_inspect_roundtrip() {
    let dir = std::env::temp_dir().join("pcache_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.pct");
    let path_str = path.to_str().unwrap();
    assert_eq!(
        commands::trace(&args(&["swim", "--out", path_str, "--refs", "2000"])),
        0
    );
    assert_eq!(commands::inspect(&args(&[path_str])), 0);
    assert_eq!(commands::inspect(&args(&["/nonexistent/file"])), 1);
    std::fs::remove_file(path).ok();
}

#[test]
fn trace_requires_out_flag() {
    assert_eq!(commands::trace(&args(&["swim"])), 2);
    assert_eq!(commands::trace(&args(&[])), 2);
}

#[test]
fn classify_and_taxonomy_run() {
    assert_eq!(commands::classify(&args(&["--refs", "3000"])), 0);
    assert_eq!(commands::taxonomy(&args(&["--refs", "3000"])), 0);
}

#[test]
fn bench_measures_and_gates_on_a_baseline() {
    assert_eq!(commands::bench(&args(&["--scheme", "wat"])), 2);
    assert_eq!(commands::bench(&args(&["--refs", "nope"])), 2);
    assert_eq!(
        commands::bench(&args(&["--baseline", "/nonexistent/baseline.json"])),
        1
    );

    let dir = std::env::temp_dir().join("pcache_cli_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("thrpt.json");
    let out_str = out.to_str().unwrap();
    // Measure one scheme and write the JSON document.
    assert_eq!(
        commands::bench(&args(&[
            "--scheme", "pMod", "--refs", "2000", "--out", out_str
        ])),
        0
    );
    let json = std::fs::read_to_string(&out).unwrap();
    assert!(json.contains("\"scheme\": \"pMod\""), "{json}");

    // Gating against its own numbers (with a wide tolerance for timing
    // noise) passes; against an impossible baseline it fails.
    assert_eq!(
        commands::bench(&args(&[
            "--scheme",
            "pMod",
            "--refs",
            "2000",
            "--baseline",
            out_str,
            "--max-regress",
            "95"
        ])),
        0
    );
    let impossible = dir.join("impossible.json");
    std::fs::write(
        &impossible,
        "{\"schemes\": [{\"scheme\": \"pMod\", \"refs_per_sec\": 1e18}]}",
    )
    .unwrap();
    assert_eq!(
        commands::bench(&args(&[
            "--scheme",
            "pMod",
            "--refs",
            "2000",
            "--baseline",
            impossible.to_str().unwrap()
        ])),
        1
    );
    std::fs::remove_file(out).ok();
    std::fs::remove_file(impossible).ok();
}
