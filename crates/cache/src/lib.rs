//! Cache simulator substrate: the set-associative, skewed-associative, and
//! fully-associative caches the paper evaluates its hash functions on.
//!
//! The evaluation machine (Table 3) uses a 16 KB 2-way L1 and a 512 KB
//! 4-way L2, both write-back. This crate models those structures at the
//! block level with pluggable index functions from [`primecache_core`]:
//!
//! * [`Cache`] — a set-associative cache over any
//!   [`SetIndexer`](primecache_core::index::SetIndexer), with the
//!   replacement policies of [`replacement`],
//! * [`SkewedCache`] — Seznec's four-bank skewed-associative design with
//!   per-bank index functions and ENRU/NRUNRW replacement (§5.3),
//! * [`FullyAssociative`] — the `FA` reference of Figs. 11/12,
//! * [`Hierarchy`] — a two-level L1/L2 hierarchy returning which level
//!   serviced each access (drives the timing model),
//! * [`Tlb`] — a TLB that also caches the partial prime-modulo computation
//!   (§3.1.1),
//! * [`CacheStats`] — hit/miss/writeback counters plus per-set access and
//!   miss histograms (for the §4 uniformity classification and Fig. 13).
//!
//! # Examples
//!
//! ```
//! use primecache_cache::{Cache, CacheConfig, CacheSim};
//! use primecache_core::index::HashKind;
//!
//! let mut l2 = Cache::new(
//!     CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo),
//! );
//! // 128 KB-strided blocks conflict badly under traditional indexing but
//! // spread under prime modulo.
//! for _round in 0..4 {
//!     for i in 0..8u64 {
//!         l2.access(i * 128 * 1024, false);
//!     }
//! }
//! assert!(l2.stats().hits > 0);
//! ```

mod config;
mod fully_assoc;
mod hierarchy;
mod infinite;
pub mod paging;
pub mod replacement;
mod set_assoc;
mod skewed;
mod stats;
mod tlb;
mod victim;

pub use config::{CacheConfig, ReplacementKind, SkewHashKind, SkewReplacement, SkewedConfig};
pub use fully_assoc::FullyAssociative;
pub use hierarchy::{AccessOutcome, DynL2, Hierarchy, HierarchyConfig, L2Organization, L2Sim};
pub use infinite::InfiniteCache;
pub use set_assoc::Cache;
pub use skewed::{bank_disp_factor, SkewedCache};
pub use stats::CacheStats;
pub use tlb::{Tlb, TlbStats};
pub use victim::VictimCache;

/// Sentinel "no precomputed set index" value for the hinted access
/// paths ([`Cache::access_indexed_hinted`], [`Hierarchy::access_hinted`]).
///
/// Batched drivers precompute L2 set indexes a chunk at a time and pass
/// them down as `u32` hints; `NO_HINT` makes the cache compute the index
/// itself. Cache constructors reject configurations with `>= NO_HINT`
/// sets, so every real set index fits.
pub const NO_HINT: u32 = u32::MAX;

/// Common behaviour shared by every cache organization in this crate.
///
/// `access` simulates one demand access and returns `true` on a hit.
pub trait CacheSim {
    /// Simulates an access to byte address `addr`; `write` marks stores.
    /// Returns `true` on a hit.
    fn access(&mut self, addr: u64, write: bool) -> bool;

    /// Statistics accumulated so far.
    fn stats(&self) -> &CacheStats;

    /// Resets all statistics (contents are kept — useful for warmup).
    fn reset_stats(&mut self);
}
