//! Two-level cache hierarchy (L1 + L2).
//!
//! The hierarchy is generic over its L2 simulator ([`L2Sim`]) and its L1
//! index function, so the monomorphized scheme drivers in
//! `primecache-sim` can instantiate it with concrete cache types (no
//! per-reference virtual dispatch). [`Hierarchy::new`] keeps the
//! dynamic [`DynL2`] form for callers that pick the organization at
//! runtime; both forms are bit-identical.

use serde::{Deserialize, Serialize};

#[cfg(feature = "obs")]
use primecache_obs::{Level, ObsHandle};

use primecache_core::index::SetIndexer;

use crate::{
    Cache, CacheConfig, CacheSim, CacheStats, FullyAssociative, SkewedCache, SkewedConfig, NO_HINT,
};

/// Which component serviced a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// Hit in the L1 data cache.
    L1Hit,
    /// Missed L1, hit L2.
    L2Hit,
    /// Missed both levels; serviced by main memory.
    Memory,
}

/// The L2 organizations the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum L2Organization {
    /// A set-associative L2 (Base / 8-way / XOR / pMod / pDisp).
    SetAssoc(CacheConfig),
    /// A skewed-associative L2 (SKW / skw+pDisp).
    Skewed(SkewedConfig),
    /// The fully-associative reference (FA in Figs. 11/12).
    FullyAssociative {
        /// Capacity in bytes.
        size_bytes: u64,
        /// Line size in bytes.
        line_bytes: u64,
    },
}

/// Configuration of the two-level hierarchy.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheConfig, HierarchyConfig, L2Organization};
/// use primecache_core::index::HashKind;
///
/// let cfg = HierarchyConfig::paper_default(
///     L2Organization::SetAssoc(
///         CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo),
///     ),
/// );
/// assert_eq!(cfg.l1.n_set_phys(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache configuration (always traditional indexing — the
    /// paper only rehashes the L2).
    pub l1: CacheConfig,
    /// L2 organization.
    pub l2: L2Organization,
    /// Sequential next-line prefetch depth into the L2 on every L2 demand
    /// miss (0 = off, the paper's machine). Prefetched lines install
    /// immediately — an idealized timely prefetcher, used by the
    /// `ablation_prefetch` study.
    pub prefetch_depth: u32,
}

impl HierarchyConfig {
    /// The paper's Table-3 L1 (16 KB, 2-way, 32-B lines) over the given L2.
    #[must_use]
    pub fn paper_default(l2: L2Organization) -> Self {
        Self {
            l1: CacheConfig::new(16 * 1024, 2, 32),
            l2,
            prefetch_depth: 0,
        }
    }

    /// Enables idealized next-line prefetching of `depth` lines.
    #[must_use]
    pub fn with_prefetch_depth(mut self, depth: u32) -> Self {
        self.prefetch_depth = depth;
        self
    }
}

/// The L2 interface the hierarchy drives. Implemented by the three cache
/// organizations and by [`DynL2`]; the hierarchy is generic over it so a
/// concrete L2 type monomorphizes the whole access path.
pub trait L2Sim {
    /// A demand access (always a read at the L2: write misses
    /// write-allocate through the L1 fill). `hint` is the L2 set index
    /// precomputed by a batched driver, or [`NO_HINT`]; organizations
    /// without a single per-access set (skewed, FA) ignore it. Returns
    /// `(stats_set, hit)`.
    fn demand_access(&mut self, addr: u64, hint: u32) -> (usize, bool);

    /// A non-demand access: L1 writeback writes and prefetch fills.
    fn plain_access(&mut self, addr: u64, write: bool) -> bool;

    /// Raw statistics (demand + writeback traffic).
    fn stats(&self) -> &CacheStats;

    /// Resets statistics (contents survive).
    fn reset_stats(&mut self);

    /// Drains dirty-victim block addresses accumulated since the last call.
    fn take_writebacks(&mut self) -> Vec<u64>;

    /// Point-in-time occupancy snapshot (valid lines per set).
    fn occupancy(&self) -> Vec<u64>;

    /// Attaches an eviction recorder tagged with `level`.
    #[cfg(feature = "obs")]
    fn attach_obs(&mut self, level: Level, handle: ObsHandle);
}

impl<I: SetIndexer> L2Sim for Cache<I> {
    fn demand_access(&mut self, addr: u64, hint: u32) -> (usize, bool) {
        self.access_indexed_hinted(addr, false, hint)
    }

    fn plain_access(&mut self, addr: u64, write: bool) -> bool {
        self.access(addr, write)
    }

    fn stats(&self) -> &CacheStats {
        CacheSim::stats(self)
    }

    fn reset_stats(&mut self) {
        CacheSim::reset_stats(self);
    }

    fn take_writebacks(&mut self) -> Vec<u64> {
        Cache::take_writebacks(self)
    }

    fn occupancy(&self) -> Vec<u64> {
        Cache::occupancy(self)
    }

    #[cfg(feature = "obs")]
    fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        Cache::attach_obs(self, level, handle);
    }
}

impl<B: SetIndexer> L2Sim for SkewedCache<B> {
    fn demand_access(&mut self, addr: u64, _hint: u32) -> (usize, bool) {
        self.access_indexed(addr, false)
    }

    fn plain_access(&mut self, addr: u64, write: bool) -> bool {
        self.access(addr, write)
    }

    fn stats(&self) -> &CacheStats {
        CacheSim::stats(self)
    }

    fn reset_stats(&mut self) {
        CacheSim::reset_stats(self);
    }

    fn take_writebacks(&mut self) -> Vec<u64> {
        SkewedCache::take_writebacks(self)
    }

    fn occupancy(&self) -> Vec<u64> {
        SkewedCache::occupancy(self)
    }

    #[cfg(feature = "obs")]
    fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        SkewedCache::attach_obs(self, level, handle);
    }
}

impl L2Sim for FullyAssociative {
    fn demand_access(&mut self, addr: u64, _hint: u32) -> (usize, bool) {
        (0, self.access(addr, false))
    }

    fn plain_access(&mut self, addr: u64, write: bool) -> bool {
        self.access(addr, write)
    }

    fn stats(&self) -> &CacheStats {
        CacheSim::stats(self)
    }

    fn reset_stats(&mut self) {
        CacheSim::reset_stats(self);
    }

    fn take_writebacks(&mut self) -> Vec<u64> {
        FullyAssociative::take_writebacks(self)
    }

    fn occupancy(&self) -> Vec<u64> {
        FullyAssociative::occupancy(self)
    }

    #[cfg(feature = "obs")]
    fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        FullyAssociative::attach_obs(self, level, handle);
    }
}

/// Runtime-selected L2 — one of the three organizations, dispatched per
/// access. The default L2 type of [`Hierarchy`]; the monomorphized
/// drivers use concrete types instead.
#[derive(Debug)]
pub enum DynL2 {
    /// A set-associative L2 (boxed index function).
    Set(Cache),
    /// A skewed-associative L2 (boxed per-bank index functions).
    Skewed(SkewedCache),
    /// The fully-associative reference.
    Fa(FullyAssociative),
}

impl DynL2 {
    /// Builds the L2 an organization describes.
    #[must_use]
    pub fn build(l2: L2Organization) -> Self {
        match l2 {
            L2Organization::SetAssoc(cfg) => DynL2::Set(Cache::new(cfg)),
            L2Organization::Skewed(cfg) => DynL2::Skewed(SkewedCache::new(cfg)),
            L2Organization::FullyAssociative {
                size_bytes,
                line_bytes,
            } => DynL2::Fa(FullyAssociative::new(size_bytes, line_bytes)),
        }
    }
}

impl L2Sim for DynL2 {
    fn demand_access(&mut self, addr: u64, hint: u32) -> (usize, bool) {
        match self {
            DynL2::Set(c) => c.demand_access(addr, hint),
            DynL2::Skewed(c) => c.demand_access(addr, hint),
            DynL2::Fa(c) => c.demand_access(addr, hint),
        }
    }

    fn plain_access(&mut self, addr: u64, write: bool) -> bool {
        match self {
            DynL2::Set(c) => c.access(addr, write),
            DynL2::Skewed(c) => c.access(addr, write),
            DynL2::Fa(c) => c.access(addr, write),
        }
    }

    fn stats(&self) -> &CacheStats {
        match self {
            DynL2::Set(c) => CacheSim::stats(c),
            DynL2::Skewed(c) => CacheSim::stats(c),
            DynL2::Fa(c) => CacheSim::stats(c),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            DynL2::Set(c) => CacheSim::reset_stats(c),
            DynL2::Skewed(c) => CacheSim::reset_stats(c),
            DynL2::Fa(c) => CacheSim::reset_stats(c),
        }
    }

    fn take_writebacks(&mut self) -> Vec<u64> {
        match self {
            DynL2::Set(c) => c.take_writebacks(),
            DynL2::Skewed(c) => c.take_writebacks(),
            DynL2::Fa(c) => c.take_writebacks(),
        }
    }

    fn occupancy(&self) -> Vec<u64> {
        match self {
            DynL2::Set(c) => c.occupancy(),
            DynL2::Skewed(c) => c.occupancy(),
            DynL2::Fa(c) => c.occupancy(),
        }
    }

    #[cfg(feature = "obs")]
    fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        match self {
            DynL2::Set(c) => c.attach_obs(level, handle),
            DynL2::Skewed(c) => c.attach_obs(level, handle),
            DynL2::Fa(c) => c.attach_obs(level, handle),
        }
    }
}

/// A two-level write-back hierarchy: the paper's 16 KB L1 in front of a
/// configurable 512 KB L2.
///
/// Semantics:
/// * demand accesses probe L1 first; L1 misses probe L2; L2 misses go to
///   memory (the returned [`AccessOutcome`] drives the timing model);
/// * both levels are write-allocate write-back;
/// * dirty L1 victims are written into L2 (counted in L2's `writes`, not
///   as demand traffic for the figures — see [`Hierarchy::l2_stats`]);
/// * dirty L2 victims become memory write traffic
///   ([`Hierarchy::take_memory_writes`]).
///
/// # Examples
///
/// ```
/// use primecache_cache::{AccessOutcome, CacheConfig, Hierarchy, HierarchyConfig,
///                        L2Organization};
///
/// let mut h = Hierarchy::new(HierarchyConfig::paper_default(
///     L2Organization::SetAssoc(CacheConfig::new(512 * 1024, 4, 64)),
/// ));
/// assert_eq!(h.access(0x1000, false), AccessOutcome::Memory);
/// assert_eq!(h.access(0x1000, false), AccessOutcome::L1Hit);
/// ```
#[derive(Debug)]
pub struct Hierarchy<X = DynL2, J = Box<dyn SetIndexer>>
where
    X: L2Sim,
    J: SetIndexer,
{
    config: HierarchyConfig,
    l1: Cache<J>,
    l2: X,
    /// Demand stats of the L2 only (excludes L1 writeback traffic), used
    /// by the figures.
    l2_demand: CacheStats,
    /// Block addresses of dirty L2 victims (memory write traffic).
    memory_writes: Vec<u64>,
    /// Lines prefetched into the L2 so far.
    prefetches: u64,
    /// Demand-access recorder (evictions are reported by the caches
    /// themselves through their own attached handles).
    #[cfg(feature = "obs")]
    obs: Option<ObsHandle>,
}

impl Hierarchy {
    /// Builds the runtime-dispatched hierarchy from its configuration.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        Self::with_parts(config, Cache::new(config.l1), DynL2::build(config.l2))
    }
}

impl<X: L2Sim, J: SetIndexer> Hierarchy<X, J> {
    /// Assembles a hierarchy from pre-built caches. `l1` and `l2` must
    /// match `config` (the monomorphized drivers build all three from
    /// the same [`HierarchyConfig`]).
    #[must_use]
    pub fn with_parts(config: HierarchyConfig, l1: Cache<J>, l2: X) -> Self {
        let n_demand_sets = l2.stats().set_accesses.len();
        Self {
            l1,
            l2,
            l2_demand: CacheStats::new(n_demand_sets),
            memory_writes: Vec::new(),
            prefetches: 0,
            #[cfg(feature = "obs")]
            obs: None,
            config,
        }
    }

    /// Attaches one observability recorder to the whole hierarchy: the
    /// hierarchy reports demand accesses (L1, and L2 demand traffic —
    /// the counts the paper's figures use), and each level reports its
    /// own evictions.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, handle: ObsHandle) {
        self.l1.attach_obs(Level::L1, handle.clone());
        self.l2.attach_obs(Level::L2, handle.clone());
        self.obs = Some(handle);
    }

    /// Point-in-time L2 occupancy snapshot: valid lines per set
    /// (bank-major for a skewed L2, a single entry for FA). Not on the
    /// access path — intended for end-of-run occupancy histograms.
    #[must_use]
    pub fn l2_occupancy(&self) -> Vec<u64> {
        self.l2.occupancy()
    }

    /// The hierarchy's configuration.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Simulates one demand access.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.access_hinted(addr, write, NO_HINT)
    }

    /// Simulates one demand access with a precomputed L2 set-index hint
    /// (the batched drivers compute hints a chunk at a time;
    /// [`NO_HINT`] falls back to the scalar path). Bit-identical to
    /// [`Hierarchy::access`].
    pub fn access_hinted(&mut self, addr: u64, write: bool, hint: u32) -> AccessOutcome {
        let (l1_set, l1_hit) = self.l1.access_indexed(addr, write);
        let _ = l1_set;
        #[cfg(feature = "obs")]
        if let Some(h) = &self.obs {
            h.borrow_mut()
                .cache_access(Level::L1, l1_set as u32, l1_hit, write);
        }
        if l1_hit {
            self.drain_l1_writebacks();
            return AccessOutcome::L1Hit;
        }
        // L1 miss: demand access to L2. The fill into L1 happened inside
        // `Cache::access`; forward its dirty victims below.
        let (l2_set, l2_hit) = self.l2.demand_access(addr, hint);
        self.l2_demand.record(l2_set, !l2_hit, write);
        #[cfg(feature = "obs")]
        if let Some(h) = &self.obs {
            h.borrow_mut()
                .cache_access(Level::L2, l2_set as u32, l2_hit, write);
        }
        if !l2_hit && self.config.prefetch_depth > 0 {
            // Idealized next-line prefetch: install the following lines.
            let line = match self.config.l2 {
                L2Organization::SetAssoc(c) => c.line_bytes(),
                L2Organization::Skewed(c) => c.line_bytes(),
                L2Organization::FullyAssociative { line_bytes, .. } => line_bytes,
            };
            for i in 1..=u64::from(self.config.prefetch_depth) {
                self.l2.plain_access(addr + i * line, false);
                self.prefetches += 1;
            }
        }
        self.drain_l1_writebacks();
        self.drain_l2_writebacks();
        if l2_hit {
            AccessOutcome::L2Hit
        } else {
            AccessOutcome::Memory
        }
    }

    /// Lines prefetched into the L2 so far.
    #[must_use]
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    fn drain_l1_writebacks(&mut self) {
        let line = self.config.l1.line_bytes();
        for block in self.l1.take_writebacks() {
            // Write the victim into L2 (write-allocate on miss).
            self.l2.plain_access(block * line, true);
        }
        self.drain_l2_writebacks();
    }

    fn drain_l2_writebacks(&mut self) {
        let blocks = self.l2.take_writebacks();
        self.memory_writes.extend(blocks);
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> &CacheStats {
        CacheSim::stats(&self.l1)
    }

    /// L2 statistics including L1 writeback traffic (the raw cache view).
    #[must_use]
    pub fn l2_raw_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// L2 *demand* statistics: only L1 misses, the traffic the paper's
    /// figures count.
    #[must_use]
    pub fn l2_stats(&self) -> &CacheStats {
        &self.l2_demand
    }

    /// Drains the block addresses of dirty L2 victims sent to memory
    /// since the last call (DRAM write traffic).
    pub fn take_memory_writes(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.memory_writes)
    }

    /// Resets all statistics (contents survive — use after warmup).
    pub fn reset_stats(&mut self) {
        CacheSim::reset_stats(&mut self.l1);
        self.l2.reset_stats();
        self.l2_demand.reset();
        self.memory_writes.clear();
        self.prefetches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SkewHashKind;
    use primecache_core::index::{Geometry, HashKind, PrimeModulo, Traditional};

    fn paper(l2: L2Organization) -> Hierarchy {
        Hierarchy::new(HierarchyConfig::paper_default(l2))
    }

    fn base_l2() -> L2Organization {
        L2Organization::SetAssoc(CacheConfig::new(512 * 1024, 4, 64))
    }

    #[test]
    fn outcome_ladder() {
        let mut h = paper(base_l2());
        assert_eq!(h.access(0, false), AccessOutcome::Memory);
        assert_eq!(h.access(0, false), AccessOutcome::L1Hit);
        // A different L1 set, same L2 line? 32-B L1 lines vs 64-B L2 lines:
        // addr 32 misses L1 (new L1 line) but hits L2 (same 64-B block).
        assert_eq!(h.access(32, false), AccessOutcome::L2Hit);
    }

    #[test]
    fn l2_demand_counts_only_l1_misses() {
        let mut h = paper(base_l2());
        for _ in 0..100 {
            h.access(0x4000, false);
        }
        assert_eq!(h.l2_stats().accesses, 1, "99 L1 hits must not reach L2");
        assert_eq!(h.l1_stats().accesses, 100);
    }

    #[test]
    fn skewed_l2_works_in_hierarchy() {
        let mut h = paper(L2Organization::Skewed(SkewedConfig::new(
            512 * 1024,
            4,
            64,
            SkewHashKind::PrimeDisplacement,
        )));
        assert_eq!(h.access(0x8000, false), AccessOutcome::Memory);
        assert_eq!(h.access(0x8000, false), AccessOutcome::L1Hit);
    }

    #[test]
    fn fa_l2_works_in_hierarchy() {
        let mut h = paper(L2Organization::FullyAssociative {
            size_bytes: 512 * 1024,
            line_bytes: 64,
        });
        assert_eq!(h.access(0xC000, false), AccessOutcome::Memory);
        assert_eq!(h.access(0xC000 + 32, false), AccessOutcome::L2Hit);
    }

    #[test]
    fn pmod_l2_reduces_misses_on_conflicting_strides() {
        let run = |hash| {
            let mut h = paper(L2Organization::SetAssoc(
                CacheConfig::new(512 * 1024, 4, 64).with_hash(hash),
            ));
            for _ in 0..20 {
                for i in 0..16u64 {
                    h.access(i * 128 * 1024, false);
                }
            }
            h.l2_stats().misses
        };
        let base = run(HashKind::Traditional);
        let pmod = run(HashKind::PrimeModulo);
        assert!(
            pmod * 4 < base,
            "pMod misses {pmod} should be far below Base {base}"
        );
    }

    #[test]
    fn dirty_l1_victims_reach_l2_as_writes() {
        let mut h = paper(base_l2());
        // Write many distinct L1-conflicting lines so L1 evicts dirty data.
        for i in 0..1000u64 {
            h.access(i * 16 * 1024, true); // L1 is 16 KB: same L1 set region
        }
        assert!(h.l2_raw_stats().writes > 0, "L1 writebacks must reach L2");
    }

    #[test]
    fn prefetch_installs_following_lines() {
        let mut cfg = HierarchyConfig::paper_default(base_l2());
        cfg = cfg.with_prefetch_depth(2);
        let mut h = Hierarchy::new(cfg);
        assert_eq!(h.access(0x10000, false), AccessOutcome::Memory);
        assert_eq!(h.prefetches(), 2);
        // The next two lines are already in L2: L1 misses become L2 hits.
        assert_eq!(h.access(0x10000 + 64, false), AccessOutcome::L2Hit);
        assert_eq!(h.access(0x10000 + 128, false), AccessOutcome::L2Hit);
        // The line after that was not prefetched (depth 2).
        assert_eq!(h.access(0x10000 + 256, false), AccessOutcome::Memory);
    }

    #[test]
    fn prefetch_depth_zero_is_inert() {
        let mut h = paper(base_l2());
        h.access(0x20000, false);
        assert_eq!(h.prefetches(), 0);
        assert_eq!(h.access(0x20000 + 64, false), AccessOutcome::Memory);
    }

    #[test]
    fn reset_stats_clears_all_levels() {
        let mut h = paper(base_l2());
        h.access(0, true);
        h.reset_stats();
        assert_eq!(h.l1_stats().accesses, 0);
        assert_eq!(h.l2_stats().accesses, 0);
        assert_eq!(h.l2_raw_stats().accesses, 0);
    }

    #[test]
    fn monomorphized_hierarchy_matches_dyn_bit_for_bit() {
        let l2_cfg = CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo);
        let config = HierarchyConfig::paper_default(L2Organization::SetAssoc(l2_cfg));
        let mut dynamic = Hierarchy::new(config);
        let mut mono = Hierarchy::with_parts(
            config,
            Cache::with_typed(
                config.l1,
                Traditional::new(Geometry::new(config.l1.n_set_phys())),
            ),
            Cache::with_typed(l2_cfg, PrimeModulo::new(Geometry::new(l2_cfg.n_set_phys()))),
        );
        for i in 0..30_000u64 {
            let addr = (i * 7919) % (1 << 24);
            let write = i % 3 == 0;
            assert_eq!(dynamic.access(addr, write), mono.access(addr, write), "{i}");
            assert_eq!(
                dynamic.take_memory_writes(),
                mono.take_memory_writes(),
                "memory-write divergence at access {i}"
            );
        }
        assert_eq!(dynamic.l1_stats(), mono.l1_stats());
        assert_eq!(dynamic.l2_stats(), mono.l2_stats());
        assert_eq!(dynamic.l2_raw_stats(), mono.l2_raw_stats());
    }

    #[test]
    fn hinted_access_matches_unhinted() {
        let l2_cfg = CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo);
        let config = HierarchyConfig::paper_default(L2Organization::SetAssoc(l2_cfg));
        let indexer = PrimeModulo::new(Geometry::new(l2_cfg.n_set_phys()));
        let mut plain = Hierarchy::new(config);
        let mut hinted = Hierarchy::new(config);
        let l2_shift = l2_cfg.line_bytes().trailing_zeros();
        for i in 0..30_000u64 {
            let addr = (i * 6151) % (1 << 24);
            let write = i % 5 == 0;
            #[allow(clippy::cast_possible_truncation)]
            let hint = indexer.index(addr >> l2_shift) as u32;
            assert_eq!(
                plain.access(addr, write),
                hinted.access_hinted(addr, write, hint),
                "{i}"
            );
        }
        assert_eq!(plain.l2_stats(), hinted.l2_stats());
    }
}
