//! TLB model with cached partial prime-modulo computation (§3.1.1).

use primecache_core::hw::TlbAssist;

use serde::{Deserialize, Serialize};

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// TLB hits.
    pub hits: u64,
    /// TLB misses (entry filled, page-modulo recomputed).
    pub misses: u64,
    /// Prime-modulo computations performed on fills (== `misses`; kept
    /// separate to make the §3.1.1 claim auditable).
    pub modulo_computations: u64,
}

/// A fully-associative LRU TLB that stores, alongside each translation,
/// the precomputed prime modulo of the page's first block address.
///
/// §3.1.1: "On a TLB miss, the prime modulo of the missed page index is
/// computed and stored in the new TLB entry. This computation is not in
/// the critical path … On an L1 miss, the pre-computed modulo of the page
/// index is added with the page offset bits", a sub-cycle add + select.
///
/// # Examples
///
/// ```
/// use primecache_cache::Tlb;
///
/// let mut tlb = Tlb::new(64, 4096, 2048, 64);
/// let idx = tlb.l2_index(0x0012_3456);
/// assert_eq!(idx, (0x0012_3456u64 >> 6) % 2039);
/// assert_eq!(tlb.stats().misses, 1);
/// let _ = tlb.l2_index(0x0012_3ABC); // same page: TLB hit
/// assert_eq!(tlb.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct Tlb {
    entries: usize,
    page_size: u64,
    assist: TlbAssist,
    /// (page_index, precomputed modulo, last-use stamp)
    slots: Vec<(u64, u64, u64)>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots for `page_size` pages, serving
    /// an L2 with `n_set_phys` physical sets and `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` or the sizes are not powers of two.
    #[must_use]
    pub fn new(entries: usize, page_size: u64, n_set_phys: u64, line_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        Self {
            entries,
            page_size,
            assist: TlbAssist::new(n_set_phys, page_size, line_bytes),
            slots: Vec::with_capacity(entries),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates `addr` and returns the L2 set index computed via the
    /// TLB-cached partial modulo.
    pub fn l2_index(&mut self, addr: u64) -> u64 {
        self.clock += 1;
        self.stats.accesses += 1;
        let page = addr / self.page_size;
        let offset = addr % self.page_size;
        let entry = if let Some(slot) = self.slots.iter_mut().find(|s| s.0 == page) {
            slot.2 = self.clock;
            self.stats.hits += 1;
            slot.1
        } else {
            self.stats.misses += 1;
            self.stats.modulo_computations += 1;
            let value = self.assist.page_entry(page);
            if self.slots.len() == self.entries {
                // Evict LRU.
                let lru = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.2)
                    .map(|(i, _)| i)
                    .expect("TLB non-empty");
                self.slots.swap_remove(lru);
            }
            self.slots.push((page, value, self.clock));
            value
        };
        self.assist.index(entry, offset)
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_direct_modulo() {
        let mut tlb = Tlb::new(16, 4096, 2048, 64);
        for addr in (0..1u64 << 24).step_by(4099) {
            assert_eq!(tlb.l2_index(addr), (addr / 64) % 2039, "addr {addr:#x}");
        }
    }

    #[test]
    fn hits_within_a_page() {
        let mut tlb = Tlb::new(4, 4096, 2048, 64);
        for off in (0..4096u64).step_by(64) {
            let _ = tlb.l2_index(0x7000 + off);
        }
        assert_eq!(tlb.stats().misses, 1);
        assert_eq!(tlb.stats().hits, 63);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut tlb = Tlb::new(2, 4096, 2048, 64);
        let _ = tlb.l2_index(0); // page 0
        let _ = tlb.l2_index(4096); // page 1
        let _ = tlb.l2_index(0); // touch page 0
        let _ = tlb.l2_index(2 * 4096); // evicts page 1
        let _ = tlb.l2_index(0); // still resident: hit
        assert_eq!(tlb.stats().misses, 3);
        let _ = tlb.l2_index(4096); // page 1 was evicted: miss
        assert_eq!(tlb.stats().misses, 4);
    }

    #[test]
    fn one_modulo_computation_per_fill() {
        let mut tlb = Tlb::new(8, 4096, 2048, 64);
        for p in 0..100u64 {
            let _ = tlb.l2_index(p * 4096);
        }
        assert_eq!(tlb.stats().modulo_computations, tlb.stats().misses);
    }
}
