//! The set-associative cache.

use primecache_core::index::{Geometry, SetIndexer};

#[cfg(feature = "obs")]
use primecache_obs::{Level, ObsHandle};

use crate::replacement::Replacer;
use crate::{CacheConfig, CacheSim, CacheStats};

/// One cache line: the stored block address acts as the tag.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    block: u64,
    valid: bool,
    dirty: bool,
}

/// A write-back set-associative cache with a pluggable index function.
///
/// Lines are identified by their full block address, so any
/// [`SetIndexer`] — including prime modulo, whose set count is not a power
/// of two — can be used without tag-width bookkeeping.
///
/// # Examples
///
/// ```
/// use primecache_cache::{Cache, CacheConfig, CacheSim};
/// use primecache_core::index::HashKind;
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64).with_hash(HashKind::Xor));
/// assert!(!c.access(0x1000, false)); // cold miss
/// assert!(c.access(0x1000, false)); // hit
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    indexer: Box<dyn SetIndexer>,
    assoc: usize,
    line_shift: u32,
    /// `n_set * assoc` lines, set-major.
    lines: Vec<Line>,
    replacers: Vec<Replacer>,
    stats: CacheStats,
    /// Block addresses written back (observable by an L2 below).
    pending_writebacks: Vec<u64>,
    /// Eviction recorder, tagged with the level this cache plays.
    #[cfg(feature = "obs")]
    obs: Option<(Level, ObsHandle)>,
}

impl Cache {
    /// Builds a cache from its configuration.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let indexer = config.hash().build(Geometry::new(config.n_set_phys()));
        Self::with_indexer(config, indexer)
    }

    /// Builds a cache with an explicit index function (e.g. a
    /// [`PrimeDisplacement`](primecache_core::index::PrimeDisplacement)
    /// with a non-default factor).
    ///
    /// # Panics
    ///
    /// Panics if the indexer maps into more sets than the configuration
    /// provides.
    #[must_use]
    pub fn with_indexer(config: CacheConfig, indexer: Box<dyn SetIndexer>) -> Self {
        assert!(
            indexer.n_set() <= config.n_set_phys(),
            "indexer needs {} sets but the cache has {}",
            indexer.n_set(),
            config.n_set_phys()
        );
        let n_set = indexer.n_set() as usize;
        let assoc = config.assoc() as usize;
        Self {
            indexer,
            assoc,
            line_shift: config.line_bytes().trailing_zeros(),
            lines: vec![Line::default(); n_set * assoc],
            replacers: vec![Replacer::new(config.replacement(), config.assoc()); n_set],
            stats: CacheStats::new(n_set),
            pending_writebacks: Vec::new(),
            #[cfg(feature = "obs")]
            obs: None,
            config,
        }
    }

    /// Attaches an observability recorder; every eviction is reported to
    /// it tagged with `level`. Demand-access recording stays with the
    /// caller (the [`Hierarchy`](crate::Hierarchy)) so writeback traffic
    /// is not double-counted as demand.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        self.obs = Some((level, handle));
    }

    /// Point-in-time occupancy snapshot: valid lines per set. Not on the
    /// access path — intended for end-of-run occupancy histograms.
    #[must_use]
    pub fn occupancy(&self) -> Vec<u64> {
        self.lines
            .chunks(self.assoc)
            .map(|set| set.iter().filter(|l| l.valid).count() as u64)
            .collect()
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The number of sets actually indexed (2039 for a prime-modulo 2048).
    #[must_use]
    pub fn n_set(&self) -> u64 {
        self.indexer.n_set()
    }

    /// The index function's display name.
    #[must_use]
    pub fn hash_name(&self) -> &'static str {
        self.indexer.name()
    }

    /// Drains the block addresses of lines written back since the last
    /// call (the traffic an L2 below would observe).
    pub fn take_writebacks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// Converts a byte address to a block address.
    #[inline]
    fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Probes for `block`; returns its way on a hit.
    fn probe(&self, set: usize, block: u64) -> Option<usize> {
        let base = set * self.assoc;
        self.lines[base..base + self.assoc]
            .iter()
            .position(|l| l.valid && l.block == block)
    }

    /// Simulates an access to a *block address* (no offset bits).
    ///
    /// Returns `true` on a hit. Lower-level code that already works in
    /// block units (e.g. writeback traffic) uses this directly.
    pub fn access_block(&mut self, block: u64, write: bool) -> bool {
        let set = self.indexer.index(block) as usize;
        self.access_block_in_set(set, block, write)
    }

    /// Simulates an access, returning `(set, hit)` with the set index
    /// computed once — callers that attribute per-set stats avoid a
    /// second evaluation of the index function.
    pub fn access_indexed(&mut self, addr: u64, write: bool) -> (usize, bool) {
        let block = self.block_of(addr);
        let set = self.indexer.index(block) as usize;
        (set, self.access_block_in_set(set, block, write))
    }

    /// The access hot path, with `set` already computed from `block`.
    ///
    /// One fused scan over the ways finds both the hit way and the
    /// fill-victim candidate (first invalid way), so a miss does not
    /// rescan the set.
    fn access_block_in_set(&mut self, set: usize, block: u64, write: bool) -> bool {
        debug_assert_eq!(set as u64, self.indexer.index(block));
        let base = set * self.assoc;
        let mut hit_way = None;
        let mut invalid_way = None;
        for (i, l) in self.lines[base..base + self.assoc].iter().enumerate() {
            if l.valid {
                if l.block == block {
                    hit_way = Some(i);
                    break;
                }
            } else if invalid_way.is_none() {
                invalid_way = Some(i);
            }
        }
        if let Some(way) = hit_way {
            self.stats.record(set, false, write);
            if write {
                self.lines[base + way].dirty = true;
                self.replacers[set].write_touch(way as u32);
            } else {
                self.replacers[set].touch(way as u32);
            }
            #[cfg(any(debug_assertions, feature = "check"))]
            self.debug_check(set);
            return true;
        }
        self.stats.record(set, true, write);
        // Choose a victim: first invalid way, else the policy's pick.
        let way = invalid_way.unwrap_or_else(|| self.replacers[set].victim() as usize);
        let victim = &mut self.lines[base + way];
        #[cfg(feature = "obs")]
        let evicted_dirty = victim.valid.then_some(victim.dirty);
        if victim.valid && victim.dirty {
            self.stats.record_writeback();
            self.pending_writebacks.push(victim.block);
        }
        *victim = Line {
            block,
            valid: true,
            dirty: write,
        };
        self.replacers[set].fill(way as u32);
        #[cfg(feature = "obs")]
        if let (Some((level, h)), Some(dirty)) = (&self.obs, evicted_dirty) {
            h.borrow_mut().eviction(*level, set as u32, dirty);
        }
        #[cfg(any(debug_assertions, feature = "check"))]
        self.debug_check(set);
        false
    }

    /// Checks one set's structural invariants: occupancy within the
    /// associativity, no block resident in two ways, and every valid
    /// line indexed to the set it sits in.
    fn check_set(&self, set: usize) -> Result<(), String> {
        let base = set * self.assoc;
        let ways = &self.lines[base..base + self.assoc];
        let occupancy = ways.iter().filter(|l| l.valid).count();
        if occupancy > self.assoc {
            return Err(format!(
                "set {set}: occupancy {occupancy} exceeds {} ways",
                self.assoc
            ));
        }
        for (i, l) in ways.iter().enumerate() {
            if !l.valid {
                continue;
            }
            let home = self.indexer.index(l.block) as usize;
            if home != set {
                return Err(format!(
                    "set {set} way {i}: block {:#x} belongs in set {home}",
                    l.block
                ));
            }
            if ways[i + 1..].iter().any(|o| o.valid && o.block == l.block) {
                return Err(format!(
                    "set {set}: block {:#x} resident in two ways",
                    l.block
                ));
            }
        }
        Ok(())
    }

    /// Checks every runtime invariant of the cache: stat integrity
    /// ([`CacheStats::validate`]), evictions bounded by fills
    /// (`writebacks <= misses`), and the per-set structure of
    /// every set.
    ///
    /// Debug builds (and release builds with the `check` feature) run the
    /// accessed set's checks after every access.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.stats.validate()?;
        if self.stats.writebacks > self.stats.misses {
            return Err(format!(
                "writebacks ({}) exceed misses ({}): more evictions than fills",
                self.stats.writebacks, self.stats.misses
            ));
        }
        for set in 0..self.lines.len() / self.assoc {
            self.check_set(set)?;
        }
        Ok(())
    }

    /// Per-access invariant hook: cheap O(1) stat checks plus the
    /// accessed set's structural checks.
    #[cfg(any(debug_assertions, feature = "check"))]
    fn debug_check(&self, set: usize) {
        assert!(
            self.stats.hits + self.stats.misses == self.stats.accesses
                && self.stats.writebacks <= self.stats.misses,
            "stat integrity violated: {:?}",
            (
                self.stats.hits,
                self.stats.misses,
                self.stats.accesses,
                self.stats.writebacks
            )
        );
        if let Err(e) = self.check_set(set) {
            panic!("set invariant violated: {e}");
        }
    }

    /// The set index `addr` maps to (for stats attribution by callers).
    #[must_use]
    pub fn set_of(&self, addr: u64) -> usize {
        self.indexer.index(self.block_of(addr)) as usize
    }

    /// Returns `true` if `addr`'s block is currently resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let set = self.indexer.index(block) as usize;
        self.probe(set, block).is_some()
    }
}

impl CacheSim for Cache {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let block = self.block_of(addr);
        self.access_block(block, write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::index::HashKind;

    fn tiny(hash: HashKind) -> Cache {
        // 4 sets x 2 ways x 64-B lines = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64).with_hash(hash))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(HashKind::Traditional);
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false)); // same line
        assert!(!c.access(64, false)); // next line
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny(HashKind::Traditional);
        // Set 0 holds blocks 0 and 4 (4 sets); a third conflicting block
        // evicts the least recent.
        c.access(0, false); // block 0, set 0
        c.access(256, false); // block 4, set 0
        c.access(0, false); // touch block 0
        c.access(512, false); // evicts block 4
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, true); // dirty
        c.access(256, false);
        c.access(512, false); // evicts block 0 (dirty)
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.take_writebacks(), vec![0]);
        assert!(c.take_writebacks().is_empty());
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        c.access(256, false);
        c.access(512, false);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn prime_modulo_cache_uses_2039_like_sets() {
        let c = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo));
        assert_eq!(c.n_set(), 2039);
        assert_eq!(c.hash_name(), "pMod");
    }

    #[test]
    fn conflict_pathology_fixed_by_pmod() {
        // 128 KB stride on the paper's L2: under Base all blocks share a
        // set (misses forever); under pMod they spread and hit.
        let run = |hash| {
            let mut c = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(hash));
            for _ in 0..10 {
                for i in 0..16u64 {
                    c.access(i * 128 * 1024, false);
                }
            }
            c.stats().miss_rate()
        };
        let base = run(HashKind::Traditional);
        let pmod = run(HashKind::PrimeModulo);
        assert!(base > 0.9, "base miss rate {base}");
        assert!(pmod < 0.2, "pmod miss rate {pmod}");
    }

    #[test]
    fn stats_see_every_access() {
        let mut c = tiny(HashKind::Xor);
        for a in 0..100u64 {
            c.access(a * 64, a % 2 == 0);
        }
        assert_eq!(c.stats().accesses, 100);
        assert_eq!(c.stats().writes, 50);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0, false), "contents must survive a stats reset");
    }

    #[test]
    fn validate_accepts_a_long_run() {
        let mut c = tiny(HashKind::PrimeDisplacement);
        for i in 0..2_000u64 {
            c.access((i * 7919) % (1 << 16), i % 3 == 0);
        }
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_fires_on_seeded_duplicate_block() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        // Corrupt: the same block resident in both ways of set 0.
        c.lines[1] = Line {
            block: 0,
            valid: true,
            dirty: false,
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("two ways"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_misplaced_block() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        // Corrupt: block 1 (home set 1) parked in set 0's second way.
        c.lines[1] = Line {
            block: 1,
            valid: true,
            dirty: false,
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("belongs in set 1"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_eviction_excess() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, true);
        // Corrupt: a writeback with no eviction to justify it.
        c.stats.record_writeback();
        c.stats.record_writeback();
        let err = c.validate().unwrap_err();
        assert!(err.contains("more evictions than fills"), "{err}");
    }

    #[cfg(any(debug_assertions, feature = "check"))]
    #[test]
    #[should_panic(expected = "set invariant violated")]
    fn per_access_check_fires_on_seeded_corruption() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        c.lines[1] = Line {
            block: 0,
            valid: true,
            dirty: false,
        };
        // A hit on the corrupted set trips the per-access checker (a miss
        // might evict the duplicate before the check runs).
        c.access(0, false);
    }

    #[test]
    #[should_panic(expected = "indexer needs")]
    fn oversized_indexer_rejected() {
        use primecache_core::index::{Geometry, Traditional};
        let cfg = CacheConfig::new(512, 2, 64); // 4 sets
        let too_big = Box::new(Traditional::new(Geometry::new(8)));
        let _ = Cache::with_indexer(cfg, too_big);
    }
}
