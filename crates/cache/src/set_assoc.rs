//! The set-associative cache.

use primecache_core::index::{Geometry, SetIndexer};

use crate::replacement::Replacer;
use crate::{CacheConfig, CacheSim, CacheStats};

/// One cache line: the stored block address acts as the tag.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    block: u64,
    valid: bool,
    dirty: bool,
}

/// A write-back set-associative cache with a pluggable index function.
///
/// Lines are identified by their full block address, so any
/// [`SetIndexer`] — including prime modulo, whose set count is not a power
/// of two — can be used without tag-width bookkeeping.
///
/// # Examples
///
/// ```
/// use primecache_cache::{Cache, CacheConfig, CacheSim};
/// use primecache_core::index::HashKind;
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64).with_hash(HashKind::Xor));
/// assert!(!c.access(0x1000, false)); // cold miss
/// assert!(c.access(0x1000, false)); // hit
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    indexer: Box<dyn SetIndexer>,
    assoc: usize,
    line_shift: u32,
    /// `n_set * assoc` lines, set-major.
    lines: Vec<Line>,
    replacers: Vec<Replacer>,
    stats: CacheStats,
    /// Block addresses written back (observable by an L2 below).
    pending_writebacks: Vec<u64>,
}

impl Cache {
    /// Builds a cache from its configuration.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let indexer = config.hash().build(Geometry::new(config.n_set_phys()));
        Self::with_indexer(config, indexer)
    }

    /// Builds a cache with an explicit index function (e.g. a
    /// [`PrimeDisplacement`](primecache_core::index::PrimeDisplacement)
    /// with a non-default factor).
    ///
    /// # Panics
    ///
    /// Panics if the indexer maps into more sets than the configuration
    /// provides.
    #[must_use]
    pub fn with_indexer(config: CacheConfig, indexer: Box<dyn SetIndexer>) -> Self {
        assert!(
            indexer.n_set() <= config.n_set_phys(),
            "indexer needs {} sets but the cache has {}",
            indexer.n_set(),
            config.n_set_phys()
        );
        let n_set = indexer.n_set() as usize;
        let assoc = config.assoc() as usize;
        Self {
            indexer,
            assoc,
            line_shift: config.line_bytes().trailing_zeros(),
            lines: vec![Line::default(); n_set * assoc],
            replacers: vec![
                Replacer::new(config.replacement(), config.assoc());
                n_set
            ],
            stats: CacheStats::new(n_set),
            pending_writebacks: Vec::new(),
            config,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The number of sets actually indexed (2039 for a prime-modulo 2048).
    #[must_use]
    pub fn n_set(&self) -> u64 {
        self.indexer.n_set()
    }

    /// The index function's display name.
    #[must_use]
    pub fn hash_name(&self) -> &'static str {
        self.indexer.name()
    }

    /// Drains the block addresses of lines written back since the last
    /// call (the traffic an L2 below would observe).
    pub fn take_writebacks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// Converts a byte address to a block address.
    #[inline]
    fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Probes for `block`; returns its way on a hit.
    fn probe(&self, set: usize, block: u64) -> Option<usize> {
        let base = set * self.assoc;
        self.lines[base..base + self.assoc]
            .iter()
            .position(|l| l.valid && l.block == block)
    }

    /// Simulates an access to a *block address* (no offset bits).
    ///
    /// Returns `true` on a hit. Lower-level code that already works in
    /// block units (e.g. writeback traffic) uses this directly.
    pub fn access_block(&mut self, block: u64, write: bool) -> bool {
        let set = self.indexer.index(block) as usize;
        let base = set * self.assoc;
        if let Some(way) = self.probe(set, block) {
            self.stats.record(set, false, write);
            if write {
                self.lines[base + way].dirty = true;
                self.replacers[set].write_touch(way as u32);
            } else {
                self.replacers[set].touch(way as u32);
            }
            return true;
        }
        self.stats.record(set, true, write);
        // Choose a victim: first invalid way, else the policy's pick.
        let way = self.lines[base..base + self.assoc]
            .iter()
            .position(|l| !l.valid)
            .unwrap_or_else(|| self.replacers[set].victim() as usize);
        let victim = &mut self.lines[base + way];
        if victim.valid && victim.dirty {
            self.stats.record_writeback();
            self.pending_writebacks.push(victim.block);
        }
        *victim = Line {
            block,
            valid: true,
            dirty: write,
        };
        self.replacers[set].fill(way as u32);
        false
    }

    /// The set index `addr` maps to (for stats attribution by callers).
    #[must_use]
    pub fn set_of(&self, addr: u64) -> usize {
        self.indexer.index(self.block_of(addr)) as usize
    }

    /// Returns `true` if `addr`'s block is currently resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let set = self.indexer.index(block) as usize;
        self.probe(set, block).is_some()
    }
}

impl CacheSim for Cache {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let block = self.block_of(addr);
        self.access_block(block, write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::index::HashKind;

    fn tiny(hash: HashKind) -> Cache {
        // 4 sets x 2 ways x 64-B lines = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64).with_hash(hash))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(HashKind::Traditional);
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false)); // same line
        assert!(!c.access(64, false)); // next line
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny(HashKind::Traditional);
        // Set 0 holds blocks 0 and 4 (4 sets); a third conflicting block
        // evicts the least recent.
        c.access(0 * 256, false); // block 0, set 0
        c.access(1 * 256, false); // block 4, set 0
        c.access(0 * 256, false); // touch block 0
        c.access(2 * 256, false); // evicts block 4
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, true); // dirty
        c.access(256, false);
        c.access(512, false); // evicts block 0 (dirty)
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.take_writebacks(), vec![0]);
        assert!(c.take_writebacks().is_empty());
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        c.access(256, false);
        c.access(512, false);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn prime_modulo_cache_uses_2039_like_sets() {
        let c = Cache::new(
            CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo),
        );
        assert_eq!(c.n_set(), 2039);
        assert_eq!(c.hash_name(), "pMod");
    }

    #[test]
    fn conflict_pathology_fixed_by_pmod() {
        // 128 KB stride on the paper's L2: under Base all blocks share a
        // set (misses forever); under pMod they spread and hit.
        let run = |hash| {
            let mut c =
                Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(hash));
            for _ in 0..10 {
                for i in 0..16u64 {
                    c.access(i * 128 * 1024, false);
                }
            }
            c.stats().miss_rate()
        };
        let base = run(HashKind::Traditional);
        let pmod = run(HashKind::PrimeModulo);
        assert!(base > 0.9, "base miss rate {base}");
        assert!(pmod < 0.2, "pmod miss rate {pmod}");
    }

    #[test]
    fn stats_see_every_access() {
        let mut c = tiny(HashKind::Xor);
        for a in 0..100u64 {
            c.access(a * 64, a % 2 == 0);
        }
        assert_eq!(c.stats().accesses, 100);
        assert_eq!(c.stats().writes, 50);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0, false), "contents must survive a stats reset");
    }

    #[test]
    #[should_panic(expected = "indexer needs")]
    fn oversized_indexer_rejected() {
        use primecache_core::index::{Geometry, Traditional};
        let cfg = CacheConfig::new(512, 2, 64); // 4 sets
        let too_big = Box::new(Traditional::new(Geometry::new(8)));
        let _ = Cache::with_indexer(cfg, too_big);
    }
}
