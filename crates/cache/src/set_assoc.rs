//! The set-associative cache.
//!
//! Storage is structure-of-arrays: tags in one flat `Vec<u64>`, packed
//! valid/dirty bits in a parallel `Vec<u8>`, replacement ages in a flat
//! bank ([`ReplBank`]). The probe loop touches two small contiguous
//! slices per access instead of an array of line structs, and the cache
//! is generic over its [`SetIndexer`] so the monomorphized drivers in
//! `primecache-sim` inline the index function into the probe.

use primecache_core::index::{Geometry, SetIndexer};

#[cfg(feature = "obs")]
use primecache_obs::{Level, ObsHandle};

use crate::replacement::ReplBank;
use crate::{CacheConfig, CacheSim, CacheStats, NO_HINT};

/// Flag bit: the way holds a valid line.
const VALID: u8 = 1;
/// Flag bit: the line is dirty (write-back pending on eviction).
const DIRTY: u8 = 2;

/// A write-back set-associative cache with a pluggable index function.
///
/// Lines are identified by their full block address, so any
/// [`SetIndexer`] — including prime modulo, whose set count is not a power
/// of two — can be used without tag-width bookkeeping.
///
/// The type parameter is the index function. The default, `Box<dyn
/// SetIndexer>`, keeps the historical dynamically-dispatched shape
/// (`Cache::new` / [`Cache::with_indexer`]); performance-critical
/// drivers instantiate `Cache<Traditional>` etc. via
/// [`Cache::with_typed`] so the indexer inlines into the probe loop.
///
/// # Examples
///
/// ```
/// use primecache_cache::{Cache, CacheConfig, CacheSim};
/// use primecache_core::index::HashKind;
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64).with_hash(HashKind::Xor));
/// assert!(!c.access(0x1000, false)); // cold miss
/// assert!(c.access(0x1000, false)); // hit
/// ```
#[derive(Debug)]
pub struct Cache<I: SetIndexer = Box<dyn SetIndexer>> {
    config: CacheConfig,
    indexer: I,
    assoc: usize,
    line_shift: u32,
    /// `n_set * assoc` block-address tags, set-major.
    tags: Vec<u64>,
    /// Packed [`VALID`]/[`DIRTY`] bits, parallel to `tags`.
    flags: Vec<u8>,
    /// Replacement ages, flat across sets (see [`ReplBank`]).
    repl: ReplBank,
    stats: CacheStats,
    /// Block addresses written back (observable by an L2 below).
    pending_writebacks: Vec<u64>,
    /// Eviction recorder, tagged with the level this cache plays.
    #[cfg(feature = "obs")]
    obs: Option<(Level, ObsHandle)>,
}

impl Cache {
    /// Builds a cache from its configuration (boxed index function).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let indexer = config.hash().build(Geometry::new(config.n_set_phys()));
        Self::with_indexer(config, indexer)
    }

    /// Builds a cache with an explicit boxed index function (e.g. a
    /// [`PrimeDisplacement`](primecache_core::index::PrimeDisplacement)
    /// with a non-default factor).
    ///
    /// # Panics
    ///
    /// Panics if the indexer maps into more sets than the configuration
    /// provides.
    #[must_use]
    pub fn with_indexer(config: CacheConfig, indexer: Box<dyn SetIndexer>) -> Self {
        Self::with_typed(config, indexer)
    }
}

impl<I: SetIndexer> Cache<I> {
    /// Builds a cache over a concrete index function, monomorphizing the
    /// probe loop over it.
    ///
    /// # Panics
    ///
    /// Panics if the indexer maps into more sets than the configuration
    /// provides, or if the set count cannot be addressed in 32 bits
    /// (the set-index width the hot path and the batched hint protocol
    /// use — a >4G-set configuration must fail here, loudly, instead of
    /// aliasing sets through a silent narrowing).
    #[must_use]
    pub fn with_typed(config: CacheConfig, indexer: I) -> Self {
        assert!(
            indexer.n_set() <= config.n_set_phys(),
            "indexer needs {} sets but the cache has {}",
            indexer.n_set(),
            config.n_set_phys()
        );
        assert!(
            indexer.n_set() < u64::from(NO_HINT),
            "{} sets cannot be addressed in 32 bits (max {})",
            indexer.n_set(),
            NO_HINT - 1
        );
        // The 32-bit guard above makes this conversion infallible on
        // every supported target; `try_from` keeps it checked anyway.
        let n_set = usize::try_from(indexer.n_set()).expect("set count fits usize");
        let assoc = config.assoc() as usize;
        let total_lines = n_set
            .checked_mul(assoc)
            .expect("n_set * assoc overflows usize");
        Self {
            indexer,
            assoc,
            line_shift: config.line_bytes().trailing_zeros(),
            tags: vec![0; total_lines],
            flags: vec![0; total_lines],
            repl: ReplBank::new(config.replacement(), n_set, config.assoc()),
            stats: CacheStats::new(n_set),
            pending_writebacks: Vec::new(),
            #[cfg(feature = "obs")]
            obs: None,
            config,
        }
    }

    /// Attaches an observability recorder; every eviction is reported to
    /// it tagged with `level`. Demand-access recording stays with the
    /// caller (the [`Hierarchy`](crate::Hierarchy)) so writeback traffic
    /// is not double-counted as demand.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        self.obs = Some((level, handle));
    }

    /// Point-in-time occupancy snapshot: valid lines per set. Not on the
    /// access path — intended for end-of-run occupancy histograms.
    #[must_use]
    pub fn occupancy(&self) -> Vec<u64> {
        self.flags
            .chunks(self.assoc)
            .map(|set| set.iter().filter(|&&f| f & VALID != 0).count() as u64)
            .collect()
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The number of sets actually indexed (2039 for a prime-modulo 2048).
    #[must_use]
    pub fn n_set(&self) -> u64 {
        self.indexer.n_set()
    }

    /// The index function's display name.
    #[must_use]
    pub fn hash_name(&self) -> &'static str {
        self.indexer.name()
    }

    /// Drains the block addresses of lines written back since the last
    /// call (the traffic an L2 below would observe).
    pub fn take_writebacks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// Converts a byte address to a block address.
    #[inline]
    fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Narrows an indexer-produced set index to `usize`.
    ///
    /// [`Cache::with_typed`] guarantees `n_set < 2^32`, so the cast is
    /// lossless on every supported target; the debug assert keeps that
    /// guarantee honest against a misbehaving indexer.
    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn narrow_set(&self, set: u64) -> usize {
        debug_assert!(set < self.indexer.n_set(), "indexer set {set} out of range");
        set as usize
    }

    /// Probes for `block`; returns its way on a hit.
    fn probe(&self, set: usize, block: u64) -> Option<usize> {
        let base = set * self.assoc;
        (0..self.assoc).find(|&i| self.flags[base + i] & VALID != 0 && self.tags[base + i] == block)
    }

    /// Simulates an access to a *block address* (no offset bits).
    ///
    /// Returns `true` on a hit. Lower-level code that already works in
    /// block units (e.g. writeback traffic) uses this directly.
    pub fn access_block(&mut self, block: u64, write: bool) -> bool {
        let set = self.narrow_set(self.indexer.index(block));
        self.access_block_in_set(set, block, write)
    }

    /// Simulates an access, returning `(set, hit)` with the set index
    /// computed once — callers that attribute per-set stats avoid a
    /// second evaluation of the index function.
    pub fn access_indexed(&mut self, addr: u64, write: bool) -> (usize, bool) {
        let block = self.block_of(addr);
        let set = self.narrow_set(self.indexer.index(block));
        (set, self.access_block_in_set(set, block, write))
    }

    /// [`Cache::access_indexed`] with a set index precomputed by a
    /// batched front-end ([`NO_HINT`] falls back to computing it here).
    ///
    /// The hint must equal `indexer.index(block)` — it is a cache of the
    /// pure index function, not an override — which debug builds assert.
    pub fn access_indexed_hinted(&mut self, addr: u64, write: bool, hint: u32) -> (usize, bool) {
        if hint == NO_HINT {
            return self.access_indexed(addr, write);
        }
        let block = self.block_of(addr);
        debug_assert_eq!(
            u64::from(hint),
            self.indexer.index(block),
            "stale set-index hint for block {block:#x}"
        );
        let set = hint as usize;
        (set, self.access_block_in_set(set, block, write))
    }

    /// The access hot path, with `set` already computed from `block`.
    ///
    /// One fused scan over the ways finds both the hit way and the
    /// fill-victim candidate (first invalid way), so a miss does not
    /// rescan the set.
    fn access_block_in_set(&mut self, set: usize, block: u64, write: bool) -> bool {
        debug_assert_eq!(set as u64, self.indexer.index(block));
        let base = set * self.assoc;
        let mut hit_way = None;
        let mut invalid_way = None;
        for i in 0..self.assoc {
            if self.flags[base + i] & VALID != 0 {
                if self.tags[base + i] == block {
                    hit_way = Some(i);
                    break;
                }
            } else if invalid_way.is_none() {
                invalid_way = Some(i);
            }
        }
        if let Some(way) = hit_way {
            self.stats.record(set, false, write);
            if write {
                self.flags[base + way] |= DIRTY;
                self.repl.write_touch(set, way);
            } else {
                self.repl.touch(set, way);
            }
            #[cfg(any(debug_assertions, feature = "check"))]
            self.debug_check(set);
            return true;
        }
        self.stats.record(set, true, write);
        // Choose a victim: first invalid way, else the policy's pick.
        let way = invalid_way.unwrap_or_else(|| self.repl.victim(set));
        let slot = base + way;
        let victim_valid = self.flags[slot] & VALID != 0;
        #[cfg(feature = "obs")]
        let evicted_dirty = victim_valid.then_some(self.flags[slot] & DIRTY != 0);
        if victim_valid && self.flags[slot] & DIRTY != 0 {
            self.stats.record_writeback();
            self.pending_writebacks.push(self.tags[slot]);
        }
        self.tags[slot] = block;
        self.flags[slot] = if write { VALID | DIRTY } else { VALID };
        self.repl.fill(set, way);
        #[cfg(feature = "obs")]
        if let (Some((level, h)), Some(dirty)) = (&self.obs, evicted_dirty) {
            h.borrow_mut().eviction(*level, set as u32, dirty);
        }
        #[cfg(any(debug_assertions, feature = "check"))]
        self.debug_check(set);
        false
    }

    /// Checks one set's structural invariants: occupancy within the
    /// associativity, no block resident in two ways, and every valid
    /// line indexed to the set it sits in.
    fn check_set(&self, set: usize) -> Result<(), String> {
        let base = set * self.assoc;
        let occupancy = (0..self.assoc)
            .filter(|&i| self.flags[base + i] & VALID != 0)
            .count();
        if occupancy > self.assoc {
            return Err(format!(
                "set {set}: occupancy {occupancy} exceeds {} ways",
                self.assoc
            ));
        }
        for i in 0..self.assoc {
            if self.flags[base + i] & VALID == 0 {
                continue;
            }
            let block = self.tags[base + i];
            let home = self.narrow_set(self.indexer.index(block));
            if home != set {
                return Err(format!(
                    "set {set} way {i}: block {block:#x} belongs in set {home}"
                ));
            }
            if (i + 1..self.assoc)
                .any(|j| self.flags[base + j] & VALID != 0 && self.tags[base + j] == block)
            {
                return Err(format!("set {set}: block {block:#x} resident in two ways"));
            }
        }
        Ok(())
    }

    /// Checks every runtime invariant of the cache: stat integrity
    /// ([`CacheStats::validate`]), evictions bounded by fills
    /// (`writebacks <= misses`), and the per-set structure of
    /// every set.
    ///
    /// Debug builds (and release builds with the `check` feature) run the
    /// accessed set's checks after every access.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.stats.validate()?;
        if self.stats.writebacks > self.stats.misses {
            return Err(format!(
                "writebacks ({}) exceed misses ({}): more evictions than fills",
                self.stats.writebacks, self.stats.misses
            ));
        }
        for set in 0..self.tags.len() / self.assoc {
            self.check_set(set)?;
        }
        Ok(())
    }

    /// Per-access invariant hook: cheap O(1) stat checks plus the
    /// accessed set's structural checks.
    #[cfg(any(debug_assertions, feature = "check"))]
    fn debug_check(&self, set: usize) {
        assert!(
            self.stats.hits + self.stats.misses == self.stats.accesses
                && self.stats.writebacks <= self.stats.misses,
            "stat integrity violated: {:?}",
            (
                self.stats.hits,
                self.stats.misses,
                self.stats.accesses,
                self.stats.writebacks
            )
        );
        if let Err(e) = self.check_set(set) {
            panic!("set invariant violated: {e}");
        }
    }

    /// The set index `addr` maps to (for stats attribution by callers).
    #[must_use]
    pub fn set_of(&self, addr: u64) -> usize {
        self.narrow_set(self.indexer.index(self.block_of(addr)))
    }

    /// Returns `true` if `addr`'s block is currently resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let set = self.narrow_set(self.indexer.index(block));
        self.probe(set, block).is_some()
    }
}

impl<I: SetIndexer> CacheSim for Cache<I> {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let block = self.block_of(addr);
        self.access_block(block, write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::index::HashKind;

    fn tiny(hash: HashKind) -> Cache {
        // 4 sets x 2 ways x 64-B lines = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64).with_hash(hash))
    }

    /// Plants a (possibly corrupt) line directly in the SoA arrays.
    fn seed_line(c: &mut Cache, slot: usize, block: u64, dirty: bool) {
        c.tags[slot] = block;
        c.flags[slot] = if dirty { VALID | DIRTY } else { VALID };
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(HashKind::Traditional);
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false)); // same line
        assert!(!c.access(64, false)); // next line
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny(HashKind::Traditional);
        // Set 0 holds blocks 0 and 4 (4 sets); a third conflicting block
        // evicts the least recent.
        c.access(0, false); // block 0, set 0
        c.access(256, false); // block 4, set 0
        c.access(0, false); // touch block 0
        c.access(512, false); // evicts block 4
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, true); // dirty
        c.access(256, false);
        c.access(512, false); // evicts block 0 (dirty)
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.take_writebacks(), vec![0]);
        assert!(c.take_writebacks().is_empty());
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        c.access(256, false);
        c.access(512, false);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn prime_modulo_cache_uses_2039_like_sets() {
        let c = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo));
        assert_eq!(c.n_set(), 2039);
        assert_eq!(c.hash_name(), "pMod");
    }

    #[test]
    fn conflict_pathology_fixed_by_pmod() {
        // 128 KB stride on the paper's L2: under Base all blocks share a
        // set (misses forever); under pMod they spread and hit.
        let run = |hash| {
            let mut c = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(hash));
            for _ in 0..10 {
                for i in 0..16u64 {
                    c.access(i * 128 * 1024, false);
                }
            }
            c.stats().miss_rate()
        };
        let base = run(HashKind::Traditional);
        let pmod = run(HashKind::PrimeModulo);
        assert!(base > 0.9, "base miss rate {base}");
        assert!(pmod < 0.2, "pmod miss rate {pmod}");
    }

    #[test]
    fn stats_see_every_access() {
        let mut c = tiny(HashKind::Xor);
        for a in 0..100u64 {
            c.access(a * 64, a % 2 == 0);
        }
        assert_eq!(c.stats().accesses, 100);
        assert_eq!(c.stats().writes, 50);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0, false), "contents must survive a stats reset");
    }

    #[test]
    fn validate_accepts_a_long_run() {
        let mut c = tiny(HashKind::PrimeDisplacement);
        for i in 0..2_000u64 {
            c.access((i * 7919) % (1 << 16), i % 3 == 0);
        }
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_fires_on_seeded_duplicate_block() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        // Corrupt: the same block resident in both ways of set 0.
        seed_line(&mut c, 1, 0, false);
        let err = c.validate().unwrap_err();
        assert!(err.contains("two ways"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_misplaced_block() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        // Corrupt: block 1 (home set 1) parked in set 0's second way.
        seed_line(&mut c, 1, 1, false);
        let err = c.validate().unwrap_err();
        assert!(err.contains("belongs in set 1"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_eviction_excess() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, true);
        // Corrupt: a writeback with no eviction to justify it.
        c.stats.record_writeback();
        c.stats.record_writeback();
        let err = c.validate().unwrap_err();
        assert!(err.contains("more evictions than fills"), "{err}");
    }

    #[cfg(any(debug_assertions, feature = "check"))]
    #[test]
    #[should_panic(expected = "set invariant violated")]
    fn per_access_check_fires_on_seeded_corruption() {
        let mut c = tiny(HashKind::Traditional);
        c.access(0, false);
        seed_line(&mut c, 1, 0, false);
        // A hit on the corrupted set trips the per-access checker (a miss
        // might evict the duplicate before the check runs).
        c.access(0, false);
    }

    #[test]
    #[should_panic(expected = "indexer needs")]
    fn oversized_indexer_rejected() {
        use primecache_core::index::{Geometry, Traditional};
        let cfg = CacheConfig::new(512, 2, 64); // 4 sets
        let too_big = Box::new(Traditional::new(Geometry::new(8)));
        let _ = Cache::with_indexer(cfg, too_big);
    }

    #[test]
    fn typed_cache_matches_boxed_cache_bit_for_bit() {
        use primecache_core::index::{Geometry, PrimeModulo};
        let cfg = CacheConfig::new(64 * 1024, 4, 64).with_hash(HashKind::PrimeModulo);
        let mut boxed = Cache::new(cfg);
        let mut typed = Cache::with_typed(cfg, PrimeModulo::new(Geometry::new(cfg.n_set_phys())));
        for i in 0..20_000u64 {
            let addr = (i * 7919) % (1 << 24);
            let write = i % 3 == 0;
            assert_eq!(boxed.access(addr, write), typed.access(addr, write), "{i}");
            assert_eq!(boxed.take_writebacks(), typed.take_writebacks(), "{i}");
        }
        assert_eq!(boxed.stats(), typed.stats());
    }

    #[test]
    fn hinted_access_matches_unhinted() {
        let cfg = CacheConfig::new(8 * 1024, 4, 64).with_hash(HashKind::Xor);
        let mut plain = Cache::new(cfg);
        let mut hinted = Cache::new(cfg);
        for i in 0..5_000u64 {
            let addr = (i * 31) % (1 << 20);
            let write = i % 5 == 0;
            let hint = u32::try_from(hinted.set_of(addr)).unwrap();
            assert_eq!(
                plain.access_indexed(addr, write),
                hinted.access_indexed_hinted(addr, write, hint),
                "{i}"
            );
        }
        assert_eq!(plain.stats(), hinted.stats());
    }
}
