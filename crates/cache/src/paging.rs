//! Virtual-to-physical page mapping models.
//!
//! The L2 is physically indexed: with 4 KB pages, a 2048-set 64-B-line L2
//! takes the upper 5 of its 11 index bits from the *frame* number, so the
//! OS page allocator partly decides which sets a data structure occupies.
//! The paper's simulator (like most) effectively uses an identity mapping;
//! these models let the reproduction quantify how much of the conflict
//! pathology survives other allocation policies — and show that prime
//! indexing helps under all of them.
//!
//! # Examples
//!
//! ```
//! use primecache_cache::paging::PageMapper;
//!
//! let mut ident = PageMapper::identity(4096);
//! assert_eq!(ident.translate(0x1234_5678), 0x1234_5678);
//!
//! let mut seq = PageMapper::sequential(4096);
//! // First-touch allocation: the first two distinct pages get frames 0, 1.
//! assert_eq!(seq.translate(0xABCD_E012), 0x012);
//! assert_eq!(seq.translate(0x1111_1345), 0x1345 % 4096 + 4096);
//! ```

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Page-allocation policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Physical == virtual (the common simulator simplification).
    Identity,
    /// First-touch sequential frame allocation (a fresh-booted buddy
    /// allocator): preserves intra-page layout, compacts inter-page.
    Sequential,
    /// Deterministic random frame per page (a long-running, fragmented
    /// system): scrambles the index bits above the page offset.
    Random,
    /// Page colouring: the frame is chosen so the L2 set bits inside the
    /// frame number equal those of the virtual page (cache-aware OS).
    Colored {
        /// Number of page colours (L2 sets spanned by a page-aligned
        /// region / sets per page).
        colors: u32,
    },
}

/// A stateful virtual→physical translator implementing a [`PagePolicy`].
#[derive(Debug, Clone)]
pub struct PageMapper {
    policy: PagePolicy,
    page_size: u64,
    table: HashMap<u64, u64>,
    next_frame: u64,
    rng_state: u64,
}

impl PageMapper {
    /// Creates a mapper with the given policy and page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    #[must_use]
    pub fn new(policy: PagePolicy, page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            policy,
            page_size,
            table: HashMap::new(),
            next_frame: 0,
            rng_state: 0x1234_5678_9ABC_DEF1,
        }
    }

    /// Identity mapping.
    #[must_use]
    pub fn identity(page_size: u64) -> Self {
        Self::new(PagePolicy::Identity, page_size)
    }

    /// Sequential first-touch mapping.
    #[must_use]
    pub fn sequential(page_size: u64) -> Self {
        Self::new(PagePolicy::Sequential, page_size)
    }

    /// Deterministic random mapping.
    #[must_use]
    pub fn random(page_size: u64) -> Self {
        Self::new(PagePolicy::Random, page_size)
    }

    /// Colored mapping with `colors` page colours.
    #[must_use]
    pub fn colored(page_size: u64, colors: u32) -> Self {
        Self::new(PagePolicy::Colored { colors }, page_size)
    }

    /// The policy in use.
    #[must_use]
    pub fn policy(&self) -> PagePolicy {
        self.policy
    }

    /// Number of pages mapped so far.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Translates a virtual byte address to a physical byte address,
    /// allocating a frame on first touch.
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        if self.policy == PagePolicy::Identity {
            return vaddr;
        }
        let vpn = vaddr / self.page_size;
        let offset = vaddr % self.page_size;
        let frame = match self.table.get(&vpn) {
            Some(&f) => f,
            None => {
                let f = self.allocate(vpn);
                self.table.insert(vpn, f);
                f
            }
        };
        frame * self.page_size + offset
    }

    fn allocate(&mut self, vpn: u64) -> u64 {
        match self.policy {
            PagePolicy::Identity => vpn,
            PagePolicy::Sequential => {
                let f = self.next_frame;
                self.next_frame += 1;
                f
            }
            PagePolicy::Random => self.next_random() >> 20, // 44-bit frame space
            PagePolicy::Colored { colors } => {
                // Keep vpn's colour, advance the rest sequentially.
                let colors = u64::from(colors.max(1));
                let color = vpn % colors;
                let f = self.next_frame * colors + color;
                self.next_frame += 1;
                f
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_transparent() {
        let mut m = PageMapper::identity(4096);
        for a in [0u64, 4096, 0xFFFF_FFFF, u64::MAX / 2] {
            assert_eq!(m.translate(a), a);
        }
        assert_eq!(m.mapped_pages(), 0);
    }

    #[test]
    fn translation_is_stable_per_page() {
        for policy in [
            PagePolicy::Sequential,
            PagePolicy::Random,
            PagePolicy::Colored { colors: 32 },
        ] {
            let mut m = PageMapper::new(policy, 4096);
            let first = m.translate(0x12345);
            assert_eq!(m.translate(0x12345), first, "{policy:?}");
            // Same page, different offset: same frame.
            let other = m.translate(0x12345 ^ 0x7);
            assert_eq!(other / 4096, first / 4096, "{policy:?}");
            assert_eq!(other % 4096, (0x12345 ^ 0x7) % 4096, "{policy:?}");
        }
    }

    #[test]
    fn offsets_are_preserved() {
        for policy in [
            PagePolicy::Sequential,
            PagePolicy::Random,
            PagePolicy::Colored { colors: 32 },
        ] {
            let mut m = PageMapper::new(policy, 4096);
            for vaddr in [0x1000u64, 0x1ABC, 0x77_7777, 0xDEAD_BEEF] {
                let p = m.translate(vaddr);
                assert_eq!(p % 4096, vaddr % 4096, "{policy:?} @ {vaddr:#x}");
            }
        }
    }

    #[test]
    fn sequential_compacts_frames() {
        let mut m = PageMapper::sequential(4096);
        let a = m.translate(123 * 4096);
        let b = m.translate(9999 * 4096);
        let c = m.translate(5 * 4096);
        assert_eq!(a / 4096, 0);
        assert_eq!(b / 4096, 1);
        assert_eq!(c / 4096, 2);
    }

    #[test]
    fn colored_preserves_page_color() {
        let colors = 32u64;
        let mut m = PageMapper::colored(4096, colors as u32);
        for vpn in [0u64, 7, 31, 32, 33, 1000] {
            let p = m.translate(vpn * 4096);
            assert_eq!((p / 4096) % colors, vpn % colors, "vpn {vpn}");
        }
    }

    #[test]
    fn random_is_deterministic_across_mappers() {
        let mut a = PageMapper::random(4096);
        let mut b = PageMapper::random(4096);
        for vpn in 0..100u64 {
            assert_eq!(a.translate(vpn * 4096), b.translate(vpn * 4096));
        }
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        for policy in [PagePolicy::Sequential, PagePolicy::Colored { colors: 16 }] {
            let mut m = PageMapper::new(policy, 4096);
            let frames: std::collections::HashSet<u64> =
                (0..1000u64).map(|v| m.translate(v * 4096) / 4096).collect();
            assert_eq!(frames.len(), 1000, "{policy:?}");
        }
    }
}
