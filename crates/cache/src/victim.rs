//! A victim-cache front end (Jouppi's classic conflict-miss remedy).

use crate::{Cache, CacheConfig, CacheSim, CacheStats};

/// A set-associative cache backed by a small fully-associative victim
/// buffer: evicted lines park in the buffer and swap back on a near-term
/// re-reference.
///
/// Victim caches are the classic *hardware* alternative to rehashing for
/// conflict misses; comparing one against prime indexing
/// (`ablation_victim`) shows why the paper's approach scales better — a
/// victim buffer of `v` entries absorbs at most `v` conflicting lines
/// total, while rehashing redistributes every set.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheConfig, CacheSim, VictimCache};
///
/// let mut c = VictimCache::new(CacheConfig::new(512 * 1024, 4, 64), 8);
/// assert!(!c.access(0x1000, false));
/// assert!(c.access(0x1000, false));
/// ```
#[derive(Debug)]
pub struct VictimCache {
    main: Cache,
    /// Victim buffer entries: (block, dirty), LRU order (front = oldest).
    buffer: Vec<(u64, bool)>,
    capacity: usize,
    line_shift: u32,
    stats: CacheStats,
    /// Hits served by the victim buffer.
    victim_hits: u64,
}

impl VictimCache {
    /// Creates a victim-buffered cache with `victim_entries` buffer slots.
    ///
    /// # Panics
    ///
    /// Panics if `victim_entries == 0`.
    #[must_use]
    pub fn new(config: CacheConfig, victim_entries: usize) -> Self {
        assert!(victim_entries > 0, "victim buffer needs at least one entry");
        let line_shift = config.line_bytes().trailing_zeros();
        let n_set = {
            let c = Cache::new(config);
            c.n_set() as usize
        };
        Self {
            main: Cache::new(config),
            buffer: Vec::with_capacity(victim_entries),
            capacity: victim_entries,
            line_shift,
            stats: CacheStats::new(n_set),
            victim_hits: 0,
        }
    }

    /// Hits served from the victim buffer so far.
    #[must_use]
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    /// Buffer capacity in entries.
    #[must_use]
    pub fn victim_entries(&self) -> usize {
        self.capacity
    }

    /// Checks every runtime invariant of the victim hierarchy: stat
    /// integrity of both levels, buffer occupancy within capacity, no
    /// duplicate buffer entries, exclusion between buffer and main
    /// cache, and buffer hits bounded by total hits.
    ///
    /// Debug builds (and release builds with the `check` feature) run
    /// these checks after every access.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.stats.validate()?;
        self.main.validate()?;
        if self.buffer.len() > self.capacity {
            return Err(format!(
                "victim buffer holds {} entries, capacity is {}",
                self.buffer.len(),
                self.capacity
            ));
        }
        if self.victim_hits > self.stats.hits {
            return Err(format!(
                "buffer hits ({}) exceed total hits ({})",
                self.victim_hits, self.stats.hits
            ));
        }
        for (i, &(block, _)) in self.buffer.iter().enumerate() {
            if self.buffer[i + 1..].iter().any(|&(b, _)| b == block) {
                return Err(format!("block {block:#x} parked twice in the buffer"));
            }
            if self.main.contains(block << self.line_shift) {
                return Err(format!(
                    "block {block:#x} resident in both the buffer and the main cache"
                ));
            }
        }
        Ok(())
    }

    /// Per-access invariant hook.
    #[cfg(any(debug_assertions, feature = "check"))]
    fn debug_check(&self) {
        assert!(
            self.stats.hits + self.stats.misses == self.stats.accesses
                && self.buffer.len() <= self.capacity
                && self.victim_hits <= self.stats.hits,
            "victim invariant violated: {:?}",
            (
                self.stats.hits,
                self.stats.misses,
                self.stats.accesses,
                self.buffer.len(),
                self.victim_hits
            )
        );
    }
}

impl CacheSim for VictimCache {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let block = addr >> self.line_shift;
        let set = self.main.set_of(addr);
        if self.main.access_block(block, write) {
            self.stats.record(set, false, write);
            // A main hit may have evicted nothing; clear stale writebacks.
            for victim in self.main.take_writebacks() {
                self.park(victim, true);
            }
            #[cfg(any(debug_assertions, feature = "check"))]
            self.debug_check();
            return true;
        }
        // Main miss: the fill already happened; park its victims (dirty
        // lines come via take_writebacks; clean evictions are invisible,
        // an accepted simplification — the buffer still sees the dirty,
        // i.e. most conflict-prone, traffic of write-back workloads).
        for victim in self.main.take_writebacks() {
            self.park(victim, true);
        }
        // Probe the buffer for the requested block.
        if let Some(pos) = self.buffer.iter().position(|&(b, _)| b == block) {
            self.buffer.remove(pos);
            self.victim_hits += 1;
            self.stats.record(set, false, write);
            #[cfg(any(debug_assertions, feature = "check"))]
            self.debug_check();
            return true;
        }
        self.stats.record(set, true, write);
        #[cfg(any(debug_assertions, feature = "check"))]
        self.debug_check();
        false
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.victim_hits = 0;
    }
}

impl VictimCache {
    fn park(&mut self, block: u64, dirty: bool) {
        if self.buffer.len() == self.capacity {
            let (_, was_dirty) = self.buffer.remove(0);
            if was_dirty {
                self.stats.record_writeback();
            }
        }
        self.buffer.push((block, dirty));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::index::HashKind;

    #[test]
    fn victim_buffer_rescues_small_conflict_sets() {
        // 6 blocks aliasing in one 4-way set: 2 spill into the buffer, so
        // a cyclic walk eventually hits (unlike the raw cache).
        let cfg = CacheConfig::new(512 * 1024, 4, 64);
        let mut plain = Cache::new(cfg);
        let mut with_victim = VictimCache::new(cfg, 8);
        let blocks: Vec<u64> = (0..6u64).map(|i| i * 128 * 1024).collect();
        for _ in 0..50 {
            for &a in &blocks {
                plain.access(a, true); // writes => evictions are visible
                with_victim.access(a, true);
            }
        }
        assert!(
            with_victim.stats().misses < plain.stats().misses,
            "victim {} vs plain {}",
            with_victim.stats().misses,
            plain.stats().misses
        );
        assert!(with_victim.victim_hits() > 0);
    }

    #[test]
    fn victim_buffer_cannot_absorb_wide_conflicts() {
        // 16 aliasing blocks overwhelm an 8-entry buffer; pMod still wins.
        let cfg = CacheConfig::new(512 * 1024, 4, 64);
        let mut with_victim = VictimCache::new(cfg, 8);
        let mut pmod = Cache::new(cfg.with_hash(HashKind::PrimeModulo));
        let blocks: Vec<u64> = (0..16u64).map(|i| i * 128 * 1024).collect();
        for _ in 0..50 {
            for &a in &blocks {
                with_victim.access(a, true);
                pmod.access(a, true);
            }
        }
        assert!(
            pmod.stats().misses * 4 < with_victim.stats().misses,
            "pMod {} vs victim {}",
            pmod.stats().misses,
            with_victim.stats().misses
        );
    }

    #[test]
    fn stats_stay_consistent() {
        let mut c = VictimCache::new(CacheConfig::new(4096, 2, 64), 4);
        for i in 0..500u64 {
            c.access((i % 64) * 64, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.accesses, 500);
    }

    #[test]
    fn validate_accepts_a_long_run() {
        let mut c = VictimCache::new(CacheConfig::new(4096, 2, 64), 4);
        for i in 0..2_000u64 {
            c.access(((i * 7919) % (1 << 14)) & !63, i % 3 == 0);
        }
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_fires_on_seeded_buffer_overflow() {
        let mut c = VictimCache::new(CacheConfig::new(4096, 2, 64), 2);
        // Corrupt: stuff the buffer past its capacity.
        for b in 100..103u64 {
            c.buffer.push((b, false));
        }
        let err = c.validate().unwrap_err();
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_double_residency() {
        let mut c = VictimCache::new(CacheConfig::new(4096, 2, 64), 4);
        c.access(0, false); // block 0 now in the main cache
        c.buffer.push((0, false)); // corrupt: and in the buffer
        let err = c.validate().unwrap_err();
        assert!(err.contains("both"), "{err}");
    }

    #[cfg(any(debug_assertions, feature = "check"))]
    #[test]
    #[should_panic(expected = "victim invariant violated")]
    fn per_access_check_fires_on_seeded_hit_count_drift() {
        let mut c = VictimCache::new(CacheConfig::new(4096, 2, 64), 4);
        c.access(0, false);
        c.victim_hits = 10; // corrupt: more buffer hits than hits
        c.access(0, false);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entry_buffer_rejected() {
        let _ = VictimCache::new(CacheConfig::new(4096, 2, 64), 0);
    }
}
