//! A victim-cache front end (Jouppi's classic conflict-miss remedy).

use crate::{Cache, CacheConfig, CacheSim, CacheStats};

/// A set-associative cache backed by a small fully-associative victim
/// buffer: evicted lines park in the buffer and swap back on a near-term
/// re-reference.
///
/// Victim caches are the classic *hardware* alternative to rehashing for
/// conflict misses; comparing one against prime indexing
/// (`ablation_victim`) shows why the paper's approach scales better — a
/// victim buffer of `v` entries absorbs at most `v` conflicting lines
/// total, while rehashing redistributes every set.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheConfig, CacheSim, VictimCache};
///
/// let mut c = VictimCache::new(CacheConfig::new(512 * 1024, 4, 64), 8);
/// assert!(!c.access(0x1000, false));
/// assert!(c.access(0x1000, false));
/// ```
#[derive(Debug)]
pub struct VictimCache {
    main: Cache,
    /// Victim buffer entries: (block, dirty), LRU order (front = oldest).
    buffer: Vec<(u64, bool)>,
    capacity: usize,
    line_shift: u32,
    stats: CacheStats,
    /// Hits served by the victim buffer.
    victim_hits: u64,
}

impl VictimCache {
    /// Creates a victim-buffered cache with `victim_entries` buffer slots.
    ///
    /// # Panics
    ///
    /// Panics if `victim_entries == 0`.
    #[must_use]
    pub fn new(config: CacheConfig, victim_entries: usize) -> Self {
        assert!(victim_entries > 0, "victim buffer needs at least one entry");
        let line_shift = config.line_bytes().trailing_zeros();
        let n_set = {
            let c = Cache::new(config);
            c.n_set() as usize
        };
        Self {
            main: Cache::new(config),
            buffer: Vec::with_capacity(victim_entries),
            capacity: victim_entries,
            line_shift,
            stats: CacheStats::new(n_set),
            victim_hits: 0,
        }
    }

    /// Hits served from the victim buffer so far.
    #[must_use]
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    /// Buffer capacity in entries.
    #[must_use]
    pub fn victim_entries(&self) -> usize {
        self.capacity
    }
}

impl CacheSim for VictimCache {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let block = addr >> self.line_shift;
        let set = self.main.set_of(addr);
        if self.main.access_block(block, write) {
            self.stats.record(set, false, write);
            // A main hit may have evicted nothing; clear stale writebacks.
            for victim in self.main.take_writebacks() {
                self.park(victim, true);
            }
            return true;
        }
        // Main miss: the fill already happened; park its victims (dirty
        // lines come via take_writebacks; clean evictions are invisible,
        // an accepted simplification — the buffer still sees the dirty,
        // i.e. most conflict-prone, traffic of write-back workloads).
        for victim in self.main.take_writebacks() {
            self.park(victim, true);
        }
        // Probe the buffer for the requested block.
        if let Some(pos) = self.buffer.iter().position(|&(b, _)| b == block) {
            self.buffer.remove(pos);
            self.victim_hits += 1;
            self.stats.record(set, false, write);
            return true;
        }
        self.stats.record(set, true, write);
        false
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.victim_hits = 0;
    }
}

impl VictimCache {
    fn park(&mut self, block: u64, dirty: bool) {
        if self.buffer.len() == self.capacity {
            let (_, was_dirty) = self.buffer.remove(0);
            if was_dirty {
                self.stats.record_writeback();
            }
        }
        self.buffer.push((block, dirty));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::index::HashKind;

    #[test]
    fn victim_buffer_rescues_small_conflict_sets() {
        // 6 blocks aliasing in one 4-way set: 2 spill into the buffer, so
        // a cyclic walk eventually hits (unlike the raw cache).
        let cfg = CacheConfig::new(512 * 1024, 4, 64);
        let mut plain = Cache::new(cfg);
        let mut with_victim = VictimCache::new(cfg, 8);
        let blocks: Vec<u64> = (0..6u64).map(|i| i * 128 * 1024).collect();
        for _ in 0..50 {
            for &a in &blocks {
                plain.access(a, true); // writes => evictions are visible
                with_victim.access(a, true);
            }
        }
        assert!(
            with_victim.stats().misses < plain.stats().misses,
            "victim {} vs plain {}",
            with_victim.stats().misses,
            plain.stats().misses
        );
        assert!(with_victim.victim_hits() > 0);
    }

    #[test]
    fn victim_buffer_cannot_absorb_wide_conflicts() {
        // 16 aliasing blocks overwhelm an 8-entry buffer; pMod still wins.
        let cfg = CacheConfig::new(512 * 1024, 4, 64);
        let mut with_victim = VictimCache::new(cfg, 8);
        let mut pmod = Cache::new(cfg.with_hash(HashKind::PrimeModulo));
        let blocks: Vec<u64> = (0..16u64).map(|i| i * 128 * 1024).collect();
        for _ in 0..50 {
            for &a in &blocks {
                with_victim.access(a, true);
                pmod.access(a, true);
            }
        }
        assert!(
            pmod.stats().misses * 4 < with_victim.stats().misses,
            "pMod {} vs victim {}",
            pmod.stats().misses,
            with_victim.stats().misses
        );
    }

    #[test]
    fn stats_stay_consistent() {
        let mut c = VictimCache::new(CacheConfig::new(4096, 2, 64), 4);
        for i in 0..500u64 {
            c.access((i % 64) * 64, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.accesses, 500);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entry_buffer_rejected() {
        let _ = VictimCache::new(CacheConfig::new(4096, 2, 64), 0);
    }
}
