//! Cache configuration types.

use primecache_core::index::HashKind;
use serde::{Deserialize, Serialize};

/// Replacement policies available to the set-associative [`Cache`].
///
/// The skewed cache uses its own inter-bank policies (ENRU / NRUNRW, §5.3)
/// configured via [`SkewedConfig`].
///
/// [`Cache`]: crate::Cache
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// True least-recently-used.
    Lru,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// Not-recently-used reference bits.
    Nru,
    /// First-in first-out.
    Fifo,
    /// Deterministic pseudo-random victims.
    Random,
    /// Static re-reference interval prediction (SRRIP, 2-bit): inserts
    /// lines with a long predicted re-reference interval so scans cannot
    /// flush the working set — the thrash-resistant policy later caches
    /// adopted (an extension beyond the paper's LRU).
    Srrip,
}

impl ReplacementKind {
    /// All set-associative policies.
    pub const ALL: [ReplacementKind; 6] = [
        ReplacementKind::Lru,
        ReplacementKind::TreePlru,
        ReplacementKind::Nru,
        ReplacementKind::Fifo,
        ReplacementKind::Random,
        ReplacementKind::Srrip,
    ];
}

/// Configuration of a set-associative cache.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheConfig, ReplacementKind};
/// use primecache_core::index::HashKind;
///
/// // The paper's L2: 512 KB, 4-way, 64-B lines, LRU, prime modulo.
/// let cfg = CacheConfig::new(512 * 1024, 4, 64)
///     .with_hash(HashKind::PrimeModulo)
///     .with_replacement(ReplacementKind::Lru);
/// assert_eq!(cfg.n_set_phys(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: u32,
    line_bytes: u64,
    hash: HashKind,
    replacement: ReplacementKind,
}

impl CacheConfig {
    /// Creates a configuration for a cache of `size_bytes` with
    /// associativity `assoc` and `line_bytes` blocks, defaulting to
    /// traditional indexing and LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `line_bytes` and the resulting set count
    /// are powers of two and `assoc >= 1`.
    #[must_use]
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64) -> Self {
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            size_bytes.is_multiple_of(line_bytes * u64::from(assoc)),
            "size must be divisible by line * assoc"
        );
        let n_set = size_bytes / (line_bytes * u64::from(assoc));
        assert!(
            n_set.is_power_of_two() && n_set >= 2,
            "physical set count must be a power of two >= 2, got {n_set}"
        );
        Self {
            size_bytes,
            assoc,
            line_bytes,
            hash: HashKind::Traditional,
            replacement: ReplacementKind::Lru,
        }
    }

    /// Selects the index function.
    #[must_use]
    pub fn with_hash(mut self, hash: HashKind) -> Self {
        self.hash = hash;
        self
    }

    /// Selects the replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, replacement: ReplacementKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Block/line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Physical (power-of-two) number of sets.
    #[must_use]
    pub fn n_set_phys(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.assoc))
    }

    /// The configured index function kind.
    #[must_use]
    pub fn hash(&self) -> HashKind {
        self.hash
    }

    /// The configured replacement policy.
    #[must_use]
    pub fn replacement(&self) -> ReplacementKind {
        self.replacement
    }
}

/// Index-function family of a skewed-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkewHashKind {
    /// Seznec's circular-shift + XOR per-bank functions (`SKW`).
    Xor,
    /// Prime displacement with a distinct odd factor per bank
    /// (`skw+pDisp`, factors 9/19/31/37).
    PrimeDisplacement,
}

/// Inter-bank replacement policy of a skewed cache (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkewReplacement {
    /// Enhanced Not Recently Used (Seznec \[19\]) — the paper's default.
    Enru,
    /// Not Recently Used, Not Recently Written \[18\] — "gives similar
    /// results" per §5.3.
    Nrunrw,
}

/// Configuration of a skewed-associative cache.
///
/// # Examples
///
/// ```
/// use primecache_cache::{SkewedConfig, SkewHashKind};
///
/// // The paper's skewed L2: same capacity, four direct-mapped banks.
/// let cfg = SkewedConfig::new(512 * 1024, 4, 64, SkewHashKind::PrimeDisplacement);
/// assert_eq!(cfg.sets_per_bank(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewedConfig {
    size_bytes: u64,
    banks: u32,
    line_bytes: u64,
    hash: SkewHashKind,
    replacement: SkewReplacement,
    ways_per_bank: u32,
}

impl SkewedConfig {
    /// Creates a skewed configuration of `banks` direct-mapped banks.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two and at least 2 banks are
    /// requested (a 1-bank skewed cache is just direct-mapped).
    #[must_use]
    pub fn new(size_bytes: u64, banks: u32, line_bytes: u64, hash: SkewHashKind) -> Self {
        assert!(banks >= 2, "a skewed cache needs at least two banks");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            size_bytes.is_multiple_of(line_bytes * u64::from(banks)),
            "size must be divisible by line * banks"
        );
        let sets = size_bytes / (line_bytes * u64::from(banks));
        assert!(
            sets.is_power_of_two() && sets >= 2,
            "sets per bank must be a power of two >= 2, got {sets}"
        );
        Self {
            size_bytes,
            banks,
            line_bytes,
            hash,
            replacement: SkewReplacement::Enru,
            ways_per_bank: 1,
        }
    }

    /// Makes each bank set-associative with `ways` ways (Seznec's original
    /// two-way skewed design \[18\] uses 2 banks x 2 ways; the paper's L2
    /// uses 4 direct-mapped banks).
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or the capacity does not divide evenly.
    #[must_use]
    pub fn with_ways_per_bank(mut self, ways: u32) -> Self {
        assert!(ways >= 1, "need at least one way per bank");
        let denom = self.line_bytes * u64::from(self.banks) * u64::from(ways);
        assert!(
            self.size_bytes.is_multiple_of(denom),
            "size must be divisible by line * banks * ways"
        );
        let sets = self.size_bytes / denom;
        assert!(
            sets.is_power_of_two() && sets >= 2,
            "sets per bank must be a power of two >= 2, got {sets}"
        );
        self.ways_per_bank = ways;
        self
    }

    /// Ways in each bank (1 = direct-mapped, the paper's configuration).
    #[must_use]
    pub fn ways_per_bank(&self) -> u32 {
        self.ways_per_bank
    }

    /// Selects the inter-bank replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, replacement: SkewReplacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of direct-mapped banks.
    #[must_use]
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Block/line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Sets in each bank.
    #[must_use]
    pub fn sets_per_bank(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.banks) * u64::from(self.ways_per_bank))
    }

    /// The per-bank index-function family.
    #[must_use]
    pub fn hash(&self) -> SkewHashKind {
        self.hash
    }

    /// The inter-bank replacement policy.
    #[must_use]
    pub fn replacement(&self) -> SkewReplacement {
        self.replacement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_geometry() {
        let cfg = CacheConfig::new(512 * 1024, 4, 64);
        assert_eq!(cfg.n_set_phys(), 2048);
        assert_eq!(cfg.hash(), HashKind::Traditional);
        assert_eq!(cfg.replacement(), ReplacementKind::Lru);
    }

    #[test]
    fn paper_l1_geometry() {
        let cfg = CacheConfig::new(16 * 1024, 2, 32);
        assert_eq!(cfg.n_set_phys(), 256);
    }

    #[test]
    fn eight_way_halves_the_sets() {
        // Figs. 7/8's "8-way" bar: same size, double associativity.
        let four = CacheConfig::new(512 * 1024, 4, 64);
        let eight = CacheConfig::new(512 * 1024, 8, 64);
        assert_eq!(eight.n_set_phys() * 2, four.n_set_phys());
    }

    #[test]
    fn skewed_matches_paper() {
        let cfg = SkewedConfig::new(512 * 1024, 4, 64, SkewHashKind::Xor);
        assert_eq!(cfg.sets_per_bank(), 2048);
        assert_eq!(cfg.replacement(), SkewReplacement::Enru);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_rejected() {
        let _ = CacheConfig::new(1024, 0, 64);
    }

    #[test]
    #[should_panic(expected = "at least two banks")]
    fn one_bank_skew_rejected() {
        let _ = SkewedConfig::new(1024, 1, 64, SkewHashKind::Xor);
    }
}
