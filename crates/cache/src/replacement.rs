//! Per-set replacement policies.
//!
//! Each set of a set-associative [`Cache`](crate::Cache) owns a small
//! [`Replacer`] tracking way usage. Policies are enum-dispatched: the
//! simulator touches a replacer on every access, so dynamic dispatch per
//! set would dominate the profile.

use crate::ReplacementKind;

/// Per-set replacement state.
///
/// The protocol is: [`Replacer::touch`] on every hit and after every fill,
/// [`Replacer::write_touch`] additionally on stores (only NRUNRW-style
/// policies care), and [`Replacer::victim`] to pick the way to evict
/// (invalid ways are preferred by the caller, not the policy).
///
/// # Examples
///
/// ```
/// use primecache_cache::replacement::Replacer;
/// use primecache_cache::ReplacementKind;
///
/// let mut r = Replacer::new(ReplacementKind::Lru, 4);
/// r.touch(0);
/// r.touch(1);
/// r.touch(2);
/// r.touch(3);
/// r.touch(0); // way 1 is now least recent
/// assert_eq!(r.victim(), 1);
/// ```
#[derive(Debug, Clone)]
pub enum Replacer {
    /// True LRU via per-way stamps.
    Lru {
        /// Last-use stamp per way.
        stamps: Vec<u64>,
        /// Monotonic access clock.
        clock: u64,
    },
    /// Tree pseudo-LRU over a power-of-two number of ways.
    TreePlru {
        /// Internal-node direction bits (1 = right subtree more recent).
        bits: u64,
        /// Number of ways (power of two).
        ways: u32,
    },
    /// Not-recently-used reference bits.
    Nru {
        /// Reference bit per way.
        refs: Vec<bool>,
    },
    /// FIFO: victim cycles through the ways in fill order.
    Fifo {
        /// Next way to evict.
        next: u32,
        /// Number of ways.
        ways: u32,
    },
    /// Deterministic pseudo-random victims (xorshift).
    Random {
        /// PRNG state.
        state: u64,
        /// Number of ways.
        ways: u32,
    },
    /// 2-bit SRRIP: re-reference prediction values per way
    /// (0 = imminent, 3 = distant/victim).
    Srrip {
        /// RRPV per way.
        rrpv: Vec<u8>,
        /// Rotating start position for victim search (fair tie-breaking,
        /// CLOCK-style; a fixed start would always sacrifice way 0).
        hand: u32,
    },
}

impl Replacer {
    /// Creates a replacer of the given kind for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`, or for [`ReplacementKind::TreePlru`] when
    /// `ways` is not a power of two.
    #[must_use]
    pub fn new(kind: ReplacementKind, ways: u32) -> Self {
        assert!(ways >= 1, "need at least one way");
        match kind {
            ReplacementKind::Lru => Replacer::Lru {
                stamps: vec![0; ways as usize],
                clock: 0,
            },
            ReplacementKind::TreePlru => {
                assert!(ways.is_power_of_two(), "tree PLRU needs power-of-two ways");
                Replacer::TreePlru { bits: 0, ways }
            }
            ReplacementKind::Nru => Replacer::Nru {
                refs: vec![false; ways as usize],
            },
            ReplacementKind::Fifo => Replacer::Fifo { next: 0, ways },
            ReplacementKind::Random => Replacer::Random {
                state: 0x9E37_79B9_7F4A_7C15,
                ways,
            },
            ReplacementKind::Srrip => Replacer::Srrip {
                rrpv: vec![3; ways as usize],
                hand: 0,
            },
        }
    }

    /// Records a use of `way` (hit, or fill of that way).
    pub fn touch(&mut self, way: u32) {
        match self {
            Replacer::Lru { stamps, clock } => {
                *clock += 1;
                stamps[way as usize] = *clock;
            }
            Replacer::TreePlru { bits, ways } => {
                // Walk from root to the leaf for `way`, pointing each node
                // away from it.
                let levels = ways.trailing_zeros();
                let mut node = 0u32; // root at heap position 0
                for level in (0..levels).rev() {
                    let dir = (way >> level) & 1;
                    if dir == 1 {
                        *bits &= !(1 << node); // point left (away)
                    } else {
                        *bits |= 1 << node; // point right (away)
                    }
                    node = 2 * node + 1 + dir;
                }
            }
            Replacer::Nru { refs } => {
                refs[way as usize] = true;
                if refs.iter().all(|&r| r) {
                    for (i, r) in refs.iter_mut().enumerate() {
                        *r = i == way as usize;
                    }
                }
            }
            Replacer::Fifo { .. } => {}
            Replacer::Random { .. } => {}
            Replacer::Srrip { rrpv, .. } => rrpv[way as usize] = 0,
        }
    }

    /// Records a *write* use of `way`. Plain policies treat it as
    /// [`Replacer::touch`]; write-aware policies may track it separately.
    pub fn write_touch(&mut self, way: u32) {
        self.touch(way);
    }

    /// Records that `way` was just filled with a new block.
    pub fn fill(&mut self, way: u32) {
        match self {
            Replacer::Fifo { next, ways } => *next = (way + 1) % *ways,
            // SRRIP inserts with a *long* predicted interval (RRPV 2):
            // scan lines never look young, so they evict each other
            // instead of the working set.
            Replacer::Srrip { rrpv, .. } => rrpv[way as usize] = 2,
            _ => self.touch(way),
        }
    }

    /// Picks the way to evict.
    #[must_use]
    pub fn victim(&mut self) -> u32 {
        match self {
            Replacer::Lru { stamps, .. } => {
                let mut best = 0usize;
                for (i, &s) in stamps.iter().enumerate() {
                    if s < stamps[best] {
                        best = i;
                    }
                }
                best as u32
            }
            Replacer::TreePlru { bits, ways } => {
                // Each node bit points at the pseudo-LRU subtree
                // (1 = right); follow the pointers to the victim leaf.
                let levels = ways.trailing_zeros();
                let mut node = 0u32;
                let mut way = 0u32;
                for _ in 0..levels {
                    let dir = ((*bits >> node) & 1) as u32;
                    way = (way << 1) | dir;
                    node = 2 * node + 1 + dir;
                }
                way
            }
            Replacer::Nru { refs } => refs.iter().position(|&r| !r).unwrap_or(0) as u32,
            Replacer::Fifo { next, .. } => *next,
            Replacer::Random { state, ways } => {
                // xorshift64*
                *state ^= *state >> 12;
                *state ^= *state << 25;
                *state ^= *state >> 27;
                let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                (r >> 33) as u32 % *ways
            }
            Replacer::Srrip { rrpv, hand } => loop {
                let n = rrpv.len() as u32;
                let found = (0..n)
                    .map(|off| (*hand + off) % n)
                    .find(|&w| rrpv[w as usize] == 3);
                if let Some(w) = found {
                    *hand = (w + 1) % n;
                    break w;
                }
                for v in rrpv.iter_mut() {
                    *v += 1;
                }
            },
        }
    }
}

/// Replacement state for a whole cache, flat across sets.
///
/// The dominant policy (true LRU — every paper configuration) gets a
/// structure-of-arrays fast path: one flat stamp array plus one clock
/// per set, probed and updated without per-set heap indirection. Every
/// other policy keeps its exact per-set [`Replacer`] semantics behind
/// the fallback variant. Both variants are bit-identical to a
/// `Vec<Replacer>` of the same kind.
#[derive(Debug, Clone)]
pub(crate) enum ReplBank {
    /// Flat true-LRU: `stamps[set * assoc + way]`, `clocks[set]`.
    Lru {
        /// Last-use stamp per line, set-major.
        stamps: Vec<u64>,
        /// Monotonic per-set access clocks.
        clocks: Vec<u64>,
        /// Ways per set.
        assoc: usize,
    },
    /// Any other policy: one [`Replacer`] per set.
    PerSet(Vec<Replacer>),
}

impl ReplBank {
    /// Creates replacement state for `n_set` sets of `ways` ways.
    pub(crate) fn new(kind: ReplacementKind, n_set: usize, ways: u32) -> Self {
        assert!(ways >= 1, "need at least one way");
        match kind {
            ReplacementKind::Lru => ReplBank::Lru {
                stamps: vec![0; n_set * ways as usize],
                clocks: vec![0; n_set],
                assoc: ways as usize,
            },
            _ => ReplBank::PerSet(vec![Replacer::new(kind, ways); n_set]),
        }
    }

    /// Records a use of `way` in `set` (hit, or fill of that way).
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, way: usize) {
        match self {
            ReplBank::Lru {
                stamps,
                clocks,
                assoc,
            } => {
                clocks[set] += 1;
                stamps[set * *assoc + way] = clocks[set];
            }
            ReplBank::PerSet(replacers) => replacers[set].touch(narrow_way(way)),
        }
    }

    /// Records a *write* use of `way` in `set`.
    #[inline]
    pub(crate) fn write_touch(&mut self, set: usize, way: usize) {
        match self {
            ReplBank::Lru { .. } => self.touch(set, way),
            ReplBank::PerSet(replacers) => replacers[set].write_touch(narrow_way(way)),
        }
    }

    /// Records that `way` in `set` was just filled with a new block.
    #[inline]
    pub(crate) fn fill(&mut self, set: usize, way: usize) {
        match self {
            ReplBank::Lru { .. } => self.touch(set, way),
            ReplBank::PerSet(replacers) => replacers[set].fill(narrow_way(way)),
        }
    }

    /// Picks the way to evict from `set`.
    #[inline]
    pub(crate) fn victim(&mut self, set: usize) -> usize {
        match self {
            ReplBank::Lru { stamps, assoc, .. } => {
                // Minimum stamp, first way on ties — exactly
                // `Replacer::Lru::victim`.
                let base = set * *assoc;
                let mut best = 0usize;
                for i in 1..*assoc {
                    if stamps[base + i] < stamps[base + best] {
                        best = i;
                    }
                }
                best
            }
            ReplBank::PerSet(replacers) => replacers[set].victim() as usize,
        }
    }
}

/// Narrows a way index to the `u32` the per-set [`Replacer`] API uses.
/// Associativity comes from a `u32` configuration field, so ways always
/// fit; the debug assert documents the bound.
#[inline]
#[allow(clippy::cast_possible_truncation)]
fn narrow_way(way: usize) -> u32 {
    debug_assert!(u32::try_from(way).is_ok(), "way {way} exceeds u32");
    way as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flat LRU bank must be bit-identical to a `Vec<Replacer>` of
    /// LRU replacers under any touch/fill/victim interleaving.
    #[test]
    fn flat_lru_bank_matches_per_set_replacers() {
        let n_set = 8;
        let ways = 4u32;
        let mut bank = ReplBank::new(ReplacementKind::Lru, n_set, ways);
        let mut reference: Vec<Replacer> = (0..n_set)
            .map(|_| Replacer::new(ReplacementKind::Lru, ways))
            .collect();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..10_000 {
            // xorshift64* driving a random op on a random (set, way).
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let r = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let set = (r >> 8) as usize % n_set;
            let way = (r >> 16) as u32 % ways;
            match r % 4 {
                0 => {
                    bank.touch(set, way as usize);
                    reference[set].touch(way);
                }
                1 => {
                    bank.write_touch(set, way as usize);
                    reference[set].write_touch(way);
                }
                2 => {
                    bank.fill(set, way as usize);
                    reference[set].fill(way);
                }
                _ => {
                    assert_eq!(bank.victim(set), reference[set].victim() as usize);
                }
            }
        }
        for (set, model) in reference.iter_mut().enumerate().take(n_set) {
            assert_eq!(bank.victim(set), model.victim() as usize);
        }
    }

    #[test]
    fn non_lru_bank_delegates_per_set() {
        let mut bank = ReplBank::new(ReplacementKind::Fifo, 2, 4);
        let mut reference = Replacer::new(ReplacementKind::Fifo, 4);
        for _ in 0..10 {
            let b = bank.victim(0);
            let r = reference.victim() as usize;
            assert_eq!(b, r);
            bank.fill(0, b);
            reference.fill(r as u32);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = Replacer::new(ReplacementKind::Lru, 4);
        for w in 0..4 {
            r.fill(w);
        }
        r.touch(0);
        r.touch(2);
        assert_eq!(r.victim(), 1);
        r.touch(1);
        assert_eq!(r.victim(), 3);
    }

    #[test]
    fn tree_plru_never_evicts_most_recent() {
        let mut r = Replacer::new(ReplacementKind::TreePlru, 8);
        for w in 0..8 {
            r.fill(w);
        }
        for w in [3u32, 7, 0, 5, 2, 6, 1, 4, 3, 3, 0] {
            r.touch(w);
            assert_ne!(r.victim(), w, "PLRU evicted the MRU way {w}");
        }
    }

    #[test]
    fn tree_plru_approximates_lru_on_sequential_touches() {
        let mut r = Replacer::new(ReplacementKind::TreePlru, 4);
        r.touch(0);
        r.touch(1);
        r.touch(2);
        r.touch(3);
        // With all ways touched in order, the victim should be in the
        // "oldest" half (way 0 or 1).
        let v = r.victim();
        assert!(v == 0 || v == 1, "victim {v}");
    }

    #[test]
    fn nru_prefers_unreferenced() {
        let mut r = Replacer::new(ReplacementKind::Nru, 4);
        r.touch(0);
        r.touch(2);
        let v = r.victim();
        assert!(v == 1 || v == 3, "victim {v}");
    }

    #[test]
    fn nru_clears_on_saturation() {
        let mut r = Replacer::new(ReplacementKind::Nru, 2);
        r.touch(0);
        r.touch(1); // saturates: clears others, keeps way 1
        assert_eq!(r.victim(), 0);
    }

    #[test]
    fn fifo_cycles() {
        let mut r = Replacer::new(ReplacementKind::Fifo, 4);
        assert_eq!(r.victim(), 0);
        r.fill(0);
        assert_eq!(r.victim(), 1);
        r.fill(1);
        r.touch(1); // touches must not disturb FIFO order
        assert_eq!(r.victim(), 2);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = Replacer::new(ReplacementKind::Random, 4);
        let mut b = Replacer::new(ReplacementKind::Random, 4);
        for _ in 0..100 {
            let va = a.victim();
            assert_eq!(va, b.victim());
            assert!(va < 4);
        }
    }

    #[test]
    fn random_covers_all_ways() {
        let mut r = Replacer::new(ReplacementKind::Random, 4);
        let seen: std::collections::HashSet<u32> = (0..64).map(|_| r.victim()).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_odd_ways() {
        let _ = Replacer::new(ReplacementKind::TreePlru, 3);
    }

    #[test]
    fn srrip_prefers_distant_lines() {
        let mut r = Replacer::new(ReplacementKind::Srrip, 4);
        for w in 0..4 {
            r.fill(w); // all at RRPV 2
        }
        r.touch(1); // way 1 becomes imminent (RRPV 0)
        let v = r.victim();
        assert_ne!(v, 1, "SRRIP must not evict the re-referenced way");
    }

    #[test]
    fn srrip_resists_scans() {
        // A periodically re-referenced hot way survives an interleaved
        // scan: scan fills insert at RRPV 2, so they age out before the
        // hot way does. Under LRU the same interleaving evicts way 0
        // whenever three scan fills land between its touches.
        let mut r = Replacer::new(ReplacementKind::Srrip, 4);
        for w in 0..4 {
            r.fill(w);
        }
        for round in 0..16 {
            r.touch(0); // hot re-reference
            let _ = round;
            // Two scan misses between hot touches.
            for _ in 0..2 {
                let v = r.victim();
                assert_ne!(v, 0, "scan evicted the hot way");
                r.fill(v);
            }
        }
    }

    #[test]
    fn srrip_victim_always_in_range() {
        let mut r = Replacer::new(ReplacementKind::Srrip, 8);
        for i in 0..100u32 {
            let v = r.victim();
            assert!(v < 8);
            r.fill(v);
            if i % 3 == 0 {
                r.touch(v);
            }
        }
    }
}
