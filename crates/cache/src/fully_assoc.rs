//! Fully-associative reference cache.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

#[cfg(feature = "obs")]
use primecache_obs::{Level, ObsHandle};

use crate::{CacheSim, CacheStats};

/// Deterministic multiplicative hasher for block addresses.
///
/// The default `HashMap` hasher (SipHash) costs tens of cycles per
/// lookup; block addresses need no DoS resistance, so a Fibonacci
/// multiply plus an avalanche shift is enough. Results cannot depend on
/// the hasher: iteration order is never observed (LRU order lives in the
/// age tree), only key lookups.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockHasher {
    state: u64,
}

impl Hasher for BlockHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused by u64 keys, kept total for correctness).
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state ^ (self.state >> 29)
    }
}

/// Packed LRU age counters over a flat tournament (min) tree.
///
/// Leaves hold per-slot last-use stamps; each internal node holds the
/// minimum of its children, so the least-recently-used slot is found by
/// walking from the root (`O(log n)` over a contiguous array — no
/// pointer chasing) and a stamp update rewrites one leaf-to-root path.
/// Empty slots carry `u64::MAX` and are never selected while any live
/// stamp exists.
#[derive(Debug, Clone)]
struct AgeTree {
    /// 1-based heap: `tree[1]` is the root, leaves start at `leaf_base`.
    tree: Vec<u64>,
    leaf_base: usize,
}

impl AgeTree {
    fn new(slots: usize) -> Self {
        let leaf_base = slots.next_power_of_two().max(1);
        Self {
            tree: vec![u64::MAX; 2 * leaf_base],
            leaf_base,
        }
    }

    /// Sets `slot`'s stamp and repairs the min path to the root,
    /// stopping as soon as a parent's min is unchanged (every node above
    /// it aggregates the same value). The common case — re-stamping a
    /// slot that was not its subtree's minimum — exits after one level
    /// instead of walking the full path through the cold upper tree.
    #[inline]
    fn set(&mut self, slot: usize, stamp: u64) {
        let mut i = self.leaf_base + slot;
        self.tree[i] = stamp;
        while i > 1 {
            i /= 2;
            let m = self.tree[2 * i].min(self.tree[2 * i + 1]);
            if self.tree[i] == m {
                return;
            }
            self.tree[i] = m;
        }
    }

    /// The slot holding the minimum stamp (ties impossible: stamps are
    /// unique). Must not be called while the tree is all-empty.
    #[inline]
    fn min_slot(&self) -> usize {
        let mut i = 1;
        while i < self.leaf_base {
            i = if self.tree[2 * i] <= self.tree[2 * i + 1] {
                2 * i
            } else {
                2 * i + 1
            };
        }
        i - self.leaf_base
    }
}

/// A fully-associative LRU cache — the `FA` reference of Figs. 11/12.
///
/// A set-associative cache's misses in excess of the `FA` cache's are its
/// conflict misses, which is how the paper separates conflict from
/// capacity effects.
///
/// Storage is a structure-of-arrays slab (`blocks` / `dirty` per slot)
/// located through a fast-hashed block→slot map; LRU order lives in
/// packed age counters over a flat tournament min-tree (`AgeTree`), so an
/// access costs one hash probe plus one `O(log n_lines)` path over a
/// contiguous array — no `BTreeMap` node chasing, no per-access
/// allocation. Victim choice (minimum stamp) is bit-identical to the
/// previous stamp-keyed `BTreeMap` implementation.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheSim, FullyAssociative};
///
/// let mut fa = FullyAssociative::new(512 * 1024, 64);
/// assert!(!fa.access(0x1234, false));
/// assert!(fa.access(0x1234, false));
/// ```
#[derive(Debug)]
pub struct FullyAssociative {
    capacity_lines: usize,
    line_shift: u32,
    /// block -> slab slot.
    slot_of: HashMap<u64, u32, BuildHasherDefault<BlockHasher>>,
    /// Resident block address per slot (parallel to `dirty`).
    blocks: Vec<u64>,
    /// Dirty bit per slot.
    dirty: Vec<bool>,
    /// Packed last-use stamps with an embedded min tree.
    ages: AgeTree,
    /// Occupied slots (slots fill in order until capacity).
    live: usize,
    clock: u64,
    stats: CacheStats,
    pending_writebacks: Vec<u64>,
    /// Eviction recorder, tagged with the level this cache plays.
    #[cfg(feature = "obs")]
    obs: Option<(Level, ObsHandle)>,
}

impl FullyAssociative {
    /// Creates a fully-associative cache of `size_bytes` with `line_bytes`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and the capacity holds
    /// at least one line (and fewer than `u32::MAX`, the slot index
    /// width — a loud failure instead of a silent slot-index wrap).
    #[must_use]
    pub fn new(size_bytes: u64, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let capacity = size_bytes / line_bytes;
        assert!(capacity >= 1, "capacity must hold at least one line");
        assert!(
            capacity < u64::from(u32::MAX),
            "{capacity} lines cannot be addressed in 32 bits"
        );
        let capacity_lines = usize::try_from(capacity).expect("capacity fits usize");
        Self {
            capacity_lines,
            line_shift: line_bytes.trailing_zeros(),
            slot_of: HashMap::with_capacity_and_hasher(
                capacity_lines,
                BuildHasherDefault::default(),
            ),
            blocks: vec![0; capacity_lines],
            dirty: vec![false; capacity_lines],
            ages: AgeTree::new(capacity_lines),
            live: 0,
            clock: 0,
            // All stats land in a single pseudo-set.
            stats: CacheStats::new(1),
            pending_writebacks: Vec::new(),
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Attaches an observability recorder; evictions are reported to it
    /// tagged with `level` (set 0 — the single pseudo-set).
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        self.obs = Some((level, handle));
    }

    /// Point-in-time occupancy snapshot: resident lines, as a single
    /// pseudo-set entry.
    #[must_use]
    pub fn occupancy(&self) -> Vec<u64> {
        vec![self.live as u64]
    }

    /// Drains the block addresses written back since the last call.
    pub fn take_writebacks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// Number of lines the cache can hold.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Simulates an access to a block address directly.
    pub fn access_block(&mut self, block: u64, write: bool) -> bool {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(&slot) = self.slot_of.get(&block) {
            let slot = slot as usize;
            self.ages.set(slot, stamp);
            self.dirty[slot] |= write;
            self.stats.record(0, false, write);
            return true;
        }
        self.stats.record(0, true, write);
        let slot = if self.live == self.capacity_lines {
            // Evict the least recently used block (minimum stamp —
            // stamps are unique, so the choice is exact LRU).
            let slot = self.ages.min_slot();
            let victim_block = self.blocks[slot];
            self.slot_of.remove(&victim_block).expect("victim resident");
            let dirty = self.dirty[slot];
            if dirty {
                self.stats.record_writeback();
                self.pending_writebacks.push(victim_block);
            }
            #[cfg(feature = "obs")]
            if let Some((level, h)) = &self.obs {
                h.borrow_mut().eviction(*level, 0, dirty);
            }
            slot
        } else {
            let slot = self.live;
            self.live += 1;
            slot
        };
        self.blocks[slot] = block;
        self.dirty[slot] = write;
        self.ages.set(slot, stamp);
        // Capacity is checked above, so slots always fit the u32 map
        // value (`new` rejects >4G-line configurations loudly).
        self.slot_of
            .insert(block, u32::try_from(slot).expect("slot fits u32"));
        false
    }

    /// Returns `true` if `addr`'s block is resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        self.slot_of.contains_key(&(addr >> self.line_shift))
    }
}

impl CacheSim for FullyAssociative {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        self.access_block(addr >> self.line_shift, write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut fa = FullyAssociative::new(4 * 64, 64); // 4 lines
        for b in 0..4u64 {
            fa.access_block(b, false);
        }
        fa.access_block(0, false); // block 1 is now LRU
        fa.access_block(4, false); // evicts block 1
        assert!(fa.contains(0));
        assert!(!fa.contains(64));
        assert!(fa.contains(4 * 64));
    }

    #[test]
    fn no_conflict_misses_within_capacity() {
        // Any working set <= capacity has only cold misses, regardless of
        // address layout — the defining property of full associativity.
        let mut fa = FullyAssociative::new(64 * 64, 64);
        for _ in 0..10 {
            for i in 0..64u64 {
                fa.access_block(i * 2048, false); // wild stride, no matter
            }
        }
        assert_eq!(fa.stats().misses, 64);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut fa = FullyAssociative::new(2 * 64, 64);
        fa.access_block(0, true);
        fa.access_block(1, false);
        fa.access_block(2, false); // evicts dirty block 0
        assert_eq!(fa.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut fa = FullyAssociative::new(2 * 64, 64);
        fa.access_block(0, false);
        fa.access_block(0, true); // now dirty
        fa.access_block(1, false);
        fa.access_block(2, false); // evicts block 0
        assert_eq!(fa.stats().writebacks, 1);
    }

    #[test]
    fn stats_single_pseudo_set() {
        let mut fa = FullyAssociative::new(1024, 64);
        fa.access(0, false);
        fa.access(4096, false);
        assert_eq!(fa.stats().set_accesses.len(), 1);
        assert_eq!(fa.stats().set_accesses[0], 2);
    }

    #[test]
    fn single_line_cache_works() {
        let mut fa = FullyAssociative::new(64, 64);
        assert!(!fa.access_block(1, true));
        assert!(fa.access_block(1, false));
        assert!(!fa.access_block(2, false)); // evicts dirty block 1
        assert_eq!(fa.take_writebacks(), vec![1]);
    }

    #[test]
    fn non_power_of_two_capacity_works() {
        // 3 lines: the age tree pads to 4 leaves; padding (u64::MAX)
        // must never be chosen as a victim.
        let mut fa = FullyAssociative::new(3 * 64, 64);
        for b in 0..3u64 {
            fa.access_block(b, false);
        }
        fa.access_block(3, false); // evicts block 0 (the LRU)
        assert!(!fa.contains(0));
        assert!(fa.contains(64));
        assert!(fa.contains(2 * 64));
        assert!(fa.contains(3 * 64));
    }

    /// The packed-age implementation must replay the old
    /// `BTreeMap`-ordered semantics exactly: same hits, same writeback
    /// sequence, against a naive stamp-scan model.
    #[test]
    fn matches_naive_lru_model() {
        struct Naive {
            cap: usize,
            // (block, stamp, dirty)
            lines: Vec<(u64, u64, bool)>,
            clock: u64,
            writebacks: Vec<u64>,
        }
        impl Naive {
            fn access(&mut self, block: u64, write: bool) -> bool {
                self.clock += 1;
                if let Some(l) = self.lines.iter_mut().find(|l| l.0 == block) {
                    l.1 = self.clock;
                    l.2 |= write;
                    return true;
                }
                if self.lines.len() == self.cap {
                    let i = self
                        .lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.1)
                        .map(|(i, _)| i)
                        .unwrap();
                    let (b, _, d) = self.lines.swap_remove(i);
                    if d {
                        self.writebacks.push(b);
                    }
                }
                self.lines.push((block, self.clock, write));
                false
            }
        }
        let mut fa = FullyAssociative::new(16 * 64, 64);
        let mut naive = Naive {
            cap: 16,
            lines: Vec::new(),
            clock: 0,
            writebacks: Vec::new(),
        };
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for i in 0..50_000u64 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let block = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) % 48;
            let write = i % 3 == 0;
            assert_eq!(fa.access_block(block, write), naive.access(block, write));
        }
        assert_eq!(fa.take_writebacks(), naive.writebacks);
    }
}
