//! Fully-associative reference cache.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "obs")]
use primecache_obs::{Level, ObsHandle};

use crate::{CacheSim, CacheStats};

/// A fully-associative LRU cache — the `FA` reference of Figs. 11/12.
///
/// A set-associative cache's misses in excess of the `FA` cache's are its
/// conflict misses, which is how the paper separates conflict from
/// capacity effects.
///
/// LRU order is kept in a stamp-keyed [`BTreeMap`] so each access costs
/// `O(log n_lines)` instead of an `O(n_lines)` scan.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheSim, FullyAssociative};
///
/// let mut fa = FullyAssociative::new(512 * 1024, 64);
/// assert!(!fa.access(0x1234, false));
/// assert!(fa.access(0x1234, false));
/// ```
#[derive(Debug)]
pub struct FullyAssociative {
    capacity_lines: usize,
    line_shift: u32,
    /// block -> (stamp, dirty)
    resident: HashMap<u64, (u64, bool)>,
    /// stamp -> block (LRU order; smallest stamp = least recent)
    order: BTreeMap<u64, u64>,
    clock: u64,
    stats: CacheStats,
    pending_writebacks: Vec<u64>,
    /// Eviction recorder, tagged with the level this cache plays.
    #[cfg(feature = "obs")]
    obs: Option<(Level, ObsHandle)>,
}

impl FullyAssociative {
    /// Creates a fully-associative cache of `size_bytes` with `line_bytes`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and the capacity holds
    /// at least one line.
    #[must_use]
    pub fn new(size_bytes: u64, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let capacity_lines = (size_bytes / line_bytes) as usize;
        assert!(capacity_lines >= 1, "capacity must hold at least one line");
        Self {
            capacity_lines,
            line_shift: line_bytes.trailing_zeros(),
            resident: HashMap::with_capacity(capacity_lines),
            order: BTreeMap::new(),
            clock: 0,
            // All stats land in a single pseudo-set.
            stats: CacheStats::new(1),
            pending_writebacks: Vec::new(),
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Attaches an observability recorder; evictions are reported to it
    /// tagged with `level` (set 0 — the single pseudo-set).
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        self.obs = Some((level, handle));
    }

    /// Point-in-time occupancy snapshot: resident lines, as a single
    /// pseudo-set entry.
    #[must_use]
    pub fn occupancy(&self) -> Vec<u64> {
        vec![self.resident.len() as u64]
    }

    /// Drains the block addresses written back since the last call.
    pub fn take_writebacks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// Number of lines the cache can hold.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Simulates an access to a block address directly.
    pub fn access_block(&mut self, block: u64, write: bool) -> bool {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((old_stamp, dirty)) = self.resident.get_mut(&block) {
            self.order.remove(&*old_stamp);
            self.order.insert(stamp, block);
            *old_stamp = stamp;
            *dirty |= write;
            self.stats.record(0, false, write);
            return true;
        }
        self.stats.record(0, true, write);
        if self.resident.len() == self.capacity_lines {
            // Evict the least recently used block.
            let (&victim_stamp, &victim_block) =
                self.order.iter().next().expect("cache is non-empty");
            self.order.remove(&victim_stamp);
            let (_, dirty) = self
                .resident
                .remove(&victim_block)
                .expect("order and resident agree");
            if dirty {
                self.stats.record_writeback();
                self.pending_writebacks.push(victim_block);
            }
            #[cfg(feature = "obs")]
            if let Some((level, h)) = &self.obs {
                h.borrow_mut().eviction(*level, 0, dirty);
            }
        }
        self.resident.insert(block, (stamp, write));
        self.order.insert(stamp, block);
        false
    }

    /// Returns `true` if `addr`'s block is resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        self.resident.contains_key(&(addr >> self.line_shift))
    }
}

impl CacheSim for FullyAssociative {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        self.access_block(addr >> self.line_shift, write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut fa = FullyAssociative::new(4 * 64, 64); // 4 lines
        for b in 0..4u64 {
            fa.access_block(b, false);
        }
        fa.access_block(0, false); // block 1 is now LRU
        fa.access_block(4, false); // evicts block 1
        assert!(fa.contains(0));
        assert!(!fa.contains(64));
        assert!(fa.contains(4 * 64));
    }

    #[test]
    fn no_conflict_misses_within_capacity() {
        // Any working set <= capacity has only cold misses, regardless of
        // address layout — the defining property of full associativity.
        let mut fa = FullyAssociative::new(64 * 64, 64);
        for _ in 0..10 {
            for i in 0..64u64 {
                fa.access_block(i * 2048, false); // wild stride, no matter
            }
        }
        assert_eq!(fa.stats().misses, 64);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut fa = FullyAssociative::new(2 * 64, 64);
        fa.access_block(0, true);
        fa.access_block(1, false);
        fa.access_block(2, false); // evicts dirty block 0
        assert_eq!(fa.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut fa = FullyAssociative::new(2 * 64, 64);
        fa.access_block(0, false);
        fa.access_block(0, true); // now dirty
        fa.access_block(1, false);
        fa.access_block(2, false); // evicts block 0
        assert_eq!(fa.stats().writebacks, 1);
    }

    #[test]
    fn stats_single_pseudo_set() {
        let mut fa = FullyAssociative::new(1024, 64);
        fa.access(0, false);
        fa.access(4096, false);
        assert_eq!(fa.stats().set_accesses.len(), 1);
        assert_eq!(fa.stats().set_accesses[0], 2);
    }
}
