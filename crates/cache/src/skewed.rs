//! The skewed-associative cache (Seznec's design, §3.3 / §5.3).

use primecache_core::index::{Geometry, SetIndexer, SkewDispBank, SkewXorBank, SKEW_DISP_FACTORS};

#[cfg(feature = "obs")]
use primecache_obs::{Level, ObsHandle};

use crate::{CacheSim, CacheStats, SkewHashKind, SkewReplacement, SkewedConfig};

/// One line of a direct-mapped bank, with the usage bits the inter-bank
/// replacement policies need.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    block: u64,
    valid: bool,
    dirty: bool,
    /// Recently used (ENRU / NRUNRW).
    r: bool,
    /// Recently written (NRUNRW only).
    w: bool,
}

/// A skewed-associative cache: `banks` direct-mapped banks, each indexed by
/// its own hash function, with ENRU or NRUNRW inter-bank replacement.
///
/// "Cache blocks that are mapped to the same set in one bank are most
/// likely not to map to the same set in the other banks" (§3.3). The cost
/// is that true LRU is impractical across banks, forcing the pseudo-LRU
/// policies whose imprecision contributes to the pathological slowdowns of
/// Fig. 10.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheSim, SkewedCache, SkewedConfig, SkewHashKind};
///
/// let mut skw = SkewedCache::new(SkewedConfig::new(
///     512 * 1024, 4, 64, SkewHashKind::PrimeDisplacement,
/// ));
/// assert!(!skw.access(0xBEEF00, false));
/// assert!(skw.access(0xBEEF00, false));
/// ```
#[derive(Debug)]
pub struct SkewedCache {
    config: SkewedConfig,
    indexers: Vec<Box<dyn SetIndexer>>,
    sets_per_bank: usize,
    ways: usize,
    line_shift: u32,
    /// Bank-major storage:
    /// `lines[(bank * sets_per_bank + set) * ways + way]`.
    lines: Vec<Line>,
    /// Round-robin tie-break counter for victim selection.
    rr: u32,
    stats: CacheStats,
    pending_writebacks: Vec<u64>,
    /// Eviction recorder, tagged with the level this cache plays.
    #[cfg(feature = "obs")]
    obs: Option<(Level, ObsHandle)>,
}

/// The displacement factor bank `bank` uses in a prime-displacement
/// skewed cache: the four paper factors ([`SKEW_DISP_FACTORS`]), with
/// repeats beyond four banks nudged by an even offset so every factor
/// stays odd and distinct.
#[must_use]
pub fn bank_disp_factor(bank: u32) -> u64 {
    SKEW_DISP_FACTORS[bank as usize % SKEW_DISP_FACTORS.len()]
        + 2 * (u64::from(bank) / SKEW_DISP_FACTORS.len() as u64) * 41
}

impl SkewedCache {
    /// Builds a skewed cache from its configuration.
    #[must_use]
    pub fn new(config: SkewedConfig) -> Self {
        let geom = Geometry::new(config.sets_per_bank());
        let indexers: Vec<Box<dyn SetIndexer>> = (0..config.banks())
            .map(|b| match config.hash() {
                SkewHashKind::Xor => Box::new(SkewXorBank::new(geom, b)) as Box<dyn SetIndexer>,
                SkewHashKind::PrimeDisplacement => {
                    Box::new(SkewDispBank::new(geom, bank_disp_factor(b))) as Box<dyn SetIndexer>
                }
            })
            .collect();
        let sets_per_bank = config.sets_per_bank() as usize;
        let ways = config.ways_per_bank() as usize;
        Self {
            indexers,
            sets_per_bank,
            ways,
            line_shift: config.line_bytes().trailing_zeros(),
            lines: vec![Line::default(); sets_per_bank * config.banks() as usize * ways],
            rr: 0,
            stats: CacheStats::new(sets_per_bank),
            pending_writebacks: Vec::new(),
            #[cfg(feature = "obs")]
            obs: None,
            config,
        }
    }

    /// Attaches an observability recorder; every eviction is reported to
    /// it tagged with `level` (set index = the victim's bank-0 stats set
    /// is unavailable post-hoc, so the evicting access's bank-0 set is
    /// used — the same axis the per-set miss histogram uses).
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        self.obs = Some((level, handle));
    }

    /// Point-in-time occupancy snapshot: valid lines per (bank, set),
    /// bank-major. Not on the access path.
    #[must_use]
    pub fn occupancy(&self) -> Vec<u64> {
        self.lines
            .chunks(self.ways)
            .map(|set| set.iter().filter(|l| l.valid).count() as u64)
            .collect()
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &SkewedConfig {
        &self.config
    }

    /// Drains the block addresses written back since the last call.
    pub fn take_writebacks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// The per-bank set indexes for a block.
    fn bank_sets(&self, block: u64) -> Vec<usize> {
        self.indexers
            .iter()
            .map(|ix| ix.index(block) as usize)
            .collect()
    }

    /// First storage slot of (bank, set); the set's ways follow
    /// contiguously.
    #[inline]
    fn slot(&self, bank: usize, set: usize) -> usize {
        (bank * self.sets_per_bank + set) * self.ways
    }

    /// Every candidate line slot of an access: all ways of every bank's
    /// indexed set.
    fn candidate_slots(&self, sets: &[usize]) -> Vec<usize> {
        let mut slots = Vec::with_capacity(sets.len() * self.ways);
        for (b, &set) in sets.iter().enumerate() {
            let base = self.slot(b, set);
            slots.extend(base..base + self.ways);
        }
        slots
    }

    /// Picks the victim among the candidate lines (indexes into the
    /// candidate slice).
    fn pick_victim(&mut self, slots: &[usize]) -> usize {
        let n = slots.len();
        // Invalid lines first.
        if let Some(i) = (0..n).find(|&i| !self.lines[slots[i]].valid) {
            return i;
        }
        let class_of = |l: &Line| -> u32 {
            match self.config.replacement() {
                SkewReplacement::Enru => u32::from(l.r),
                // NRUNRW priority: (!r,!w) < (!r,w) < (r,!w) < (r,w).
                SkewReplacement::Nrunrw => (u32::from(l.r) << 1) | u32::from(l.w),
            }
        };
        let best_class = slots
            .iter()
            .map(|&s| class_of(&self.lines[s]))
            .min()
            .expect("at least one candidate");
        // Round-robin among the best class.
        self.rr = self.rr.wrapping_add(1);
        let start = self.rr as usize % n;
        for off in 0..n {
            let i = (start + off) % n;
            if class_of(&self.lines[slots[i]]) == best_class {
                return i;
            }
        }
        unreachable!("best class is always present")
    }

    /// Clears usage bits of the candidate lines when they saturate, so NRU
    /// information keeps decaying (the "aging" of Seznec's ENRU).
    fn age(&mut self, slots: &[usize], keep: usize) {
        if slots
            .iter()
            .all(|&s| !self.lines[s].valid || self.lines[s].r)
        {
            for (b, &s) in slots.iter().enumerate() {
                if b != keep {
                    self.lines[s].r = false;
                    self.lines[s].w = false;
                }
            }
        }
    }

    /// Simulates an access to a block address.
    pub fn access_block(&mut self, block: u64, write: bool) -> bool {
        let sets = self.bank_sets(block);
        let slots = self.candidate_slots(&sets);
        // Attribute stats to the bank-0 set (the natural histogram axis).
        let stat_set = sets[0];
        for (i, &slot) in slots.iter().enumerate() {
            let line = self.lines[slot];
            if line.valid && line.block == block {
                self.stats.record(stat_set, false, write);
                let line = &mut self.lines[slot];
                line.r = true;
                line.w |= write;
                self.age(&slots, i);
                #[cfg(any(debug_assertions, feature = "check"))]
                self.debug_check(block, &slots);
                return true;
            }
        }
        self.stats.record(stat_set, true, write);
        let victim_i = self.pick_victim(&slots);
        let slot = slots[victim_i];
        let victim = &mut self.lines[slot];
        #[cfg(feature = "obs")]
        let evicted_dirty = victim.valid.then_some(victim.dirty);
        if victim.valid && victim.dirty {
            self.stats.record_writeback();
            self.pending_writebacks.push(victim.block);
        }
        #[cfg(feature = "obs")]
        if let (Some((level, h)), Some(dirty)) = (&self.obs, evicted_dirty) {
            h.borrow_mut().eviction(*level, stat_set as u32, dirty);
        }
        let victim = &mut self.lines[slot];
        *victim = Line {
            block,
            valid: true,
            dirty: write,
            r: true,
            w: write,
        };
        self.age(&slots, victim_i);
        #[cfg(any(debug_assertions, feature = "check"))]
        self.debug_check(block, &slots);
        false
    }

    /// Checks every runtime invariant of the skewed cache: stat
    /// integrity, evictions bounded by fills, every valid line sitting in
    /// the set its bank's hash assigns it, and no block resident twice.
    ///
    /// Debug builds (and release builds with the `check` feature) run the
    /// accessed candidate set's checks after every access.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.stats.validate()?;
        if self.stats.writebacks > self.stats.misses {
            return Err(format!(
                "writebacks ({}) exceed misses ({}): more evictions than fills",
                self.stats.writebacks, self.stats.misses
            ));
        }
        let mut seen = std::collections::HashMap::new();
        for (i, l) in self.lines.iter().enumerate() {
            if !l.valid {
                continue;
            }
            let bank = i / (self.sets_per_bank * self.ways);
            let set = (i / self.ways) % self.sets_per_bank;
            let home = self.indexers[bank].index(l.block) as usize;
            if home != set {
                return Err(format!(
                    "bank {bank} set {set}: block {:#x} belongs in set {home}",
                    l.block
                ));
            }
            if let Some(prev) = seen.insert(l.block, (bank, set)) {
                return Err(format!(
                    "block {:#x} resident twice: bank {} set {} and bank {bank} set {set}",
                    l.block, prev.0, prev.1
                ));
            }
        }
        Ok(())
    }

    /// Per-access invariant hook: O(1) stat checks plus "the accessed
    /// block is resident exactly once among its candidates".
    #[cfg(any(debug_assertions, feature = "check"))]
    fn debug_check(&self, block: u64, slots: &[usize]) {
        assert!(
            self.stats.hits + self.stats.misses == self.stats.accesses
                && self.stats.writebacks <= self.stats.misses,
            "stat integrity violated: {:?}",
            (
                self.stats.hits,
                self.stats.misses,
                self.stats.accesses,
                self.stats.writebacks
            )
        );
        let copies = slots
            .iter()
            .filter(|&&s| self.lines[s].valid && self.lines[s].block == block)
            .count();
        assert!(
            copies == 1,
            "skewed invariant violated: block {block:#x} resident {copies} times \
             among its candidates"
        );
    }

    /// The bank-0 set index `addr` maps to (the stats-attribution axis).
    #[must_use]
    pub fn stat_set_of(&self, addr: u64) -> usize {
        self.indexers[0].index(addr >> self.line_shift) as usize
    }

    /// Returns `true` if `addr`'s block is resident in any bank.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let sets = self.bank_sets(block);
        self.candidate_slots(&sets).iter().any(|&slot| {
            let l = &self.lines[slot];
            l.valid && l.block == block
        })
    }
}

impl CacheSim for SkewedCache {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        self.access_block(addr >> self.line_shift, write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_skew(hash: SkewHashKind) -> SkewedCache {
        SkewedCache::new(SkewedConfig::new(512 * 1024, 4, 64, hash))
    }

    #[test]
    fn hit_after_fill_in_any_bank() {
        let mut c = paper_skew(SkewHashKind::Xor);
        assert!(!c.access(0x12345, false));
        assert!(c.access(0x12345, false));
        assert!(c.contains(0x12345));
    }

    #[test]
    fn skewing_absorbs_same_set_conflicts() {
        // 16 blocks that all conflict in a traditional 2048-set cache
        // (stride 2048 blocks) fit easily across four skewed banks.
        for hash in [SkewHashKind::Xor, SkewHashKind::PrimeDisplacement] {
            let mut c = paper_skew(hash);
            for _ in 0..10 {
                for i in 0..16u64 {
                    c.access(i * 2048 * 64, false);
                }
            }
            let mr = c.stats().miss_rate();
            assert!(mr < 0.25, "{hash:?}: miss rate {mr}");
        }
    }

    #[test]
    fn capacity_is_respected() {
        // Way more distinct blocks than lines: almost everything misses.
        let mut c = paper_skew(SkewHashKind::PrimeDisplacement);
        let lines = (512 * 1024 / 64) as u64;
        for i in 0..4 * lines {
            c.access(i * 64, false);
        }
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn writebacks_flow() {
        let mut c = SkewedCache::new(SkewedConfig::new(
            4 * 2 * 64, // 2 banks x 2 sets
            2,
            64,
            SkewHashKind::Xor,
        ));
        // Fill far more dirty blocks than capacity.
        for i in 0..64u64 {
            c.access(i * 64, true);
        }
        assert!(c.stats().writebacks > 0);
        assert!(!c.take_writebacks().is_empty());
    }

    #[test]
    fn nrunrw_prefers_clean_unreferenced() {
        let mut c = SkewedCache::new(
            SkewedConfig::new(4 * 2 * 64, 2, 64, SkewHashKind::Xor)
                .with_replacement(SkewReplacement::Nrunrw),
        );
        for i in 0..64u64 {
            c.access(i * 64, i % 2 == 0);
        }
        // Smoke: policy runs without violating capacity or determinism.
        let m1 = c.stats().misses;
        assert!(m1 > 0);
    }

    #[test]
    fn two_way_banks_match_seznec_original() {
        // Seznec's [18] design: 2 banks x 2 ways. Capacity must be
        // preserved and conflicts absorbed at least as well as with
        // direct-mapped banks of the same total size.
        let cfg = SkewedConfig::new(512 * 1024, 2, 64, SkewHashKind::Xor).with_ways_per_bank(2);
        assert_eq!(cfg.sets_per_bank(), 2048);
        let mut c = SkewedCache::new(cfg);
        for _ in 0..10 {
            for i in 0..16u64 {
                c.access(i * 2048 * 64, false);
            }
        }
        assert!(c.stats().miss_rate() < 0.25, "{}", c.stats().miss_rate());
    }

    #[test]
    fn way_associative_banks_respect_capacity() {
        let cfg = SkewedConfig::new(8 * 1024, 2, 64, SkewHashKind::PrimeDisplacement)
            .with_ways_per_bank(2); // 2 banks x 32 sets x 2 ways = 128 lines
        let mut c = SkewedCache::new(cfg);
        for i in 0..4096u64 {
            c.access(i * 64, false);
        }
        assert!(c.stats().miss_rate() > 0.9);
        // And a just-filled block is resident.
        c.access(77 * 64, false);
        assert!(c.contains(77 * 64));
    }

    #[test]
    fn validate_accepts_a_long_run() {
        let mut c = paper_skew(SkewHashKind::Xor);
        for i in 0..5_000u64 {
            c.access((i * 7919) % (1 << 22), i % 3 == 0);
        }
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_fires_on_seeded_double_residency() {
        let mut c = paper_skew(SkewHashKind::Xor);
        c.access(0x12345 * 64, false);
        // Corrupt: plant a second copy of the resident block in its
        // bank-1 home set (a correct fill would never duplicate it).
        let block = 0x12345u64;
        let set = c.indexers[1].index(block) as usize;
        let slot = c.slot(1, set);
        c.lines[slot] = Line {
            block,
            valid: true,
            dirty: false,
            r: true,
            w: false,
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("resident twice"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_misplaced_block() {
        let mut c = paper_skew(SkewHashKind::PrimeDisplacement);
        c.access(0, false);
        // Corrupt: a block parked in a set its hash never produces.
        let block = 0xDEADu64;
        let wrong_set = (c.indexers[2].index(block) as usize + 1) % c.sets_per_bank;
        let slot = c.slot(2, wrong_set);
        c.lines[slot] = Line {
            block,
            valid: true,
            dirty: false,
            r: false,
            w: false,
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("belongs in set"), "{err}");
    }

    #[cfg(any(debug_assertions, feature = "check"))]
    #[test]
    #[should_panic(expected = "skewed invariant violated")]
    fn per_access_check_fires_on_seeded_duplicate() {
        let mut c = paper_skew(SkewHashKind::Xor);
        let block = 0x777u64;
        c.access_block(block, false);
        let set = c.indexers[1].index(block) as usize;
        let slot = c.slot(1, set);
        c.lines[slot] = Line {
            block,
            valid: true,
            dirty: false,
            r: true,
            w: false,
        };
        // A re-reference sees the block twice among its candidates.
        c.access_block(block, false);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = paper_skew(SkewHashKind::PrimeDisplacement);
            for i in 0..10_000u64 {
                c.access((i * 7919) % (1 << 22), i % 3 == 0);
            }
            (c.stats().hits, c.stats().misses, c.stats().writebacks)
        };
        assert_eq!(run(), run());
    }
}
