//! The skewed-associative cache (Seznec's design, §3.3 / §5.3).
//!
//! Storage is structure-of-arrays (flat tag and packed usage-bit
//! arrays) and the candidate-slot list is a reused scratch buffer, so
//! the access path allocates nothing. The cache is generic over its
//! per-bank index function type; the monomorphized drivers in
//! `primecache-sim` instantiate it with concrete bank indexers so each
//! bank's hash inlines into the probe loop.

use primecache_core::index::{Geometry, SetIndexer, SkewDispBank, SkewXorBank, SKEW_DISP_FACTORS};

#[cfg(feature = "obs")]
use primecache_obs::{Level, ObsHandle};

use crate::{CacheSim, CacheStats, SkewHashKind, SkewReplacement, SkewedConfig, NO_HINT};

/// Flag bit: the slot holds a valid line.
const VALID: u8 = 1;
/// Flag bit: the line is dirty.
const DIRTY: u8 = 2;
/// Flag bit: recently used (ENRU / NRUNRW).
const RBIT: u8 = 4;
/// Flag bit: recently written (NRUNRW only).
const WBIT: u8 = 8;

/// A skewed-associative cache: `banks` direct-mapped banks, each indexed by
/// its own hash function, with ENRU or NRUNRW inter-bank replacement.
///
/// "Cache blocks that are mapped to the same set in one bank are most
/// likely not to map to the same set in the other banks" (§3.3). The cost
/// is that true LRU is impractical across banks, forcing the pseudo-LRU
/// policies whose imprecision contributes to the pathological slowdowns of
/// Fig. 10.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheSim, SkewedCache, SkewedConfig, SkewHashKind};
///
/// let mut skw = SkewedCache::new(SkewedConfig::new(
///     512 * 1024, 4, 64, SkewHashKind::PrimeDisplacement,
/// ));
/// assert!(!skw.access(0xBEEF00, false));
/// assert!(skw.access(0xBEEF00, false));
/// ```
#[derive(Debug)]
pub struct SkewedCache<B: SetIndexer = Box<dyn SetIndexer>> {
    config: SkewedConfig,
    indexers: Vec<B>,
    sets_per_bank: usize,
    ways: usize,
    line_shift: u32,
    /// Bank-major block-address tags:
    /// `tags[(bank * sets_per_bank + set) * ways + way]`.
    tags: Vec<u64>,
    /// Packed [`VALID`]/[`DIRTY`]/[`RBIT`]/[`WBIT`] bits, parallel to
    /// `tags`.
    flags: Vec<u8>,
    /// Reused candidate-slot scratch (keeps the access path
    /// allocation-free).
    scratch: Vec<usize>,
    /// Round-robin tie-break counter for victim selection.
    rr: u32,
    stats: CacheStats,
    pending_writebacks: Vec<u64>,
    /// Eviction recorder, tagged with the level this cache plays.
    #[cfg(feature = "obs")]
    obs: Option<(Level, ObsHandle)>,
}

/// The displacement factor bank `bank` uses in a prime-displacement
/// skewed cache: the four paper factors ([`SKEW_DISP_FACTORS`]), with
/// repeats beyond four banks nudged by an even offset so every factor
/// stays odd and distinct.
#[must_use]
pub fn bank_disp_factor(bank: u32) -> u64 {
    SKEW_DISP_FACTORS[bank as usize % SKEW_DISP_FACTORS.len()]
        + 2 * (u64::from(bank) / SKEW_DISP_FACTORS.len() as u64) * 41
}

impl SkewedCache {
    /// Builds a skewed cache from its configuration (boxed per-bank
    /// index functions).
    #[must_use]
    pub fn new(config: SkewedConfig) -> Self {
        match config.hash() {
            SkewHashKind::Xor => Self::with_banks(config, |b, g| {
                Box::new(SkewXorBank::new(g, b)) as Box<dyn SetIndexer>
            }),
            SkewHashKind::PrimeDisplacement => Self::with_banks(config, |b, g| {
                Box::new(SkewDispBank::new(g, bank_disp_factor(b))) as Box<dyn SetIndexer>
            }),
        }
    }
}

impl<B: SetIndexer> SkewedCache<B> {
    /// Builds a skewed cache with a concrete per-bank index function,
    /// monomorphizing every bank's hash into the probe loop. `make` is
    /// called once per bank with `(bank, geometry)`.
    ///
    /// # Panics
    ///
    /// Panics if any bank indexer does not map into exactly
    /// `sets_per_bank` sets, or if the set count cannot be addressed in
    /// 32 bits (a >4G-set configuration fails loudly here instead of
    /// aliasing sets).
    #[must_use]
    pub fn with_banks(config: SkewedConfig, make: impl Fn(u32, Geometry) -> B) -> Self {
        let geom = Geometry::new(config.sets_per_bank());
        let indexers: Vec<B> = (0..config.banks()).map(|b| make(b, geom)).collect();
        for (b, ix) in indexers.iter().enumerate() {
            assert!(
                ix.n_set() == config.sets_per_bank(),
                "bank {b} indexer maps {} sets, config has {}",
                ix.n_set(),
                config.sets_per_bank()
            );
        }
        assert!(
            config.sets_per_bank() < u64::from(NO_HINT),
            "{} sets per bank cannot be addressed in 32 bits",
            config.sets_per_bank()
        );
        let sets_per_bank = usize::try_from(config.sets_per_bank()).expect("sets fit usize");
        let ways = config.ways_per_bank() as usize;
        let total_lines = sets_per_bank
            .checked_mul(config.banks() as usize)
            .and_then(|n| n.checked_mul(ways))
            .expect("bank * set * way count overflows usize");
        Self {
            indexers,
            sets_per_bank,
            ways,
            line_shift: config.line_bytes().trailing_zeros(),
            tags: vec![0; total_lines],
            flags: vec![0; total_lines],
            scratch: Vec::with_capacity(config.banks() as usize * ways),
            rr: 0,
            stats: CacheStats::new(sets_per_bank),
            pending_writebacks: Vec::new(),
            #[cfg(feature = "obs")]
            obs: None,
            config,
        }
    }

    /// Attaches an observability recorder; every eviction is reported to
    /// it tagged with `level` (set index = the victim's bank-0 stats set
    /// is unavailable post-hoc, so the evicting access's bank-0 set is
    /// used — the same axis the per-set miss histogram uses).
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, level: Level, handle: ObsHandle) {
        self.obs = Some((level, handle));
    }

    /// Point-in-time occupancy snapshot: valid lines per (bank, set),
    /// bank-major. Not on the access path.
    #[must_use]
    pub fn occupancy(&self) -> Vec<u64> {
        self.flags
            .chunks(self.ways)
            .map(|set| set.iter().filter(|&&f| f & VALID != 0).count() as u64)
            .collect()
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &SkewedConfig {
        &self.config
    }

    /// Drains the block addresses written back since the last call.
    pub fn take_writebacks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// Narrows an indexer-produced set index to `usize` (lossless:
    /// [`SkewedCache::with_banks`] guarantees `sets_per_bank < 2^32`).
    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn narrow_set(&self, set: u64) -> usize {
        debug_assert!(set < self.config.sets_per_bank(), "bank set out of range");
        set as usize
    }

    /// First storage slot of (bank, set); the set's ways follow
    /// contiguously.
    #[inline]
    fn slot(&self, bank: usize, set: usize) -> usize {
        (bank * self.sets_per_bank + set) * self.ways
    }

    /// Fills `slots` with every candidate line slot of `block` (all ways
    /// of every bank's indexed set) and returns the bank-0 set (the
    /// stats-attribution axis).
    fn collect_candidates(&self, block: u64, slots: &mut Vec<usize>) -> usize {
        slots.clear();
        let mut stat_set = 0usize;
        for (b, ix) in self.indexers.iter().enumerate() {
            let set = self.narrow_set(ix.index(block));
            if b == 0 {
                stat_set = set;
            }
            let base = self.slot(b, set);
            slots.extend(base..base + self.ways);
        }
        stat_set
    }

    /// Picks the victim among the candidate lines (indexes into the
    /// candidate slice).
    fn pick_victim(&mut self, slots: &[usize]) -> usize {
        let n = slots.len();
        // Invalid lines first.
        if let Some(i) = (0..n).find(|&i| self.flags[slots[i]] & VALID == 0) {
            return i;
        }
        let repl = self.config.replacement();
        let class_of = |f: u8| -> u32 {
            match repl {
                SkewReplacement::Enru => u32::from(f & RBIT != 0),
                // NRUNRW priority: (!r,!w) < (!r,w) < (r,!w) < (r,w).
                SkewReplacement::Nrunrw => {
                    (u32::from(f & RBIT != 0) << 1) | u32::from(f & WBIT != 0)
                }
            }
        };
        let best_class = slots
            .iter()
            .map(|&s| class_of(self.flags[s]))
            .min()
            .expect("at least one candidate");
        // Round-robin among the best class.
        self.rr = self.rr.wrapping_add(1);
        let start = self.rr as usize % n;
        for off in 0..n {
            let i = (start + off) % n;
            if class_of(self.flags[slots[i]]) == best_class {
                return i;
            }
        }
        unreachable!("best class is always present")
    }

    /// Clears usage bits of the candidate lines when they saturate, so NRU
    /// information keeps decaying (the "aging" of Seznec's ENRU).
    fn age(&mut self, slots: &[usize], keep: usize) {
        if slots
            .iter()
            .all(|&s| self.flags[s] & VALID == 0 || self.flags[s] & RBIT != 0)
        {
            for (b, &s) in slots.iter().enumerate() {
                if b != keep {
                    self.flags[s] &= !(RBIT | WBIT);
                }
            }
        }
    }

    /// Simulates an access to a block address.
    pub fn access_block(&mut self, block: u64, write: bool) -> bool {
        self.access_block_indexed(block, write).1
    }

    /// Simulates an access to a block address, also returning the bank-0
    /// set for stats attribution (computed once, alongside the probe).
    pub fn access_block_indexed(&mut self, block: u64, write: bool) -> (usize, bool) {
        // The scratch buffer is detached while borrowed so the probe can
        // take `&mut self`; every return path restores it.
        let mut slots = std::mem::take(&mut self.scratch);
        let stat_set = self.collect_candidates(block, &mut slots);
        let hit = self.access_at_candidates(block, write, stat_set, &slots);
        self.scratch = slots;
        (stat_set, hit)
    }

    /// Simulates an access to a byte address, returning `(stat_set, hit)`.
    pub fn access_indexed(&mut self, addr: u64, write: bool) -> (usize, bool) {
        self.access_block_indexed(addr >> self.line_shift, write)
    }

    /// The probe/fill path over an already-collected candidate list.
    fn access_at_candidates(
        &mut self,
        block: u64,
        write: bool,
        stat_set: usize,
        slots: &[usize],
    ) -> bool {
        for (i, &slot) in slots.iter().enumerate() {
            if self.flags[slot] & VALID != 0 && self.tags[slot] == block {
                self.stats.record(stat_set, false, write);
                // NB: dirty is set at fill time only — write hits mark the
                // NRUNRW `w` usage bit but do not re-dirty the line (the
                // behavior the check-battery oracle pins).
                self.flags[slot] |= RBIT | if write { WBIT } else { 0 };
                self.age(slots, i);
                #[cfg(any(debug_assertions, feature = "check"))]
                self.debug_check(block, slots);
                return true;
            }
        }
        self.stats.record(stat_set, true, write);
        let victim_i = self.pick_victim(slots);
        let slot = slots[victim_i];
        let victim_valid = self.flags[slot] & VALID != 0;
        #[cfg(feature = "obs")]
        let evicted_dirty = victim_valid.then_some(self.flags[slot] & DIRTY != 0);
        if victim_valid && self.flags[slot] & DIRTY != 0 {
            self.stats.record_writeback();
            self.pending_writebacks.push(self.tags[slot]);
        }
        #[cfg(feature = "obs")]
        if let (Some((level, h)), Some(dirty)) = (&self.obs, evicted_dirty) {
            h.borrow_mut().eviction(*level, stat_set as u32, dirty);
        }
        self.tags[slot] = block;
        self.flags[slot] = VALID | RBIT | if write { DIRTY | WBIT } else { 0 };
        self.age(slots, victim_i);
        #[cfg(any(debug_assertions, feature = "check"))]
        self.debug_check(block, slots);
        false
    }

    /// Checks every runtime invariant of the skewed cache: stat
    /// integrity, evictions bounded by fills, every valid line sitting in
    /// the set its bank's hash assigns it, and no block resident twice.
    ///
    /// Debug builds (and release builds with the `check` feature) run the
    /// accessed candidate set's checks after every access.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.stats.validate()?;
        if self.stats.writebacks > self.stats.misses {
            return Err(format!(
                "writebacks ({}) exceed misses ({}): more evictions than fills",
                self.stats.writebacks, self.stats.misses
            ));
        }
        let mut seen = std::collections::HashMap::new();
        for i in 0..self.tags.len() {
            if self.flags[i] & VALID == 0 {
                continue;
            }
            let block = self.tags[i];
            let bank = i / (self.sets_per_bank * self.ways);
            let set = (i / self.ways) % self.sets_per_bank;
            let home = self.narrow_set(self.indexers[bank].index(block));
            if home != set {
                return Err(format!(
                    "bank {bank} set {set}: block {block:#x} belongs in set {home}"
                ));
            }
            if let Some(prev) = seen.insert(block, (bank, set)) {
                return Err(format!(
                    "block {block:#x} resident twice: bank {} set {} and bank {bank} set {set}",
                    prev.0, prev.1
                ));
            }
        }
        Ok(())
    }

    /// Per-access invariant hook: O(1) stat checks plus "the accessed
    /// block is resident exactly once among its candidates".
    #[cfg(any(debug_assertions, feature = "check"))]
    fn debug_check(&self, block: u64, slots: &[usize]) {
        assert!(
            self.stats.hits + self.stats.misses == self.stats.accesses
                && self.stats.writebacks <= self.stats.misses,
            "stat integrity violated: {:?}",
            (
                self.stats.hits,
                self.stats.misses,
                self.stats.accesses,
                self.stats.writebacks
            )
        );
        let copies = slots
            .iter()
            .filter(|&&s| self.flags[s] & VALID != 0 && self.tags[s] == block)
            .count();
        assert!(
            copies == 1,
            "skewed invariant violated: block {block:#x} resident {copies} times \
             among its candidates"
        );
    }

    /// The bank-0 set index `addr` maps to (the stats-attribution axis).
    #[must_use]
    pub fn stat_set_of(&self, addr: u64) -> usize {
        self.narrow_set(self.indexers[0].index(addr >> self.line_shift))
    }

    /// Returns `true` if `addr`'s block is resident in any bank.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        self.indexers.iter().enumerate().any(|(b, ix)| {
            let set = self.narrow_set(ix.index(block));
            let base = self.slot(b, set);
            (base..base + self.ways).any(|s| self.flags[s] & VALID != 0 && self.tags[s] == block)
        })
    }
}

impl<B: SetIndexer> CacheSim for SkewedCache<B> {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        self.access_block(addr >> self.line_shift, write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_skew(hash: SkewHashKind) -> SkewedCache {
        SkewedCache::new(SkewedConfig::new(512 * 1024, 4, 64, hash))
    }

    /// Plants a (possibly corrupt) line directly in the SoA arrays.
    fn seed_line(c: &mut SkewedCache, slot: usize, block: u64, flags: u8) {
        c.tags[slot] = block;
        c.flags[slot] = flags;
    }

    #[test]
    fn hit_after_fill_in_any_bank() {
        let mut c = paper_skew(SkewHashKind::Xor);
        assert!(!c.access(0x12345, false));
        assert!(c.access(0x12345, false));
        assert!(c.contains(0x12345));
    }

    #[test]
    fn skewing_absorbs_same_set_conflicts() {
        // 16 blocks that all conflict in a traditional 2048-set cache
        // (stride 2048 blocks) fit easily across four skewed banks.
        for hash in [SkewHashKind::Xor, SkewHashKind::PrimeDisplacement] {
            let mut c = paper_skew(hash);
            for _ in 0..10 {
                for i in 0..16u64 {
                    c.access(i * 2048 * 64, false);
                }
            }
            let mr = c.stats().miss_rate();
            assert!(mr < 0.25, "{hash:?}: miss rate {mr}");
        }
    }

    #[test]
    fn capacity_is_respected() {
        // Way more distinct blocks than lines: almost everything misses.
        let mut c = paper_skew(SkewHashKind::PrimeDisplacement);
        let lines = (512 * 1024 / 64) as u64;
        for i in 0..4 * lines {
            c.access(i * 64, false);
        }
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn writebacks_flow() {
        let mut c = SkewedCache::new(SkewedConfig::new(
            4 * 2 * 64, // 2 banks x 2 sets
            2,
            64,
            SkewHashKind::Xor,
        ));
        // Fill far more dirty blocks than capacity.
        for i in 0..64u64 {
            c.access(i * 64, true);
        }
        assert!(c.stats().writebacks > 0);
        assert!(!c.take_writebacks().is_empty());
    }

    #[test]
    fn nrunrw_prefers_clean_unreferenced() {
        let mut c = SkewedCache::new(
            SkewedConfig::new(4 * 2 * 64, 2, 64, SkewHashKind::Xor)
                .with_replacement(SkewReplacement::Nrunrw),
        );
        for i in 0..64u64 {
            c.access(i * 64, i % 2 == 0);
        }
        // Smoke: policy runs without violating capacity or determinism.
        let m1 = c.stats().misses;
        assert!(m1 > 0);
    }

    #[test]
    fn two_way_banks_match_seznec_original() {
        // Seznec's [18] design: 2 banks x 2 ways. Capacity must be
        // preserved and conflicts absorbed at least as well as with
        // direct-mapped banks of the same total size.
        let cfg = SkewedConfig::new(512 * 1024, 2, 64, SkewHashKind::Xor).with_ways_per_bank(2);
        assert_eq!(cfg.sets_per_bank(), 2048);
        let mut c = SkewedCache::new(cfg);
        for _ in 0..10 {
            for i in 0..16u64 {
                c.access(i * 2048 * 64, false);
            }
        }
        assert!(c.stats().miss_rate() < 0.25, "{}", c.stats().miss_rate());
    }

    #[test]
    fn way_associative_banks_respect_capacity() {
        let cfg = SkewedConfig::new(8 * 1024, 2, 64, SkewHashKind::PrimeDisplacement)
            .with_ways_per_bank(2); // 2 banks x 32 sets x 2 ways = 128 lines
        let mut c = SkewedCache::new(cfg);
        for i in 0..4096u64 {
            c.access(i * 64, false);
        }
        assert!(c.stats().miss_rate() > 0.9);
        // And a just-filled block is resident.
        c.access(77 * 64, false);
        assert!(c.contains(77 * 64));
    }

    #[test]
    fn validate_accepts_a_long_run() {
        let mut c = paper_skew(SkewHashKind::Xor);
        for i in 0..5_000u64 {
            c.access((i * 7919) % (1 << 22), i % 3 == 0);
        }
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_fires_on_seeded_double_residency() {
        let mut c = paper_skew(SkewHashKind::Xor);
        c.access(0x12345 * 64, false);
        // Corrupt: plant a second copy of the resident block in its
        // bank-1 home set (a correct fill would never duplicate it).
        let block = 0x12345u64;
        let set = c.indexers[1].index(block) as usize;
        let slot = c.slot(1, set);
        seed_line(&mut c, slot, block, VALID | RBIT);
        let err = c.validate().unwrap_err();
        assert!(err.contains("resident twice"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_misplaced_block() {
        let mut c = paper_skew(SkewHashKind::PrimeDisplacement);
        c.access(0, false);
        // Corrupt: a block parked in a set its hash never produces.
        let block = 0xDEADu64;
        let wrong_set = (c.indexers[2].index(block) as usize + 1) % c.sets_per_bank;
        let slot = c.slot(2, wrong_set);
        seed_line(&mut c, slot, block, VALID);
        let err = c.validate().unwrap_err();
        assert!(err.contains("belongs in set"), "{err}");
    }

    #[cfg(any(debug_assertions, feature = "check"))]
    #[test]
    #[should_panic(expected = "skewed invariant violated")]
    fn per_access_check_fires_on_seeded_duplicate() {
        let mut c = paper_skew(SkewHashKind::Xor);
        let block = 0x777u64;
        c.access_block(block, false);
        let set = c.indexers[1].index(block) as usize;
        let slot = c.slot(1, set);
        seed_line(&mut c, slot, block, VALID | RBIT);
        // A re-reference sees the block twice among its candidates.
        c.access_block(block, false);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = paper_skew(SkewHashKind::PrimeDisplacement);
            for i in 0..10_000u64 {
                c.access((i * 7919) % (1 << 22), i % 3 == 0);
            }
            (c.stats().hits, c.stats().misses, c.stats().writebacks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn typed_banks_match_boxed_banks_bit_for_bit() {
        let cfg = SkewedConfig::new(64 * 1024, 4, 64, SkewHashKind::PrimeDisplacement);
        let mut boxed = SkewedCache::new(cfg);
        let mut typed =
            SkewedCache::with_banks(cfg, |b, g| SkewDispBank::new(g, bank_disp_factor(b)));
        for i in 0..20_000u64 {
            let addr = (i * 7919) % (1 << 24);
            let write = i % 3 == 0;
            assert_eq!(boxed.access(addr, write), typed.access(addr, write), "{i}");
            assert_eq!(boxed.take_writebacks(), typed.take_writebacks(), "{i}");
        }
        assert_eq!(boxed.stats(), typed.stats());
    }
}
