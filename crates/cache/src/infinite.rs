//! An unbounded cache for compulsory-miss accounting.

use std::collections::HashSet;

use crate::{CacheSim, CacheStats};

/// A cache of unbounded capacity: misses only on the first touch of each
/// block. Its miss count is exactly the *compulsory* (cold) miss count of
/// the trace, the baseline of the three-C miss taxonomy used to separate
/// the paper's conflict misses from capacity misses:
///
/// * compulsory = misses of [`InfiniteCache`],
/// * capacity = misses of [`FullyAssociative`](crate::FullyAssociative) −
///   compulsory,
/// * conflict = misses of the set-associative organization − misses of
///   the fully-associative one.
///
/// # Examples
///
/// ```
/// use primecache_cache::{CacheSim, InfiniteCache};
///
/// let mut c = InfiniteCache::new(64);
/// assert!(!c.access(0x1000, false));
/// assert!(c.access(0x1000, false));
/// assert!(c.access(0x1038, false)); // same 64-B block
/// ```
#[derive(Debug)]
pub struct InfiniteCache {
    line_shift: u32,
    resident: HashSet<u64>,
    stats: CacheStats,
}

impl InfiniteCache {
    /// Creates an unbounded cache with `line_bytes` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[must_use]
    pub fn new(line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            line_shift: line_bytes.trailing_zeros(),
            resident: HashSet::new(),
            stats: CacheStats::new(1),
        }
    }

    /// Number of distinct blocks touched so far.
    #[must_use]
    pub fn footprint_blocks(&self) -> usize {
        self.resident.len()
    }
}

impl CacheSim for InfiniteCache {
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let block = addr >> self.line_shift;
        let hit = !self.resident.insert(block);
        self.stats.record(0, !hit, write);
        hit
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_equal_distinct_blocks() {
        let mut c = InfiniteCache::new(64);
        for round in 0..3 {
            let _ = round;
            for i in 0..100u64 {
                c.access(i * 64, false);
            }
        }
        assert_eq!(c.stats().misses, 100);
        assert_eq!(c.stats().accesses, 300);
        assert_eq!(c.footprint_blocks(), 100);
    }

    #[test]
    fn never_evicts() {
        let mut c = InfiniteCache::new(64);
        for i in 0..100_000u64 {
            c.access(i * 64, false);
        }
        assert!(c.access(0, false), "first block must still be resident");
    }

    #[test]
    fn sub_block_accesses_share_a_line() {
        let mut c = InfiniteCache::new(64);
        assert!(!c.access(128, false));
        assert!(c.access(129, true));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().writes, 1);
    }
}
