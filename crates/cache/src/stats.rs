//! Cache statistics.

use serde::{Deserialize, Serialize};

/// Counters and histograms accumulated by a cache simulation.
///
/// Per-set histograms drive the paper's §4 uniformity classification
/// (`stdev(accesses)/mean > 0.5`) and the Fig. 13 miss-distribution plots.
///
/// # Examples
///
/// ```
/// use primecache_cache::CacheStats;
///
/// let mut s = CacheStats::new(4);
/// s.record(2, true, false);
/// s.record(2, false, false);
/// assert_eq!(s.accesses, 2);
/// assert_eq!(s.misses, 1);
/// assert_eq!(s.set_accesses[2], 2);
/// assert_eq!(s.set_misses[2], 1);
/// assert!((s.miss_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Store accesses (subset of `accesses`).
    pub writes: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Demand accesses per set.
    pub set_accesses: Vec<u64>,
    /// Demand misses per set.
    pub set_misses: Vec<u64>,
}

impl CacheStats {
    /// Creates zeroed statistics for a cache with `n_set` sets.
    #[must_use]
    pub fn new(n_set: usize) -> Self {
        Self {
            accesses: 0,
            hits: 0,
            misses: 0,
            writes: 0,
            writebacks: 0,
            set_accesses: vec![0; n_set],
            set_misses: vec![0; n_set],
        }
    }

    /// Records one demand access to `set`.
    pub fn record(&mut self, set: usize, miss: bool, write: bool) {
        self.accesses += 1;
        self.set_accesses[set] += 1;
        if write {
            self.writes += 1;
        }
        if miss {
            self.misses += 1;
            self.set_misses[set] += 1;
        } else {
            self.hits += 1;
        }
    }

    /// Records a dirty-line writeback.
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Checks the counter-integrity invariants that every cache
    /// organization must maintain: `hits + misses == accesses`,
    /// `writes <= accesses`, and the per-set histograms summing to the
    /// scalar counters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.hits + self.misses != self.accesses {
            return Err(format!(
                "hits ({}) + misses ({}) != accesses ({})",
                self.hits, self.misses, self.accesses
            ));
        }
        if self.writes > self.accesses {
            return Err(format!(
                "writes ({}) > accesses ({})",
                self.writes, self.accesses
            ));
        }
        let set_acc: u64 = self.set_accesses.iter().sum();
        if set_acc != self.accesses {
            return Err(format!(
                "per-set accesses sum to {set_acc}, scalar counter is {}",
                self.accesses
            ));
        }
        let set_miss: u64 = self.set_misses.iter().sum();
        if set_miss != self.misses {
            return Err(format!(
                "per-set misses sum to {set_miss}, scalar counter is {}",
                self.misses
            ));
        }
        for (i, (&a, &m)) in self.set_accesses.iter().zip(&self.set_misses).enumerate() {
            if m > a {
                return Err(format!("set {i}: misses ({m}) > accesses ({a})"));
            }
        }
        Ok(())
    }

    /// Miss rate in `\[0, 1\]`; 0.0 when no accesses were made.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Zeroes every counter and histogram, keeping the set count.
    pub fn reset(&mut self) {
        let n = self.set_accesses.len();
        *self = CacheStats::new(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_consistent() {
        let mut s = CacheStats::new(8);
        for i in 0..100usize {
            s.record(i % 8, i % 3 == 0, i % 5 == 0);
        }
        assert_eq!(s.accesses, 100);
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.set_accesses.iter().sum::<u64>(), s.accesses);
        assert_eq!(s.set_misses.iter().sum::<u64>(), s.misses);
    }

    #[test]
    fn validate_accepts_recorded_history() {
        let mut s = CacheStats::new(8);
        for i in 0..100usize {
            s.record(i % 8, i % 3 == 0, i % 5 == 0);
        }
        s.record_writeback();
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn validate_fires_on_seeded_hit_miss_imbalance() {
        let mut s = CacheStats::new(4);
        s.record(0, true, false);
        s.hits += 1; // corrupt: a hit with no access
        let err = s.validate().unwrap_err();
        assert!(err.contains("!= accesses"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_histogram_drift() {
        let mut s = CacheStats::new(4);
        s.record(1, false, false);
        s.set_accesses[2] += 1; // corrupt: histogram out of sync
        let err = s.validate().unwrap_err();
        assert!(err.contains("per-set accesses"), "{err}");
    }

    #[test]
    fn validate_fires_on_seeded_per_set_excess() {
        let mut s = CacheStats::new(4);
        s.record(3, true, false);
        s.record(3, false, false);
        // Corrupt one set pair in a sum-preserving way.
        s.set_misses[3] += 1;
        s.misses += 1;
        s.hits -= 1;
        s.set_accesses[3] -= 1;
        s.set_accesses[0] += 1;
        let err = s.validate().unwrap_err();
        assert!(err.contains("set 3"), "{err}");
    }

    #[test]
    fn miss_rate_handles_empty() {
        assert_eq!(CacheStats::new(4).miss_rate(), 0.0);
    }

    #[test]
    fn reset_keeps_shape() {
        let mut s = CacheStats::new(16);
        s.record(3, true, true);
        s.record_writeback();
        s.reset();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.writebacks, 0);
        assert_eq!(s.set_accesses.len(), 16);
    }
}
