//! Property-based tests of the cache simulators against naive reference
//! models.

use primecache_cache::{
    Cache, CacheConfig, CacheSim, FullyAssociative, ReplacementKind, SkewHashKind, SkewedCache,
    SkewedConfig,
};
use primecache_check::prop::{forall, Rng};
use primecache_core::index::HashKind;

/// A naive reference: set-associative LRU cache modelled with Vec scans.
struct RefCache {
    n_set: u64,
    assoc: usize,
    line: u64,
    /// Per set: blocks in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(n_set: u64, assoc: usize, line: u64) -> Self {
        Self {
            n_set,
            assoc,
            line,
            sets: (0..n_set).map(|_| Vec::new()).collect(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let block = addr / self.line;
        let set = &mut self.sets[(block % self.n_set) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.insert(0, block);
            true
        } else {
            set.insert(0, block);
            set.truncate(self.assoc);
            false
        }
    }
}

fn addr_stream(rng: &mut Rng) -> Vec<u64> {
    rng.vec(1, 600, |r| r.range_u64(0, 1 << 16))
}

#[test]
fn lru_cache_matches_reference_model() {
    forall(
        "lru_cache_matches_reference_model",
        64,
        addr_stream,
        |addrs: &Vec<u64>| {
            // Tiny cache so evictions are frequent: 8 sets x 2 ways x 64 B.
            let mut sim = Cache::new(CacheConfig::new(1024, 2, 64));
            let mut reference = RefCache::new(8, 2, 64);
            for (i, &a) in addrs.iter().enumerate() {
                let hit_sim = sim.access(a, false);
                let hit_ref = reference.access(a);
                assert_eq!(hit_sim, hit_ref, "access #{} to {:#x}", i, a);
            }
        },
    );
}

#[test]
fn pmod_cache_matches_reference_with_prime_sets() {
    forall(
        "pmod_cache_matches_reference_with_prime_sets",
        64,
        addr_stream,
        |addrs: &Vec<u64>| {
            // 16 physical sets -> 13 prime sets, 2 ways.
            let mut sim =
                Cache::new(CacheConfig::new(2048, 2, 64).with_hash(HashKind::PrimeModulo));
            let mut reference = RefCache::new(13, 2, 64);
            for &a in addrs {
                assert_eq!(sim.access(a, false), reference.access(a));
            }
        },
    );
}

#[test]
fn fully_associative_matches_reference() {
    forall(
        "fully_associative_matches_reference",
        64,
        addr_stream,
        |addrs: &Vec<u64>| {
            let mut sim = FullyAssociative::new(16 * 64, 64);
            let mut reference = RefCache::new(1, 16, 64);
            for &a in addrs {
                assert_eq!(sim.access(a, false), reference.access(a));
            }
        },
    );
}

#[test]
fn stats_are_always_consistent() {
    forall(
        "stats_are_always_consistent",
        64,
        |rng| (addr_stream(rng), rng.next_u64()),
        |&(ref addrs, writes)| {
            let mut c = Cache::new(CacheConfig::new(4096, 4, 64).with_hash(HashKind::Xor));
            for (i, &a) in addrs.iter().enumerate() {
                c.access(a, (writes >> (i % 64)) & 1 == 1);
            }
            let s = c.stats();
            assert_eq!(s.hits + s.misses, s.accesses);
            assert_eq!(s.accesses, addrs.len() as u64);
            assert_eq!(s.set_accesses.iter().sum::<u64>(), s.accesses);
            assert_eq!(s.set_misses.iter().sum::<u64>(), s.misses);
            assert!(s.writebacks <= s.writes);
        },
    );
}

#[test]
fn skewed_cache_never_loses_blocks_it_just_filled() {
    forall(
        "skewed_cache_never_loses_blocks_it_just_filled",
        64,
        addr_stream,
        |addrs: &Vec<u64>| {
            let mut c = SkewedCache::new(SkewedConfig::new(4096, 4, 64, SkewHashKind::Xor));
            for &a in addrs {
                c.access(a, false);
                assert!(c.contains(a), "block just inserted must be resident");
            }
        },
    );
}

#[test]
fn miss_count_never_below_distinct_blocks_over_capacity() {
    forall(
        "miss_count_never_below_distinct_blocks_over_capacity",
        64,
        addr_stream,
        |addrs: &Vec<u64>| {
            // Any cache must miss at least once per distinct block (cold).
            let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
            let distinct: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 64).collect();
            for &a in addrs {
                c.access(a, false);
            }
            assert!(c.stats().misses >= distinct.len() as u64);
        },
    );
}

#[test]
fn replacement_policies_all_bound_capacity() {
    forall(
        "replacement_policies_all_bound_capacity",
        64,
        addr_stream,
        |addrs: &Vec<u64>| {
            for kind in ReplacementKind::ALL {
                let mut c = Cache::new(CacheConfig::new(1024, 2, 64).with_replacement(kind));
                for &a in addrs {
                    c.access(a, false);
                }
                // Hits can never exceed total minus distinct-cold misses.
                let distinct: std::collections::HashSet<u64> =
                    addrs.iter().map(|a| a / 64).collect();
                assert!(c.stats().hits <= (addrs.len() - distinct.len().min(addrs.len())) as u64);
            }
        },
    );
}
