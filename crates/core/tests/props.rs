//! Property-based tests for the index functions, hardware models and
//! metrics.

use primecache_core::hw::{
    mersenne_fold, IterativeLinear, Polynomial, SubtractSelect, TlbAssist, Wired2039,
};
use primecache_core::index::{
    Geometry, HashKind, PrimeDisplacement, PrimeModulo, SetIndexer, SkewDispBank, SkewXorBank,
};
use primecache_core::metrics::{balance_of_counts, concentration, uniformity_ratio};
use proptest::prelude::*;

fn geometries() -> impl Strategy<Value = Geometry> {
    (4u32..=14).prop_map(|k| Geometry::new(1 << k))
}

proptest! {
    #[test]
    fn every_indexer_maps_into_range(geom in geometries(), block: u64) {
        for kind in HashKind::ALL {
            let idx = kind.build(geom);
            prop_assert!(idx.index(block) < idx.n_set(), "{}", idx.name());
        }
        for bank in 0..4u32 {
            let skw = SkewXorBank::new(geom, bank);
            prop_assert!(skw.index(block) < skw.n_set());
        }
        for factor in [9u64, 19, 31, 37] {
            let skd = SkewDispBank::new(geom, factor);
            prop_assert!(skd.index(block) < skd.n_set());
        }
    }

    #[test]
    fn pmod_equals_reference_modulo(geom in geometries(), block: u64) {
        let pmod = PrimeModulo::new(geom);
        prop_assert_eq!(pmod.index(block), block % pmod.n_set());
    }

    #[test]
    fn pdisp_equals_equation_6(geom in geometries(), block: u64, f in 0u64..1000) {
        let factor = 2 * f + 1; // any odd factor
        let pd = PrimeDisplacement::new(geom, factor);
        let expect = factor
            .wrapping_mul(geom.tag(block))
            .wrapping_add(geom.x(block))
            % geom.n_set_phys();
        prop_assert_eq!(pd.index(block), expect);
    }

    #[test]
    fn polynomial_hw_equals_reference(geom in geometries(), block: u64) {
        let unit = Polynomial::new(geom);
        prop_assert_eq!(unit.reduce(block), block % unit.n_set());
    }

    #[test]
    fn iterative_hw_equals_reference(geom in geometries(), block: u64, t in 0u32..9) {
        let unit = IterativeLinear::new(geom, t);
        prop_assert_eq!(unit.reduce(block), block % unit.n_set());
    }

    #[test]
    fn subtract_select_equals_modulo_in_range(n_set in 1u64..100_000, inputs in 1u32..64) {
        let ss = SubtractSelect::new(n_set, inputs);
        let cap = ss.capacity();
        // Probe the boundaries of every subtraction step.
        for k in 0..u64::from(inputs) {
            for x in [k * n_set, k * n_set + n_set - 1] {
                if x < cap {
                    prop_assert_eq!(ss.reduce(x), x % n_set);
                }
            }
        }
        prop_assert_eq!(ss.try_reduce(cap), None);
    }

    #[test]
    fn mersenne_fold_equals_reference(a: u64, k in 2u32..32) {
        let m = (1u64 << k) - 1;
        prop_assert_eq!(mersenne_fold(a, k), a % m);
    }

    #[test]
    fn wired_unit_equals_reference(block in 0u64..(1 << 26)) {
        prop_assert_eq!(Wired2039::index(block), block % 2039);
    }

    #[test]
    fn tlb_assist_equals_reference(addr: u64, page_shift in 12u32..22) {
        let tlb = TlbAssist::new(2048, 1 << page_shift, 64);
        prop_assert_eq!(tlb.index_addr(addr), (addr / 64) % 2039);
    }

    #[test]
    fn all_hw_models_agree(geom in geometries(), block: u64) {
        let poly = Polynomial::new(geom);
        let iter = IterativeLinear::new(geom, 0);
        let pmod = PrimeModulo::new(geom);
        let a = poly.reduce(block);
        prop_assert_eq!(a, iter.reduce(block));
        prop_assert_eq!(a, pmod.index(block));
    }

    #[test]
    fn balance_is_at_least_the_even_lower_bound(counts in prop::collection::vec(0u64..50, 2..256)) {
        let total: u64 = counts.iter().sum();
        prop_assume!(total > 0);
        let b = balance_of_counts(&counts);
        // The perfectly even distribution minimizes the weight sum, so
        // every histogram scores at least the even closed form.
        let n = counts.len() as f64;
        let m = total as f64;
        let even_numer = n * ((m / n) * (m / n + 1.0) / 2.0);
        let denom = m / (2.0 * n) * (m + 2.0 * n - 1.0);
        prop_assert!(b >= even_numer / denom - 1e-9, "b = {b}");
    }

    #[test]
    fn concentration_is_nonnegative_and_finite(
        stride in 1u64..5000,
        m in 2usize..2000,
    ) {
        let geom = Geometry::new(256);
        let idx = PrimeModulo::new(geom);
        let addrs: Vec<u64> = (0..m as u64).map(|i| i * stride).collect();
        let c = concentration(&idx, addrs.iter().copied());
        prop_assert!(c >= 0.0 && c.is_finite());
    }

    #[test]
    fn uniformity_is_scale_invariant(counts in prop::collection::vec(1u64..100, 2..64), k in 2u64..50) {
        let cv1 = uniformity_ratio(&counts);
        let scaled: Vec<u64> = counts.iter().map(|&c| c * k).collect();
        let cv2 = uniformity_ratio(&scaled);
        prop_assert!((cv1 - cv2).abs() < 1e-9);
    }
}
