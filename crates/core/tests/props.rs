//! Property-based tests for the index functions, hardware models and
//! metrics.

use primecache_check::prop::{forall, Rng};
use primecache_core::hw::{
    mersenne_fold, IterativeLinear, Polynomial, SubtractSelect, TlbAssist, Wired2039,
};
use primecache_core::index::{
    Geometry, HashKind, PrimeDisplacement, PrimeModulo, SetIndexer, SkewDispBank, SkewXorBank,
};
use primecache_core::metrics::{balance_of_counts, concentration, uniformity_ratio};

/// A random power-of-two geometry between 2^4 and 2^14 sets, encoded by
/// its exponent so counterexamples shrink toward small caches.
fn arb_geom_exp(rng: &mut Rng) -> u32 {
    rng.range_u32(4, 15)
}

#[test]
fn every_indexer_maps_into_range() {
    forall(
        "every_indexer_maps_into_range",
        256,
        |rng| (arb_geom_exp(rng), rng.next_u64()),
        |&(k, block)| {
            let geom = Geometry::new(1 << k);
            for kind in HashKind::ALL {
                let idx = kind.build(geom);
                assert!(idx.index(block) < idx.n_set(), "{}", idx.name());
            }
            for bank in 0..4u32 {
                let skw = SkewXorBank::new(geom, bank);
                assert!(skw.index(block) < skw.n_set());
            }
            for factor in [9u64, 19, 31, 37] {
                let skd = SkewDispBank::new(geom, factor);
                assert!(skd.index(block) < skd.n_set());
            }
        },
    );
}

#[test]
fn pmod_equals_reference_modulo() {
    forall(
        "pmod_equals_reference_modulo",
        256,
        |rng| (arb_geom_exp(rng), rng.next_u64()),
        |&(k, block)| {
            let pmod = PrimeModulo::new(Geometry::new(1 << k));
            assert_eq!(pmod.index(block), block % pmod.n_set());
        },
    );
}

#[test]
fn pdisp_equals_equation_6() {
    forall(
        "pdisp_equals_equation_6",
        256,
        |rng| (arb_geom_exp(rng), rng.next_u64(), rng.range_u64(0, 1000)),
        |&(k, block, f)| {
            let geom = Geometry::new(1 << k);
            let factor = 2 * f + 1; // any odd factor
            let pd = PrimeDisplacement::new(geom, factor);
            let expect = factor
                .wrapping_mul(geom.tag(block))
                .wrapping_add(geom.x(block))
                % geom.n_set_phys();
            assert_eq!(pd.index(block), expect);
        },
    );
}

#[test]
fn polynomial_hw_equals_reference() {
    forall(
        "polynomial_hw_equals_reference",
        256,
        |rng| (arb_geom_exp(rng), rng.next_u64()),
        |&(k, block)| {
            let unit = Polynomial::new(Geometry::new(1 << k));
            assert_eq!(unit.reduce(block), block % unit.n_set());
        },
    );
}

#[test]
fn iterative_hw_equals_reference() {
    forall(
        "iterative_hw_equals_reference",
        256,
        |rng| (arb_geom_exp(rng), rng.next_u64(), rng.range_u32(0, 9)),
        |&(k, block, t)| {
            let unit = IterativeLinear::new(Geometry::new(1 << k), t);
            assert_eq!(unit.reduce(block), block % unit.n_set());
        },
    );
}

#[test]
fn subtract_select_equals_modulo_in_range() {
    forall(
        "subtract_select_equals_modulo_in_range",
        256,
        |rng| (rng.range_u64(1, 100_000), rng.range_u32(1, 64)),
        |&(n_set, inputs)| {
            let ss = SubtractSelect::new(n_set, inputs);
            let cap = ss.capacity();
            // Probe the boundaries of every subtraction step.
            for k in 0..u64::from(inputs) {
                for x in [k * n_set, k * n_set + n_set - 1] {
                    if x < cap {
                        assert_eq!(ss.reduce(x), x % n_set);
                    }
                }
            }
            assert_eq!(ss.try_reduce(cap), None);
        },
    );
}

#[test]
fn mersenne_fold_equals_reference() {
    forall(
        "mersenne_fold_equals_reference",
        256,
        |rng| (rng.next_u64(), rng.range_u32(2, 32)),
        |&(a, k)| {
            let m = (1u64 << k) - 1;
            assert_eq!(mersenne_fold(a, k), a % m);
        },
    );
}

#[test]
fn wired_unit_equals_reference() {
    forall(
        "wired_unit_equals_reference",
        256,
        |rng| rng.range_u64(0, 1 << 26),
        |&block| assert_eq!(Wired2039::index(block), block % 2039),
    );
}

#[test]
fn tlb_assist_equals_reference() {
    forall(
        "tlb_assist_equals_reference",
        256,
        |rng| (rng.next_u64(), rng.range_u32(12, 22)),
        |&(addr, page_shift)| {
            let tlb = TlbAssist::new(2048, 1 << page_shift, 64);
            assert_eq!(tlb.index_addr(addr), (addr / 64) % 2039);
        },
    );
}

#[test]
fn all_hw_models_agree() {
    forall(
        "all_hw_models_agree",
        256,
        |rng| (arb_geom_exp(rng), rng.next_u64()),
        |&(k, block)| {
            let geom = Geometry::new(1 << k);
            let poly = Polynomial::new(geom);
            let iter = IterativeLinear::new(geom, 0);
            let pmod = PrimeModulo::new(geom);
            let a = poly.reduce(block);
            assert_eq!(a, iter.reduce(block));
            assert_eq!(a, pmod.index(block));
        },
    );
}

#[test]
fn balance_is_at_least_the_even_lower_bound() {
    forall(
        "balance_is_at_least_the_even_lower_bound",
        256,
        |rng| rng.vec(2, 256, |r| r.range_u64(0, 50)),
        |counts: &Vec<u64>| {
            let total: u64 = counts.iter().sum();
            // Shrinking may propose degenerate histograms; skip them like
            // the generator's bounds would.
            if counts.len() < 2 || total == 0 {
                return;
            }
            let b = balance_of_counts(counts);
            // The perfectly even distribution minimizes the weight sum, so
            // every histogram scores at least the even closed form.
            let n = counts.len() as f64;
            let m = total as f64;
            let even_numer = n * ((m / n) * (m / n + 1.0) / 2.0);
            let denom = m / (2.0 * n) * (m + 2.0 * n - 1.0);
            assert!(b >= even_numer / denom - 1e-9, "b = {b}");
        },
    );
}

#[test]
fn concentration_is_nonnegative_and_finite() {
    forall(
        "concentration_is_nonnegative_and_finite",
        256,
        |rng| (rng.range_u64(1, 5000), rng.range_usize(2, 2000)),
        |&(stride, m)| {
            let geom = Geometry::new(256);
            let idx = PrimeModulo::new(geom);
            let addrs: Vec<u64> = (0..m as u64).map(|i| i * stride).collect();
            let c = concentration(&idx, addrs.iter().copied());
            assert!(c >= 0.0 && c.is_finite());
        },
    );
}

#[test]
fn uniformity_is_scale_invariant() {
    forall(
        "uniformity_is_scale_invariant",
        256,
        |rng| {
            (
                rng.vec(2, 64, |r| r.range_u64(1, 100)),
                rng.range_u64(2, 50),
            )
        },
        |&(ref counts, k)| {
            if counts.len() < 2 || counts.contains(&0) {
                return;
            }
            let cv1 = uniformity_ratio(counts);
            let scaled: Vec<u64> = counts.iter().map(|&c| c * k).collect();
            let cv2 = uniformity_ratio(&scaled);
            assert!((cv1 - cv2).abs() < 1e-9);
        },
    );
}
