//! Black-box conflict probing of set-index functions.
//!
//! The attack engine (`crates/attack`) never reads an index function —
//! it only *observes a cache*: feed a short trace of block addresses,
//! count the misses. This module defines that observation interface
//! ([`ProbeOracle`]) plus a reference implementation over any
//! [`SetIndexer`] ([`ModelOracle`]) used by the check battery to fuzz
//! recovery against ground-truth functions at scale. The simulator-backed
//! implementation (probing real `primecache-cache` organizations) lives
//! in `primecache_sim::oracle`.
//!
//! Two derived observations cover everything recovery and eviction-set
//! construction need, and both follow from one fact about a single cold
//! pass over *distinct* blocks: every block's first access misses
//! unconditionally, so the only informative access is a **re-access**.
//!
//! * [`ProbeOracle::same_set`] — trace `[a, b, a]` against a
//!   direct-mapped (associativity 1) probe configuration: the final `a`
//!   misses iff `b` evicted it, i.e. iff `a` and `b` share a set.
//! * [`ProbeOracle::evicts`] — trace `[v, c₁..cₘ, v]` at the *native*
//!   associativity `W`: the candidates contribute exactly `m` cold
//!   misses, so the total reaches `m + 2` iff at least `W` candidates
//!   landed in `v`'s set and pushed `v` out (LRU).

use crate::index::SetIndexer;

/// Cumulative cost of a probing campaign: `probes` is the number of
/// crafted traces run (each against a cold cache), `refs` the total
/// simulated references those traces contained. Both are the attacker's
/// budget currency; reports surface them per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCost {
    /// Crafted probe traces run.
    pub probes: u64,
    /// Simulated references across all probe traces.
    pub refs: u64,
}

impl ProbeCost {
    /// The cost delta since `earlier` (which must be a prefix of `self`).
    #[must_use]
    pub fn since(self, earlier: ProbeCost) -> ProbeCost {
        ProbeCost {
            probes: self.probes - earlier.probes,
            refs: self.refs - earlier.refs,
        }
    }
}

impl std::ops::Add for ProbeCost {
    type Output = ProbeCost;
    fn add(self, rhs: ProbeCost) -> ProbeCost {
        ProbeCost {
            probes: self.probes + rhs.probes,
            refs: self.refs + rhs.refs,
        }
    }
}

/// A black-box cache an attacker can probe with crafted block-address
/// traces, observing only the number of misses.
///
/// Implementations run each probe against a **cold** cache: no state is
/// carried from one probe to the next (the attacker can always achieve
/// this by flushing with junk accesses; charging for it would scale
/// every scheme's cost by the same constant, so the models leave it
/// out).
pub trait ProbeOracle {
    /// Address bits of the probing window: probes use block addresses
    /// below `2^in_bits()`.
    fn in_bits(&self) -> u32;

    /// Physical set count of the probed cache — public geometry, not a
    /// secret (an attacker knows the cache size and line size).
    fn n_set_phys(&self) -> u64;

    /// Associativity of the probed configuration.
    fn assoc(&self) -> u32;

    /// Runs one cold probe trace of block addresses, returning the
    /// number of misses.
    fn misses(&mut self, blocks: &[u64]) -> u64;

    /// Total cost spent on this oracle so far.
    fn cost(&self) -> ProbeCost;

    /// Whether `a` and `b` map to the same set, observed via the
    /// `[a, b, a]` re-access probe. Meaningful only on a direct-mapped
    /// probe configuration (`assoc() == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (the re-access would hit regardless).
    fn same_set(&mut self, a: u64, b: u64) -> bool {
        assert_ne!(a, b, "same_set probe needs two distinct blocks");
        self.misses(&[a, b, a]) == 3
    }

    /// Whether accessing the (distinct) `candidates` after `victim`
    /// evicts it, observed via the `[victim, candidates.., victim]`
    /// probe at the oracle's associativity.
    fn evicts(&mut self, victim: u64, candidates: &[u64]) -> bool {
        let mut trace = Vec::with_capacity(candidates.len() + 2);
        trace.push(victim);
        trace.extend_from_slice(candidates);
        trace.push(victim);
        let m = self.misses(&trace);
        m == candidates.len() as u64 + 2
    }
}

/// Reference oracle: an idealized `W`-way LRU cache over an arbitrary
/// index function, used to fuzz the attack engine against ground truth
/// without building simulator state per probe.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, HashKind};
/// use primecache_core::probe::{ModelOracle, ProbeOracle};
///
/// let geom = Geometry::new(64);
/// let mut oracle = ModelOracle::from_indexer(HashKind::Xor.build(geom), 1, 16);
/// // The XOR scheme's classic conflict stride: 64 + 1.
/// assert!(oracle.same_set(0, 65));
/// assert!(!oracle.same_set(0, 64));
/// ```
pub struct ModelOracle<F> {
    index_of: F,
    n_set_phys: u64,
    assoc: u32,
    in_bits: u32,
    cost: ProbeCost,
}

impl<F: Fn(u64) -> u64> ModelOracle<F> {
    /// Builds an oracle over `index_of` with `n_set_phys` physical sets
    /// implied by the function's range, probing at associativity
    /// `assoc` over `in_bits` address bits.
    pub fn new(index_of: F, n_set_phys: u64, assoc: u32, in_bits: u32) -> Self {
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!((1..=64).contains(&in_bits), "in_bits must be in 1..=64");
        Self {
            index_of,
            n_set_phys,
            assoc,
            in_bits,
            cost: ProbeCost::default(),
        }
    }
}

impl ModelOracle<Box<dyn Fn(u64) -> u64>> {
    /// Convenience: wraps a boxed [`SetIndexer`], hiding it behind the
    /// probe interface (the physical set count is taken from the
    /// geometry the indexer was built for — public knowledge — via the
    /// next power of two of its set count).
    #[must_use]
    pub fn from_indexer(idx: Box<dyn SetIndexer>, assoc: u32, in_bits: u32) -> Self {
        let n_phys = idx.n_set().next_power_of_two();
        ModelOracle::new(Box::new(move |a| idx.index(a)) as _, n_phys, assoc, in_bits)
    }
}

impl<F: Fn(u64) -> u64> ProbeOracle for ModelOracle<F> {
    fn in_bits(&self) -> u32 {
        self.in_bits
    }

    fn n_set_phys(&self) -> u64 {
        self.n_set_phys
    }

    fn assoc(&self) -> u32 {
        self.assoc
    }

    fn misses(&mut self, blocks: &[u64]) -> u64 {
        self.cost.probes += 1;
        self.cost.refs += blocks.len() as u64;
        // Per-set LRU ways, newest last. A HashMap keyed by set id keeps
        // the cold probe O(trace), independent of the cache size.
        let mut sets: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
        let ways = self.assoc as usize;
        let mut misses = 0u64;
        for &b in blocks {
            let s = (self.index_of)(b);
            let set = sets.entry(s).or_default();
            if let Some(pos) = set.iter().position(|&t| t == b) {
                set.remove(pos);
                set.push(b);
            } else {
                misses += 1;
                if set.len() == ways {
                    set.remove(0);
                }
                set.push(b);
            }
        }
        misses
    }

    fn cost(&self) -> ProbeCost {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_set_matches_the_function() {
        let mut o = ModelOracle::new(|a| a % 7, 8, 1, 12);
        assert!(o.same_set(3, 10));
        assert!(!o.same_set(3, 11));
        assert_eq!(o.cost().probes, 2);
        assert_eq!(o.cost().refs, 6);
    }

    #[test]
    fn evicts_needs_assoc_same_set_candidates() {
        let mut o = ModelOracle::new(|a| a % 16, 16, 4, 16);
        // Three same-set candidates: victim survives 4-way LRU.
        assert!(!o.evicts(0, &[16, 32, 48]));
        // Four: evicted.
        assert!(o.evicts(0, &[16, 32, 48, 64]));
        // Off-set candidates never help.
        assert!(!o.evicts(0, &[16, 32, 48, 65]));
    }

    #[test]
    #[should_panic(expected = "distinct blocks")]
    fn same_set_rejects_equal_blocks() {
        let mut o = ModelOracle::new(|a| a % 7, 8, 1, 12);
        let _ = o.same_set(5, 5);
    }
}
