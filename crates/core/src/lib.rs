//! The paper's core contribution: cache index/hash functions based on prime
//! numbers, their fast hardware-implementation models, and the metrics used
//! to analyze hashing pathologies.
//!
//! *"Using Prime Numbers for Cache Indexing to Eliminate Conflict Misses"*
//! (Kharbutli, Irwin, Solihin, Lee — HPCA 2004) proposes two L2 index
//! functions:
//!
//! * **prime modulo** (`H(a) = a mod n_set` with `n_set` prime), and
//! * **prime displacement** (`H(a) = (p·T + x) mod n_set` with `n_set` a
//!   power of two and `p` an odd displacement factor),
//!
//! argues from two metrics — *balance* (Eq. 1) and *concentration* (Eq. 2) —
//! that they resist the pathological behaviour of XOR-style hashing, and
//! shows the prime modulo can be computed with narrow adds instead of an
//! integer division (§3.1).
//!
//! This crate contains:
//!
//! * [`index`] — the [`index::SetIndexer`] trait and every hash function the
//!   paper evaluates (traditional, XOR, prime modulo, prime displacement,
//!   and the per-bank skewed families),
//! * [`hw`] — bit-level models of the hardware schemes: subtract&select,
//!   the iterative linear method (with the Theorem 1 iteration bound), the
//!   polynomial method, the Mersenne fold, the wired-permutation 2039-set
//!   unit of Figs. 3–4, and the TLB-assisted split computation,
//! * [`metrics`] — balance, concentration, sequence invariance and the
//!   uniformity ratio used to classify applications (§4),
//! * [`expr`] — a tiny expression language for user-defined index
//!   functions, compiled once into a hot-path closure and once into the
//!   statically certified model consumed by `primecache-analyze`.
//!
//! # Examples
//!
//! ```
//! use primecache_core::index::{Geometry, HashKind, SetIndexer};
//!
//! let geom = Geometry::new(2048); // 2048 physical sets (the paper's L2)
//! let pmod = HashKind::PrimeModulo.build(geom);
//! assert_eq!(pmod.n_set(), 2039);
//! assert_eq!(pmod.index(2039), 0); // 2039 mod 2039
//! ```

// Beyond the workspace-wide lints: hash/index arithmetic mixes widths
// constantly, so silent truncation here corrupts results rather than
// just looking sloppy.
#![warn(clippy::cast_possible_truncation)]

pub mod analysis;
pub mod expr;
pub mod hw;
pub mod index;
pub mod metrics;
pub mod probe;
