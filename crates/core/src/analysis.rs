//! Analytic predictions for modulo-based hashing (§2.2 / §3.3).
//!
//! For the modulo family (`Traditional`, `PrimeModulo`) the paper's two
//! properties have closed forms:
//!
//! * **Property 1 (ideal balance)** holds iff `gcd(s, n_set) = 1`; more
//!   generally a stride `s` touches exactly `n_set / gcd(s, n_set)` sets,
//!   each equally often.
//! * **Property 2 (sequence invariance)** holds unconditionally, because
//!   `H(a + s) = (H(a) + s) mod n_set` is a function of `H(a)` alone.
//!
//! These functions compute the predictions; the test suite (and the
//! `table2` binary) verify them against the empirical metrics, which is
//! how the reproduction *checks* Table 2 instead of just restating it.

use primecache_primes::gcd;

/// Number of distinct sets a strided sequence touches under
/// `H(a) = a mod n_set`, in the limit: `n_set / gcd(s, n_set)`.
///
/// # Panics
///
/// Panics if `n_set == 0` or `stride == 0`.
///
/// # Examples
///
/// ```
/// use primecache_core::analysis::sets_touched_modulo;
///
/// assert_eq!(sets_touched_modulo(2, 2048), 1024); // even stride: half
/// assert_eq!(sets_touched_modulo(3, 2048), 2048); // odd: all
/// assert_eq!(sets_touched_modulo(2039, 2039), 1); // the pMod bad case
/// ```
#[must_use]
pub fn sets_touched_modulo(stride: u64, n_set: u64) -> u64 {
    assert!(n_set > 0, "set count must be positive");
    assert!(stride > 0, "stride must be positive");
    n_set / gcd(stride, n_set)
}

/// Property 1 for modulo hashing: ideal balance iff `gcd(s, n_set) = 1`.
///
/// # Examples
///
/// ```
/// use primecache_core::analysis::modulo_ideal_balance;
///
/// assert!(!modulo_ideal_balance(512, 2048)); // traditional, even stride
/// assert!(modulo_ideal_balance(512, 2039)); // prime modulo fixes it
/// assert!(!modulo_ideal_balance(2039, 2039)); // except its own multiples
/// ```
#[must_use]
pub fn modulo_ideal_balance(stride: u64, n_set: u64) -> bool {
    gcd(stride, n_set) == 1
}

/// The asymptotic balance value (Eq. 1) of a strided sequence under
/// modulo hashing with `m` accesses: `g = gcd(s, n_set)` sets-touched
/// share the load, so each touched set holds `m·g/n_set` addresses.
///
/// Returns the predicted Eq.-1 score; 1.0-ish when `g = 1`, growing
/// roughly linearly in `g`.
///
/// # Panics
///
/// Panics on zero `stride`, `n_set`, or `m`.
///
/// # Examples
///
/// ```
/// use primecache_core::analysis::predicted_balance_modulo;
///
/// let ideal = predicted_balance_modulo(3, 2048, 8192);
/// let bad = predicted_balance_modulo(512, 2048, 8192);
/// assert!(ideal < 1.0 && bad > 100.0);
/// ```
#[must_use]
pub fn predicted_balance_modulo(stride: u64, n_set: u64, m: u64) -> f64 {
    assert!(m > 0, "need at least one access");
    let g = gcd(stride, n_set);
    let touched = n_set / g;
    let per_set = m as f64 / touched as f64;
    // Numerator of Eq. 1: `touched` sets of weight b(b+1)/2 each.
    let numer = touched as f64 * (per_set * (per_set + 1.0) / 2.0);
    let n_set = n_set as f64;
    let m = m as f64;
    let denom = m / (2.0 * n_set) * (m + 2.0 * n_set - 1.0);
    numer / denom
}

/// The constant re-access distance of a strided sequence under modulo
/// hashing (§2.2): every set is re-accessed after exactly
/// `n_set / gcd(s, n_set)` accesses, which equals `n_set` when the ideal
/// balance holds.
///
/// # Examples
///
/// ```
/// use primecache_core::analysis::reuse_distance_modulo;
///
/// assert_eq!(reuse_distance_modulo(1, 2039), 2039);
/// assert_eq!(reuse_distance_modulo(2, 2048), 1024);
/// ```
#[must_use]
pub fn reuse_distance_modulo(stride: u64, n_set: u64) -> u64 {
    sets_touched_modulo(stride, n_set)
}

/// The predicted concentration (Eq. 2) of a strided sequence under modulo
/// hashing: all gaps equal `d = n_set/g`, so the standard deviation around
/// `n_set` is `|d − n_set| = n_set·(1 − 1/g)`.
///
/// Zero exactly when the ideal balance holds — Property 1 + sequence
/// invariance ⇒ ideal concentration, the §2.2 argument in closed form.
///
/// # Examples
///
/// ```
/// use primecache_core::analysis::predicted_concentration_modulo;
///
/// assert_eq!(predicted_concentration_modulo(3, 2048), 0.0);
/// assert_eq!(predicted_concentration_modulo(2, 2048), 1024.0);
/// ```
#[must_use]
pub fn predicted_concentration_modulo(stride: u64, n_set: u64) -> f64 {
    let g = gcd(stride, n_set);
    n_set as f64 * (1.0 - 1.0 / g as f64)
}

/// Inter-bank dispersion of a pair of skewing functions: among blocks that
/// collide in one bank, the fraction that also collide in the other.
/// Seznec's design goal is to make this tiny ("blocks that are mapped to
/// the same set in one bank are most likely not to map to the same set in
/// the other banks", §3.3).
///
/// `blocks` supplies the population examined.
///
/// Returns a value in `\[0, 1\]`; 0.0 is perfect dispersion. Returns 0.0
/// when no pair collides in the first bank.
pub fn double_collision_rate<I, J>(bank_a: &I, bank_b: &J, blocks: &[u64]) -> f64
where
    I: crate::index::SetIndexer + ?Sized,
    J: crate::index::SetIndexer + ?Sized,
{
    let mut collisions = 0u64;
    let mut double = 0u64;
    for (i, &x) in blocks.iter().enumerate() {
        for &y in &blocks[i + 1..] {
            if bank_a.index(x) == bank_a.index(y) {
                collisions += 1;
                if bank_b.index(x) == bank_b.index(y) {
                    double += 1;
                }
            }
        }
    }
    if collisions == 0 {
        0.0
    } else {
        double as f64 / collisions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Geometry, PrimeModulo, SetIndexer, SkewDispBank, SkewXorBank, Traditional};
    use crate::metrics::{balance, concentration, strided_addresses};

    #[test]
    fn predictions_match_measurements_for_traditional() {
        let geom = Geometry::new(256);
        let trad = Traditional::new(geom);
        for stride in [1u64, 2, 3, 4, 8, 16, 64, 255, 256] {
            let addrs = strided_addresses(stride, 4096);
            let measured_b = balance(&trad, addrs.iter().copied());
            let predicted_b = predicted_balance_modulo(stride, 256, 4096);
            assert!(
                (measured_b - predicted_b).abs() / predicted_b < 0.02,
                "stride {stride}: measured {measured_b}, predicted {predicted_b}"
            );
            let measured_c = concentration(&trad, addrs.iter().copied());
            let predicted_c = predicted_concentration_modulo(stride, 256);
            assert!(
                (measured_c - predicted_c).abs() < 1.0 + predicted_c * 0.02,
                "stride {stride}: measured {measured_c}, predicted {predicted_c}"
            );
        }
    }

    #[test]
    fn predictions_match_measurements_for_pmod() {
        let geom = Geometry::new(256);
        let pmod = PrimeModulo::new(geom); // 251 sets
        for stride in [1u64, 2, 64, 250, 251, 502] {
            let addrs = strided_addresses(stride, 4096);
            let measured = concentration(&pmod, addrs.iter().copied());
            let predicted = predicted_concentration_modulo(stride, 251);
            assert!(
                (measured - predicted).abs() < 1.0 + predicted * 0.05,
                "stride {stride}: measured {measured}, predicted {predicted}"
            );
        }
    }

    #[test]
    fn sets_touched_is_exact() {
        let geom = Geometry::new(1024);
        let trad = Traditional::new(geom);
        for stride in [2u64, 6, 8, 512, 1023] {
            let addrs = strided_addresses(stride, 8192);
            let distinct: std::collections::HashSet<u64> =
                addrs.iter().map(|&a| trad.index(a)).collect();
            assert_eq!(
                distinct.len() as u64,
                sets_touched_modulo(stride, 1024),
                "stride {stride}"
            );
        }
    }

    #[test]
    fn skew_banks_disperse_collisions() {
        let geom = Geometry::new(512);
        let blocks: Vec<u64> = (0..512u64).map(|i| i * 512).collect(); // all alias
        let xor0 = SkewXorBank::new(geom, 0);
        let xor1 = SkewXorBank::new(geom, 1);
        let d_xor = double_collision_rate(&xor0, &xor1, &blocks);
        assert!(d_xor < 0.25, "XOR banks: {d_xor}");

        let pd0 = SkewDispBank::new(geom, 9);
        let pd1 = SkewDispBank::new(geom, 19);
        let d_pd = double_collision_rate(&pd0, &pd1, &blocks);
        assert!(d_pd < 0.05, "pDisp banks: {d_pd}");
    }

    #[test]
    fn same_function_doubles_every_collision() {
        // Blocks built to all collide in bank 0: x = rotate(t1) makes
        // H(a) = 0 for every t1. Using the same function twice must then
        // report a 100% double-collision rate — the degenerate upper bound
        // skewing is measured against.
        let geom = Geometry::new(512);
        let f0 = SkewXorBank::new(geom, 0); // bank 0: no rotation
        let blocks: Vec<u64> = (0..512u64).map(|t1| (t1 << 9) | t1).collect();
        assert!(blocks.iter().all(|&b| f0.index(b) == 0));
        assert_eq!(double_collision_rate(&f0, &f0, &blocks), 1.0);
    }

    #[test]
    fn no_collisions_yields_zero_rate() {
        let geom = Geometry::new(512);
        let f = SkewXorBank::new(geom, 1);
        let blocks: Vec<u64> = (0..64u64).collect(); // distinct x, zero tag
        assert_eq!(double_collision_rate(&f, &f, &blocks), 0.0);
    }
}
