//! Physical index geometry shared by all hash functions.

use serde::{Deserialize, Serialize};

/// Physical geometry of the indexed structure: a power-of-two number of
/// sets, from which every hash function derives its bit fields (Fig. 1).
///
/// A block address `a` splits into the low `index_bits()` bits `x` and the
/// tag `T = a >> index_bits()`; the first `index_bits()` bits of the tag are
/// `t1`, the next chunk `t2`, and so on — exactly the `x_i`/`t_ij`
/// decomposition of the paper's §3.1.
///
/// # Examples
///
/// ```
/// use primecache_core::index::Geometry;
///
/// let g = Geometry::new(2048);
/// assert_eq!(g.index_bits(), 11);
/// assert_eq!(g.x(0b1_0000_0000_101), 0b101);
/// assert_eq!(g.tag(0b1_0000_0000_101), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    n_set_phys: u64,
}

impl Geometry {
    /// Creates a geometry with `n_set_phys` physical sets.
    ///
    /// # Panics
    ///
    /// Panics if `n_set_phys` is not a power of two or is smaller than 2.
    #[must_use]
    pub fn new(n_set_phys: u64) -> Self {
        assert!(
            n_set_phys.is_power_of_two() && n_set_phys >= 2,
            "physical set count must be a power of two >= 2, got {n_set_phys}"
        );
        Self { n_set_phys }
    }

    /// The physical (power-of-two) set count.
    #[must_use]
    pub fn n_set_phys(&self) -> u64 {
        self.n_set_phys
    }

    /// Number of index bits: `log2(n_set_phys)`.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.n_set_phys.trailing_zeros()
    }

    /// Mask selecting the low `index_bits()` bits.
    #[must_use]
    pub fn index_mask(&self) -> u64 {
        self.n_set_phys - 1
    }

    /// The index field `x` of a block address (Fig. 1).
    #[must_use]
    pub fn x(&self, block_addr: u64) -> u64 {
        block_addr & self.index_mask()
    }

    /// The full tag `T` of a block address: everything above the index bits.
    #[must_use]
    pub fn tag(&self, block_addr: u64) -> u64 {
        block_addr >> self.index_bits()
    }

    /// The `j`-th tag chunk `t_j` (1-based), each `index_bits()` wide:
    /// `t_1` is the low chunk of the tag, `t_2` the next, … (§3.1,
    /// polynomial method).
    ///
    /// # Panics
    ///
    /// Panics if `j == 0` (`t_0` is the index field `x`, not a tag chunk).
    #[must_use]
    pub fn tag_chunk(&self, block_addr: u64, j: u32) -> u64 {
        assert!(j >= 1, "tag chunks are 1-based");
        let shift = self.index_bits() * j;
        if shift >= 64 {
            0
        } else {
            (block_addr >> shift) & self.index_mask()
        }
    }

    /// Number of tag chunks needed to cover a `bits`-wide block address.
    #[must_use]
    pub fn chunks_for(&self, bits: u32) -> u32 {
        let ib = self.index_bits();
        if bits <= ib {
            0
        } else {
            (bits - ib).div_ceil(ib)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_fields_partition_the_address() {
        let g = Geometry::new(2048);
        let a = 0xDEAD_BEEF_1234u64;
        let rebuilt = (g.tag(a) << g.index_bits()) | g.x(a);
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn tag_chunks_reassemble_tag() {
        let g = Geometry::new(2048);
        let a = 0xFFFF_FFFF_FFFFu64;
        let mut tag = 0u64;
        for j in (1..=g.chunks_for(48)).rev() {
            tag = (tag << g.index_bits()) | g.tag_chunk(a, j);
        }
        assert_eq!(tag, g.tag(a));
    }

    #[test]
    fn chunk_counts_match_paper_example() {
        // 32-bit machine, 64-B lines => 26-bit block address; 2048 sets
        // => x (11 bits) + t1 (11 bits) + t2 (4 bits): 2 chunks.
        let g = Geometry::new(2048);
        assert_eq!(g.chunks_for(26), 2);
        // 64-bit machine, 64-B lines => 58-bit block address.
        assert_eq!(g.chunks_for(58), 5);
    }

    #[test]
    fn high_chunks_are_zero() {
        let g = Geometry::new(2048);
        assert_eq!(g.tag_chunk(u64::MAX, 5), 0x1FF); // only 9 bits remain above bit 55
        assert_eq!(g.tag_chunk(u64::MAX, 6), 0); // shift >= 64 clips to zero
        assert_eq!(g.tag_chunk(0xFFF, 3), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Geometry::new(2039);
    }

    #[test]
    #[should_panic(expected = "tag chunks are 1-based")]
    fn chunk_zero_rejected() {
        let _ = Geometry::new(64).tag_chunk(0, 0);
    }
}
