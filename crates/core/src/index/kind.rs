//! Named hash-function kinds for configuration plumbing.

use serde::{Deserialize, Serialize};

use super::{Geometry, PrimeDisplacement, PrimeModulo, SetIndexer, Traditional, Xor};
use crate::expr::ExprId;

/// The single-function hash schemes of the paper's evaluation, as a
/// configuration value.
///
/// Skewed (multi-function) configurations are expressed at the cache level
/// by giving each bank its own [`SetIndexer`]; see
/// [`SkewXorBank`](super::SkewXorBank) and
/// [`SkewDispBank`](super::SkewDispBank).
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, HashKind, SetIndexer};
///
/// let idx = HashKind::PrimeDisplacement.build(Geometry::new(2048));
/// assert_eq!(idx.name(), "pDisp");
/// assert_eq!(idx.n_set(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HashKind {
    /// Low index bits (`Base` in the figures).
    Traditional,
    /// First tag chunk XOR index bits.
    Xor,
    /// Modulo the largest prime below the physical set count (`pMod`).
    PrimeModulo,
    /// `(9·T + x) mod n_set` — the paper's default factor (`pDisp`).
    PrimeDisplacement,
    /// A user-defined index expression, registered through
    /// [`crate::expr::register`] and referenced by its interned id.
    Expr(ExprId),
}

impl HashKind {
    /// All built-in single-function kinds, in the order the paper's
    /// figures list them (user [`HashKind::Expr`] schemes are open-ended
    /// and not enumerable).
    pub const ALL: [HashKind; 4] = [
        HashKind::Traditional,
        HashKind::Xor,
        HashKind::PrimeModulo,
        HashKind::PrimeDisplacement,
    ];

    /// Builds the indexer for this kind over the given geometry.
    #[must_use]
    pub fn build(self, geom: Geometry) -> Box<dyn SetIndexer> {
        match self {
            HashKind::Traditional => Box::new(Traditional::new(geom)),
            HashKind::Xor => Box::new(Xor::new(geom)),
            HashKind::PrimeModulo => Box::new(PrimeModulo::new(geom)),
            HashKind::PrimeDisplacement => Box::new(PrimeDisplacement::paper_default(geom)),
            HashKind::Expr(id) => Box::new(id.indexer()),
        }
    }

    /// The display name used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HashKind::Traditional => "Base",
            HashKind::Xor => "XOR",
            HashKind::PrimeModulo => "pMod",
            HashKind::PrimeDisplacement => "pDisp",
            HashKind::Expr(id) => id.name(),
        }
    }
}

impl std::fmt::Display for HashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_label() {
        let geom = Geometry::new(1024);
        for kind in HashKind::ALL {
            let idx = kind.build(geom);
            assert_eq!(idx.name(), kind.label());
        }
    }

    #[test]
    fn set_counts_per_kind() {
        let geom = Geometry::new(1024);
        assert_eq!(HashKind::Traditional.build(geom).n_set(), 1024);
        assert_eq!(HashKind::Xor.build(geom).n_set(), 1024);
        assert_eq!(HashKind::PrimeModulo.build(geom).n_set(), 1021);
        assert_eq!(HashKind::PrimeDisplacement.build(geom).n_set(), 1024);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(HashKind::PrimeModulo.to_string(), "pMod");
        assert_eq!(HashKind::Traditional.to_string(), "Base");
    }

    #[test]
    fn serde_roundtrip() {
        for kind in HashKind::ALL {
            let json = serde_json_like(kind);
            assert!(!json.is_empty());
        }
    }

    /// Minimal serialization smoke test without pulling in serde_json:
    /// ensures the Serialize impl is derivable and callable.
    fn serde_json_like(kind: HashKind) -> String {
        format!("{kind:?}")
    }
}
