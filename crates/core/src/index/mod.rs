//! Cache set-index (hash) functions.
//!
//! Every index function maps a *block address* (the memory address with the
//! block-offset bits already stripped, Fig. 1 of the paper) to a set index.
//! The [`SetIndexer`] trait abstracts over them so the cache simulator and
//! the metrics can treat all schemes uniformly.
//!
//! Naming follows the paper's §3.3 comparison:
//!
//! | Paper name | Type |
//! |---|---|
//! | Traditional | [`Traditional`] |
//! | XOR | [`Xor`] |
//! | pMod | [`PrimeModulo`] |
//! | pDisp | [`PrimeDisplacement`] |
//! | Skewed (Seznec circular-shift XOR), one function per bank | [`SkewXorBank`] |
//! | Skewed + pDisp, one prime per bank | [`SkewDispBank`] |

mod fastdiv;
mod geometry;
mod kind;
mod pdisp;
mod pmod;
mod skew;
mod traditional;
mod xor;
mod xor_folded;

pub use fastdiv::FastMod;
pub use geometry::Geometry;
pub use kind::HashKind;
pub use pdisp::PrimeDisplacement;
pub use pmod::PrimeModulo;
pub use skew::{SkewDispBank, SkewXorBank, SKEW_DISP_FACTORS};
pub use traditional::Traditional;
pub use xor::Xor;
pub use xor_folded::XorFolded;

use std::fmt::Debug;

/// A cache set-index function over block addresses.
///
/// Implementors map a 64-bit block address to a set index in
/// `0..self.n_set()`. Implementations must be pure: the same block address
/// always maps to the same set.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, SetIndexer, Traditional};
///
/// let trad = Traditional::new(Geometry::new(2048));
/// assert_eq!(trad.index(0), 0);
/// assert_eq!(trad.index(2048 + 5), 5);
/// ```
pub trait SetIndexer: Debug + Send + Sync {
    /// Maps a block address to a set index in `0..self.n_set()`.
    fn index(&self, block_addr: u64) -> u64;

    /// Number of sets this function maps into.
    ///
    /// For prime-modulo indexing this is smaller than the physical
    /// (power-of-two) set count; the difference is the fragmentation of
    /// Table 1.
    fn n_set(&self) -> u64;

    /// Short display name matching the paper's figures (e.g. `"pMod"`).
    fn name(&self) -> &'static str;
}

impl SetIndexer for Box<dyn SetIndexer> {
    fn index(&self, block_addr: u64) -> u64 {
        (**self).index(block_addr)
    }

    fn n_set(&self) -> u64 {
        (**self).n_set()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_indexers(geom: Geometry) -> Vec<Box<dyn SetIndexer>> {
        vec![
            Box::new(Traditional::new(geom)),
            Box::new(Xor::new(geom)),
            Box::new(PrimeModulo::new(geom)),
            Box::new(PrimeDisplacement::new(geom, 9)),
            Box::new(SkewXorBank::new(Geometry::new(512), 0)),
            Box::new(SkewDispBank::new(Geometry::new(512), 9)),
        ]
    }

    #[test]
    fn every_indexer_stays_in_range() {
        for idx in all_indexers(Geometry::new(2048)) {
            for block in (0..1_000_000u64).step_by(4099) {
                let s = idx.index(block);
                assert!(s < idx.n_set(), "{}: set {s} out of range", idx.name());
            }
        }
    }

    #[test]
    fn every_indexer_is_deterministic() {
        for idx in all_indexers(Geometry::new(1024)) {
            for block in [0u64, 1, 12345, u32::MAX as u64, 1 << 40] {
                assert_eq!(idx.index(block), idx.index(block), "{}", idx.name());
            }
        }
    }

    #[test]
    fn boxed_indexer_delegates() {
        let boxed: Box<dyn SetIndexer> = Box::new(Traditional::new(Geometry::new(256)));
        assert_eq!(boxed.n_set(), 256);
        assert_eq!(boxed.index(257), 1);
        assert_eq!(boxed.name(), "Base");
    }
}
