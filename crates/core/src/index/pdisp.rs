//! Prime displacement indexing (pDisp).

use super::{Geometry, SetIndexer};

/// The prime displacement index function (Eq. 6):
/// `H(a) = (p·T + x) mod n_set`, where `T` is the full tag, `x` the index
/// field, `n_set` the (power-of-two) physical set count, and `p` an odd
/// displacement factor.
///
/// The paper uses `p = 9` for the single-function configuration (its
/// footnote 2 explains that `p` need not literally be prime — any member of
/// the odd multiplicative group mod `2^k` works). Because `n_set` remains a
/// power of two the modulo is a simple truncation, so the whole function is
/// one narrow multiply-accumulate, and — unlike prime modulo — the cost is
/// independent of the machine's address width (§3.2).
///
/// pDisp is only *partially* sequence invariant: within a strided
/// subsequence all but one set re-access at a constant distance
/// `x = n_set − p` (§3.3), which in practice gives near-ideal concentration.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, PrimeDisplacement, SetIndexer};
///
/// let pd = PrimeDisplacement::new(Geometry::new(2048), 9);
/// // tag 1, index 0 => (9*1 + 0) mod 2048 = 9.
/// assert_eq!(pd.index(2048), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeDisplacement {
    geom: Geometry,
    factor: u64,
}

impl PrimeDisplacement {
    /// Creates a prime-displacement indexer with displacement factor
    /// `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is even: an even factor is non-invertible modulo
    /// a power of two and collapses tag information (footnote 2).
    #[must_use]
    pub fn new(geom: Geometry, factor: u64) -> Self {
        assert!(
            factor % 2 == 1,
            "displacement factor must be odd, got {factor}"
        );
        Self { geom, factor }
    }

    /// The paper's default single-function configuration: `p = 9`.
    #[must_use]
    pub fn paper_default(geom: Geometry) -> Self {
        Self::new(geom, 9)
    }

    /// The displacement factor `p`.
    #[must_use]
    pub fn factor(&self) -> u64 {
        self.factor
    }

    /// The geometry this indexer was built from.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

impl SetIndexer for PrimeDisplacement {
    fn index(&self, block_addr: u64) -> u64 {
        let t = self.geom.tag(block_addr);
        let x = self.geom.x(block_addr);
        self.factor.wrapping_mul(t).wrapping_add(x) & self.geom.index_mask()
    }

    fn n_set(&self) -> u64 {
        self.geom.n_set_phys()
    }

    fn name(&self) -> &'static str {
        "pDisp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn matches_equation_6() {
        let g = Geometry::new(2048);
        let pd = PrimeDisplacement::new(g, 9);
        for a in (0..1_000_000u64).step_by(41) {
            let expect = (9 * g.tag(a) + g.x(a)) % 2048;
            assert_eq!(pd.index(a), expect, "a = {a}");
        }
    }

    #[test]
    fn spreads_power_of_two_strides() {
        // Stride = n_set_phys: tags increment, so sets advance by p each
        // time; p odd => full coverage.
        let pd = PrimeDisplacement::new(Geometry::new(2048), 9);
        let sets: HashSet<u64> = (0..2048u64).map(|i| pd.index(i * 2048)).collect();
        assert_eq!(sets.len(), 2048);
    }

    #[test]
    fn even_strides_achieve_near_ideal_balance() {
        // §3.3: pDisp achieves ideal balance for even strides (below
        // n_set; 2·n_set with factor 9 gives sets 18i mod n_set, one of the
        // "various cases" of non-ideal balance in Fig. 5). Checked over a
        // long run: every set touched, counts within 2x of the mean.
        let pd = PrimeDisplacement::new(Geometry::new(256), 9);
        for s in [2u64, 4, 6, 8, 16, 32, 128, 256] {
            let m = 256 * 64;
            let mut counts = [0u32; 256];
            for i in 0..m {
                counts[usize::try_from(pd.index(i * s)).unwrap()] += 1;
            }
            let mean = m as f64 / 256.0;
            assert!(counts.iter().all(|&c| c > 0), "stride {s}: uncovered set");
            let max = *counts.iter().max().unwrap() as f64;
            assert!(max <= 2.0 * mean, "stride {s}: max {max} vs mean {mean}");
        }
    }

    #[test]
    fn different_factors_disagree() {
        let g = Geometry::new(512);
        let a = 9_999_999u64;
        let idx9 = PrimeDisplacement::new(g, 9).index(a);
        let idx19 = PrimeDisplacement::new(g, 19).index(a);
        assert_ne!(idx9, idx19);
    }

    #[test]
    fn paper_default_is_nine() {
        assert_eq!(
            PrimeDisplacement::paper_default(Geometry::new(64)).factor(),
            9
        );
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_factor_rejected() {
        let _ = PrimeDisplacement::new(Geometry::new(64), 8);
    }

    #[test]
    fn huge_tags_do_not_overflow() {
        let pd = PrimeDisplacement::new(Geometry::new(2048), 0xFFFF_FFFF_FFFF_FFFF);
        let s = pd.index(u64::MAX);
        assert!(s < 2048);
    }
}
