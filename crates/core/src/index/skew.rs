//! Per-bank index functions for skewed-associative caches.
//!
//! A skewed-associative cache splits its capacity into direct-mapped banks
//! and indexes each bank with a *different* function, so blocks that
//! conflict in one bank usually do not conflict in the others. The paper
//! evaluates two families over Seznec's four-bank design (§3.3, §5.3):
//!
//! * `SKW` — Seznec's circular-shift + XOR functions ([`SkewXorBank`]), and
//! * `skw+pDisp` — prime displacement with a distinct factor per bank
//!   ([`SkewDispBank`], factors 9/19/31/37 in the paper's evaluation).

use super::{Geometry, PrimeDisplacement, SetIndexer};

/// Displacement factors the paper assigns to the four banks of the
/// `skw+pDisp` configuration (§4, "Prime Numbers").
pub const SKEW_DISP_FACTORS: [u64; 4] = [9, 19, 31, 37];

/// Seznec-style skewing function for one direct-mapped bank:
/// `H_k(a) = rotate(t1, k) ⊕ x`, where the first tag chunk is circularly
/// shifted by the bank number before XOR-ing with the index field.
///
/// The differing shift amounts per bank yield "a form of a perfect
/// shuffle" (§3.3): blocks mapping together in bank `k` are dispersed in
/// bank `k' ≠ k`.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, SetIndexer, SkewXorBank};
///
/// let g = Geometry::new(512); // one bank of a 4-bank 2048-line cache
/// let b0 = SkewXorBank::new(g, 0);
/// let b1 = SkewXorBank::new(g, 1);
/// // Same block, different banks, (usually) different sets.
/// assert_ne!(b0.index(0xABCDE), b1.index(0xABCDE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewXorBank {
    geom: Geometry,
    bank: u32,
}

impl SkewXorBank {
    /// Creates the skewing function for bank number `bank`.
    ///
    /// The shift amount is `bank mod index_bits`, so any bank count works
    /// with any geometry.
    #[must_use]
    pub fn new(geom: Geometry, bank: u32) -> Self {
        Self { geom, bank }
    }

    /// The bank number this function serves.
    #[must_use]
    pub fn bank(&self) -> u32 {
        self.bank
    }

    /// Circularly rotates the low `index_bits` of `v` left by the bank's
    /// shift amount.
    fn rotate(&self, v: u64) -> u64 {
        let bits = self.geom.index_bits();
        let k = self.bank % bits;
        if k == 0 {
            return v;
        }
        let mask = self.geom.index_mask();
        ((v << k) | (v >> (bits - k))) & mask
    }
}

impl SetIndexer for SkewXorBank {
    fn index(&self, block_addr: u64) -> u64 {
        let x = self.geom.x(block_addr);
        let t1 = self.geom.tag_chunk(block_addr, 1);
        self.rotate(t1) ^ x
    }

    fn n_set(&self) -> u64 {
        self.geom.n_set_phys()
    }

    fn name(&self) -> &'static str {
        "SKW"
    }
}

/// Prime-displacement skewing function for one direct-mapped bank:
/// `H_k(a) = (p_k·T + x) mod n_set`, with a distinct odd factor `p_k`
/// per bank ([`SKEW_DISP_FACTORS`] in the paper's evaluation).
///
/// "To ensure inter-bank dispersion, a different prime number for each bank
/// is used" (§3.3).
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, SetIndexer, SkewDispBank};
///
/// let g = Geometry::new(512);
/// let b = SkewDispBank::new(g, 19);
/// assert!(b.index(123_456_789) < 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewDispBank {
    inner: PrimeDisplacement,
}

impl SkewDispBank {
    /// Creates the displacement skewing function with factor `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is even (see [`PrimeDisplacement::new`]).
    #[must_use]
    pub fn new(geom: Geometry, factor: u64) -> Self {
        Self {
            inner: PrimeDisplacement::new(geom, factor),
        }
    }

    /// The displacement factor used by this bank.
    #[must_use]
    pub fn factor(&self) -> u64 {
        self.inner.factor()
    }
}

impl SetIndexer for SkewDispBank {
    fn index(&self, block_addr: u64) -> u64 {
        self.inner.index(block_addr)
    }

    fn n_set(&self) -> u64 {
        self.inner.n_set()
    }

    fn name(&self) -> &'static str {
        "skw+pDisp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn banks_disperse_conflicting_blocks() {
        // Blocks that collide in bank 0 should mostly not collide in bank 1.
        let g = Geometry::new(512);
        let b0 = SkewXorBank::new(g, 0);
        let b1 = SkewXorBank::new(g, 1);
        // Gather blocks mapping to set 0 in bank 0, with varying tag chunks:
        // a = (t1 << 9) | x with x = t1 gives t1 ^ x = 0 in bank 0.
        let conflicting: Vec<u64> = (0..512u64).map(|t1| (t1 << 9) | t1).take(16).collect();
        assert!(conflicting.iter().all(|&a| b0.index(a) == 0));
        assert!(conflicting.len() >= 2);
        let bank1_sets: HashSet<u64> = conflicting.iter().map(|&a| b1.index(a)).collect();
        assert!(bank1_sets.len() > 1, "bank 1 must split bank 0's conflicts");
    }

    #[test]
    fn disp_banks_disperse_conflicting_blocks() {
        let g = Geometry::new(512);
        let b0 = SkewDispBank::new(g, SKEW_DISP_FACTORS[0]);
        let b1 = SkewDispBank::new(g, SKEW_DISP_FACTORS[1]);
        let conflicting: Vec<u64> = (0..60_000u64)
            .filter(|&a| b0.index(a) == 0)
            .take(16)
            .collect();
        assert!(conflicting.len() >= 2);
        let bank1_sets: HashSet<u64> = conflicting.iter().map(|&a| b1.index(a)).collect();
        assert!(bank1_sets.len() > 1);
    }

    #[test]
    fn rotation_is_a_permutation() {
        let g = Geometry::new(512);
        for bank in 0..4 {
            let f = SkewXorBank::new(g, bank);
            let out: HashSet<u64> = (0..512u64).map(|v| f.rotate(v)).collect();
            assert_eq!(out.len(), 512, "bank {bank}");
        }
    }

    #[test]
    fn bank_shift_wraps_by_index_bits() {
        let g = Geometry::new(16); // 4 index bits
        let f0 = SkewXorBank::new(g, 0);
        let f4 = SkewXorBank::new(g, 4); // shift 4 mod 4 == 0
        for a in 0..4096u64 {
            assert_eq!(f0.index(a), f4.index(a));
        }
    }

    #[test]
    fn paper_factors_are_four_distinct_odds() {
        let set: HashSet<u64> = SKEW_DISP_FACTORS.iter().copied().collect();
        assert_eq!(set.len(), 4);
        assert!(SKEW_DISP_FACTORS.iter().all(|f| f % 2 == 1));
    }
}
