//! Prime modulo indexing (pMod).

use super::{FastMod, Geometry, SetIndexer};
use primecache_primes::prev_prime;

/// The prime modulo index function: `H(a) = a mod n_set`, where `n_set` is
/// the largest prime not exceeding the physical set count.
///
/// This is the paper's headline scheme. It satisfies both ideal properties
/// of §2.2 — ideal balance for every stride not a multiple of `n_set`
/// (since `gcd(s, n_set) = 1` for prime `n_set`), and sequence invariance —
/// so it achieves ideal concentration and is resistant to pathological
/// behaviour. The `Δ = n_set_phys - n_set` wasted sets are the (negligible)
/// fragmentation of Table 1.
///
/// The software model reduces by the precomputed reciprocal
/// ([`FastMod`]) instead of a hardware-division `%` — exact for every
/// address, division-free on the per-access path; the bit-level hardware
/// schemes that replace the division with narrow adds live in
/// [`crate::hw`] and are tested for equivalence against this reference.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, PrimeModulo, SetIndexer};
///
/// let pmod = PrimeModulo::new(Geometry::new(2048));
/// assert_eq!(pmod.n_set(), 2039);
/// assert_eq!(pmod.delta(), 9);
/// assert_eq!(pmod.index(2048), 9); // 2048 mod 2039
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeModulo {
    geom: Geometry,
    modulo: FastMod,
}

impl PrimeModulo {
    /// Creates a prime-modulo indexer using the largest prime
    /// `<= geom.n_set_phys()`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has fewer than 2 physical sets (no prime
    /// below), which [`Geometry`] already prevents.
    #[must_use]
    pub fn new(geom: Geometry) -> Self {
        let n_set = prev_prime(geom.n_set_phys()).expect("geometry guarantees n_set_phys >= 2");
        Self {
            geom,
            modulo: FastMod::new(n_set),
        }
    }

    /// Creates a prime-modulo indexer with an explicit modulus.
    ///
    /// This exists for experiments with non-prime moduli such as
    /// `n_set_phys - 1` (the paper's §3.1 aside: often a product of two
    /// primes and "at least a good choice for most stride access patterns").
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or exceeds the physical set count.
    #[must_use]
    pub fn with_modulus(geom: Geometry, modulus: u64) -> Self {
        assert!(modulus > 0, "modulus must be nonzero");
        assert!(
            modulus <= geom.n_set_phys(),
            "modulus {modulus} exceeds physical sets {}",
            geom.n_set_phys()
        );
        Self {
            geom,
            modulo: FastMod::new(modulus),
        }
    }

    /// The geometry this indexer was built from.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Wasted sets `Δ = n_set_phys - n_set` (Table 1).
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.geom.n_set_phys() - self.modulo.divisor()
    }

    /// Fraction of physical sets wasted (fragmentation, Table 1).
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        self.delta() as f64 / self.geom.n_set_phys() as f64
    }
}

impl SetIndexer for PrimeModulo {
    fn index(&self, block_addr: u64) -> u64 {
        let set = self.modulo.reduce(block_addr);
        debug_assert_eq!(set, block_addr % self.modulo.divisor());
        set
    }

    fn n_set(&self) -> u64 {
        self.modulo.divisor()
    }

    fn name(&self) -> &'static str {
        "pMod"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uses_table1_primes() {
        for (phys, prime) in [(256u64, 251u64), (2048, 2039), (8192, 8191)] {
            let p = PrimeModulo::new(Geometry::new(phys));
            assert_eq!(p.n_set(), prime);
        }
    }

    #[test]
    fn power_of_two_strides_achieve_full_coverage() {
        // Under pMod a stride of n_set_phys covers every set (gcd = 1):
        // the conflict pathology of traditional indexing disappears.
        let p = PrimeModulo::new(Geometry::new(2048));
        let sets: HashSet<u64> = (0..2039u64).map(|i| p.index(i * 2048)).collect();
        assert_eq!(sets.len(), 2039);
    }

    #[test]
    fn stride_n_set_is_the_single_bad_case() {
        // Property 1: ideal balance for all strides except multiples of
        // n_set itself.
        let p = PrimeModulo::new(Geometry::new(2048));
        let sets: HashSet<u64> = (0..100u64).map(|i| p.index(i * 2039)).collect();
        assert_eq!(sets.len(), 1);
    }

    #[test]
    fn with_modulus_allows_non_prime() {
        let p = PrimeModulo::with_modulus(Geometry::new(2048), 2047);
        assert_eq!(p.n_set(), 2047);
        assert_eq!(p.index(2047), 0);
        assert_eq!(p.delta(), 1);
    }

    #[test]
    fn fragmentation_matches_table1() {
        let p = PrimeModulo::new(Geometry::new(2048));
        assert!((p.fragmentation() * 100.0 - 0.44).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "modulus must be nonzero")]
    fn zero_modulus_rejected() {
        let _ = PrimeModulo::with_modulus(Geometry::new(64), 0);
    }
}
