//! Traditional (modulo power-of-two) indexing.

use super::{Geometry, SetIndexer};

/// The traditional index function: `H(a) = a mod n_set_phys`, i.e. the low
/// index bits of the block address.
///
/// This is the paper's `Base` configuration. It is sequence invariant and
/// achieves the ideal balance exactly when the stride is odd
/// (`gcd(s, 2^k) = 1`), which is why even and power-of-two strides produce
/// its worst-case conflict behaviour.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, SetIndexer, Traditional};
///
/// let trad = Traditional::new(Geometry::new(1024));
/// assert_eq!(trad.index(1024), 0); // power-of-two stride: always set 0
/// assert_eq!(trad.index(2048), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traditional {
    geom: Geometry,
}

impl Traditional {
    /// Creates the traditional indexer for the given geometry.
    #[must_use]
    pub fn new(geom: Geometry) -> Self {
        Self { geom }
    }

    /// The geometry this indexer was built from.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

impl SetIndexer for Traditional {
    fn index(&self, block_addr: u64) -> u64 {
        self.geom.x(block_addr)
    }

    fn n_set(&self) -> u64 {
        self.geom.n_set_phys()
    }

    fn name(&self) -> &'static str {
        "Base"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_modulo_power_of_two() {
        let t = Traditional::new(Geometry::new(2048));
        for a in (0..100_000u64).step_by(37) {
            assert_eq!(t.index(a), a % 2048);
        }
    }

    #[test]
    fn power_of_two_stride_hits_one_set() {
        // The classic conflict pathology the paper opens with.
        let t = Traditional::new(Geometry::new(2048));
        let hits: std::collections::HashSet<u64> = (0..64u64).map(|i| t.index(i * 2048)).collect();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn unit_stride_covers_all_sets() {
        let t = Traditional::new(Geometry::new(256));
        let hits: std::collections::HashSet<u64> = (0..256u64).map(|i| t.index(i)).collect();
        assert_eq!(hits.len(), 256);
    }
}
