//! Fully-folded XOR indexing.

use super::{Geometry, SetIndexer};

/// A stronger XOR family: the index is the XOR-fold of *every* tag chunk,
/// `H(a) = x ⊕ t1 ⊕ t2 ⊕ …` — the "XOR-scheme" family of the paper's
/// references \[7, 15\] generalized to the full address.
///
/// Folding all chunks disperses aliases that the plain `t1 ⊕ x` scheme
/// misses (regions separated by multiples of `n_set²` blocks), but the
/// §3.3 criticism stands: no XOR fold is sequence invariant, so its
/// concentration — and hence its pathological exposure — remains.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, SetIndexer, XorFolded};
///
/// let xf = XorFolded::new(Geometry::new(2048));
/// // Blocks 2048² apart collide under plain XOR but not under the fold.
/// let far = 2048u64 * 2048;
/// assert_ne!(xf.index(0), xf.index(far));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorFolded {
    geom: Geometry,
}

impl XorFolded {
    /// Creates the folded-XOR indexer for the given geometry.
    #[must_use]
    pub fn new(geom: Geometry) -> Self {
        Self { geom }
    }

    /// The geometry this indexer was built from.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

impl SetIndexer for XorFolded {
    fn index(&self, block_addr: u64) -> u64 {
        let mut h = self.geom.x(block_addr);
        let mut rest = block_addr >> self.geom.index_bits();
        while rest != 0 {
            h ^= rest & self.geom.index_mask();
            rest >>= self.geom.index_bits();
        }
        h
    }

    fn n_set(&self) -> u64 {
        self.geom.n_set_phys()
    }

    fn name(&self) -> &'static str {
        "XOR-fold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Xor;
    use crate::metrics::{concentration, strided_addresses, violation_fraction};
    use std::collections::HashSet;

    #[test]
    fn stays_in_range_and_is_deterministic() {
        let xf = XorFolded::new(Geometry::new(2048));
        for a in [0u64, 1, u32::MAX as u64, u64::MAX, 0xDEAD_BEEF_CAFE] {
            let s = xf.index(a);
            assert!(s < 2048);
            assert_eq!(s, xf.index(a));
        }
    }

    #[test]
    fn folds_chunks_plain_xor_ignores() {
        // Addresses differing only above bit 22 (t2 for 2048 sets): plain
        // XOR maps them identically, the fold separates them.
        let g = Geometry::new(2048);
        let plain = Xor::new(g);
        let folded = XorFolded::new(g);
        let a = 0x2A5u64;
        let b = a + (3 << 22);
        assert_eq!(plain.index(a), plain.index(b));
        assert_ne!(folded.index(a), folded.index(b));
    }

    #[test]
    fn spreads_very_large_power_of_two_strides() {
        let xf = XorFolded::new(Geometry::new(2048));
        // Stride n_set^2 blocks: only t2 varies.
        let sets: HashSet<u64> = (0..2048u64).map(|i| xf.index(i * 2048 * 2048)).collect();
        assert_eq!(sets.len(), 2048);
    }

    #[test]
    fn still_not_sequence_invariant() {
        // The §3.3 criticism survives the stronger fold.
        let xf = XorFolded::new(Geometry::new(2048));
        let mut bad_strides = 0;
        for s in [1u64, 3, 5, 7, 9] {
            let addrs = strided_addresses(s, 8192);
            if violation_fraction(&xf, &addrs) > 0.0
                || concentration(&xf, addrs.iter().copied()) > 1.0
            {
                bad_strides += 1;
            }
        }
        assert!(bad_strides >= 4, "{bad_strides}");
    }
}
