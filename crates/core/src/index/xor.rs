//! XOR-based indexing.

use super::{Geometry, SetIndexer};

/// The XOR index function: `H(a) = t1 ⊕ x`, where `x` is the index field
/// and `t1` the first tag chunk (Fig. 1).
///
/// The paper picks this as "one of the most prominent examples" of
/// pseudo-random hashing. It achieves the ideal balance for most strides
/// but is **never** sequence invariant, so its concentration is non-ideal —
/// the root of its pathological cases (§3.3): e.g. with
/// `s = n_set - 1` the sequence collapses onto a single set
/// (`0, 15, 15, 15, …` in the paper's 16-set example).
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, SetIndexer, Xor};
///
/// let xor = Xor::new(Geometry::new(16));
/// // Stride 15 from address 0: 0 then 15, 15, 15, ... (paper §3.3).
/// let sets: Vec<u64> = (0..4u64).map(|i| xor.index(i * 15)).collect();
/// assert_eq!(sets, [0, 15, 15, 15]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xor {
    geom: Geometry,
}

impl Xor {
    /// Creates the XOR indexer for the given geometry.
    #[must_use]
    pub fn new(geom: Geometry) -> Self {
        Self { geom }
    }

    /// The geometry this indexer was built from.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

impl SetIndexer for Xor {
    fn index(&self, block_addr: u64) -> u64 {
        self.geom.x(block_addr) ^ self.geom.tag_chunk(block_addr, 1)
    }

    fn n_set(&self) -> u64 {
        self.geom.n_set_phys()
    }

    fn name(&self) -> &'static str {
        "XOR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stays_within_range() {
        let x = Xor::new(Geometry::new(2048));
        for a in (0..1_000_000u64).step_by(97) {
            assert!(x.index(a) < 2048);
        }
    }

    #[test]
    fn spreads_power_of_two_strides() {
        // The pathology XOR *fixes*: stride == n_set maps to distinct sets.
        let x = Xor::new(Geometry::new(2048));
        let sets: HashSet<u64> = (0..2048u64).map(|i| x.index(i * 2048)).collect();
        assert_eq!(sets.len(), 2048);
    }

    #[test]
    fn paper_example_stride_15_of_16_sets() {
        let x = Xor::new(Geometry::new(16));
        let sets: Vec<u64> = (0..8u64).map(|i| x.index(i * 15)).collect();
        assert_eq!(&sets[..4], &[0, 15, 15, 15]);
        // Balance is terrible: nearly everything lands on one set.
        let distinct: HashSet<u64> = sets.iter().copied().collect();
        assert!(distinct.len() <= 3);
    }

    #[test]
    fn preserves_unit_stride_within_one_tag_region() {
        // Within a fixed tag, XOR is a permutation of the sets.
        let x = Xor::new(Geometry::new(256));
        let base = 7u64 << 8; // tag chunk = 7
        let sets: HashSet<u64> = (0..256u64).map(|i| x.index(base + i)).collect();
        assert_eq!(sets.len(), 256);
    }
}
