//! Division-free modulo by a runtime constant (strength reduction for
//! the software pMod model).
//!
//! The paper's §3.1 point is that `a mod p` needs no divider in
//! hardware; the software model should not pay one either. [`FastMod`]
//! precomputes the 128-bit fixed-point reciprocal of the divisor once
//! (per indexer construction) and reduces every subsequent address with
//! two multiplies — Lemire, Kaser & Kurz, *Faster remainder by direct
//! computation* (2019). The method is exact for **all** 64-bit
//! dividends and any nonzero divisor, so it substitutes for `%`
//! bit-for-bit; the `check` battery fuzzes that equivalence.

/// Precomputed-reciprocal remainder: `reduce(x) == x % d` for all `x`.
///
/// # Examples
///
/// ```
/// use primecache_core::index::FastMod;
///
/// let m = FastMod::new(2039);
/// assert_eq!(m.reduce(2048), 9);
/// assert_eq!(m.divisor(), 2039);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastMod {
    d: u64,
    /// `ceil(2^128 / d) = floor(u128::MAX / d) + 1`; zero encodes `d == 1`
    /// (whose true reciprocal 2^128 does not fit), for which every
    /// remainder is 0 and the multiply-by-zero below yields exactly that.
    m: u128,
}

impl FastMod {
    /// Precomputes the reciprocal of `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "modulus must be nonzero");
        let m = if d == 1 {
            0
        } else {
            u128::MAX / u128::from(d) + 1
        };
        Self { d, m }
    }

    /// The divisor this reciprocal was built for.
    #[must_use]
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// Computes `x % d` with two multiplies and no division.
    ///
    /// `lowbits = m * x mod 2^128` is the fractional part of `x / d` in
    /// 128-bit fixed point; multiplying it by `d` and keeping the high
    /// 128 bits recovers the remainder.
    #[inline]
    #[must_use]
    pub fn reduce(&self, x: u64) -> u64 {
        let lowbits = self.m.wrapping_mul(u128::from(x));
        mulhi_u128_by_u64(lowbits, self.d)
    }
}

/// High 64 bits (beyond the 128th) of the 192-bit product `a * b`,
/// truncated to the range of `b` — i.e. `floor(a * b / 2^128)`.
///
/// Built from two 64×64→128 multiplies since Rust has no u256.
#[inline]
#[allow(clippy::cast_possible_truncation)] // the truncations select 64-bit limbs
fn mulhi_u128_by_u64(a: u128, b: u64) -> u64 {
    let a_lo = a as u64;
    let a_hi = (a >> 64) as u64;
    let b = u128::from(b);
    let lo = u128::from(a_lo) * b;
    let hi = u128::from(a_hi) * b + (lo >> 64);
    (hi >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_native_remainder_on_table1_primes() {
        for d in [251u64, 509, 1021, 2039, 4093, 8191, 16381] {
            let m = FastMod::new(d);
            for x in (0..2_000_000u64).step_by(997) {
                assert_eq!(m.reduce(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn matches_native_remainder_at_extremes() {
        for d in [1u64, 2, 3, 2039, u64::MAX - 1, u64::MAX] {
            let m = FastMod::new(d);
            for x in [
                0u64,
                1,
                d - 1,
                d,
                d.saturating_add(1),
                u64::MAX - 1,
                u64::MAX,
            ] {
                assert_eq!(m.reduce(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn divisor_one_always_reduces_to_zero() {
        let m = FastMod::new(1);
        for x in [0u64, 1, 12345, u64::MAX] {
            assert_eq!(m.reduce(x), 0);
        }
    }

    #[test]
    fn pseudorandom_fuzz_against_native() {
        // Deterministic splitmix-style sweep over divisors and dividends.
        let mut z = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        for _ in 0..10_000 {
            let d = next() | 1; // nonzero
            let m = FastMod::new(d);
            for _ in 0..10 {
                let x = next();
                assert_eq!(m.reduce(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be nonzero")]
    fn zero_divisor_rejected() {
        let _ = FastMod::new(0);
    }
}
