//! Bit-level models of the paper's fast hardware implementations (§3.1).
//!
//! The prime modulo `a mod n_set` is never computed with an integer divider.
//! The paper replaces it with narrow add networks; this module models each
//! scheme at the bit level and exposes its hardware cost so the claims of
//! §3.1 (Theorem 1, the five-addend 2039 unit, the sub-cycle TLB-assisted
//! add) can be checked:
//!
//! * [`SubtractSelect`] — the terminal selector stage of Fig. 2,
//! * [`IterativeLinear`] — the recursive `a' = Δ·T + x` reduction of Eq. 3,
//!   with the Theorem 1 iteration bound,
//! * [`Polynomial`] — the one-pass `a* = x + Σ t_j·Δ^j` reduction of Eq. 4,
//! * [`mersenne_fold`] — the Δ = 1 special case (Eq. 5, Yang & Yang),
//! * [`Wired2039`] — the concrete five-addend unit of Figs. 3–4 for a
//!   2048-physical-set L2 on a 32-bit machine,
//! * [`TlbAssist`] — the split page-index/page-offset computation cached in
//!   the TLB (§3.1.1).
//!
//! Every model is verified against the arithmetic reference `a % n_set`.

mod bitops;
mod iterative;
mod latency;
mod mersenne;
mod polynomial;
mod subtract_select;
mod tlb_assist;
mod wired2039;

pub use bitops::{csa32, kogge_stone_add, sum_many};
pub use iterative::{theorem1_iterations, IterativeLinear};
pub use latency::{csa_levels, fits_l1_overlap, index_latency, IndexLatency, STAGES_PER_CYCLE};
pub use mersenne::mersenne_fold;
pub use polynomial::Polynomial;
pub use subtract_select::SubtractSelect;
pub use tlb_assist::TlbAssist;
pub use wired2039::Wired2039;

/// Hardware cost summary of one index computation.
///
/// The unit of `adds` is one narrow (index-width) addition; `selector_inputs`
/// is the width of the final subtract&select stage (Fig. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwCost {
    /// Narrow additions performed.
    pub adds: u32,
    /// Iterations of the reduction loop (1 for single-pass schemes).
    pub iterations: u32,
    /// Number of inputs of the final subtract&select selector.
    pub selector_inputs: u32,
}
