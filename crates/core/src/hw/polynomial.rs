//! The polynomial method (Eq. 4).

use crate::index::Geometry;
use primecache_primes::prev_prime;

use super::{HwCost, SubtractSelect};

/// The polynomial reducer of §3.1: expresses the block address as a
/// polynomial in `n_set_phys`, substitutes `n_set_phys ≡ Δ (mod n_set)`
/// (binomial expansion, Eq. 4), and computes
///
/// ```text
/// a* = x + t1·Δ + t2·Δ² + … + tn·Δⁿ   ≡ a (mod n_set)
/// ```
///
/// in **one** pass of narrow adds. Because the `Δ^j` coefficients are known
/// constants, each `t_j·Δ^j` term is wired shift-adds, and the final value
/// is small enough for a [`SubtractSelect`] stage.
///
/// When `a*` would still exceed the selector's reach (deep polynomials on
/// 64-bit addresses with larger `Δ`), the model folds `a*` through the same
/// equation again — the hardware analogue of the carry-out folding the
/// paper describes for Fig. 3b — and counts the extra pass in the cost.
///
/// # Examples
///
/// ```
/// use primecache_core::hw::Polynomial;
/// use primecache_core::index::Geometry;
///
/// let unit = Polynomial::new(Geometry::new(2048));
/// assert_eq!(unit.n_set(), 2039);
/// assert_eq!(unit.reduce(0x03FF_FFFF), 0x03FF_FFFF % 2039);
/// ```
#[derive(Debug, Clone)]
pub struct Polynomial {
    geom: Geometry,
    n_set: u64,
    delta: u64,
    /// `Δ^j mod n_set` for j = 0.., precomputed (wired constants).
    delta_pows: Vec<u64>,
    selector: SubtractSelect,
}

impl Polynomial {
    /// Default selector width: generous enough for one-pass reduction of
    /// 32-bit addresses with Table-1 deltas.
    const SELECTOR_INPUTS: u32 = 16;

    /// Creates a polynomial reducer for the geometry, using the largest
    /// prime below the physical set count.
    #[must_use]
    pub fn new(geom: Geometry) -> Self {
        let n_set = prev_prime(geom.n_set_phys()).expect("geometry guarantees n_set_phys >= 2");
        let delta = geom.n_set_phys() - n_set;
        let chunks = geom.chunks_for(64);
        let mut delta_pows = Vec::with_capacity(chunks as usize + 1);
        let mut p = 1u64;
        delta_pows.push(p);
        for _ in 0..chunks {
            // Keep the wired constant reduced mod n_set so t_j * const
            // stays narrow regardless of the chunk depth.
            p = (p * delta) % n_set;
            delta_pows.push(p);
        }
        Self {
            geom,
            n_set,
            delta,
            delta_pows,
            selector: SubtractSelect::new(n_set, Self::SELECTOR_INPUTS),
        }
    }

    /// The prime modulus in use.
    #[must_use]
    pub fn n_set(&self) -> u64 {
        self.n_set
    }

    /// `Δ = n_set_phys − n_set`.
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// One polynomial pass: `a* = x + Σ_j t_j · (Δ^j mod n_set)`.
    fn one_pass(&self, v: u64, adds: &mut u32) -> u64 {
        let mut acc = self.geom.x(v);
        let chunks = self.geom.chunks_for(64 - v.leading_zeros());
        for j in 1..=chunks {
            let t_j = self.geom.tag_chunk(v, j);
            if t_j != 0 {
                // Each term is a wired shift-add network followed by one
                // accumulate add.
                acc += t_j * self.delta_pows[j as usize];
                *adds += 1;
            }
        }
        acc
    }

    /// Computes `block_addr mod n_set` and reports the hardware cost.
    #[must_use]
    pub fn reduce_with_cost(&self, block_addr: u64) -> (u64, HwCost) {
        let mut adds = 0u32;
        let mut iterations = 0u32;
        let mut v = block_addr;
        loop {
            if let Some(idx) = self.selector.try_reduce(v) {
                return (
                    idx,
                    HwCost {
                        adds,
                        iterations,
                        selector_inputs: self.selector.inputs(),
                    },
                );
            }
            v = self.one_pass(v, &mut adds);
            iterations += 1;
            debug_assert!(iterations <= 8, "polynomial reduction must converge");
        }
    }

    /// Computes `block_addr mod n_set`.
    #[must_use]
    pub fn reduce(&self, block_addr: u64) -> u64 {
        self.reduce_with_cost(block_addr).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_modulo_32_bit() {
        let unit = Polynomial::new(Geometry::new(2048));
        // 26-bit block addresses (32-bit machine, 64-B lines).
        for a in (0..(1u64 << 26)).step_by(99_991) {
            assert_eq!(unit.reduce(a), a % 2039, "a = {a}");
        }
        for a in 0..10_000u64 {
            assert_eq!(unit.reduce(a), a % 2039);
        }
    }

    #[test]
    fn matches_reference_modulo_64_bit() {
        let unit = Polynomial::new(Geometry::new(2048));
        for a in [
            u64::MAX,
            u64::MAX / 3,
            1u64 << 57,
            (1u64 << 58) - 1,
            0xFEDC_BA98_7654_3210,
        ] {
            assert_eq!(unit.reduce(a), a % 2039, "a = {a:#x}");
        }
    }

    #[test]
    fn single_pass_for_32_bit_addresses() {
        // §3.1: the polynomial method needs "only one step" for the worked
        // 32-bit example.
        let unit = Polynomial::new(Geometry::new(2048));
        for a in (0..(1u64 << 26)).step_by(1_000_003) {
            let (_, cost) = unit.reduce_with_cost(a);
            assert!(cost.iterations <= 1, "a = {a}: {} passes", cost.iterations);
        }
    }

    #[test]
    fn all_table1_geometries_are_exact() {
        for phys in [256u64, 512, 1024, 2048, 4096, 8192, 16384] {
            let unit = Polynomial::new(Geometry::new(phys));
            let n = unit.n_set();
            for a in (0..100_000_000u64).step_by(7_777_777) {
                assert_eq!(unit.reduce(a), a % n, "phys = {phys}, a = {a}");
            }
        }
    }

    #[test]
    fn mersenne_case_reduces_to_chunk_sum() {
        // Δ = 1: every delta power is 1, so a* is just the chunk sum (Eq. 5).
        let unit = Polynomial::new(Geometry::new(8192));
        assert_eq!(unit.delta(), 1);
        for a in (0..(1u64 << 40)).step_by(999_999_937) {
            assert_eq!(unit.reduce(a), a % 8191);
        }
    }

    #[test]
    fn zero_maps_to_zero_with_no_adds() {
        let unit = Polynomial::new(Geometry::new(2048));
        let (idx, cost) = unit.reduce_with_cost(0);
        assert_eq!(idx, 0);
        assert_eq!(cost.adds, 0);
        assert_eq!(cost.iterations, 0);
    }
}
