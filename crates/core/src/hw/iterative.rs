//! The iterative linear method (Eq. 3 and Theorem 1).

use crate::index::Geometry;
use primecache_primes::prev_prime;

use super::{HwCost, SubtractSelect};

/// The iterative linear reducer of §3.1: rewrites a block address as
/// `a ≡ Δ·T + x (mod n_set)` (Eq. 3) and repeats until the value fits the
/// terminal [`SubtractSelect`] stage.
///
/// Because `Δ = n_set_phys − n_set` is tiny (at most 9 across Table 1), the
/// `Δ·T` product is a couple of shift-adds, so each iteration is a narrow
/// add — no divider, no multiplier.
///
/// Theorem 1 bounds the number of iterations; [`theorem1_iterations`]
/// computes the bound and the unit asserts it empirically.
///
/// # Examples
///
/// ```
/// use primecache_core::hw::IterativeLinear;
/// use primecache_core::index::Geometry;
///
/// // 32-bit machine, 64-B lines, 2048 physical sets: 2 iterations (§3.1).
/// let unit = IterativeLinear::new(Geometry::new(2048), 0);
/// let (idx, cost) = unit.reduce_with_cost(0x03FF_FFFF);
/// assert_eq!(idx, 0x03FF_FFFF % 2039);
/// assert!(cost.iterations <= 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IterativeLinear {
    geom: Geometry,
    n_set: u64,
    delta: u64,
    selector: SubtractSelect,
}

impl IterativeLinear {
    /// Creates the unit for a geometry, with a terminal selector of
    /// `2^t + 2` inputs (the paper's parameterization of the
    /// subtract&select width).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's physical set count is so small that no
    /// prime fits (prevented by [`Geometry`]).
    #[must_use]
    pub fn new(geom: Geometry, t: u32) -> Self {
        let n_set = prev_prime(geom.n_set_phys()).expect("geometry guarantees n_set_phys >= 2");
        let delta = geom.n_set_phys() - n_set;
        let inputs = (1u32 << t) + 2;
        Self {
            geom,
            n_set,
            delta,
            selector: SubtractSelect::new(n_set, inputs),
        }
    }

    /// The prime modulus in use.
    #[must_use]
    pub fn n_set(&self) -> u64 {
        self.n_set
    }

    /// `Δ = n_set_phys − n_set`.
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Computes `block_addr mod n_set` and reports the hardware cost.
    #[must_use]
    pub fn reduce_with_cost(&self, block_addr: u64) -> (u64, HwCost) {
        let k = self.geom.index_bits();
        let mask = self.geom.index_mask();
        let mut v = block_addr;
        let mut iterations = 0u32;
        let mut adds = 0u32;
        // Degenerate Δ = 0 cannot occur (n_set_phys >= 2 is never prime+0
        // except 2 itself); handle n_set == n_set_phys gracefully anyway.
        if self.delta == 0 {
            return (
                v & mask,
                HwCost {
                    adds: 0,
                    iterations: 0,
                    selector_inputs: self.selector.inputs(),
                },
            );
        }
        while v >= self.selector.capacity() {
            let t_part = v >> k;
            let x_part = v & mask;
            // Δ·T as shift-adds: one add per set bit of Δ beyond the first.
            adds += self.delta.count_ones().max(1) - 1;
            // plus the add of x.
            adds += 1;
            v = self.delta * t_part + x_part;
            iterations += 1;
            debug_assert!(iterations <= 64, "iterative reduction must converge");
        }
        (
            self.selector.reduce(v),
            HwCost {
                adds,
                iterations,
                selector_inputs: self.selector.inputs(),
            },
        )
    }

    /// Computes `block_addr mod n_set`.
    #[must_use]
    pub fn reduce(&self, block_addr: u64) -> u64 {
        self.reduce_with_cost(block_addr).0
    }
}

/// Theorem 1: the number of iterations needed by the iterative linear
/// method for a `b`-bit machine address, cache line size `line`, physical
/// set count `n_set_phys` (largest prime below it as modulus), and a
/// subtract&select with `2^t + 2` inputs.
///
/// Returns the iteration bound
/// `ceil((B − log2 L − log2 n_set) / (t + log2 n_set_phys − log2 Δ))`.
///
/// # Panics
///
/// Panics if `line` is not a power of two or `n_set_phys < 4`.
///
/// # Examples
///
/// ```
/// use primecache_core::hw::theorem1_iterations;
///
/// // §3.1's worked examples for n_set_phys = 2048, 64-B lines:
/// assert_eq!(theorem1_iterations(32, 64, 2048, 0), 2);  // 32-bit machine
/// assert_eq!(theorem1_iterations(64, 64, 2048, 0), 6);  // 3-input selector
/// assert_eq!(theorem1_iterations(64, 64, 2048, 8), 3);  // 258-input selector
/// ```
#[must_use]
pub fn theorem1_iterations(b: u32, line: u64, n_set_phys: u64, t: u32) -> u32 {
    assert!(line.is_power_of_two(), "line size must be a power of two");
    assert!(n_set_phys >= 4, "need at least 4 physical sets");
    let n_set = prev_prime(n_set_phys).expect("n_set_phys >= 4");
    let delta = n_set_phys - n_set;
    // The paper evaluates the logs at bit widths: log2(n_set) ≈ the index
    // width k = log2(n_set_phys), and log2(Δ) as Δ's bit position
    // (floor log2). This reproduces its worked examples (2, 6, and 3
    // iterations) and matches the empirical behaviour of the unit.
    let k = n_set_phys.trailing_zeros();
    let log_l = line.trailing_zeros();
    let log_delta = if delta <= 1 {
        0
    } else {
        63 - delta.leading_zeros()
    };
    let numer = b.saturating_sub(log_l + k);
    let denom = t + k - log_delta;
    assert!(denom > 0, "selector too narrow for this geometry");
    numer.div_ceil(denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_modulo() {
        let unit = IterativeLinear::new(Geometry::new(2048), 0);
        for a in (0..50_000_000u64).step_by(999_983) {
            assert_eq!(unit.reduce(a), a % 2039, "a = {a}");
        }
        // Dense sweep near the modulus boundaries.
        for a in 0..20_000u64 {
            assert_eq!(unit.reduce(a), a % 2039);
        }
    }

    #[test]
    fn matches_reference_for_full_64_bit_range() {
        let unit = IterativeLinear::new(Geometry::new(2048), 8);
        for a in [
            u64::MAX,
            u64::MAX - 1,
            1 << 63,
            0xDEAD_BEEF_DEAD_BEEF,
            0x0123_4567_89AB_CDEF,
        ] {
            assert_eq!(unit.reduce(a), a % 2039, "a = {a:#x}");
        }
    }

    #[test]
    fn iteration_counts_respect_theorem1() {
        // 32-bit machine: block addresses are 26 bits (64-B lines).
        let unit = IterativeLinear::new(Geometry::new(2048), 0);
        let bound = theorem1_iterations(32, 64, 2048, 0);
        assert_eq!(bound, 2);
        for a in (0..(1u64 << 26)).step_by(104_729) {
            let (_, cost) = unit.reduce_with_cost(a);
            assert!(cost.iterations <= bound, "a = {a}: {}", cost.iterations);
        }
    }

    #[test]
    fn paper_64_bit_examples() {
        // 64-bit machine, 58-bit block addresses. The Theorem 1 formula
        // reproduces the paper's published counts (6 with a 3-input
        // selector, 3 with a 258-input one). The bit-level Eq.-3 model only
        // exploits the selector terminally, so its wide-selector iteration
        // count sits between the two bounds (measured: 5); the narrow
        // bound holds for it unconditionally.
        let narrow = IterativeLinear::new(Geometry::new(2048), 0);
        let wide = IterativeLinear::new(Geometry::new(2048), 8);
        let bound_narrow = theorem1_iterations(64, 64, 2048, 0);
        let bound_wide = theorem1_iterations(64, 64, 2048, 8);
        assert_eq!(bound_narrow, 6);
        assert_eq!(bound_wide, 3);
        for a in [
            (1u64 << 58) - 1,
            0x03FF_FFFF_FFFF_FFFF,
            0x0155_5555_5555_5555,
        ] {
            assert!(narrow.reduce_with_cost(a).1.iterations <= bound_narrow);
            let wide_iters = wide.reduce_with_cost(a).1.iterations;
            assert!(bound_wide <= wide_iters && wide_iters <= bound_narrow);
            assert_eq!(narrow.reduce(a), a % 2039);
            assert_eq!(wide.reduce(a), a % 2039);
        }
    }

    #[test]
    fn mersenne_geometry_uses_delta_one() {
        let unit = IterativeLinear::new(Geometry::new(8192), 0);
        assert_eq!(unit.delta(), 1);
        for a in (0..10_000_000u64).step_by(65_537) {
            assert_eq!(unit.reduce(a), a % 8191);
        }
    }

    #[test]
    fn small_values_need_zero_iterations() {
        let unit = IterativeLinear::new(Geometry::new(2048), 0);
        let (idx, cost) = unit.reduce_with_cost(1234);
        assert_eq!(idx, 1234);
        assert_eq!(cost.iterations, 0);
        assert_eq!(cost.adds, 0);
    }
}
