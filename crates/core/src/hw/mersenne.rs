//! The Mersenne-prime special case (Eq. 5, Yang & Yang's scheme).

/// Computes `a mod (2^k − 1)` by repeated folding of `k`-bit chunks:
/// `a ≡ x + t1 + t2 + … (mod 2^k − 1)` — Eq. 5 of the paper, the `Δ = 1`
/// special case of the polynomial method and exactly the scheme of the
/// paper's reference \[25\].
///
/// The paper's point is that this *only* works when `2^k − 1` is prime
/// (k = 2, 3, 5, 7, 13, 17, 19, 31, …), which severely restricts the cache
/// sizes it can serve; the polynomial method removes the restriction.
///
/// # Panics
///
/// Panics if `k == 0` or `k >= 64`.
///
/// # Examples
///
/// ```
/// use primecache_core::hw::mersenne_fold;
///
/// // An 8192-set cache uses the Mersenne prime 8191 = 2^13 - 1.
/// assert_eq!(mersenne_fold(123_456_789, 13), 123_456_789 % 8191);
/// ```
#[must_use]
pub fn mersenne_fold(a: u64, k: u32) -> u64 {
    assert!(
        (1..64).contains(&k),
        "chunk width must be in 1..64, got {k}"
    );
    let m = (1u64 << k) - 1;
    let mut v = a;
    while v > m {
        let mut folded = 0u64;
        let mut rest = v;
        while rest != 0 {
            folded += rest & m;
            rest >>= k;
        }
        v = folded;
    }
    // After folding, v may equal m itself (m ≡ 0 mod m).
    if v == m {
        0
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_primes::is_mersenne_prime;

    #[test]
    fn matches_reference_for_8191() {
        for a in (0..100_000_000u64).step_by(1_000_003) {
            assert_eq!(mersenne_fold(a, 13), a % 8191, "a = {a}");
        }
        for a in 0..20_000u64 {
            assert_eq!(mersenne_fold(a, 13), a % 8191);
        }
    }

    #[test]
    fn matches_reference_for_all_small_mersennes() {
        for k in [2u32, 3, 5, 7, 13, 17, 19, 31] {
            let m = (1u64 << k) - 1;
            assert!(is_mersenne_prime(m));
            for a in (0..10_000_000u64).step_by(333_667) {
                assert_eq!(mersenne_fold(a, k), a % m, "k = {k}, a = {a}");
            }
        }
    }

    #[test]
    fn works_on_full_width_values() {
        for a in [u64::MAX, u64::MAX - 8191, 1u64 << 63] {
            assert_eq!(mersenne_fold(a, 13), a % 8191);
            assert_eq!(mersenne_fold(a, 31), a % ((1u64 << 31) - 1));
        }
    }

    #[test]
    fn multiples_of_modulus_fold_to_zero() {
        for mult in [1u64, 2, 3, 1000, 8191] {
            assert_eq!(mersenne_fold(8191 * mult, 13), 0);
        }
    }

    #[test]
    #[should_panic(expected = "chunk width")]
    fn zero_width_rejected() {
        let _ = mersenne_fold(1, 0);
    }
}
