//! The concrete five-addend unit of Figs. 3–4 (`n_set = 2039`, 32-bit
//! machine, 64-byte lines).

use super::{HwCost, SubtractSelect};

/// Bit-exact model of the paper's worked hardware example (Figs. 3–4): an
/// L2 with 2048 physical sets indexed modulo 2039 (`Δ = 9`), for 32-bit
/// physical addresses and 64-byte blocks.
///
/// The block address (26 bits) splits into `x` (11 bits), `t1` (11 bits)
/// and `t2` (4 bits), and the index is `x + 9·t1 + 81·t2 (mod 2039)`. As in
/// Fig. 3b the computation is arranged as the sum of **five** narrow
/// numbers:
///
/// 1. `A = x`
/// 2. `B = t1`                         (the `1·t1` part of `9·t1`)
/// 3. `C = (t1 << 3) & 0x7FF`          (the low bits of `8·t1`)
/// 4. `D = 9·(t1 >> 8)`                (the carry-out of `8·t1`, folded by
///    `2^11 ≡ 9`)
/// 5. `E = 81·t2`
///
/// followed by one carry fold and a **2-input** subtract&select — the sum
/// after folding "can only be slightly larger than 2039" (§3.1.1).
///
/// # Examples
///
/// ```
/// use primecache_core::hw::Wired2039;
///
/// let a: u32 = 0x89AB_CDE8;
/// let block = u64::from(a >> 6); // strip 64-B block offset
/// assert_eq!(Wired2039::index(block), block % 2039);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Wired2039;

/// The prime modulus of the worked example.
pub const N_SET: u64 = 2039;
const MASK11: u64 = 0x7FF;

impl Wired2039 {
    /// Computes the set index of a 26-bit block address (32-bit machine).
    ///
    /// # Panics
    ///
    /// Panics if `block_addr` does not fit in 26 bits — the unit is wired
    /// for 32-bit physical addresses with 64-byte lines.
    #[must_use]
    pub fn index(block_addr: u64) -> u64 {
        Self::index_with_cost(block_addr).0
    }

    /// Computes the set index and reports the hardware cost (four adds to
    /// sum five numbers, one fold add, a 2-input selector).
    ///
    /// # Panics
    ///
    /// Panics if `block_addr` does not fit in 26 bits.
    #[must_use]
    pub fn index_with_cost(block_addr: u64) -> (u64, HwCost) {
        assert!(
            block_addr < (1u64 << 26),
            "wired unit accepts 26-bit block addresses, got {block_addr:#x}"
        );
        let x = block_addr & MASK11;
        let t1 = (block_addr >> 11) & MASK11;
        let t2 = (block_addr >> 22) & 0xF;

        // The five addends of Fig. 3b.
        let a = x;
        let b = t1;
        let c = (t1 << 3) & MASK11;
        let d = 9 * (t1 >> 8); // wired shift-add: (t1>>8)<<3 + (t1>>8)
        let e = 81 * t2; // wired shift-adds of the constant 81 = 1010001b

        let mut sum = a + b + c + d + e;
        let mut adds = 4u32; // five numbers need four carry-save adds
                             // Fold any carry out of bit 10: 2^11 ≡ 9 (mod 2039). One fold is
                             // enough: sum <= 2047*3 + 63 + 1215 < 4*2048, so the folded value
                             // is < 9*3 + 2047 + 27 < 2*2039.
        while sum >= 2048 {
            sum = 9 * (sum >> 11) + (sum & MASK11);
            adds += 1;
        }
        let selector = SubtractSelect::new(N_SET, 2);
        (
            selector.reduce(sum),
            HwCost {
                adds,
                iterations: 1,
                selector_inputs: 2,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_on_dense_sample() {
        for a in (0..(1u64 << 26)).step_by(611) {
            assert_eq!(Wired2039::index(a), a % 2039, "a = {a}");
        }
    }

    #[test]
    fn matches_reference_on_boundaries() {
        for a in [
            0u64,
            1,
            2038,
            2039,
            2040,
            2047,
            2048,
            (1 << 22) - 1,
            1 << 22,
            (1 << 26) - 1,
        ] {
            assert_eq!(Wired2039::index(a), a % 2039, "a = {a}");
        }
    }

    #[test]
    fn selector_never_needs_more_than_two_inputs() {
        // Implicit in reduce(): a panic here would mean the fold failed to
        // bring the sum under 2*2039. Sweep a stressy pattern.
        for a in ((1u64 << 26) - 70_000..(1u64 << 26)).step_by(7) {
            let (_, cost) = Wired2039::index_with_cost(a);
            assert_eq!(cost.selector_inputs, 2);
        }
    }

    #[test]
    fn cost_is_a_handful_of_narrow_adds() {
        for a in (0..(1u64 << 26)).step_by(1_048_573) {
            let (_, cost) = Wired2039::index_with_cost(a);
            assert!(cost.adds <= 7, "a = {a}: {} adds", cost.adds);
        }
    }

    #[test]
    #[should_panic(expected = "26-bit block addresses")]
    fn wide_addresses_rejected() {
        let _ = Wired2039::index(1 << 26);
    }
}
