//! TLB-assisted prime modulo computation (§3.1.1).

use primecache_primes::prev_prime;

use super::SubtractSelect;

/// Models caching the partial prime-modulo computation in the TLB
/// (§3.1.1): the modulo of the *page base* is computed once per TLB fill,
/// and on an L1 miss only the page-offset block bits are added, followed by
/// a tiny subtract&select — "much less than one clock cycle".
///
/// For a 4 KB page, 64-B lines and 2039 sets: `12 − 6 = 6` offset bits are
/// added to the 11-bit precomputed modulo.
///
/// # Examples
///
/// ```
/// use primecache_core::hw::TlbAssist;
///
/// let tlb = TlbAssist::new(2048, 4096, 64);
/// let addr = 0x1234_5678u64;
/// let entry = tlb.page_entry(addr >> 12);       // on TLB fill
/// let idx = tlb.index(entry, addr & 0xFFF);     // on L1 miss
/// assert_eq!(idx, (addr >> 6) % 2039);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TlbAssist {
    n_set: u64,
    page_size: u64,
    line_size: u64,
    selector: SubtractSelect,
}

impl TlbAssist {
    /// Creates the unit for `n_set_phys` physical sets, a page size and a
    /// cache line size (both powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` or `line_size` is not a power of two, or if
    /// `line_size >= page_size`.
    #[must_use]
    pub fn new(n_set_phys: u64, page_size: u64, line_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(line_size < page_size, "line must be smaller than a page");
        let n_set = prev_prime(n_set_phys).expect("set count must be >= 2");
        // The final add is (entry < n_set) + (offset blocks < page/line);
        // size the selector for that reach.
        let max = n_set - 1 + page_size / line_size - 1;
        let inputs = u32::try_from(max / n_set + 1).expect("selector input count is tiny");
        Self {
            n_set,
            page_size,
            line_size,
            selector: SubtractSelect::new(n_set, inputs.max(2)),
        }
    }

    /// The prime modulus in use.
    #[must_use]
    pub fn n_set(&self) -> u64 {
        self.n_set
    }

    /// Number of selector inputs of the final stage (2 for the paper's
    /// 4 KB/64 B/2039 example).
    #[must_use]
    pub fn selector_inputs(&self) -> u32 {
        self.selector.inputs()
    }

    /// The value stored in a TLB entry on fill: the modulo of the page's
    /// first block address. Computed off the critical path (e.g. by the
    /// polynomial unit); here modelled arithmetically.
    #[must_use]
    pub fn page_entry(&self, page_index: u64) -> u64 {
        let blocks_per_page = self.page_size / self.line_size;
        // (page_index * blocks_per_page) mod n_set, overflow-safe.
        u64::try_from(
            (u128::from(page_index) * u128::from(blocks_per_page)) % u128::from(self.n_set),
        )
        .expect("residue below a u64 modulus")
    }

    /// The L1-miss-time computation: add the block bits of the page offset
    /// to the precomputed entry, then subtract&select.
    ///
    /// # Panics
    ///
    /// Panics if `page_offset >= page_size` or if `entry >= n_set` (a
    /// corrupt TLB entry).
    #[must_use]
    pub fn index(&self, entry: u64, page_offset: u64) -> u64 {
        assert!(page_offset < self.page_size, "offset beyond page");
        assert!(entry < self.n_set, "TLB entry out of range");
        let offset_blocks = page_offset / self.line_size;
        self.selector.reduce(entry + offset_blocks)
    }

    /// Full computation from a byte address, modelling a TLB hit.
    #[must_use]
    pub fn index_addr(&self, byte_addr: u64) -> u64 {
        let page_index = byte_addr / self.page_size;
        let page_offset = byte_addr % self.page_size;
        self.index(self.page_entry(page_index), page_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_block_address_modulo() {
        let tlb = TlbAssist::new(2048, 4096, 64);
        for addr in (0..1u64 << 32).step_by(999_983) {
            let block = addr / 64;
            assert_eq!(tlb.index_addr(addr), block % 2039, "addr = {addr:#x}");
        }
    }

    #[test]
    fn paper_example_needs_two_input_selector() {
        // 4 KB page, 64-B line, 2039 sets: entry < 2039 plus 63 blocks
        // fits a 2-input selector.
        let tlb = TlbAssist::new(2048, 4096, 64);
        assert_eq!(tlb.selector_inputs(), 2);
    }

    #[test]
    fn large_pages_widen_the_selector() {
        // 2 MB pages with 64-B lines: 32768 offset blocks >> 2039, the
        // selector must widen accordingly (or the offset be pre-reduced).
        let tlb = TlbAssist::new(2048, 2 * 1024 * 1024, 64);
        assert!(tlb.selector_inputs() > 2);
        for addr in (0..1u64 << 33).step_by(100_000_007) {
            assert_eq!(tlb.index_addr(addr), (addr / 64) % 2039);
        }
    }

    #[test]
    fn entry_is_stable_within_a_page() {
        let tlb = TlbAssist::new(2048, 4096, 64);
        let entry = tlb.page_entry(42);
        for off in (0..4096u64).step_by(64) {
            let addr = 42 * 4096 + off;
            assert_eq!(tlb.index(entry, off), (addr / 64) % 2039);
        }
    }

    #[test]
    #[should_panic(expected = "TLB entry out of range")]
    fn corrupt_entry_rejected() {
        let tlb = TlbAssist::new(2048, 4096, 64);
        let _ = tlb.index(2039, 0);
    }
}
