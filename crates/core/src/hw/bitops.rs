//! Gate-level building blocks: carry-save compressors and a prefix adder.
//!
//! The §3.1 hardware schemes are "a set of narrow add operations"; this
//! module implements the adders the way hardware would — a 3:2 carry-save
//! tree feeding a Kogge–Stone carry-propagate adder — operating on plain
//! `u64` words as bit vectors. [`sum_many`] is used by the test suite to
//! re-validate the [`Wired2039`](super::Wired2039) unit with real gate
//! structures instead of the `+` operator.

/// One layer of 3:2 carry-save compression: three addends become two
/// (a partial-sum word and a carry word), using only bitwise gates.
///
/// The returned pair satisfies `sum + 2*carry == a + b + c` (as integers).
///
/// # Examples
///
/// ```
/// use primecache_core::hw::csa32;
///
/// let (s, c) = csa32(13, 9, 31);
/// assert_eq!(s.wrapping_add(c << 1), 13 + 9 + 31);
/// ```
#[must_use]
pub fn csa32(a: u64, b: u64, c: u64) -> (u64, u64) {
    let sum = a ^ b ^ c;
    let carry = (a & b) | (a & c) | (b & c);
    (sum, carry)
}

/// Kogge–Stone parallel-prefix addition of two words — `log2(w)` prefix
/// levels of generate/propagate merging, the adder structure a fast index
/// unit would use.
///
/// Wraps on overflow like `wrapping_add` (hardware discards the carry
/// out).
///
/// # Examples
///
/// ```
/// use primecache_core::hw::kogge_stone_add;
///
/// assert_eq!(kogge_stone_add(2039, 9), 2048);
/// assert_eq!(kogge_stone_add(u64::MAX, 1), 0);
/// ```
#[must_use]
pub fn kogge_stone_add(a: u64, b: u64) -> u64 {
    let mut g = a & b; // generate
    let mut p = a ^ b; // propagate
    let mut dist = 1u32;
    while dist < 64 {
        let g_shift = g << dist;
        let p_shift = p << dist;
        g |= p & g_shift;
        p &= p_shift;
        dist <<= 1;
    }
    // Sum bits: propagate XOR incoming carry (the prefix generate shifted
    // into position).
    (a ^ b) ^ (g << 1)
}

/// Sums a list of addends through a CSA (Wallace) tree and one final
/// prefix add — the §3.1 "set of narrow add operations" as actual gates.
///
/// Returns the wrapped sum and the number of CSA levels used (the tree
/// depth that determines the latency).
///
/// # Examples
///
/// ```
/// use primecache_core::hw::sum_many;
///
/// let (sum, levels) = sum_many(&[1, 2, 3, 4, 5]);
/// assert_eq!(sum, 15);
/// assert!(levels >= 2);
/// ```
#[must_use]
pub fn sum_many(addends: &[u64]) -> (u64, u32) {
    match addends {
        [] => (0, 0),
        [a] => (*a, 0),
        _ => {
            let mut layer: Vec<u64> = addends.to_vec();
            let mut levels = 0u32;
            while layer.len() > 2 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(3) * 2);
                for chunk in layer.chunks(3) {
                    match *chunk {
                        [a, b, c] => {
                            let (s, carry) = csa32(a, b, c);
                            next.push(s);
                            next.push(carry << 1);
                        }
                        [a, b] => {
                            next.push(a);
                            next.push(b);
                        }
                        [a] => next.push(a),
                        _ => unreachable!("chunks(3) yields 1..=3 items"),
                    }
                }
                layer = next;
                levels += 1;
            }
            let sum = if layer.len() == 2 {
                kogge_stone_add(layer[0], layer[1])
            } else {
                layer[0]
            };
            (sum, levels)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csa_identity_holds_everywhere() {
        for (a, b, c) in [
            (0u64, 0u64, 0u64),
            (1, 1, 1),
            (u64::MAX, 1, 0),
            (0xDEAD_BEEF, 0xCAFE_BABE, 0x1234_5678),
        ] {
            let (s, carry) = csa32(a, b, c);
            assert_eq!(
                s.wrapping_add(carry.wrapping_shl(1)),
                a.wrapping_add(b).wrapping_add(c)
            );
        }
    }

    #[test]
    fn kogge_stone_matches_wrapping_add() {
        let vals = [
            0u64,
            1,
            2039,
            2048,
            u32::MAX as u64,
            u64::MAX,
            0x8000_0000_0000_0000,
            0x5555_5555_5555_5555,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(kogge_stone_add(a, b), a.wrapping_add(b), "{a} + {b}");
            }
        }
    }

    #[test]
    fn sum_many_matches_iterator_sum() {
        let addends: Vec<u64> = (1..=20u64).map(|i| i * 1_000_003).collect();
        let (sum, levels) = sum_many(&addends);
        assert_eq!(sum, addends.iter().sum::<u64>());
        // 20 addends compress in ~6 CSA levels.
        assert!(levels <= 8, "{levels}");
    }

    #[test]
    fn wired_2039_addends_sum_correctly_through_gates() {
        // Re-validate the Fig. 3b unit using real gate structures: the
        // five addends (with the 8*t1 carry-out folded by 2^11 ≡ 9) summed
        // through the CSA tree + prefix adder are congruent to
        // x + 9*t1 + 81*t2 — hence to the block address — modulo 2039.
        for a in (0..(1u64 << 26)).step_by(1_048_573) {
            let x = a & 0x7FF;
            let t1 = (a >> 11) & 0x7FF;
            let t2 = (a >> 22) & 0xF;
            let addends = [x, t1, (t1 << 3) & 0x7FF, 9 * (t1 >> 8), 81 * t2];
            let (sum, levels) = sum_many(&addends);
            assert_eq!(sum % 2039, (x + 9 * t1 + 81 * t2) % 2039, "a = {a}");
            assert_eq!(sum % 2039, a % 2039, "a = {a}");
            assert!(levels <= 3, "five 11-bit numbers need <= 3 CSA levels");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sum_many(&[]), (0, 0));
        assert_eq!(sum_many(&[42]), (42, 0));
        assert_eq!(sum_many(&[40, 2]).0, 42);
    }
}
