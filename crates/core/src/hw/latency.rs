//! Gate-level latency estimates for the index computations (§3.1.1).
//!
//! The paper argues the prime-modulo index can be computed "in parallel
//! with L1 accesses", so the L2 access time is not impacted. This module
//! makes the claim checkable: it estimates each scheme's combinational
//! depth in *gate stages*, using standard structures — a carry-save adder
//! (Wallace) tree to compress the addend list, a prefix (Kogge–Stone)
//! adder for the final sum, and a mux stage for the subtract&select.
//!
//! The unit is one 2-input-gate delay; a 2003-era cycle at 1.6 GHz fits
//! roughly 16–20 of them (FO4-equivalent), so an L1 hit (3 cycles) offers
//! ~50 stages of slack — which every scheme here clears easily.

use crate::expr::{BinOp, Expr};
use crate::index::{Geometry, HashKind};

/// Combinational-depth estimate of one index computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexLatency {
    /// Scheme being estimated.
    pub kind: HashKind,
    /// Number of index-width addends entering the adder tree.
    pub addends: u32,
    /// CSA-tree levels (each ~2 gate stages).
    pub csa_levels: u32,
    /// Prefix-adder stages for the final carry-propagate add.
    pub cpa_stages: u32,
    /// Selector (mux) stages for subtract&select.
    pub select_stages: u32,
    /// Total gate stages.
    pub total_stages: u32,
}

/// Gate stages a 1.6 GHz cycle accommodates (FO4-equivalent estimate).
pub const STAGES_PER_CYCLE: u32 = 16;

/// CSA-tree depth (in CSA levels) to compress `n` addends to 2.
///
/// Each 3:2 compressor level reduces the operand count by a factor of
/// ~2/3: `n -> ceil(2n/3)`.
///
/// # Examples
///
/// ```
/// use primecache_core::hw::csa_levels;
///
/// assert_eq!(csa_levels(2), 0);
/// assert_eq!(csa_levels(3), 1);
/// assert_eq!(csa_levels(5), 3);
/// ```
#[must_use]
pub fn csa_levels(n: u32) -> u32 {
    let mut n = n.max(2);
    let mut levels = 0;
    while n > 2 {
        n = n.div_ceil(3) * 2 - if n % 3 == 1 { 1 } else { 0 };
        levels += 1;
    }
    levels
}

/// Estimates the index-computation latency of a hash scheme over a
/// geometry, assuming a 32-bit physical address and 64-byte lines (the
/// paper's worked configuration).
///
/// # Examples
///
/// ```
/// use primecache_core::hw::{index_latency, STAGES_PER_CYCLE};
/// use primecache_core::index::{Geometry, HashKind};
///
/// let l = index_latency(HashKind::PrimeModulo, Geometry::new(2048));
/// // One cycle of slack is plenty: the computation overlaps the 3-cycle
/// // L1 access (§3.1.1).
/// assert!(l.total_stages <= 3 * STAGES_PER_CYCLE);
/// ```
#[must_use]
pub fn index_latency(kind: HashKind, geom: Geometry) -> IndexLatency {
    let k = geom.index_bits();
    // Kogge-Stone prefix adder over k bits: log2(k) prefix stages plus
    // pre/post processing.
    let cpa_stages = 32u32.saturating_sub(k.leading_zeros()) + 2;
    let (addends, select_stages) = match kind {
        // Wire selection of the low bits.
        HashKind::Traditional => (0, 0),
        // One XOR level.
        HashKind::Xor => (0, 1),
        // §3.1.1 worked example: five narrow numbers (A..E), one carry
        // fold treated as one extra CSA level via the +1 addend, and a
        // 2-input subtract&select (one mux stage after a comparison add).
        HashKind::PrimeModulo => (6, 2),
        // p = 9 = 1001b: T + 8T + x = three addends, truncated (no
        // selector, the mask is free).
        HashKind::PrimeDisplacement => (3, 0),
        // A user expression is profiled by the most expensive structure
        // its folded tree contains: a residue like pMod, a multiply/add
        // datapath like pDisp, an XOR/OR network, or bare wiring.
        HashKind::Expr(id) => expr_stage_profile(id.folded()),
    };
    let csa = csa_levels(addends.max(2));
    // Schemes with no addends are pure wiring plus `select_stages` of
    // logic (Traditional 0, XOR 1); anything with an adder tree pays the
    // CSA compression, the final prefix add, and the selector.
    let total = if addends == 0 {
        select_stages
    } else {
        2 * csa + cpa_stages + select_stages
    };
    IndexLatency {
        kind,
        addends,
        csa_levels: csa,
        cpa_stages,
        select_stages,
        total_stages: total,
    }
}

/// `(addends, select_stages)` profile of a user expression, mirroring the
/// built-in profiles: a `% const` needs the §3.1.1 polynomial unit (pMod's
/// profile), a multiply/add datapath matches pDisp, a pure XOR/OR network
/// is one gate level, and anything else is wire selection.
fn expr_stage_profile(e: &Expr) -> (u32, u32) {
    let has = |ops: &'static [BinOp]| {
        e.contains(&|n| matches!(n, Expr::Bin(op, _, _) if ops.contains(op)))
    };
    if has(&[BinOp::Mod]) {
        (6, 2)
    } else if has(&[BinOp::Mul, BinOp::Add]) {
        (3, 0)
    } else if has(&[BinOp::Xor, BinOp::Or]) {
        (0, 1)
    } else {
        (0, 0)
    }
}

/// Whether the scheme's index computation fits in the slack of an L1
/// access of `l1_cycles` cycles — the §3.1.1 overlap argument.
#[must_use]
pub fn fits_l1_overlap(kind: HashKind, geom: Geometry, l1_cycles: u32) -> bool {
    index_latency(kind, geom).total_stages <= l1_cycles * STAGES_PER_CYCLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csa_reduction_is_monotonic() {
        let mut prev = 0;
        for n in 2..64 {
            let l = csa_levels(n);
            assert!(l >= prev);
            prev = l;
        }
        assert!(csa_levels(64) <= 10);
    }

    #[test]
    fn traditional_is_free_and_xor_one_stage() {
        let g = Geometry::new(2048);
        assert_eq!(index_latency(HashKind::Traditional, g).total_stages, 0);
        assert_eq!(index_latency(HashKind::Xor, g).total_stages, 1);
    }

    #[test]
    fn every_scheme_overlaps_the_l1_access() {
        // §3.1.1: with a 3-cycle L1, every scheme's index computation
        // hides completely.
        for phys in [256u64, 2048, 16384] {
            let g = Geometry::new(phys);
            for kind in HashKind::ALL {
                assert!(
                    fits_l1_overlap(kind, g, 3),
                    "{kind:?} at {phys} sets does not fit"
                );
            }
        }
    }

    #[test]
    fn pmod_costs_more_than_pdisp_costs_more_than_xor() {
        // The paper's qualitative cost ordering.
        let g = Geometry::new(2048);
        let pmod = index_latency(HashKind::PrimeModulo, g).total_stages;
        let pdisp = index_latency(HashKind::PrimeDisplacement, g).total_stages;
        let xor = index_latency(HashKind::Xor, g).total_stages;
        assert!(pmod > pdisp);
        assert!(pdisp > xor);
    }

    #[test]
    fn pmod_fits_within_a_single_cycle_plus_slack() {
        // The TLB-assisted variant is "much less than one clock cycle";
        // even the full polynomial unit stays within two cycles.
        let g = Geometry::new(2048);
        let l = index_latency(HashKind::PrimeModulo, g);
        assert!(l.total_stages <= 2 * STAGES_PER_CYCLE, "{l:?}");
    }
}
