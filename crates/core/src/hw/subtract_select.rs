//! The subtract&select unit (Fig. 2).

/// Models the subtract&select hardware of Fig. 2: `x`, `x - n_set`,
/// `x - 2·n_set`, … are computed in parallel and a selector picks the
/// rightmost non-negative input — i.e. `x mod n_set` for small `x`.
///
/// The number of selector inputs bounds the largest reducible value:
/// an `n`-input unit handles `x < n · n_set`.
///
/// # Examples
///
/// ```
/// use primecache_core::hw::SubtractSelect;
///
/// // The final stage of the 2039-set polynomial unit needs only 2 inputs.
/// let ss = SubtractSelect::new(2039, 2);
/// assert_eq!(ss.reduce(2040), 1);
/// assert_eq!(ss.try_reduce(5000), None); // out of range for 2 inputs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtractSelect {
    n_set: u64,
    inputs: u32,
}

impl SubtractSelect {
    /// Creates a subtract&select unit for modulus `n_set` with `inputs`
    /// selector inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n_set == 0` or `inputs == 0`.
    #[must_use]
    pub fn new(n_set: u64, inputs: u32) -> Self {
        assert!(n_set > 0, "modulus must be nonzero");
        assert!(inputs > 0, "selector needs at least one input");
        Self { n_set, inputs }
    }

    /// The modulus this unit reduces by.
    #[must_use]
    pub fn n_set(&self) -> u64 {
        self.n_set
    }

    /// Number of selector inputs.
    #[must_use]
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Largest value this unit can reduce (exclusive).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.n_set.saturating_mul(u64::from(self.inputs))
    }

    /// Reduces `x` to `x mod n_set`, or `None` when `x` exceeds the
    /// capacity of the selector (more subtractions would be needed than
    /// inputs exist).
    #[must_use]
    pub fn try_reduce(&self, x: u64) -> Option<u64> {
        // Hardware: evaluate x - k*n_set for k = 0..inputs, select the
        // rightmost non-negative. Software model: check range then mod.
        if x >= self.capacity() {
            return None;
        }
        let mut v = x;
        // Walk the selector inputs exactly as the hardware is wired.
        for _ in 0..self.inputs {
            if v < self.n_set {
                return Some(v);
            }
            v -= self.n_set;
        }
        Some(v)
    }

    /// Reduces `x` to `x mod n_set`.
    ///
    /// # Panics
    ///
    /// Panics when `x >= capacity()` — the hardware analogue of wiring a
    /// too-wide value into the selector.
    #[must_use]
    pub fn reduce(&self, x: u64) -> u64 {
        self.try_reduce(x).unwrap_or_else(|| {
            panic!(
                "subtract&select overflow: {x} needs more than {} inputs for n_set {}",
                self.inputs, self.n_set
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_modulo_within_capacity() {
        let ss = SubtractSelect::new(2039, 8);
        for x in 0..ss.capacity() {
            assert_eq!(ss.reduce(x), x % 2039);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let ss = SubtractSelect::new(2039, 2);
        assert_eq!(ss.try_reduce(2 * 2039), None);
        assert_eq!(ss.try_reduce(u64::MAX), None);
        assert_eq!(ss.try_reduce(2 * 2039 - 1), Some(2038));
    }

    #[test]
    fn single_input_selector_is_identity_below_modulus() {
        let ss = SubtractSelect::new(100, 1);
        assert_eq!(ss.reduce(99), 99);
        assert_eq!(ss.try_reduce(100), None);
    }

    #[test]
    fn paper_258_input_selector() {
        // §3.1: "a 258-input selector" used with the iterative method on
        // 64-bit machines.
        let ss = SubtractSelect::new(2039, 258);
        assert_eq!(ss.capacity(), 258 * 2039);
        assert_eq!(ss.reduce(257 * 2039 + 5), 5);
    }

    #[test]
    #[should_panic(expected = "subtract&select overflow")]
    fn reduce_panics_out_of_range() {
        let _ = SubtractSelect::new(2039, 2).reduce(10_000);
    }
}
