//! Concentration (Eq. 2).

use crate::index::SetIndexer;

/// Computes the concentration of an address sequence under an indexer
/// (Eq. 2):
///
/// ```text
/// concentration = sqrt( Σ_i (d_i − n_set)² / m )
/// ```
///
/// where `d_i` is the smallest positive distance with
/// `H(a_i) = H(a_{i+d_i})` — the gap until set `H(a_i)` is re-accessed. In
/// the ideal case every gap equals `n_set`, so the ideal concentration is
/// 0. Large values mean bursts of accesses to the same set (gaps far below
/// `n_set`) balanced by droughts (gaps far above), the signature of the
/// pathological behaviour of §2.1.
///
/// Accesses whose set is never re-accessed before the sequence ends have
/// no defined `d_i`; they are excluded from the average (the paper's
/// formula assumes `m` large enough that the tail is negligible).
///
/// Returns 0.0 for sequences shorter than 2 accesses.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, PrimeModulo};
/// use primecache_core::metrics::{concentration, strided_addresses};
///
/// let pmod = PrimeModulo::new(Geometry::new(2048));
/// // Sequence invariance + ideal balance => ideal concentration.
/// let c = concentration(&pmod, strided_addresses(4, 8192));
/// assert!(c < 1.0);
/// ```
#[must_use]
pub fn concentration<I, A>(indexer: &I, addrs: A) -> f64
where
    I: SetIndexer + ?Sized,
    A: IntoIterator<Item = u64>,
{
    let n_set = indexer.n_set() as f64;
    let mut last_pos: Vec<Option<usize>> =
        vec![None; usize::try_from(indexer.n_set()).expect("set count fits usize")];
    let mut sum_sq = 0.0f64;
    let mut defined = 0u64;
    for (pos, a) in addrs.into_iter().enumerate() {
        let set = usize::try_from(indexer.index(a)).expect("set index fits usize");
        if let Some(prev) = last_pos[set] {
            let d = (pos - prev) as f64;
            let dev = d - n_set;
            sum_sq += dev * dev;
            defined += 1;
        }
        last_pos[set] = Some(pos);
    }
    if defined == 0 {
        return 0.0;
    }
    (sum_sq / defined as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Geometry, PrimeModulo, Traditional, Xor};
    use crate::metrics::strided_addresses;

    const M: usize = 8192;

    #[test]
    fn round_robin_is_ideal() {
        // Unit stride through a traditional cache re-accesses each set
        // exactly every n_set accesses.
        let t = Traditional::new(Geometry::new(256));
        let c = concentration(&t, strided_addresses(1, M));
        assert_eq!(c, 0.0);
    }

    #[test]
    fn traditional_even_strides_concentrate() {
        let t = Traditional::new(Geometry::new(2048));
        // Stride 2 uses only half the sets: gaps of n_set/2.
        let c = concentration(&t, strided_addresses(2, M));
        assert!(c > 500.0, "concentration = {c}");
    }

    #[test]
    fn pmod_ideal_for_odd_and_even_strides() {
        let p = PrimeModulo::new(Geometry::new(2048));
        for s in [1u64, 2, 3, 4, 512, 2048] {
            let c = concentration(&p, strided_addresses(s, M));
            // Sequence invariant + ideal balance: all gaps equal n_set.
            assert!(c < 1e-9, "stride {s}: concentration {c}");
        }
    }

    #[test]
    fn xor_never_ideal() {
        // §3.3: XOR is not sequence invariant, so concentration is nonzero
        // even on strides where balance is ideal.
        let x = Xor::new(Geometry::new(2048));
        let mut nonzero = 0;
        for s in [1u64, 3, 5, 7, 9, 11] {
            if concentration(&x, strided_addresses(s, M)) > 1.0 {
                nonzero += 1;
            }
        }
        assert!(nonzero >= 4, "XOR should concentrate on most strides");
    }

    #[test]
    fn empty_and_singleton_sequences_are_zero() {
        let t = Traditional::new(Geometry::new(64));
        assert_eq!(concentration(&t, std::iter::empty()), 0.0);
        assert_eq!(concentration(&t, std::iter::once(5u64)), 0.0);
    }
}
