//! Balance (Eq. 1).

use crate::index::SetIndexer;

use super::set_histogram;

/// Computes the balance of per-set address counts (Eq. 1, after Aho &
/// Ullman):
///
/// ```text
///            Σ_j b_j·(b_j+1)/2
/// balance = --------------------------------
///            m/(2·n_set) · (m + 2·n_set − 1)
/// ```
///
/// where `b_j` is the number of addresses mapped to set `j` and `m` the
/// total. The numerator is the actual sum of set weights, the denominator
/// the weight under a perfectly even distribution; 1.0 is ideal, larger is
/// worse.
///
/// # Panics
///
/// Panics if `counts` is empty or `m == 0` (balance is undefined).
///
/// # Examples
///
/// ```
/// use primecache_core::metrics::balance_of_counts;
///
/// // Perfectly even: 4 sets, 2 addresses each => weights 4*3 = 12,
/// // random-reference weight 8/(2*4)*(8 + 2*4 - 1) = 15.
/// let b = balance_of_counts(&[2, 2, 2, 2]);
/// assert!((b - 12.0 / 15.0).abs() < 1e-12);
/// ```
///
/// Note that a perfectly *even* distribution scores slightly below 1
/// (the denominator models a perfectly *random* one); the score tends to 1
/// from below as `m/n_set` grows.
#[must_use]
pub fn balance_of_counts(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "balance needs at least one set");
    let n_set = counts.len() as f64;
    let m: u64 = counts.iter().sum();
    assert!(m > 0, "balance needs at least one address");
    let m = m as f64;
    let numer: f64 = counts
        .iter()
        .map(|&b| {
            let b = b as f64;
            b * (b + 1.0) / 2.0
        })
        .sum();
    let denom = m / (2.0 * n_set) * (m + 2.0 * n_set - 1.0);
    numer / denom
}

/// Computes the balance of an address sequence under an indexer.
///
/// The sequence must consist of distinct addresses (the paper's §2.1
/// premise); duplicates are not detected and will skew the metric.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, PrimeModulo};
/// use primecache_core::metrics::{balance, strided_addresses};
///
/// let pmod = PrimeModulo::new(Geometry::new(2048));
/// // Power-of-two stride: prime modulo keeps the ideal balance of ~1.
/// let b = balance(&pmod, strided_addresses(2048, 8192));
/// assert!(b < 1.01);
/// ```
#[must_use]
pub fn balance<I, A>(indexer: &I, addrs: A) -> f64
where
    I: SetIndexer + ?Sized,
    A: IntoIterator<Item = u64>,
{
    balance_of_counts(&set_histogram(indexer, addrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Geometry, PrimeModulo, Traditional, Xor};
    use crate::metrics::strided_addresses;

    const M: usize = 8192;

    #[test]
    fn even_distribution_matches_closed_form() {
        // m = k*n_set spread perfectly => balance = (k+1)/(k+2-1/n_set).
        let (k, n) = (8u64, 1024usize);
        let counts = vec![k; n];
        let b = balance_of_counts(&counts);
        let expect = (k as f64 + 1.0) / (k as f64 + 2.0 - 1.0 / n as f64);
        assert!((b - expect).abs() < 1e-12, "balance = {b}, expect {expect}");
        assert!(b < 1.0);
    }

    #[test]
    fn even_distribution_tends_to_one_from_below() {
        let b_small = balance_of_counts(&vec![4u64; 256]);
        let b_large = balance_of_counts(&vec![400u64; 256]);
        assert!(b_small < b_large && b_large < 1.0);
        assert!(b_large > 0.99);
    }

    #[test]
    fn single_set_pileup_is_terrible() {
        let mut counts = vec![0u64; 1024];
        counts[0] = 8192;
        let b = balance_of_counts(&counts);
        assert!(b > 100.0, "balance = {b}");
    }

    #[test]
    fn traditional_odd_strides_ideal_even_strides_bad() {
        let t = Traditional::new(Geometry::new(2048));
        for s in [1u64, 3, 5, 7, 999, 2047] {
            let b = balance(&t, strided_addresses(s, M));
            assert!(b < 1.01, "odd stride {s}: balance {b}");
        }
        for s in [2u64, 4, 512, 2048] {
            let b = balance(&t, strided_addresses(s, M));
            assert!(b > 1.5, "even stride {s}: balance {b}");
        }
    }

    #[test]
    fn pmod_ideal_for_all_strides_but_multiples_of_n_set() {
        let p = PrimeModulo::new(Geometry::new(2048));
        for s in [1u64, 2, 4, 512, 2048, 2047, 1024, 6] {
            let b = balance(&p, strided_addresses(s, M));
            assert!(b < 1.02, "stride {s}: balance {b}");
        }
        let b = balance(&p, strided_addresses(2039, M));
        assert!(b > 100.0, "stride n_set must be the pathological case: {b}");
    }

    #[test]
    fn xor_pathological_at_n_set_minus_one() {
        // §3.3: s = n_set − 1 collapses XOR onto few sets.
        let x = Xor::new(Geometry::new(2048));
        let b = balance(&x, strided_addresses(2047, M));
        assert!(b > 10.0, "balance = {b}");
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn empty_counts_rejected() {
        let _ = balance_of_counts(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn zero_addresses_rejected() {
        let _ = balance_of_counts(&[0, 0]);
    }
}
