//! Sequence invariance (Property 2).

use crate::index::SetIndexer;

/// Fraction of violated sequence-invariance implications for an address
/// sequence under an indexer.
///
/// Property 2 (§2.2): a hash function is *sequence invariant* iff
/// `H(a_i) = H(a_{i+x})` implies `H(a_{i+1}) = H(a_{i+x+1})`. This checker
/// tests the implication at every consecutive re-access of each set (the
/// pairs that determine the concentration) and returns
/// `violations / implications_tested` — 0.0 for a fully sequence-invariant
/// function, and > 0 otherwise. "Partial" sequence invariance (pDisp,
/// §3.3) shows up as a small nonzero fraction.
///
/// Returns 0.0 when no implication can be tested (too short / no reuse).
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, PrimeModulo, Xor};
/// use primecache_core::metrics::{strided_addresses, violation_fraction};
///
/// let addrs = strided_addresses(3, 8192);
/// let pmod = PrimeModulo::new(Geometry::new(2048));
/// assert_eq!(violation_fraction(&pmod, &addrs), 0.0);
/// ```
#[must_use]
pub fn violation_fraction<I>(indexer: &I, addrs: &[u64]) -> f64
where
    I: SetIndexer + ?Sized,
{
    if addrs.len() < 2 {
        return 0.0;
    }
    let sets: Vec<u64> = addrs.iter().map(|&a| indexer.index(a)).collect();
    let mut last_pos: Vec<Option<usize>> =
        vec![None; usize::try_from(indexer.n_set()).expect("set count fits usize")];
    let mut tested = 0u64;
    let mut violated = 0u64;
    for (pos, &set) in sets.iter().enumerate() {
        let set = usize::try_from(set).expect("set index fits usize");
        if let Some(prev) = last_pos[set] {
            // Implication: sets[prev] == sets[pos] => sets[prev+1] == sets[pos+1].
            if pos + 1 < sets.len() {
                tested += 1;
                if sets[prev + 1] != sets[pos + 1] {
                    violated += 1;
                }
            }
        }
        last_pos[set] = Some(pos);
    }
    if tested == 0 {
        0.0
    } else {
        violated as f64 / tested as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Geometry, PrimeDisplacement, PrimeModulo, Traditional, Xor};
    use crate::metrics::strided_addresses;

    const M: usize = 8192;

    #[test]
    fn modulo_hashes_are_sequence_invariant() {
        // Both traditional and prime modulo satisfy Property 2 exactly
        // (Table 2), for any stride.
        let trad = Traditional::new(Geometry::new(2048));
        let pmod = PrimeModulo::new(Geometry::new(2048));
        for s in [1u64, 2, 3, 15, 64, 2039, 2048] {
            let addrs = strided_addresses(s, M);
            assert_eq!(violation_fraction(&trad, &addrs), 0.0, "trad s={s}");
            assert_eq!(violation_fraction(&pmod, &addrs), 0.0, "pmod s={s}");
        }
    }

    #[test]
    fn xor_is_not_sequence_invariant() {
        // Table 2: XOR — "Sequence invariant? No".
        let xor = Xor::new(Geometry::new(2048));
        let mut violating_strides = 0;
        for s in [1u64, 3, 5, 7, 9, 11, 13] {
            if violation_fraction(&xor, &strided_addresses(s, M)) > 0.0 {
                violating_strides += 1;
            }
        }
        assert!(
            violating_strides >= 5,
            "{violating_strides} strides violated"
        );
    }

    #[test]
    fn pdisp_is_partially_sequence_invariant() {
        // Table 2: pDisp — "Partial": all but one set per subsequence obey
        // the implication, so the violation fraction is small but may be
        // nonzero.
        let pd = PrimeDisplacement::new(Geometry::new(2048), 9);
        let mut worst: f64 = 0.0;
        for s in [1u64, 2, 3, 4, 5, 8, 16] {
            let v = violation_fraction(&pd, &strided_addresses(s, M));
            worst = worst.max(v);
            assert!(v < 0.05, "stride {s}: violation fraction {v}");
        }
        // And it should genuinely be *partial*, not perfect, on some stride.
        let mut any = false;
        for s in 1u64..64 {
            if violation_fraction(&pd, &strided_addresses(s, M)) > 0.0 {
                any = true;
                break;
            }
        }
        assert!(
            any,
            "pDisp should violate occasionally (it is only partial)"
        );
    }

    #[test]
    fn degenerate_sequences_return_zero() {
        let trad = Traditional::new(Geometry::new(64));
        assert_eq!(violation_fraction(&trad, &[]), 0.0);
        assert_eq!(violation_fraction(&trad, &[1]), 0.0);
        assert_eq!(violation_fraction(&trad, &[1, 2]), 0.0);
    }
}
