//! Metrics for analyzing hashing pathologies (§2).
//!
//! The paper analyzes hash functions with two metrics over a sequence of
//! *distinct* block addresses:
//!
//! * **balance** (Eq. 1) — how evenly addresses distribute over the sets,
//!   1.0 being ideal; and
//! * **concentration** (Eq. 2) — the standard deviation of the distances
//!   between consecutive accesses to the same set, 0.0 being ideal.
//!
//! Ideal concentration requires both ideal balance *and* sequence
//! invariance (Property 2), checked by
//! [`invariance::violation_fraction`]. Applications are classified as
//! uniform/non-uniform by the ratio `stdev(f)/mean(f)` over per-set access
//! frequencies ([`uniformity::uniformity_ratio`], §4).

mod balance;
mod concentration;
pub mod invariance;
mod online;
pub mod uniformity;

pub use balance::{balance, balance_of_counts};
pub use concentration::concentration;
pub use invariance::violation_fraction;
pub use online::OnlineMetrics;
pub use uniformity::{is_non_uniform, uniformity_ratio, NON_UNIFORM_THRESHOLD};

use crate::index::SetIndexer;

/// Histogram of set accesses produced by running an address sequence
/// through an indexer.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, Traditional};
/// use primecache_core::metrics::set_histogram;
///
/// let idx = Traditional::new(Geometry::new(16));
/// let h = set_histogram(&idx, (0..32u64).map(|i| i * 16));
/// assert_eq!(h[0], 32); // power-of-two stride: everything in set 0
/// ```
#[must_use]
pub fn set_histogram<I, A>(indexer: &I, addrs: A) -> Vec<u64>
where
    I: SetIndexer + ?Sized,
    A: IntoIterator<Item = u64>,
{
    let mut counts = vec![0u64; usize::try_from(indexer.n_set()).expect("set count fits usize")];
    for a in addrs {
        counts[usize::try_from(indexer.index(a)).expect("set index fits usize")] += 1;
    }
    counts
}

/// Generates the strided block-address sequence `0, s, 2s, …` of length `m`
/// used throughout §5.1 (each address distinct for `s >= 1`).
#[must_use]
pub fn strided_addresses(stride: u64, m: usize) -> Vec<u64> {
    (0..m as u64).map(|i| i * stride).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Geometry, Traditional};

    #[test]
    fn histogram_counts_every_access() {
        let idx = Traditional::new(Geometry::new(64));
        let h = set_histogram(&idx, 0..1000u64);
        assert_eq!(h.iter().sum::<u64>(), 1000);
        assert_eq!(h.len(), 64);
    }

    #[test]
    fn strided_addresses_are_distinct() {
        let addrs = strided_addresses(7, 100);
        let set: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(addrs[1], 7);
    }
}
