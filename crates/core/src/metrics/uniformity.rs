//! Uniform / non-uniform application classification (§4).

/// The paper's classification threshold: an application is *non-uniform*
/// when `stdev(f_i) / mean(f_i) > 0.5` over per-set access frequencies.
pub const NON_UNIFORM_THRESHOLD: f64 = 0.5;

/// Computes the uniformity ratio `stdev(f) / mean(f)` (the coefficient of
/// variation) of a per-set access histogram.
///
/// Applications with a ratio above [`NON_UNIFORM_THRESHOLD`] "likely suffer
/// from conflict misses, and hence alternative hashing functions are
/// expected to speed them up" (§4).
///
/// Returns 0.0 for an empty histogram or one with no accesses.
///
/// # Examples
///
/// ```
/// use primecache_core::metrics::uniformity_ratio;
///
/// assert_eq!(uniformity_ratio(&[5, 5, 5, 5]), 0.0);
/// assert!(uniformity_ratio(&[100, 0, 0, 0]) > 0.5);
/// ```
#[must_use]
pub fn uniformity_ratio(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Applies the paper's §4 criterion to a per-set access histogram.
///
/// # Examples
///
/// ```
/// use primecache_core::metrics::is_non_uniform;
///
/// assert!(!is_non_uniform(&[10, 11, 9, 10]));
/// assert!(is_non_uniform(&[1000, 1, 1, 1]));
/// ```
#[must_use]
pub fn is_non_uniform(counts: &[u64]) -> bool {
    uniformity_ratio(counts) > NON_UNIFORM_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_histogram_is_perfectly_uniform() {
        assert_eq!(uniformity_ratio(&[7; 2048]), 0.0);
    }

    #[test]
    fn point_mass_ratio_grows_with_set_count() {
        // All mass in one of n sets: CV = sqrt(n - 1).
        let mut counts = vec![0u64; 16];
        counts[0] = 160;
        let cv = uniformity_ratio(&counts);
        assert!((cv - (15.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn threshold_matches_paper() {
        assert_eq!(NON_UNIFORM_THRESHOLD, 0.5);
        // Just below and above.
        assert!(!is_non_uniform(&[15, 10, 10, 10])); // cv ≈ 0.19
        assert!(is_non_uniform(&[40, 10, 10, 10])); // cv ≈ 0.74
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(uniformity_ratio(&[]), 0.0);
        assert_eq!(uniformity_ratio(&[0, 0, 0]), 0.0);
        assert_eq!(uniformity_ratio(&[5]), 0.0);
    }
}
