//! Streaming (online) computation of the §2 metrics.
//!
//! The batch functions in this module's siblings take a materialized
//! address slice; [`OnlineMetrics`] accumulates the same statistics one
//! access at a time with O(n_set) memory, so the metrics can be evaluated
//! over full workload traces (`pcache metrics --app <name>`).

use crate::index::SetIndexer;

use super::{balance_of_counts, uniformity_ratio};

/// Incremental accumulator for balance (Eq. 1), concentration (Eq. 2) and
/// the uniformity ratio over an arbitrary access stream.
///
/// # Examples
///
/// ```
/// use primecache_core::index::{Geometry, PrimeModulo, SetIndexer};
/// use primecache_core::metrics::OnlineMetrics;
///
/// let pmod = PrimeModulo::new(Geometry::new(2048));
/// let mut m = OnlineMetrics::new(pmod.n_set());
/// for i in 0..8192u64 {
///     m.observe(&pmod, i * 4);
/// }
/// assert!(m.balance() < 1.01);
/// assert!(m.concentration() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineMetrics {
    counts: Vec<u64>,
    last_pos: Vec<Option<u64>>,
    pos: u64,
    gap_sq_sum: f64,
    gaps: u64,
    n_set: u64,
}

impl OnlineMetrics {
    /// Creates an accumulator for an indexer with `n_set` sets.
    ///
    /// # Panics
    ///
    /// Panics if `n_set == 0`.
    #[must_use]
    pub fn new(n_set: u64) -> Self {
        assert!(n_set > 0, "need at least one set");
        Self {
            counts: vec![0; usize::try_from(n_set).expect("set count fits usize")],
            last_pos: vec![None; usize::try_from(n_set).expect("set count fits usize")],
            pos: 0,
            gap_sq_sum: 0.0,
            gaps: 0,
            n_set,
        }
    }

    /// Feeds one block address through the indexer.
    pub fn observe<I: SetIndexer + ?Sized>(&mut self, indexer: &I, block_addr: u64) {
        debug_assert_eq!(indexer.n_set(), self.n_set, "indexer/accumulator mismatch");
        let set = usize::try_from(indexer.index(block_addr)).expect("set index fits usize");
        self.counts[set] += 1;
        if let Some(prev) = self.last_pos[set] {
            let dev = (self.pos - prev) as f64 - self.n_set as f64;
            self.gap_sq_sum += dev * dev;
            self.gaps += 1;
        }
        self.last_pos[set] = Some(self.pos);
        self.pos += 1;
    }

    /// Accesses observed so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.pos
    }

    /// Balance (Eq. 1) of the accesses so far; `f64::NAN` when empty.
    #[must_use]
    pub fn balance(&self) -> f64 {
        if self.pos == 0 {
            f64::NAN
        } else {
            balance_of_counts(&self.counts)
        }
    }

    /// Concentration (Eq. 2) of the accesses so far (0.0 when no set has
    /// been re-accessed yet).
    #[must_use]
    pub fn concentration(&self) -> f64 {
        if self.gaps == 0 {
            0.0
        } else {
            (self.gap_sq_sum / self.gaps as f64).sqrt()
        }
    }

    /// Uniformity ratio `stdev/mean` of the per-set access counts (§4).
    #[must_use]
    pub fn uniformity(&self) -> f64 {
        uniformity_ratio(&self.counts)
    }

    /// The per-set access histogram accumulated so far.
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Geometry, HashKind};
    use crate::metrics::{balance, concentration, strided_addresses};

    #[test]
    fn online_matches_batch_for_every_hash() {
        let geom = Geometry::new(256);
        for kind in HashKind::ALL {
            let idx = kind.build(geom);
            for stride in [1u64, 2, 7, 255, 256] {
                let addrs = strided_addresses(stride, 2048);
                let mut online = OnlineMetrics::new(idx.n_set());
                for &a in &addrs {
                    online.observe(&idx, a);
                }
                let batch_b = balance(&idx, addrs.iter().copied());
                let batch_c = concentration(&idx, addrs.iter().copied());
                assert!(
                    (online.balance() - batch_b).abs() < 1e-9,
                    "{kind:?} stride {stride}: {} vs {batch_b}",
                    online.balance()
                );
                assert!(
                    (online.concentration() - batch_c).abs() < 1e-9,
                    "{kind:?} stride {stride}: {} vs {batch_c}",
                    online.concentration()
                );
            }
        }
    }

    #[test]
    fn empty_accumulator_is_well_defined() {
        let m = OnlineMetrics::new(64);
        assert!(m.balance().is_nan());
        assert_eq!(m.concentration(), 0.0);
        assert_eq!(m.accesses(), 0);
    }

    #[test]
    fn histogram_tracks_counts() {
        let geom = Geometry::new(16);
        let idx = HashKind::Traditional.build(geom);
        let mut m = OnlineMetrics::new(16);
        for a in 0..64u64 {
            m.observe(&idx, a);
        }
        assert_eq!(m.histogram().iter().sum::<u64>(), 64);
        assert!(m.histogram().iter().all(|&c| c == 4));
        assert_eq!(m.uniformity(), 0.0);
    }
}
