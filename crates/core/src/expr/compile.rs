//! The hot-path compilation: folded AST → stack-machine program, plus the
//! conservative range analysis that bounds the set count.
//!
//! The program is a flat opcode vector in the Steel/Rucket style — a
//! post-order emission with every constant operand baked into its opcode,
//! so evaluation is a single allocation-free loop over a fixed-size
//! operand stack. Any `% const` compiles to a precomputed
//! [`FastMod`] reciprocal, the same strength reduction the hard-coded
//! pMod indexer uses.

use std::fmt;

use crate::index::FastMod;

use super::ast::{BinOp, Expr};
use super::parse::ParseError;

/// Maximum operand-stack depth a compiled program may use. Deep enough
/// for any sane index function (a balanced tree of 2^64 leaves); the
/// compiler rejects expressions that exceed it instead of overflowing.
pub const MAX_DEPTH: usize = 64;

/// Why an expression could not be registered/compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// The source failed to parse (span included).
    Parse(ParseError),
    /// The expression uses a shape the compiler rejects: a non-constant
    /// multiplier, modulus, or shift amount; a zero modulus; or nesting
    /// beyond [`MAX_DEPTH`].
    Unsupported(String),
    /// The value range is unbounded, so no finite set count exists — mask
    /// (`& m`) or reduce (`% m`) the result.
    Unbounded,
    /// The scheme name is already registered with a different source.
    NameConflict(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Parse(e) => write!(f, "{e}"),
            ExprError::Unsupported(msg) => write!(f, "unsupported expression: {msg}"),
            ExprError::Unbounded => write!(
                f,
                "the expression's value range is unbounded; mask the result \
                 (`& m`) or take a modulus (`% m`) so it addresses a finite set space"
            ),
            ExprError::NameConflict(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// One stack-machine instruction of a compiled index expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push the block address.
    PushAddr,
    /// Push a constant.
    PushConst(u64),
    /// Pop two operands, push their bitwise OR.
    Or,
    /// Pop two operands, push their bitwise XOR.
    Xor,
    /// Pop two operands, push their bitwise AND.
    And,
    /// Pop two operands, push their wrapping sum.
    Add,
    /// Shift the top of stack left by a constant (< 64).
    Shl(u32),
    /// Shift the top of stack right by a constant (< 64).
    Shr(u32),
    /// Multiply the top of stack by a constant (wrapping).
    MulConst(u64),
    /// Reduce the top of stack modulo a constant via a precomputed
    /// [`FastMod`] reciprocal.
    ModConst(FastMod),
}

/// A compiled index expression: a flat opcode vector evaluated over a
/// fixed-size operand stack. Built by [`compile`]; the registry wraps it
/// as a [`SetIndexer`](crate::index::SetIndexer) via
/// [`ExprIndexer`](super::ExprIndexer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
    depth: usize,
}

impl Program {
    /// The instruction sequence, in evaluation order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The operand-stack depth the program needs (≤ [`MAX_DEPTH`]).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Evaluates the program at block address `a`.
    ///
    /// Bit-identical to [`Expr::eval`] on the folded source tree for every
    /// address (the differential oracle pins this).
    #[must_use]
    #[inline]
    pub fn eval(&self, a: u64) -> u64 {
        let mut st = [0u64; MAX_DEPTH];
        let mut sp = 0usize;
        for op in &self.ops {
            match *op {
                Op::PushAddr => {
                    st[sp] = a;
                    sp += 1;
                }
                Op::PushConst(c) => {
                    st[sp] = c;
                    sp += 1;
                }
                Op::Or => {
                    sp -= 1;
                    st[sp - 1] |= st[sp];
                }
                Op::Xor => {
                    sp -= 1;
                    st[sp - 1] ^= st[sp];
                }
                Op::And => {
                    sp -= 1;
                    st[sp - 1] &= st[sp];
                }
                Op::Add => {
                    sp -= 1;
                    st[sp - 1] = st[sp - 1].wrapping_add(st[sp]);
                }
                Op::Shl(s) => st[sp - 1] <<= s,
                Op::Shr(s) => st[sp - 1] >>= s,
                Op::MulConst(c) => st[sp - 1] = st[sp - 1].wrapping_mul(c),
                Op::ModConst(fm) => st[sp - 1] = fm.reduce(st[sp - 1]),
            }
        }
        st[0]
    }
}

/// Compiles a **folded** expression (see [`fold`](super::fold)) into a
/// stack program.
///
/// # Errors
///
/// [`ExprError::Unsupported`] when a multiplier, modulus, or shift amount
/// is not a constant (the DSL is mul-by-const / mod-by-const by design —
/// that is what keeps the abstract lowering decidable), when a modulus is
/// zero, or when the tree nests beyond [`MAX_DEPTH`].
pub fn compile(e: &Expr) -> Result<Program, ExprError> {
    let mut p = Program {
        ops: Vec::new(),
        depth: 0,
    };
    let mut sp = 0usize;
    emit(e, &mut p, &mut sp)?;
    debug_assert_eq!(sp, 1, "emission must leave exactly the result");
    Ok(p)
}

fn emit(e: &Expr, p: &mut Program, sp: &mut usize) -> Result<(), ExprError> {
    let push = |p: &mut Program, op: Op, sp: &mut usize| -> Result<(), ExprError> {
        *sp += 1;
        if *sp > MAX_DEPTH {
            return Err(ExprError::Unsupported(format!(
                "expression nests deeper than {MAX_DEPTH} operands"
            )));
        }
        p.depth = p.depth.max(*sp);
        p.ops.push(op);
        Ok(())
    };
    match e {
        Expr::Addr => push(p, Op::PushAddr, sp),
        Expr::Const(c) => push(p, Op::PushConst(*c), sp),
        Expr::Bin(op, l, r) => match op {
            BinOp::Or | BinOp::Xor | BinOp::And | BinOp::Add => {
                emit(l, p, sp)?;
                emit(r, p, sp)?;
                *sp -= 1;
                p.ops.push(match op {
                    BinOp::Or => Op::Or,
                    BinOp::Xor => Op::Xor,
                    BinOp::And => Op::And,
                    _ => Op::Add,
                });
                Ok(())
            }
            BinOp::Mod => {
                let Expr::Const(m) = **r else {
                    return Err(ExprError::Unsupported(
                        "the modulus (right operand of `%`) must be a constant".into(),
                    ));
                };
                if m == 0 {
                    return Err(ExprError::Unsupported("the modulus must be nonzero".into()));
                }
                emit(l, p, sp)?;
                p.ops.push(Op::ModConst(FastMod::new(m)));
                Ok(())
            }
            BinOp::Mul => {
                // fold() canonicalizes a constant factor to the right.
                let Expr::Const(c) = **r else {
                    return Err(ExprError::Unsupported(
                        "one operand of `*` must be a constant".into(),
                    ));
                };
                emit(l, p, sp)?;
                p.ops.push(Op::MulConst(c));
                Ok(())
            }
            BinOp::Shl | BinOp::Shr => {
                let Expr::Const(s) = **r else {
                    return Err(ExprError::Unsupported(
                        "the shift amount must be a constant".into(),
                    ));
                };
                let Some(s) = u32::try_from(s).ok().filter(|s| *s < 64) else {
                    return Err(ExprError::Unsupported(
                        "the shift amount must be below 64".into(),
                    ));
                };
                emit(l, p, sp)?;
                p.ops.push(if *op == BinOp::Shl {
                    Op::Shl(s)
                } else {
                    Op::Shr(s)
                });
                Ok(())
            }
        },
    }
}

/// Conservative inclusive upper bound of the expression's value when the
/// block address is at most `addr_bound`. Saturates at `u64::MAX`
/// (meaning: unbounded for practical purposes).
#[must_use]
pub fn value_bound(e: &Expr, addr_bound: u64) -> u64 {
    /// Smallest all-ones mask covering every value up to `x` — sound for
    /// combining bitwise operands whose bounds are not themselves masks.
    fn cover(x: u64) -> u64 {
        if x == 0 {
            0
        } else {
            u64::MAX >> x.leading_zeros()
        }
    }
    match e {
        Expr::Addr => addr_bound,
        Expr::Const(c) => *c,
        Expr::Bin(op, l, r) => {
            let bl = value_bound(l, addr_bound);
            let br = value_bound(r, addr_bound);
            match op {
                BinOp::Or | BinOp::Xor => cover(bl) | cover(br),
                BinOp::And => bl.min(br),
                BinOp::Add => bl.saturating_add(br),
                BinOp::Mul => bl.saturating_mul(br),
                // `x % 0` evaluates to 0, so `max(br, 1) - 1` covers both.
                BinOp::Mod => bl.min(br.max(1) - 1),
                BinOp::Shl => match **r {
                    Expr::Const(s) if s >= 64 => 0,
                    Expr::Const(s) => {
                        let s = u32::try_from(s).expect("s < 64");
                        if bl.leading_zeros() < s {
                            u64::MAX
                        } else {
                            bl << s
                        }
                    }
                    _ => u64::MAX,
                },
                BinOp::Shr => match **r {
                    Expr::Const(s) if s >= 64 => 0,
                    Expr::Const(s) => bl >> s,
                    // A variable shift can be 0; the bound cannot shrink.
                    _ => bl,
                },
            }
        }
    }
}

/// The number of sets the expression can address over addresses up to
/// `addr_bound`: `value_bound + 1`, or `None` when unbounded.
#[must_use]
pub fn set_bound(e: &Expr, addr_bound: u64) -> Option<u64> {
    value_bound(e, addr_bound).checked_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::fold::fold;
    use crate::expr::parse::parse;

    fn program(src: &str) -> Program {
        compile(&fold(&parse(src).unwrap())).unwrap()
    }

    #[test]
    fn compiled_program_matches_tree_eval() {
        for src in [
            "a & 2047",
            "(a ^ (a >> 11)) & 2047",
            "a % 2039",
            "((9 * (a >> 11)) + (a & 2047)) & 2047",
            "(a[20:9] | 1) % 509",
            "((a % 2039) ^ (a >> 13)) & 2047",
        ] {
            let tree = fold(&parse(src).unwrap());
            let prog = compile(&tree).unwrap();
            for a in [0u64, 1, 2039, 4096, 0xABCD_EF01_2345, u64::MAX] {
                assert_eq!(prog.eval(a), tree.eval(a), "{src} at a = {a:#x}");
            }
        }
    }

    #[test]
    fn modulo_uses_fastmod() {
        let p = program("a % 2039");
        assert!(matches!(p.ops(), [Op::PushAddr, Op::ModConst(_)]));
        assert_eq!(p.eval(123_456_789), 123_456_789 % 2039);
    }

    #[test]
    fn rejects_non_constant_operands() {
        for src in ["a * a", "a % a", "a << a", "a >> (a & 1)", "a % 0"] {
            let e = compile(&fold(&parse(src).unwrap()));
            assert!(e.is_err(), "{src} should not compile");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        // Right-leaning XOR chain: each level holds one pending operand.
        let src = format!("{}a{}", "(a ^ ".repeat(70), ")".repeat(70));
        let e = compile(&fold(&parse(&src).unwrap()));
        assert!(matches!(e, Err(ExprError::Unsupported(_))), "{e:?}");
    }

    #[test]
    fn range_bounds_are_sound_and_tight_where_it_matters() {
        let cases = [
            ("a & 2047", 2047),
            ("a % 2039", 2038),
            ("(a ^ (a >> 11)) & 2047", 2047),
            ("((9 * (a >> 11)) + (a & 2047)) & 2047", 2047),
            ("(a & 3) + (a & 12)", 15),
            ("(a & 7) << 2", 28),
        ];
        for (src, want) in cases {
            let e = fold(&parse(src).unwrap());
            assert_eq!(value_bound(&e, u64::MAX), want, "{src}");
        }
        assert_eq!(set_bound(&fold(&parse("a").unwrap()), u64::MAX), None);
        assert_eq!(set_bound(&fold(&parse("a * 3").unwrap()), u64::MAX), None);
    }
}
