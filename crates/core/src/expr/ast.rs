//! Typed AST for the index-expression DSL, with total evaluation
//! semantics and a round-trippable pretty-printer.

use std::fmt;

/// Binary operators of the index-expression DSL.
///
/// Arithmetic wraps modulo 2^64; shifts by 64 or more and `% 0` are
/// defined as 0 so evaluation is total on any tree (the compiler rejects
/// those shapes before an expression can reach a cache, see
/// [`compile`](super::compile)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise OR (`|`).
    Or,
    /// Bitwise XOR (`^`).
    Xor,
    /// Bitwise AND (`&`).
    And,
    /// Left shift (`<<`).
    Shl,
    /// Logical right shift (`>>`).
    Shr,
    /// Wrapping addition (`+`).
    Add,
    /// Wrapping multiplication (`*`).
    Mul,
    /// Remainder (`%`).
    Mod,
}

impl BinOp {
    /// The operator's surface syntax.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::And => "&",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Add => "+",
            BinOp::Mul => "*",
            BinOp::Mod => "%",
        }
    }

    /// Applies the operator with the DSL's total semantics.
    #[must_use]
    pub fn apply(self, l: u64, r: u64) -> u64 {
        match self {
            BinOp::Or => l | r,
            BinOp::Xor => l ^ r,
            BinOp::And => l & r,
            BinOp::Shl => {
                if r >= 64 {
                    0
                } else {
                    l << r
                }
            }
            BinOp::Shr => {
                if r >= 64 {
                    0
                } else {
                    l >> r
                }
            }
            BinOp::Add => l.wrapping_add(r),
            BinOp::Mul => l.wrapping_mul(r),
            BinOp::Mod => {
                if r == 0 {
                    0
                } else {
                    l % r
                }
            }
        }
    }
}

/// An index expression: a function from the block address to a set index.
///
/// The surface syntax's slice sugar `a[hi:lo]` is desugared at parse time
/// to `(a >> lo) & mask`, so the AST stays three variants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// The block address input (`a` or `addr` in the surface syntax).
    Addr,
    /// An unsigned 64-bit constant.
    Const(u64),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Builds a binary node (convenience over the boxed variant).
    #[must_use]
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Evaluates the expression at block address `a` with the DSL's total
    /// semantics (see [`BinOp::apply`]). A tree walk — the hot path uses
    /// the compiled [`Program`](super::Program) instead, and the two agree
    /// on every address (pinned by the differential oracle).
    #[must_use]
    pub fn eval(&self, a: u64) -> u64 {
        match self {
            Expr::Addr => a,
            Expr::Const(c) => *c,
            Expr::Bin(op, l, r) => op.apply(l.eval(a), r.eval(a)),
        }
    }

    /// Whether any node in the tree satisfies `pred`.
    #[must_use]
    pub fn contains(&self, pred: &dyn Fn(&Expr) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        match self {
            Expr::Addr | Expr::Const(_) => false,
            Expr::Bin(_, l, r) => l.contains(pred) || r.contains(pred),
        }
    }
}

/// Prints the expression in parseable surface syntax: every nested binary
/// node is parenthesized, so `parse(print(ast)) == ast` holds for any tree
/// regardless of precedence (the round-trip property test pins this).
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn atom(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Bin(..) => write!(f, "({e})"),
                _ => write!(f, "{e}"),
            }
        }
        match self {
            Expr::Addr => f.write_str("a"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Bin(op, l, r) => {
                atom(l, f)?;
                write!(f, " {} ", op.symbol())?;
                atom(r, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_semantics_for_degenerate_operands() {
        assert_eq!(BinOp::Shl.apply(1, 64), 0);
        assert_eq!(BinOp::Shr.apply(u64::MAX, 200), 0);
        assert_eq!(BinOp::Mod.apply(17, 0), 0);
        assert_eq!(BinOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(BinOp::Mul.apply(u64::MAX, 2), u64::MAX - 1);
    }

    #[test]
    fn eval_walks_the_tree() {
        // (a ^ (a >> 3)) & 7
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::Xor,
                Expr::Addr,
                Expr::bin(BinOp::Shr, Expr::Addr, Expr::Const(3)),
            ),
            Expr::Const(7),
        );
        assert_eq!(e.eval(0), 0);
        assert_eq!(e.eval(0b1010_1100), (0b1010_1100u64 ^ 0b1_0101) & 7);
    }

    #[test]
    fn display_parenthesizes_nested_nodes() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Xor, Expr::Addr, Expr::Const(3)),
            Expr::Const(7),
        );
        assert_eq!(e.to_string(), "(a ^ 3) & 7");
    }
}
