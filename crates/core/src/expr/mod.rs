//! A tiny expression language for user-defined set-index functions.
//!
//! The paper's argument is algebraic: whether an index function eliminates
//! conflict misses is decided by its *structure* (prime residue vs.
//! power-of-two modulo vs. XOR folding), not by simulation. This module
//! opens the scheme space beyond the hard-coded indexers: an index
//! function is written as an expression over the block address, and the
//! same typed AST is compiled **twice** —
//!
//! 1. through [`fold`] + [`compile`] into a flat stack-machine
//!    [`Program`] (any `% const` strength-reduced to a precomputed
//!    [`FastMod`](crate::index::FastMod) reciprocal) wrapped as an
//!    [`ExprIndexer`] that plugs into the batched simulation drivers like
//!    any built-in [`SetIndexer`](crate::index::SetIndexer), and
//! 2. through the abstract lowering in `primecache-analyze` into a static
//!    `IndexModel`, so `pcache analyze` can certify or condemn the scheme
//!    (conflict-stride generators, balance bounds, Theorem-1 verdict)
//!    *before* it burns simulation time.
//!
//! The differential oracle in `primecache-check` pins the two compilations
//! against each other, and [`builtins`] re-expresses every hard-coded
//! scheme in the DSL so the certificates can be asserted identical.
//!
//! # Grammar
//!
//! Operators from loosest to tightest binding, all left-associative;
//! `a[hi:lo]` is bit-slice sugar for `(a >> lo) & ((1 << (hi-lo+1)) - 1)`:
//!
//! ```text
//! expr    := or
//! or      := xor  ( "|"  xor  )*
//! xor     := and  ( "^"  and  )*
//! and     := shift ( "&" shift )*
//! shift   := add  ( ("<<" | ">>") add )*
//! add     := mul  ( "+"  mul  )*
//! mul     := post ( ("*" | "%") post )*
//! post    := primary ( "[" num ":" num "]" )*
//! primary := "a" | "addr" | num | "0x" hex | "(" expr ")"
//! ```
//!
//! Multipliers, moduli, and shift amounts must fold to constants — that
//! restriction is what keeps the abstract lowering decidable — and the
//! value range must be finite (mask or reduce the result) so the scheme
//! addresses a bounded set space.
//!
//! # Examples
//!
//! ```
//! use primecache_core::expr::register;
//! use primecache_core::index::SetIndexer;
//!
//! // The paper's pMod at 2048 physical sets, as a user expression.
//! let id = register("my-pmod", "a % 2039").unwrap();
//! assert_eq!(id.n_set(), 2039);
//! assert_eq!(id.indexer().index(2048), 9);
//! ```

mod ast;
pub mod builtins;
mod compile;
mod fold;
mod parse;
mod registry;

pub use ast::{BinOp, Expr};
pub use compile::{compile, set_bound, value_bound, ExprError, Op, Program, MAX_DEPTH};
pub use fold::fold;
pub use parse::{parse, ParseError, Span};
pub use registry::{register, register_anonymous, ExprId, ExprIndexer};
