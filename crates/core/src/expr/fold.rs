//! Constant folding and strength reduction over the DSL AST.
//!
//! The pass is semantics-preserving on the **full** `u64` address domain
//! (the compiled closure never masks its input), and it is what makes the
//! two compilations line up: the hot-path compiler and the abstract
//! lowering both consume the folded tree, so `x % 2^k` becomes the same
//! `x & (2^k - 1)` on both sides.

use super::ast::{BinOp, Expr};

/// Folds constant subtrees and strength-reduces the standard identities:
///
/// | shape                  | result                  |
/// |------------------------|-------------------------|
/// | `const op const`       | evaluated               |
/// | `c op x` (commutative) | `x op c`                |
/// | `x + 0`, `x ^ 0`, `x \| 0`, `x << 0`, `x >> 0`, `x * 1`, `x & !0` | `x` |
/// | `x & 0`, `x * 0`, `x << 64+`, `x >> 64+`, `x % 1` | `0` |
/// | `x * 2^s`              | `x << s`                |
/// | `x % 2^s`              | `x & (2^s - 1)`         |
///
/// Idempotent: folding a folded tree returns it unchanged.
#[must_use]
pub fn fold(e: &Expr) -> Expr {
    let Expr::Bin(op, l, r) = e else {
        return e.clone();
    };
    let op = *op;
    let l = fold(l);
    let r = fold(r);
    if let (&Expr::Const(a), &Expr::Const(b)) = (&l, &r) {
        return Expr::Const(op.apply(a, b));
    }
    // Canonicalize: the constant operand of a commutative operator goes on
    // the right, so the reductions below (and the compiler, and the
    // abstract lowering's structural matches) only look one way.
    let commutative = matches!(
        op,
        BinOp::Or | BinOp::Xor | BinOp::And | BinOp::Add | BinOp::Mul
    );
    let (l, r) = if commutative && matches!(l, Expr::Const(_)) {
        (r, l)
    } else {
        (l, r)
    };
    if let Expr::Const(c) = r {
        match (op, c) {
            (BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Shl | BinOp::Shr, 0) => return l,
            (BinOp::Shl | BinOp::Shr, s) if s >= 64 => return Expr::Const(0),
            (BinOp::And | BinOp::Mul, 0) => return Expr::Const(0),
            (BinOp::And, u64::MAX) => return l,
            (BinOp::Mul, 1) => return l,
            (BinOp::Mul, m) if m.is_power_of_two() => {
                return Expr::bin(BinOp::Shl, l, Expr::Const(m.trailing_zeros().into()));
            }
            (BinOp::Mod, 1) => return Expr::Const(0),
            (BinOp::Mod, m) if m.is_power_of_two() => {
                return Expr::bin(BinOp::And, l, Expr::Const(m - 1));
            }
            _ => return Expr::bin(op, l, Expr::Const(c)),
        }
    }
    Expr::bin(op, l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse::parse;

    fn folded(src: &str) -> Expr {
        fold(&parse(src).unwrap())
    }

    #[test]
    fn constants_evaluate() {
        assert_eq!(folded("3 * 5 + 1"), Expr::Const(16));
        assert_eq!(folded("(1 << 11) + 2047"), Expr::Const(4095));
    }

    #[test]
    fn strength_reduction() {
        assert_eq!(folded("a % 2048"), folded("a & 2047"));
        assert_eq!(folded("a * 8"), folded("a << 3"));
        assert_eq!(folded("a * 1"), Expr::Addr);
        assert_eq!(folded("a % 1"), Expr::Const(0));
        assert_eq!(folded("a + 0"), Expr::Addr);
        assert_eq!(folded("a >> 77"), Expr::Const(0));
    }

    #[test]
    fn commutative_constants_move_right() {
        assert_eq!(folded("9 * a"), folded("a * 9"));
        assert_eq!(folded("2047 & a"), folded("a & 2047"));
    }

    #[test]
    fn fold_preserves_semantics_on_full_addresses() {
        for src in [
            "a % 2048",
            "a * 6",
            "(3 * a + a) & 511",
            "a[20:9] ^ (a % 4096)",
            "((a << 2) >> 2) % 32",
        ] {
            let raw = parse(src).unwrap();
            let opt = fold(&raw);
            assert_eq!(opt, fold(&opt), "fold not idempotent for {src}");
            for a in [0u64, 1, 2047, 2048, 0xDEAD_BEEF, u64::MAX, u64::MAX - 7] {
                assert_eq!(raw.eval(a), opt.eval(a), "{src} at a = {a:#x}");
            }
        }
    }
}
