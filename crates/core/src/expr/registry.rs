//! Process-wide registry of compiled index expressions.
//!
//! Configuration types ([`HashKind`](crate::index::HashKind), the sim's
//! `Scheme`) are `Copy` and travel through sweep tables, report
//! fingerprints, and batched drivers by value. A user expression is a
//! tree, so it cannot live inside those types directly; instead every
//! registered expression is interned once (leaked to `'static`) and
//! referenced by a copyable [`ExprId`]. The id's `Debug` form embeds the
//! scheme name and a source fingerprint, so config fingerprints derived
//! from `Debug` stay content-based rather than registration-order-based.

use std::fmt;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::index::SetIndexer;

use super::ast::Expr;
use super::compile::{compile, set_bound, ExprError, Program};
use super::fold::fold;
use super::parse::parse;

/// Interned definition of a registered expression scheme.
struct ExprDef {
    name: &'static str,
    src: &'static str,
    ast: Expr,
    folded: Expr,
    program: Program,
    n_set: u64,
    fingerprint: u64,
}

static REGISTRY: Mutex<Vec<&'static ExprDef>> = Mutex::new(Vec::new());

/// FNV-1a over the source text — the content fingerprint baked into
/// [`ExprId`]'s `Debug` form.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Handle to a registered index expression.
///
/// `Copy` and cheap to compare, so it can ride inside
/// [`HashKind`](crate::index::HashKind) and the sim's `Scheme` the same
/// way the built-in variants do.
///
/// # Examples
///
/// ```
/// use primecache_core::expr::register;
/// use primecache_core::index::SetIndexer;
///
/// let id = register("demo-xor", "(a ^ (a >> 11)) & 2047").unwrap();
/// assert_eq!(id.n_set(), 2048);
/// assert_eq!(id.indexer().index(0b1_0000_0000_0001), 1 ^ 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExprId(u32);

impl ExprId {
    fn def(self) -> &'static ExprDef {
        let idx = usize::try_from(self.0).expect("id fits usize");
        REGISTRY.lock().expect("expr registry poisoned")[idx]
    }

    /// The scheme name given at registration (`expr:<src>` for
    /// [`register_anonymous`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        self.def().name
    }

    /// The original source text.
    #[must_use]
    pub fn source(self) -> &'static str {
        self.def().src
    }

    /// The parsed (unfolded) AST.
    #[must_use]
    pub fn ast(self) -> &'static Expr {
        &self.def().ast
    }

    /// The const-folded, strength-reduced AST — what both compilations
    /// (hot-path program and abstract lowering) consume.
    #[must_use]
    pub fn folded(self) -> &'static Expr {
        &self.def().folded
    }

    /// Number of sets the expression addresses (`value_bound + 1` over the
    /// full 64-bit address domain).
    #[must_use]
    pub fn n_set(self) -> u64 {
        self.def().n_set
    }

    /// The compiled hot-path indexer. `Copy` (it borrows the interned
    /// definition), so the monomorphized batched drivers can take it by
    /// value like the built-in indexers.
    #[must_use]
    pub fn indexer(self) -> ExprIndexer {
        ExprIndexer { def: self.def() }
    }
}

/// Content-based form: scheme name plus source fingerprint, never the
/// registration index, so config fingerprints hashed from `Debug` output
/// do not depend on registration order.
impl fmt::Debug for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.def();
        write!(f, "Expr({}@{:016x})", d.name, d.fingerprint)
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Registers an index expression under a scheme name.
///
/// Parses, folds, and compiles `src`, and verifies the value range is
/// bounded (a finite set space). Registering the exact same `(name, src)`
/// pair again returns the existing id — tests and repeated CLI parses rely
/// on this idempotence.
///
/// # Errors
///
/// [`ExprError::Parse`] / [`ExprError::Unsupported`] from the pipeline,
/// [`ExprError::Unbounded`] when no finite set count exists, and
/// [`ExprError::NameConflict`] when `name` is already bound to different
/// source text.
pub fn register(name: &str, src: &str) -> Result<ExprId, ExprError> {
    let mut reg = REGISTRY.lock().expect("expr registry poisoned");
    for (i, def) in reg.iter().enumerate() {
        if def.name == name {
            if def.src == src {
                return Ok(ExprId(u32::try_from(i).expect("registry fits u32")));
            }
            return Err(ExprError::NameConflict(format!(
                "scheme name `{name}` is already registered with source `{}`",
                def.src
            )));
        }
    }
    let ast = parse(src).map_err(ExprError::Parse)?;
    let folded = fold(&ast);
    let program = compile(&folded)?;
    let n_set = set_bound(&folded, u64::MAX).ok_or(ExprError::Unbounded)?;
    let def: &'static ExprDef = Box::leak(Box::new(ExprDef {
        name: String::leak(name.to_owned()),
        src: String::leak(src.to_owned()),
        fingerprint: fnv1a(src.as_bytes()),
        ast,
        folded,
        program,
        n_set,
    }));
    let id = ExprId(u32::try_from(reg.len()).expect("registry fits u32"));
    reg.push(def);
    Ok(id)
}

/// Registers an expression under the derived name `expr:<src>` — the form
/// the CLI's `--scheme 'expr:<src>'` uses.
///
/// # Errors
///
/// Same as [`register`] (a name conflict is impossible: the name is the
/// source).
pub fn register_anonymous(src: &str) -> Result<ExprId, ExprError> {
    register(&format!("expr:{src}"), src)
}

/// A compiled expression as a [`SetIndexer`].
///
/// `Copy` — it holds only a reference to the interned definition — so the
/// monomorphized batched simulation drivers can use it by value, exactly
/// like the hard-coded indexers.
#[derive(Clone, Copy)]
pub struct ExprIndexer {
    def: &'static ExprDef,
}

impl fmt::Debug for ExprIndexer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExprIndexer({} = `{}`, n_set {})",
            self.def.name, self.def.src, self.def.n_set
        )
    }
}

impl SetIndexer for ExprIndexer {
    #[inline]
    fn index(&self, block_addr: u64) -> u64 {
        self.def.program.eval(block_addr)
    }

    fn n_set(&self) -> u64 {
        self.def.n_set
    }

    fn name(&self) -> &'static str {
        self.def.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_per_name_and_source() {
        let a = register("reg-test-pmod", "a % 509").unwrap();
        let b = register("reg-test-pmod", "a % 509").unwrap();
        assert_eq!(a, b);
        let e = register("reg-test-pmod", "a % 511");
        assert!(matches!(e, Err(ExprError::NameConflict(_))), "{e:?}");
    }

    #[test]
    fn unbounded_expressions_are_rejected() {
        assert_eq!(register_anonymous("a"), Err(ExprError::Unbounded));
        assert_eq!(register_anonymous("a ^ 1"), Err(ExprError::Unbounded));
        assert!(register_anonymous("a & 1023").is_ok());
    }

    #[test]
    fn indexer_matches_tree_eval_and_reports_metadata() {
        let id = register("reg-test-mix", "((a % 2039) ^ (a >> 20)) & 2047").unwrap();
        let ix = id.indexer();
        assert_eq!(ix.n_set(), 2048);
        assert_eq!(ix.name(), "reg-test-mix");
        for a in [0u64, 7, 2039, 1 << 33, u64::MAX] {
            assert_eq!(ix.index(a), id.folded().eval(a));
        }
    }

    #[test]
    fn debug_form_is_content_based() {
        let id = register("reg-test-dbg", "a & 7").unwrap();
        let dbg = format!("{id:?}");
        assert!(dbg.starts_with("Expr(reg-test-dbg@"), "{dbg}");
        let again = format!("{:?}", register("reg-test-dbg", "a & 7").unwrap());
        assert_eq!(dbg, again);
    }
}
