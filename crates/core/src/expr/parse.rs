//! Hand-rolled recursive-descent parser for the index-expression DSL.
//!
//! Zero dependencies, spans on every error. The grammar (loosest to
//! tightest binding; every binary level is left-associative):
//!
//! ```text
//! expr  := or
//! or    := xor  ( "|" xor )*
//! xor   := and  ( "^" and )*
//! and   := shift ( "&" shift )*
//! shift := add  ( ("<<" | ">>") add )*
//! add   := mul  ( "+" mul )*
//! mul   := post ( ("*" | "%") post )*
//! post  := prim ( "[" NUM ":" NUM "]" )*
//! prim  := "a" | "addr" | NUM | "(" expr ")"
//! NUM   := decimal or 0x-prefixed hexadecimal u64 literal
//! ```
//!
//! The slice `e[hi:lo]` (bit `hi` down to bit `lo`, inclusive) desugars to
//! `(e >> lo) & mask(hi - lo + 1)` at parse time.

use std::fmt;

use super::ast::{BinOp, Expr};

/// A half-open byte range into the source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character.
    pub end: usize,
}

/// A parse failure pointing at the offending span of the source.
///
/// Malformed input is always reported this way — the parser never panics
/// (pinned by a property test over mutated sources).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong / what was expected instead.
    pub message: String,
    /// Where in the source it went wrong.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at byte {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>, start: usize, end: usize) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
        span: Span { start, end },
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    Addr,
    Num(u64),
    Or,
    Xor,
    And,
    Shl,
    Shr,
    Add,
    Mul,
    Mod,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
}

fn lex(src: &str) -> Result<Vec<(Tok, Span)>, ParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let start = i;
        let tok = match b[i] {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'|' => Tok::Or,
            b'^' => Tok::Xor,
            b'&' => Tok::And,
            b'+' => Tok::Add,
            b'*' => Tok::Mul,
            b'%' => Tok::Mod,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b':' => Tok::Colon,
            b'<' => {
                if b.get(i + 1) == Some(&b'<') {
                    i += 1;
                    Tok::Shl
                } else {
                    return err("expected `<<`", start, start + 1);
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'>') {
                    i += 1;
                    Tok::Shr
                } else {
                    return err("expected `>>`", start, start + 1);
                }
            }
            b'0'..=b'9' => {
                let (radix, digits_at) =
                    if b[i] == b'0' && matches!(b.get(i + 1), Some(b'x' | b'X')) {
                        (16, i + 2)
                    } else {
                        (10, i)
                    };
                let mut j = digits_at;
                while j < b.len() && (b[j] as char).is_ascii_alphanumeric() {
                    j += 1;
                }
                let text = &src[digits_at..j];
                if text.is_empty() {
                    return err("expected hex digits after `0x`", start, j.max(start + 2));
                }
                let value = u64::from_str_radix(text, radix);
                let n = match value {
                    Ok(v) => v,
                    Err(_) => {
                        return err(
                            format!("invalid u64 literal `{}`", &src[start..j]),
                            start,
                            j,
                        )
                    }
                };
                i = j;
                out.push((Tok::Num(n), Span { start, end: j }));
                continue;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i;
                while j < b.len() && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let word = &src[i..j];
                if word != "a" && word != "addr" {
                    return err(
                        format!("unknown identifier `{word}`; the block address is `a`"),
                        i,
                        j,
                    );
                }
                i = j;
                out.push((Tok::Addr, Span { start, end: j }));
                continue;
            }
            c => {
                return err(
                    format!("unexpected character `{}`", char::from(c)),
                    start,
                    start + 1,
                )
            }
        };
        i += 1;
        out.push((tok, Span { start, end: i }));
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [(Tok, Span)],
    pos: usize,
    src_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<Tok> {
        self.toks.get(self.pos).map(|&(t, _)| t)
    }

    fn here(&self) -> Span {
        self.toks.get(self.pos).map_or(
            Span {
                start: self.src_len,
                end: self.src_len,
            },
            |&(_, s)| s,
        )
    }

    fn bump(&mut self) -> Option<(Tok, Span)> {
        let t = self.toks.get(self.pos).copied();
        self.pos += usize::from(t.is_some());
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<Span, ParseError> {
        let span = self.here();
        match self.bump() {
            Some((t, s)) if t == want => Ok(s),
            _ => err(
                format!("expected {what}"),
                span.start,
                span.end.max(span.start),
            ),
        }
    }

    /// One left-associative binary level: `next (ops next)*`.
    fn level(
        &mut self,
        ops: &[(Tok, BinOp)],
        next: &dyn Fn(&mut Self) -> Result<Expr, ParseError>,
    ) -> Result<Expr, ParseError> {
        let mut e = next(self)?;
        while let Some(t) = self.peek() {
            let Some(&(_, op)) = ops.iter().find(|&&(tok, _)| tok == t) else {
                break;
            };
            self.bump();
            e = Expr::bin(op, e, next(self)?);
        }
        Ok(e)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        self.level(&[(Tok::Or, BinOp::Or)], &Self::xor_expr)
    }

    fn xor_expr(&mut self) -> Result<Expr, ParseError> {
        self.level(&[(Tok::Xor, BinOp::Xor)], &Self::and_expr)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        self.level(&[(Tok::And, BinOp::And)], &Self::shift_expr)
    }

    fn shift_expr(&mut self) -> Result<Expr, ParseError> {
        self.level(
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
            &Self::add_expr,
        )
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        self.level(&[(Tok::Add, BinOp::Add)], &Self::mul_expr)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        self.level(
            &[(Tok::Mul, BinOp::Mul), (Tok::Mod, BinOp::Mod)],
            &Self::postfix_expr,
        )
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.peek() == Some(Tok::LBracket) {
            self.bump();
            let (hi, hi_span) = self.number("a bit position (the slice's high bit)")?;
            self.expect(Tok::Colon, "`:` between the slice bounds")?;
            let (lo, lo_span) = self.number("a bit position (the slice's low bit)")?;
            let close = self.expect(Tok::RBracket, "`]` closing the slice")?;
            if hi > 63 {
                return err(
                    "slice bits must be within 0..=63",
                    hi_span.start,
                    hi_span.end,
                );
            }
            if lo > hi {
                return err(
                    format!("slice low bit {lo} exceeds high bit {hi}"),
                    lo_span.start,
                    close.end,
                );
            }
            // Desugar a[hi:lo] => (a >> lo) & mask(hi - lo + 1).
            let width = hi - lo + 1;
            let mask = if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let shifted = if lo == 0 {
                e
            } else {
                Expr::bin(BinOp::Shr, e, Expr::Const(lo))
            };
            e = Expr::bin(BinOp::And, shifted, Expr::Const(mask));
        }
        Ok(e)
    }

    fn number(&mut self, what: &str) -> Result<(u64, Span), ParseError> {
        let span = self.here();
        match self.bump() {
            Some((Tok::Num(n), s)) => Ok((n, s)),
            _ => err(format!("expected {what}"), span.start, span.end),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.here();
        match self.bump() {
            Some((Tok::Addr, _)) => Ok(Expr::Addr),
            Some((Tok::Num(n), _)) => Ok(Expr::Const(n)),
            Some((Tok::LParen, open)) => {
                let e = self.or_expr()?;
                match self.bump() {
                    Some((Tok::RParen, _)) => Ok(e),
                    _ => err("unclosed `(`", open.start, open.end),
                }
            }
            _ => err(
                "expected the address `a`, a constant, or `(`",
                span.start,
                span.end,
            ),
        }
    }
}

/// Parses a DSL source string into an [`Expr`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending span for any malformed
/// input: unknown identifiers, stray characters, unbalanced parentheses,
/// overflowing literals, bad slices, or trailing tokens.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        src_len: src.len(),
    };
    if p.peek().is_none() {
        return err("empty expression", 0, 0);
    }
    let e = p.or_expr()?;
    if let Some(&(_, s)) = toks.get(p.pos) {
        return err("unexpected trailing input", s.start, src.len());
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_schemes() {
        let e = parse("(a ^ (a >> 11)) & 2047").unwrap();
        assert_eq!(
            e.eval(0x1234_5678),
            ((0x1234_5678u64 >> 11) ^ 0x1234_5678) & 2047
        );
        let m = parse("a % 2039").unwrap();
        assert_eq!(m.eval(1 << 40), (1u64 << 40) % 2039);
    }

    #[test]
    fn precedence_mirrors_c() {
        // `*`/`%` bind tighter than `+`, which binds tighter than shifts,
        // which bind tighter than `&`, `^`, `|`.
        let e = parse("a + 3 * 2 & 7").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::And,
                Expr::bin(
                    BinOp::Add,
                    Expr::Addr,
                    Expr::bin(BinOp::Mul, Expr::Const(3), Expr::Const(2)),
                ),
                Expr::Const(7),
            )
        );
    }

    #[test]
    fn slices_desugar_to_shift_and_mask() {
        assert_eq!(parse("a[13:3]").unwrap(), parse("(a >> 3) & 2047").unwrap());
        assert_eq!(parse("a[10:0]").unwrap(), parse("a & 2047").unwrap());
        assert_eq!(
            parse("addr[63:0]").unwrap(),
            parse("a & 0xFFFFFFFFFFFFFFFF").unwrap()
        );
    }

    #[test]
    fn hex_literals_parse() {
        assert_eq!(parse("0x7FF").unwrap(), Expr::Const(2047));
    }

    #[test]
    fn errors_carry_spans() {
        let e = parse("a ^ bogus").unwrap_err();
        assert_eq!((e.span.start, e.span.end), (4, 9));
        assert!(e.message.contains("bogus"), "{e}");

        let e = parse("(a ^ 3").unwrap_err();
        assert_eq!(e.span.start, 0);

        let e = parse("a <").unwrap_err();
        assert_eq!(e.span.start, 2);

        let e = parse("a % 99999999999999999999").unwrap_err();
        assert!(e.message.contains("u64"), "{e}");

        let e = parse("a[3:9]").unwrap_err();
        assert!(e.message.contains("exceeds"), "{e}");

        let e = parse("").unwrap_err();
        assert_eq!(e.span.start, 0);

        let e = parse("a a").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }
}
