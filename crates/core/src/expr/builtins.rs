//! DSL source text for every hard-coded index function.
//!
//! The acceptance bar for the expression language is that each built-in
//! scheme is *expressible*: the source built here must evaluate
//! bit-identically to the corresponding hard-coded indexer on every block
//! address, and its abstract lowering must produce the same certificate as
//! the hard-coded model (both pinned by tests). The builders are
//! parameterized by [`Geometry`] so the equivalence holds at any
//! power-of-two set count.

use crate::index::Geometry;
use primecache_primes::prev_prime;

/// Traditional (Base) indexing: the low index bits, `a & mask`.
#[must_use]
pub fn traditional_src(geom: Geometry) -> String {
    format!("a & {}", geom.index_mask())
}

/// XOR indexing: first tag chunk XOR index bits, `(a ^ (a >> k)) & mask`.
///
/// The mask distributes over XOR, so this equals
/// `x(a) ^ tag_chunk(a, 1)` of the hard-coded [`Xor`](crate::index::Xor).
#[must_use]
pub fn xor_src(geom: Geometry) -> String {
    format!("(a ^ (a >> {})) & {}", geom.index_bits(), geom.index_mask())
}

/// Fully-folded XOR: every `k`-bit chunk of the address XOR-ed together,
/// `(a ^ (a >> k) ^ (a >> 2k) ^ …) & mask` over all chunk shifts below 64.
#[must_use]
pub fn xor_folded_src(geom: Geometry) -> String {
    let k = geom.index_bits();
    let mut src = String::from("(a");
    let mut shift = k;
    while shift < 64 {
        src.push_str(&format!(" ^ (a >> {shift})"));
        shift += k;
    }
    src.push_str(&format!(") & {}", geom.index_mask()));
    src
}

/// Prime modulo (pMod): `a % p` with `p` the largest prime not exceeding
/// the physical set count — the paper's headline scheme.
#[must_use]
pub fn pmod_src(geom: Geometry) -> String {
    let p = prev_prime(geom.n_set_phys()).expect("geometry guarantees n_set_phys >= 2");
    format!("a % {p}")
}

/// Prime displacement (pDisp): `((f * T) + x) mod 2^k` written as
/// `((f * (a >> k)) + (a & mask)) & mask`.
///
/// Matches the hard-coded
/// [`PrimeDisplacement`](crate::index::PrimeDisplacement) for any factor:
/// wrapping arithmetic truncated by the mask agrees with arithmetic
/// mod `2^k`.
#[must_use]
pub fn pdisp_src(geom: Geometry, factor: u64) -> String {
    let k = geom.index_bits();
    let mask = geom.index_mask();
    format!("(({factor} * (a >> {k})) + (a & {mask})) & {mask}")
}

/// Seznec skewing function for one bank (SKW): `rotate(t1, bank mod k) ^ x`
/// spelled with shifts — the left-rotate of the first tag chunk splits into
/// a masked `<<` and a `>>` over disjoint bit ranges, whose OR is an XOR.
#[must_use]
pub fn skew_xor_bank_src(geom: Geometry, bank: u32) -> String {
    let k = geom.index_bits();
    let mask = geom.index_mask();
    let r = bank % k;
    if r == 0 {
        return format!("(a & {mask}) ^ ((a >> {k}) & {mask})");
    }
    format!(
        "(a & {mask}) ^ ((((a >> {k}) & {mask}) << {r}) & {mask}) ^ (((a >> {k}) & {mask}) >> {})",
        k - r
    )
}

/// Prime-displacement skewing function for one bank (skw+pDisp): identical
/// shape to [`pdisp_src`] with the bank's factor.
#[must_use]
pub fn skew_disp_bank_src(geom: Geometry, factor: u64) -> String {
    pdisp_src(geom, factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{fold, parse};
    use crate::index::{
        PrimeDisplacement, PrimeModulo, SetIndexer, SkewXorBank, Traditional, Xor, XorFolded,
        SKEW_DISP_FACTORS,
    };

    /// Sample addresses exercising every tag chunk, including ones beyond
    /// 32 bits and the all-ones extreme.
    const ADDRS: [u64; 10] = [
        0,
        1,
        2039,
        2048,
        4095,
        0xDEAD_BEEF,
        0xABCD_EF01_2345,
        1 << 45,
        u64::MAX - 7,
        u64::MAX,
    ];

    fn assert_matches(src: &str, hard: &dyn SetIndexer) {
        let e = fold(&parse(src).unwrap());
        for &a in &ADDRS {
            assert_eq!(
                e.eval(a),
                hard.index(a),
                "{} vs `{src}` at a = {a:#x}",
                hard.name()
            );
        }
    }

    #[test]
    fn every_builtin_scheme_is_expressible() {
        for phys in [64u64, 512, 2048, 16384] {
            let g = Geometry::new(phys);
            assert_matches(&traditional_src(g), &Traditional::new(g));
            assert_matches(&xor_src(g), &Xor::new(g));
            assert_matches(&xor_folded_src(g), &XorFolded::new(g));
            assert_matches(&pmod_src(g), &PrimeModulo::new(g));
            assert_matches(&pdisp_src(g, 9), &PrimeDisplacement::paper_default(g));
        }
    }

    #[test]
    fn every_skew_bank_is_expressible() {
        let g = Geometry::new(512);
        for bank in 0..4 {
            assert_matches(&skew_xor_bank_src(g, bank), &SkewXorBank::new(g, bank));
        }
        for &f in &SKEW_DISP_FACTORS {
            assert_matches(
                &skew_disp_bank_src(g, f),
                &crate::index::SkewDispBank::new(g, f),
            );
        }
    }

    #[test]
    fn skew_rotation_wraps_like_the_hard_coded_bank() {
        // Bank number beyond index_bits wraps (bank mod k), including the
        // r == 0 branch.
        let g = Geometry::new(16);
        for bank in [0u32, 3, 4, 7] {
            assert_matches(&skew_xor_bank_src(g, bank), &SkewXorBank::new(g, bank));
        }
    }
}
