//! Per-indexer certificates: the paper's §2.2 properties derived
//! statically instead of measured.
//!
//! A [`Certificate`] records, for one index function over a fixed
//! geometry and address width:
//!
//! * the GF(2) **rank** and **kernel** of its symbolic model,
//! * the **conflict-stride generators** (null-space values — addresses
//!   separated by a carry-free multiple of one collide),
//! * the **permutation property** (any aligned index window maps onto all
//!   sets exactly once),
//! * the **balance bound** — the worst-case per-set load multiple over a
//!   full address period, the static counterpart of Eq. 1 (1.0 = ideal),
//! * **sequence invariance** (Property 2, §2.2), and
//! * the **Theorem 1** verdict: whether strided sequences are provably
//!   conflict-free for every stride not a multiple of `n_set`.

use primecache_core::expr::Expr;
use primecache_core::index::{Geometry, HashKind, SKEW_DISP_FACTORS};
use primecache_primes::{factorize, is_prime};

use crate::gf2::input_mask;
use crate::lower::lower_expr;
use crate::model::{model_of, skew_disp_model, skew_xor_model, xor_folded_model, IndexModel};

/// Sequence invariance (Property 2 of §2.2): whether the next set of a
/// strided sequence depends only on the current set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariance {
    /// Fully sequence invariant (the modulo family).
    Full,
    /// Partially invariant: all but one transition distance is constant
    /// (the pDisp family, §3.3).
    Partial,
    /// Not sequence invariant (every XOR-style map).
    None,
}

impl Invariance {
    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Invariance::Full => "full",
            Invariance::Partial => "partial",
            Invariance::None => "none",
        }
    }
}

/// The Theorem 1 verdict: conflict-freedom of strided sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Theorem1 {
    /// Prime modulus `p`: for every stride `s` with `p ∤ s`, any `p`
    /// consecutive strided accesses land on `p` distinct sets
    /// (`gcd(s, p) = 1`), so no stride below the modulus ever conflicts.
    Holds {
        /// The certified prime modulus.
        modulus: u64,
    },
    /// A concrete stride defeats strided conflict-freedom: carry-free
    /// multiples of `witness_stride` collapse onto one set.
    Fails {
        /// The smallest derived pathological stride.
        witness_stride: u64,
    },
    /// The scheme offers no such guarantee, but no single collapsing
    /// stride was derived either.
    NoGuarantee,
}

/// Everything the static analyzer can certify about one index function.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Display name (paper figure labels, with bank/factor suffixes).
    pub name: String,
    /// Number of sets mapped into.
    pub n_set: u64,
    /// Address bits modeled.
    pub in_bits: u32,
    /// Rank of the symbolic map.
    pub rank: u32,
    /// Kernel dimension (`in_bits − rank` for linear maps; for the
    /// residue/affine families, the count of independent generator
    /// directions within `in_bits`).
    pub kernel_dim: u32,
    /// Conflict-stride generators, sorted ascending.
    pub conflict_strides: Vec<u64>,
    /// Whether any aligned window of `n_set`-ish consecutive addresses
    /// maps onto the sets exactly once.
    pub permutation: bool,
    /// Whether the full-period load is ideal (Eq. 1 value of 1).
    pub balanced: bool,
    /// Worst-case per-set load multiple over a full period (1.0 = ideal;
    /// `2^(k − rank)` for a rank-deficient linear map).
    pub balance_bound: f64,
    /// Property 2 status.
    pub invariance: Invariance,
    /// Theorem 1 verdict.
    pub theorem1: Theorem1,
    /// Whether every field above is *proved* from the algebraic family
    /// (linear / residue / affine). `false` for the
    /// [`IndexModel::Opaque`] family, whose permutation, balance, and
    /// conflict-stride fields are sampled estimates.
    pub exact: bool,
    /// The symbolic model, for downstream cross-validation.
    pub model: IndexModel,
}

impl Certificate {
    /// The smallest conflict-stride generator, if any.
    #[must_use]
    pub fn smallest_conflict_stride(&self) -> Option<u64> {
        self.conflict_strides.first().copied()
    }
}

fn certify_linear(name: String, model: IndexModel, invariance: Invariance) -> Certificate {
    let IndexModel::Linear(ref m) = model else {
        unreachable!("certify_linear takes a linear model");
    };
    let rank = m.rank();
    let k = m.out_bits();
    let kernel = m.kernel_basis();
    let balance_bound = f64::from(1u32 << (k - rank.min(k)));
    let theorem1 = match kernel.first() {
        Some(&d) => Theorem1::Fails { witness_stride: d },
        None => Theorem1::NoGuarantee,
    };
    Certificate {
        name,
        n_set: 1u64 << k,
        in_bits: m.in_bits(),
        rank,
        kernel_dim: m.kernel_dim(),
        permutation: m.index_window_permutation(),
        balanced: rank == k,
        balance_bound,
        invariance,
        theorem1,
        exact: true,
        conflict_strides: kernel,
        model,
    }
}

fn certify_residue(name: String, model: IndexModel) -> Certificate {
    let IndexModel::Residue { modulus, in_bits } = model else {
        unreachable!("certify_residue takes a residue model");
    };
    let theorem1 = if is_prime(modulus) {
        Theorem1::Holds { modulus }
    } else {
        // The smallest prime factor q is a stride that visits only
        // modulus/q sets, each q times per period: guaranteed conflicts.
        let witness = factorize(modulus).first().map_or(modulus, |&(p, _)| p);
        Theorem1::Fails {
            witness_stride: witness,
        }
    };
    let strides = model.conflict_generators();
    Certificate {
        name,
        n_set: modulus,
        in_bits,
        rank: model.rank(),
        kernel_dim: u32::try_from(strides.len()).expect("few generators"),
        permutation: true, // any m consecutive addresses are a bijection mod m
        balanced: true,
        balance_bound: 1.0,
        invariance: Invariance::Full,
        theorem1,
        exact: true,
        conflict_strides: strides,
        model,
    }
}

fn certify_affine(name: String, model: IndexModel) -> Certificate {
    let IndexModel::Affine {
        factor,
        index_bits,
        in_bits,
    } = model
    else {
        unreachable!("certify_affine takes an affine model");
    };
    let odd = factor % 2 == 1;
    let strides = model.conflict_generators();
    let theorem1 = if odd {
        Theorem1::NoGuarantee
    } else {
        // Even factor: stride 2^k advances the set by the factor, which
        // shares a power of two with the modulus — only a fraction of the
        // sets is visited, each repeatedly.
        Theorem1::Fails {
            witness_stride: 1u64 << index_bits,
        }
    };
    Certificate {
        name,
        n_set: 1u64 << index_bits,
        in_bits,
        rank: index_bits,
        kernel_dim: u32::try_from(strides.len()).expect("few generators"),
        permutation: true, // x ↦ (p·T + x) is a bijection for any fixed tag
        balanced: odd,
        balance_bound: 1.0,
        invariance: Invariance::Partial,
        theorem1,
        exact: true,
        conflict_strides: strides,
        model,
    }
}

/// Certifies one [`HashKind`] over a geometry and address width.
///
/// # Examples
///
/// ```
/// use primecache_analyze::{certify_kind, Theorem1};
/// use primecache_core::index::{Geometry, HashKind};
///
/// let c = certify_kind(HashKind::PrimeModulo, Geometry::new(2048), 26);
/// assert_eq!(c.theorem1, Theorem1::Holds { modulus: 2039 });
///
/// let x = certify_kind(HashKind::Xor, Geometry::new(2048), 26);
/// assert_eq!(x.theorem1, Theorem1::Fails { witness_stride: 2049 });
/// ```
#[must_use]
pub fn certify_kind(kind: HashKind, geom: Geometry, in_bits: u32) -> Certificate {
    let model = model_of(kind, geom, in_bits);
    match kind {
        HashKind::Traditional => certify_linear(kind.label().to_owned(), model, Invariance::Full),
        HashKind::Xor => certify_linear(kind.label().to_owned(), model, Invariance::None),
        HashKind::PrimeModulo => certify_residue(kind.label().to_owned(), model),
        HashKind::PrimeDisplacement => certify_affine(kind.label().to_owned(), model),
        HashKind::Expr(id) => certify_expr(id.name().to_owned(), id.folded(), in_bits),
    }
}

/// Certifies the fully-folded XOR indexer.
#[must_use]
pub fn certify_xor_folded(geom: Geometry, in_bits: u32) -> Certificate {
    certify_linear(
        "XOR-fold".to_owned(),
        xor_folded_model(geom, in_bits),
        Invariance::None,
    )
}

/// Certifies one Seznec skew bank.
#[must_use]
pub fn certify_skew_xor_bank(geom: Geometry, bank: u32, in_bits: u32) -> Certificate {
    certify_linear(
        format!("SKW[{bank}]"),
        skew_xor_model(geom, bank, in_bits),
        Invariance::None,
    )
}

/// Certifies one prime-displacement skew bank.
#[must_use]
pub fn certify_skew_disp_bank(geom: Geometry, factor: u64, in_bits: u32) -> Certificate {
    certify_affine(
        format!("skw+pDisp[{factor}]"),
        skew_disp_model(geom, factor, in_bits),
    )
}

/// Certifies a DSL expression over `in_bits` address bits.
///
/// The expression is lowered (see [`lower_expr`]) and dispatched to the
/// certifier of the family it provably belongs to; expressions matching
/// no exact family get a *sampled* certificate with
/// [`Certificate::exact`] `false`.
///
/// # Examples
///
/// ```
/// use primecache_analyze::{certify_expr, Theorem1};
/// use primecache_core::expr::parse;
///
/// // The paper's pMod, written by a user.
/// let e = parse("a % 2039").unwrap();
/// let c = certify_expr("my-pmod".to_owned(), &e, 26);
/// assert_eq!(c.theorem1, Theorem1::Holds { modulus: 2039 });
/// assert!(c.exact);
/// ```
#[must_use]
pub fn certify_expr(name: String, e: &Expr, in_bits: u32) -> Certificate {
    let model = lower_expr(e, in_bits);
    match &model {
        IndexModel::Linear(m) => {
            // A map reading only the low out_bits window is the
            // traditional family: sequence invariant. Anything mixing in
            // tag bits is XOR-style: not invariant.
            let window = input_mask(m.out_bits());
            let invariance = if (0..m.out_bits()).all(|i| m.row(i) & !window == 0) {
                Invariance::Full
            } else {
                Invariance::None
            };
            certify_linear(name, model, invariance)
        }
        IndexModel::Residue { .. } => certify_residue(name, model),
        IndexModel::Affine { .. } => certify_affine(name, model),
        IndexModel::Opaque { .. } => certify_opaque(name, model),
    }
}

/// Sampled certificate for the opaque family. Every field is evidence,
/// not proof — `exact` is `false`, and downstream consumers (the lint
/// pass, the CLI report) surface that.
fn certify_opaque(name: String, model: IndexModel) -> Certificate {
    let IndexModel::Opaque { in_bits, n_set, .. } = model else {
        unreachable!("certify_opaque takes an opaque model");
    };
    let mask = input_mask(in_bits);
    // Permutation: does the first aligned window of n_set addresses map
    // onto the sets exactly once? Exhaustive when the window is small.
    let permutation = n_set <= (1 << 16) && n_set <= mask.saturating_add(1) && {
        let n = usize::try_from(n_set).expect("bounded above");
        let mut seen = vec![false; n];
        (0..n_set).all(|a| {
            let s = usize::try_from(model.eval(a)).expect("set < n_set bound");
            s < n && !std::mem::replace(&mut seen[s], true)
        })
    };
    // Balance: sampled load histogram over the masked address domain.
    let samples = 1u64 << 16;
    let n = usize::try_from(n_set.min(1 << 20)).expect("clamped");
    let mut hist = vec![0u64; n.max(1)];
    let mut a = 0x243F_6A88_85A3_08D3u64;
    for step in 0..samples {
        a = a.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(step);
        let s = usize::try_from(model.eval(a & mask)).expect("set < n_set bound");
        if let Some(h) = hist.get_mut(s) {
            *h += 1;
        }
    }
    let ideal = samples as f64 / n_set as f64;
    let balance_bound = hist.iter().copied().max().unwrap_or(0) as f64 / ideal;
    // Conflict strides: small deltas whose carry-free companions collide
    // in every sample (necessary evidence, not a kernel).
    let mut strides = Vec::new();
    for d in 1..=n_set.saturating_mul(4).min(1 << 14) {
        if model.is_conflict_delta(d) {
            strides.push(d);
            if strides.len() >= 16 {
                break;
            }
        }
    }
    let theorem1 = match strides.first() {
        Some(&d) => Theorem1::Fails { witness_stride: d },
        None => Theorem1::NoGuarantee,
    };
    Certificate {
        name,
        n_set,
        in_bits,
        rank: model.rank(),
        kernel_dim: u32::try_from(strides.len()).expect("at most 16"),
        permutation,
        balanced: permutation && balance_bound <= 1.05,
        balance_bound,
        invariance: Invariance::None,
        theorem1,
        exact: false,
        conflict_strides: strides,
        model,
    }
}

/// Certifies every indexer family the repo implements: the four
/// [`HashKind`]s and the folded XOR over `geom`, plus the four skew banks
/// of each family over `bank_geom` (one quarter of the lines in the
/// paper's four-bank layout).
#[must_use]
pub fn certify_all(geom: Geometry, bank_geom: Geometry, in_bits: u32) -> Vec<Certificate> {
    let mut out: Vec<Certificate> = HashKind::ALL
        .into_iter()
        .map(|kind| certify_kind(kind, geom, in_bits))
        .collect();
    out.push(certify_xor_folded(geom, in_bits));
    for bank in 0..4 {
        out.push(certify_skew_xor_bank(bank_geom, bank, in_bits));
    }
    for factor in SKEW_DISP_FACTORS {
        out.push(certify_skew_disp_bank(bank_geom, factor, in_bits));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmod_gets_the_theorem1_certificate() {
        let c = certify_kind(HashKind::PrimeModulo, Geometry::new(2048), 26);
        assert_eq!(c.theorem1, Theorem1::Holds { modulus: 2039 });
        assert!(c.balanced && c.permutation);
        assert_eq!(c.invariance, Invariance::Full);
    }

    #[test]
    fn composite_modulus_fails_theorem1_with_its_factor() {
        let model = IndexModel::Residue {
            modulus: 2047, // 23 * 89
            in_bits: 26,
        };
        let c = certify_residue("pMod(2047)".to_owned(), model);
        assert_eq!(c.theorem1, Theorem1::Fails { witness_stride: 23 });
    }

    #[test]
    fn traditional_witness_is_the_set_count() {
        let c = certify_kind(HashKind::Traditional, Geometry::new(1024), 26);
        assert_eq!(
            c.theorem1,
            Theorem1::Fails {
                witness_stride: 1024
            }
        );
        assert_eq!(c.invariance, Invariance::Full);
        assert!(c.permutation && c.balanced);
    }

    #[test]
    fn xor_witness_is_n_set_plus_one() {
        let c = certify_kind(HashKind::Xor, Geometry::new(2048), 26);
        assert_eq!(c.smallest_conflict_stride(), Some(2049));
        assert_eq!(c.rank, 11);
        assert_eq!(c.kernel_dim, 15); // 26 − 11
        assert_eq!(c.invariance, Invariance::None);
    }

    #[test]
    fn pdisp_is_partial_and_guaranteeless() {
        let c = certify_kind(HashKind::PrimeDisplacement, Geometry::new(2048), 26);
        assert_eq!(c.theorem1, Theorem1::NoGuarantee);
        assert_eq!(c.invariance, Invariance::Partial);
        assert!(c.balanced);
    }

    #[test]
    fn even_affine_factor_fails() {
        let c = certify_skew_disp_bank(Geometry::new(512), 8, 26);
        assert!(!c.balanced);
        assert_eq!(
            c.theorem1,
            Theorem1::Fails {
                witness_stride: 512
            }
        );
    }

    #[test]
    fn certify_all_covers_thirteen_indexers() {
        let all = certify_all(Geometry::new(2048), Geometry::new(512), 26);
        assert_eq!(all.len(), 13); // 4 kinds + fold + 4 SKW + 4 disp banks
        for c in &all {
            assert!(c.permutation, "{}", c.name);
        }
    }

    #[test]
    fn skew_banks_are_full_rank_permutations() {
        for bank in 0..4 {
            let c = certify_skew_xor_bank(Geometry::new(512), bank, 26);
            assert_eq!(c.rank, 9, "bank {bank}");
            assert!(c.balanced && c.permutation);
        }
    }
}
